"""Unit tests for the MCU firmware layer."""

import pytest

from repro.apps import create_app
from repro.calibration import default_calibration
from repro.errors import CapacityError
from repro.firmware import BatchBuffer, check_offloadable, read_and_decode
from repro.hw import IoTHub, MemoryRegion
from repro.sensors import ConstantWaveform, SensorDevice
from repro.sensors.base import SensorSample


def sample(seq=1, nbytes=12):
    return SensorSample(time=0.0, sensor_id="S4", value=1.0, nbytes=nbytes, seq=seq)


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
def test_read_and_decode_takes_read_plus_decode_time():
    hub = IoTHub()
    device = SensorDevice.attach(hub, "S4", ConstantWaveform(0.0))
    out = []

    def reader():
        result = yield from read_and_decode(hub, device)
        out.append(result)

    hub.sim.spawn(reader())
    hub.run()
    expected = (
        device.spec.read_time_s
        + hub.calibration.mcu.decode_time_per_sample_s
    )
    assert hub.sim.now == pytest.approx(expected)
    assert out[0].sensor_id == "S4"


# ----------------------------------------------------------------------
# batching buffer
# ----------------------------------------------------------------------
def test_batch_buffer_accounts_ram():
    ram = MemoryRegion("ram", 100)
    buffer = BatchBuffer(ram, "batch:test")
    buffer.add(sample(1), 40)
    buffer.add(sample(2), 40)
    assert buffer.sample_count == 2
    assert buffer.buffered_bytes == 80
    assert ram.used_bytes == 80


def test_batch_buffer_rejects_overflow():
    ram = MemoryRegion("ram", 100)
    buffer = BatchBuffer(ram, "batch:test")
    buffer.add(sample(1), 80)
    with pytest.raises(CapacityError):
        buffer.add(sample(2), 40)


def test_batch_buffer_flush_releases_ram():
    ram = MemoryRegion("ram", 100)
    buffer = BatchBuffer(ram, "batch:test")
    buffer.add(sample(1), 60)
    flushed = buffer.flush()
    assert len(flushed) == 1
    assert ram.used_bytes == 0
    assert buffer.buffered_bytes == 0
    assert buffer.high_water_bytes == 60
    # Buffer is reusable after a flush.
    buffer.add(sample(2), 90)
    assert buffer.sample_count == 1


# ----------------------------------------------------------------------
# offloadability (the paper's COM feasibility rules)
# ----------------------------------------------------------------------
def test_all_light_apps_are_offloadable():
    for index in range(1, 11):
        app = create_app(f"A{index}")
        report = check_offloadable(app)
        assert report.offloadable, f"{app.name}: {report.reasons}"


def test_heavy_app_rejected_for_weight_and_memory():
    report = check_offloadable(create_app("A11"))
    assert not report
    assert any("heavy-weight" in reason for reason in report.reasons)
    assert any("MCU RAM" in reason for reason in report.reasons)


def test_mcu_unfriendly_sensor_blocks_offload():
    from repro.apps.base import AppProfile, IoTApp

    class HighResApp(IoTApp):
        def __init__(self):
            super().__init__(
                AppProfile(
                    table2_id="AX",
                    name="highres",
                    title="x",
                    category="c",
                    user_task="t",
                    sensor_ids=("S10H",),
                    mips=5.0,
                    heap_bytes=1000,
                    stack_bytes=100,
                )
            )

        def compute(self, window):  # pragma: no cover
            raise NotImplementedError

    report = check_offloadable(HighResApp())
    assert not report
    assert any("MCU-unfriendly" in reason for reason in report.reasons)


def test_slow_mcu_blocks_offload_via_qos():
    cal = default_calibration().with_mcu(mips=1.0)  # absurdly slow MCU
    report = check_offloadable(create_app("A1"), cal)
    assert not report
    assert any("QoS" in reason for reason in report.reasons)


def test_report_carries_requirements():
    report = check_offloadable(create_app("A2"))
    assert report.mcu_compute_time_s == pytest.approx(21.7e-3, rel=0.02)
    profile = create_app("A2").profile
    assert report.required_ram_bytes == profile.mcu_footprint_bytes
