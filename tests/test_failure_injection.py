"""Failure injection: the system degrades loudly, not silently."""

import pytest

from repro.apps import create_app
from repro.apps.base import AppProfile, AppResult, IoTApp
from repro.calibration import default_calibration
from repro.core import Scenario, Scheme, run_scenario
from repro.errors import (
    CapacityError,
    OffloadError,
    QoSViolation,
    SimulationError,
    WorkloadError,
)
from repro.sim import Delay, Signal, Simulator, Wait


# ----------------------------------------------------------------------
# kernel-level failures
# ----------------------------------------------------------------------
def test_crashing_process_surfaces_its_exception():
    sim = Simulator()

    def crasher():
        yield Delay(1.0)
        raise RuntimeError("device caught fire")

    sim.spawn(crasher())
    with pytest.raises(RuntimeError, match="device caught fire"):
        sim.run()


def test_interrupted_process_does_not_block_others():
    sim = Simulator()
    gate = Signal()
    survived = []

    def victim():
        yield Wait(gate)
        survived.append("victim")  # pragma: no cover - never fires

    def bystander():
        yield Delay(2.0)
        survived.append("bystander")

    victim_proc = sim.spawn(victim())
    sim.spawn(bystander())

    def killer():
        yield Delay(1.0)
        victim_proc.interrupt()

    sim.spawn(killer())
    sim.run()
    assert survived == ["bystander"]
    assert victim_proc.finished


def test_resumed_finished_process_is_an_error():
    sim = Simulator()

    def quick():
        return "done"
        yield  # pragma: no cover

    process = sim.spawn(quick())
    sim.run()
    with pytest.raises(SimulationError):
        process.wake()


# ----------------------------------------------------------------------
# capacity and offload failures
# ----------------------------------------------------------------------
def test_batching_with_tiny_mcu_ram_flags_violations_but_completes():
    cal = default_calibration().with_mcu(ram_bytes=2048)
    result = run_scenario(
        Scenario(
            apps=[create_app("A2")], scheme=Scheme.BATCHING, calibration=cal
        )
    )
    assert result.qos_violations
    assert all("RAM" in violation for violation in result.qos_violations)
    # The run still finishes and the computation still happens.
    assert result.results_ok


def test_com_refuses_heavy_app_with_reasons():
    with pytest.raises(OffloadError) as excinfo:
        run_scenario(Scenario(apps=[create_app("A11")], scheme=Scheme.COM))
    assert "heavy-weight" in str(excinfo.value)


def test_bcom_falls_back_on_ram_contention():
    # Shrink RAM so only some of four offloadable apps fit.
    cal = default_calibration().with_mcu(ram_bytes=24 * 1024)
    result = run_scenario(
        Scenario(
            apps=[create_app(i) for i in ("A2", "A4", "A5", "A7")],
            scheme=Scheme.BCOM,
            calibration=cal,
        )
    )
    placements = {
        name: report.offloadable
        for name, report in result.offload_reports.items()
    }
    assert any(placements.values()), "nothing offloaded at all"
    assert not all(placements.values()), "everything offloaded despite 24 KB"
    fallbacks = [
        report
        for report in result.offload_reports.values()
        if not report.offloadable
    ]
    # Each fallback is RAM-related: either statically too big for the
    # shrunken MCU, or displaced by apps packed before it.
    assert all(
        "RAM" in reason for report in fallbacks for reason in report.reasons
    )
    assert result.results_ok


# ----------------------------------------------------------------------
# misbehaving apps
# ----------------------------------------------------------------------
class EmptyResultApp(IoTApp):
    """An app whose compute() produces no output payload bytes."""

    def __init__(self):
        super().__init__(
            AppProfile(
                table2_id="AX",
                name="empty",
                title="Empty",
                category="test",
                user_task="nothing",
                sensor_ids=("S4",),
                mips=1.0,
                output_bytes=64,
            )
        )

    def compute(self, window):
        return AppResult(
            app_name=self.name,
            window_index=window.window_index,
            payload={},
            output_bytes=0,  # invalid
        )


def test_app_with_empty_output_is_rejected():
    with pytest.raises(WorkloadError):
        run_scenario(Scenario(apps=[EmptyResultApp()], scheme=Scheme.BASELINE))


class SlowOffloadApp(IoTApp):
    """Light enough to pass the static check, but declared window-hostile."""

    def __init__(self):
        super().__init__(
            AppProfile(
                table2_id="AY",
                name="slowpoke",
                title="Slowpoke",
                category="test",
                user_task="spin",
                sensor_ids=("S4",),
                mips=5000.0,  # ~53 s on the MCU: fails the QoS criterion
                heap_bytes=1024,
                stack_bytes=256,
            )
        )

    def compute(self, window):  # pragma: no cover - never offloaded
        return self.make_result(window, {"ok": True})


def test_com_rejects_window_hostile_app():
    with pytest.raises(OffloadError) as excinfo:
        run_scenario(Scenario(apps=[SlowOffloadApp()], scheme=Scheme.COM))
    assert "QoS" in str(excinfo.value)


def test_qos_violation_error_type_exists():
    # The public error taxonomy stays stable for downstream users.
    assert issubclass(QoSViolation, Exception)
    assert issubclass(CapacityError, Exception)
