"""Per-rule fixtures for ``repro lint``: known-bad code is flagged,
known-good code is not, and path scoping gates the scoped families."""

import textwrap

import pytest

from repro.analysis import lint_source

#: Paths that put fixtures inside / outside the scoped directories.
SIM_PATH = "src/repro/sim/fixture.py"
SCHEME_PATH = "src/repro/core/schemes/fixture.py"
NEUTRAL_PATH = "src/repro/hubos/fixture.py"


def rule_ids(source, path=NEUTRAL_PATH, **kwargs):
    # Fixtures are bare snippets; the module-docstring rule has its own
    # test class below and would otherwise fire on every one of them.
    kwargs.setdefault("ignore", ["docs-missing-module-docstring"])
    return [
        finding.rule_id
        for finding in lint_source(textwrap.dedent(source), path, **kwargs)
    ]


# ----------------------------------------------------------------------
# units-discipline
# ----------------------------------------------------------------------
class TestUnitsMagicLiteral:
    @pytest.mark.parametrize(
        "snippet",
        [
            "x = duration_s * 1e3",
            "x = 1e3 * duration_s",
            "x = interval_us * 1e-6",
            "x = result.total_j * 1e3",
            "x = obj.deadline_s * 1000",
            "x = now / 1e-3",
            "x = profile.cpu_compute_time_s(cal) * 1e3",
            "x = mcu_time * 1e3",
        ],
    )
    def test_flags_inline_scale_arithmetic(self, snippet):
        assert rule_ids(snippet) == ["units-magic-literal"]

    def test_flags_magic_seconds_literal(self):
        assert rule_ids("timeout_s = 0.0016") == ["units-magic-literal"]
        assert rule_ids("f(window_s=0.05)") == ["units-magic-literal"]

    @pytest.mark.parametrize(
        "snippet",
        [
            "x = to_ms(duration_s)",
            "timeout_s = ms(1.6)",
            "window_s = 1.0",
            "x = mips * 1e6",  # rate scaling, not a time/energy unit
            "ok = value > 1e-9",  # tolerance comparison
            "x = 1e-3 / duration_s",  # not a conversion
            "eps = 1e-12 * max(1.0, abs(mean))",
        ],
    )
    def test_clean_code_passes(self, snippet):
        assert rule_ids(snippet) == []

    def test_suggests_the_right_helper(self):
        doc = '"""Doc."""\n'
        findings = lint_source(doc + "x = interval_us * 1e-6", NEUTRAL_PATH)
        assert "units.us()" in findings[0].message
        findings = lint_source(doc + "x = total_j * 1e3", NEUTRAL_PATH)
        assert "units.to_mj()" in findings[0].message


class TestUnitsFloatEq:
    def test_flags_exact_equality_on_quantities(self):
        assert rule_ids("ok = start_s == end_s") == ["units-float-eq"]
        assert rule_ids("ok = a.energy_j != b.energy_j") == [
            "units-float-eq"
        ]

    def test_nan_guard_idiom_is_allowed(self):
        assert rule_ids("bad = time != time") == []

    def test_ordering_comparisons_are_allowed(self):
        assert rule_ids("ok = start_s <= end_s") == []


# ----------------------------------------------------------------------
# determinism (scoped to sim/, hw/, core/schemes/)
# ----------------------------------------------------------------------
class TestDeterminism:
    @pytest.mark.parametrize(
        "snippet,rule",
        [
            ("import time\nt = time.time()", "det-wallclock"),
            ("import time\nt = time.perf_counter()", "det-wallclock"),
            (
                "from time import perf_counter\nt = perf_counter()",
                "det-wallclock",
            ),
            (
                "from datetime import datetime\nt = datetime.now()",
                "det-wallclock",
            ),
            ("import random\nx = random.random()", "det-unseeded-random"),
            ("import random\nr = random.Random()", "det-unseeded-random"),
            (
                "import numpy as np\nrng = np.random.default_rng()",
                "det-unseeded-random",
            ),
            (
                "import numpy as np\nx = np.random.rand(3)",
                "det-unseeded-random",
            ),
            ("import uuid\nx = uuid.uuid4()", "det-unseeded-random"),
            ("for x in {1, 2, 3}:\n    pass", "det-set-order"),
            ("xs = list(set(items))", "det-set-order"),
            ("xs = [y for y in set(items)]", "det-set-order"),
            ("s = ', '.join({str(x) for x in items})", "det-set-order"),
        ],
    )
    def test_flags_inside_sim(self, snippet, rule):
        assert rule in rule_ids(snippet, path=SIM_PATH)

    @pytest.mark.parametrize(
        "snippet",
        [
            "import random\nr = random.Random(7)",
            "import numpy as np\nrng = np.random.default_rng(42)",
            "xs = sorted(set(items))",
            "ok = 3 in {1, 2, 3}",  # membership, not iteration
            "n = len(set(items))",
        ],
    )
    def test_clean_inside_sim(self, snippet):
        assert rule_ids(snippet, path=SIM_PATH) == []

    def test_not_scoped_outside_simulation_dirs(self):
        snippet = "import time\nt = time.perf_counter()"
        assert rule_ids(snippet, path=NEUTRAL_PATH) == []
        assert "det-wallclock" in rule_ids(
            snippet, path="src/repro/hw/fixture.py"
        )
        assert "det-wallclock" in rule_ids(snippet, path=SCHEME_PATH)


# ----------------------------------------------------------------------
# error-surface
# ----------------------------------------------------------------------
class TestErrorSurface:
    @pytest.mark.parametrize(
        "snippet",
        [
            "raise KeyError('missing')",
            "raise RuntimeError('boom')",
            "raise Exception('anything')",
            "raise OSError(2, 'no such file')",
        ],
    )
    def test_flags_runtime_builtins(self, snippet):
        assert rule_ids(snippet) == ["err-raise-foreign"]

    @pytest.mark.parametrize(
        "snippet",
        [
            "raise WorkloadError('inconsistent scenario')",
            "raise ValueError('bad argument')",  # programming error
            "raise NotImplementedError",
            "raise AssertionError('unreachable')",
        ],
    )
    def test_repro_and_programming_errors_pass(self, snippet):
        assert rule_ids(snippet) == []

    def test_flags_swallowing_broad_except(self):
        bad = """
        try:
            risky()
        except Exception:
            pass
        """
        assert rule_ids(bad) == ["err-swallowed-exception"]
        bare = """
        try:
            risky()
        except:
            log()
        """
        assert rule_ids(bare) == ["err-swallowed-exception"]

    def test_broad_except_that_reraises_is_allowed(self):
        wrap = """
        try:
            risky()
        except Exception as exc:
            raise WorkloadError(str(exc)) from exc
        """
        assert rule_ids(wrap) == []
        cleanup = """
        try:
            risky()
        except BaseException:
            undo()
            raise
        """
        assert rule_ids(cleanup) == []

    def test_narrow_except_is_allowed(self):
        ok = """
        try:
            risky()
        except (OSError, EOFError):
            pass
        """
        assert rule_ids(ok) == []


# ----------------------------------------------------------------------
# scheme-contract (scoped to core/schemes/ plugin modules)
# ----------------------------------------------------------------------
GOOD_SCHEME = """
from .base import SchemeContext, SchemeExecutor
from .registry import register_scheme


@register_scheme("myscheme")
class MyScheme(SchemeExecutor):
    \"\"\"A well-behaved plugin.\"\"\"

    cpu_starts_awake = True

    def build(self, ctx):
        \"\"\"Configure the context.\"\"\"
        ctx.policy = make_policy()
        ctx.allow_deep = False
        ctx.total_irqs = 7
        ctx.offload_reports["app"] = None  # container mutation is fine
"""


class TestSchemeContract:
    def test_good_plugin_module_passes(self):
        assert rule_ids(GOOD_SCHEME, path=SCHEME_PATH) == []

    def test_module_without_registration_is_flagged(self):
        src = "def helper():\n    \"\"\"Docstring.\"\"\"\n    return 1"
        assert rule_ids(src, path=SCHEME_PATH) == ["scheme-one-per-module"]

    def test_second_registration_is_flagged(self):
        src = GOOD_SCHEME + textwrap.dedent(
            """
            @register_scheme("another")
            class Another(SchemeExecutor):
                def build(self, ctx):
                    pass
            """
        )
        assert "scheme-one-per-module" in rule_ids(src, path=SCHEME_PATH)

    def test_missing_build_is_flagged(self):
        src = """
        @register_scheme("broken")
        class Broken(SchemeExecutor):
            cpu_starts_awake = True
        """
        assert "scheme-missing-build" in rule_ids(src, path=SCHEME_PATH)

    def test_build_inherited_from_concrete_scheme_is_allowed(self):
        src = """
        @register_scheme("shared")
        class Shared(BaselineScheme):
            \"\"\"Inherits build() from baseline.\"\"\"

            cpu_starts_awake = False
        """
        assert rule_ids(src, path=SCHEME_PATH) == []

    def test_unregistered_base_class_is_flagged(self):
        src = """
        @register_scheme("floating")
        class Floating:
            def build(self, ctx):
                pass
        """
        assert "scheme-missing-build" in rule_ids(src, path=SCHEME_PATH)

    def test_knob_typo_is_flagged(self):
        src = GOOD_SCHEME.replace("cpu_starts_awake", "cpu_start_awake")
        findings = lint_source(
            '"""Doc."""\n' + textwrap.dedent(src), SCHEME_PATH
        )
        assert [f.rule_id for f in findings] == ["scheme-unknown-knob"]
        assert "cpu_start_awake" in findings[0].message

    def test_ctx_rebind_is_flagged(self):
        src = GOOD_SCHEME + textwrap.dedent(
            """
            def sneaky(ctx):
                \"\"\"Rebinds shared state (bad).\"\"\"
                ctx.hub = None
            """
        )
        findings = lint_source(
            '"""Doc."""\n' + textwrap.dedent(src), SCHEME_PATH
        )
        assert [f.rule_id for f in findings] == ["scheme-ctx-rebind"]
        assert "ctx.hub" in findings[0].message

    def test_plumbing_modules_are_exempt(self):
        src = "def helper():\n    \"\"\"Docstring.\"\"\"\n    return 1"
        for name in ("base.py", "registry.py", "__init__.py"):
            path = f"src/repro/core/schemes/{name}"
            assert rule_ids(src, path=path) == []

    def test_not_scoped_outside_schemes(self):
        src = "def helper():\n    \"\"\"Docstring.\"\"\"\n    return 1"
        assert rule_ids(src, path=NEUTRAL_PATH) == []


# ----------------------------------------------------------------------
# backend-contract (scoped to core/backends/ modules)
# ----------------------------------------------------------------------
BACKEND_PATH = "src/repro/core/backends/fixture.py"

GOOD_BACKEND = '''
from .base import ExecutionBackend, run_chunk
from .registry import register_backend


@register_backend("twin")
class TwinBackend(ExecutionBackend):
    """A well-behaved backend plugin."""

    def submit_batch(self, fn, items, chunk_size=None, labels=None):
        """Run everything inline."""
        return run_chunk(fn, list(items), 0, labels)
'''


class TestBackendContract:
    def test_good_plugin_module_passes(self):
        assert rule_ids(GOOD_BACKEND, path=BACKEND_PATH) == []

    def test_module_without_registration_is_flagged(self):
        src = "def helper():\n    \"\"\"Docstring.\"\"\"\n    return 1"
        assert rule_ids(src, path=BACKEND_PATH) == ["backend-one-per-module"]

    def test_second_registration_is_flagged(self):
        src = GOOD_BACKEND + textwrap.dedent(
            """
            @register_backend("another")
            class Another(TwinBackend):
                \"\"\"A second registration in the same file.\"\"\"
            """
        )
        assert "backend-one-per-module" in rule_ids(src, path=BACKEND_PATH)

    def test_missing_submit_batch_is_flagged(self):
        src = """
        @register_backend("broken")
        class Broken(ExecutionBackend):
            \"\"\"Forgets the one required hook.\"\"\"

            parallel = False
        """
        assert "backend-missing-submit" in rule_ids(src, path=BACKEND_PATH)

    def test_submit_inherited_from_concrete_backend_is_allowed(self):
        src = """
        @register_backend("shared")
        class Shared(SerialBackend):
            \"\"\"Inherits submit_batch() from the serial backend.\"\"\"

            parallel = False
        """
        assert rule_ids(src, path=BACKEND_PATH) == []

    def test_unregistered_base_class_is_flagged(self):
        src = """
        @register_backend("floating")
        class Floating:
            \"\"\"Subclasses nothing.\"\"\"

            def submit_batch(self, fn, items, chunk_size=None, labels=None):
                \"\"\"Inline.\"\"\"
                return []
        """
        assert "backend-missing-submit" in rule_ids(src, path=BACKEND_PATH)

    def test_bare_except_is_flagged_even_in_plumbing(self):
        src = """
        try:
            recv()
        except:
            raise
        """
        path = "src/repro/core/backends/base.py"
        assert rule_ids(src, path=path) == ["backend-bare-except"]

    def test_named_except_passes(self):
        src = """
        try:
            recv()
        except (OSError, EOFError):
            raise
        """
        path = "src/repro/core/backends/base.py"
        assert rule_ids(src, path=path) == []

    def test_not_scoped_outside_backends(self):
        src = """
        try:
            recv()
        except:
            raise
        """
        assert rule_ids(src, path=NEUTRAL_PATH) == []


# ----------------------------------------------------------------------
# docs (scoped to anything under a repro/ directory)
# ----------------------------------------------------------------------
class TestDocsMissingDocstring:
    def test_flags_public_function_without_docstring(self):
        findings = lint_source(
            '"""Doc."""\ndef helper():\n    return 1', NEUTRAL_PATH
        )
        assert [f.rule_id for f in findings] == ["docs-missing-docstring"]
        assert "'helper'" in findings[0].message

    def test_flags_public_class_and_method(self):
        src = '''
        """Doc."""
        class Widget:
            def spin(self):
                return 1
        '''
        findings = lint_source(textwrap.dedent(src), NEUTRAL_PATH)
        messages = [f.message for f in findings]
        assert len(findings) == 2
        assert any("class 'Widget'" in m for m in messages)
        assert any("'Widget.spin'" in m for m in messages)

    def test_documented_code_passes(self):
        src = '''
        class Widget:
            """A documented class."""

            def spin(self):
                """A documented method."""
                return 1


        def helper():
            """A documented function."""
            return 1
        '''
        assert rule_ids(src) == []

    def test_private_names_are_exempt(self):
        src = """
        def _internal():
            return 1


        class _Hidden:
            def also_hidden(self):
                return 1
        """
        assert rule_ids(src) == []

    def test_property_setter_is_exempt(self):
        src = '''
        class Widget:
            """Documented."""

            @property
            def size(self):
                """The getter carries the doc."""
                return self._size

            @size.setter
            def size(self, value):
                self._size = value
        '''
        assert rule_ids(src) == []

    def test_nested_functions_are_exempt(self):
        src = '''
        def outer():
            """Documented."""
            def inner():
                return 1
            return inner
        '''
        assert rule_ids(src) == []

    def test_suppression_comment_is_honored(self):
        src = "def helper():  # repro-lint: disable=docs-missing-docstring\n"
        src += "    return 1"
        assert rule_ids(src) == []

    def test_not_scoped_outside_repro(self):
        assert rule_ids("def helper():\n    return 1", path="tools/x.py") == []


class TestDocsMissingModuleDocstring:
    def module_ids(self, source, path=NEUTRAL_PATH):
        return rule_ids(source, path=path, ignore=())

    def test_flags_public_module_without_docstring(self):
        findings = lint_source("x = 1\n", NEUTRAL_PATH)
        assert [f.rule_id for f in findings] == [
            "docs-missing-module-docstring"
        ]
        assert "fixture.py" in findings[0].message

    def test_documented_module_passes(self):
        assert self.module_ids('"""Doc."""\nx = 1\n') == []

    def test_package_init_is_covered(self):
        path = "src/repro/serve/__init__.py"
        assert self.module_ids("x = 1\n", path=path) == [
            "docs-missing-module-docstring"
        ]

    def test_private_module_is_exempt(self):
        path = "src/repro/hubos/_internal.py"
        assert self.module_ids("x = 1\n", path=path) == []

    def test_not_scoped_outside_repro(self):
        assert self.module_ids("x = 1\n", path="tools/x.py") == []
