"""Unit tests for power-state machines and hardware models."""

import pytest

from repro.calibration import default_calibration
from repro.errors import CapacityError, HardwareError, PowerStateError
from repro.hw import Cpu, CpuState, Mcu, McuState, MemoryRegion, Routine
from repro.hw.power import PowerStateMachine
from repro.sim import Simulator
from repro.sim.trace import TimelineRecorder


@pytest.fixture
def rig():
    sim = Simulator()
    recorder = TimelineRecorder()
    return sim, recorder


def test_psm_records_initial_state(rig):
    sim, recorder = rig
    PowerStateMachine(
        sim, recorder, "widget", {"on": 1.0, "off": 0.0}, initial_state="off"
    )
    changes = recorder.changes("widget")
    assert len(changes) == 1
    assert changes[0].state == "off"
    assert changes[0].power_w == 0.0


def test_psm_rejects_unknown_state(rig):
    sim, recorder = rig
    psm = PowerStateMachine(
        sim, recorder, "widget", {"on": 1.0}, initial_state="on"
    )
    with pytest.raises(PowerStateError):
        psm.set_state("warp")
    with pytest.raises(PowerStateError):
        PowerStateMachine(sim, recorder, "w2", {"on": 1.0}, initial_state="off")


def test_psm_rejects_unknown_routine(rig):
    sim, recorder = rig
    psm = PowerStateMachine(
        sim, recorder, "widget", {"on": 1.0}, initial_state="on"
    )
    with pytest.raises(PowerStateError):
        psm.set_state("on", routine="partying")


def test_cpu_break_even_matches_paper():
    cal = default_calibration().cpu
    assert cal.wake_energy_j == pytest.approx(4e-3, rel=0.01)
    assert cal.break_even_time_s == pytest.approx(1.14e-3, rel=0.01)


def test_cpu_execute_times_and_energy(rig):
    sim, recorder = rig
    cpu = Cpu(sim, recorder, default_calibration().cpu, CpuState.IDLE)

    def job():
        yield from cpu.execute(0.010, Routine.APP_COMPUTE)

    sim.spawn(job())
    sim.run()
    busy = recorder.time_in_state("cpu", CpuState.BUSY, sim.now)
    assert busy == pytest.approx(0.010)
    assert cpu.psm.state == CpuState.IDLE


def test_cpu_execute_while_asleep_raises(rig):
    sim, recorder = rig
    cpu = Cpu(sim, recorder, default_calibration().cpu, CpuState.SLEEP)

    def job():
        yield from cpu.execute(0.001, Routine.APP_COMPUTE)

    sim.spawn(job())
    with pytest.raises(HardwareError):
        sim.run()


def test_cpu_wake_costs_transition(rig):
    sim, recorder = rig
    cal = default_calibration().cpu
    cpu = Cpu(sim, recorder, cal, CpuState.SLEEP)

    def job():
        yield from cpu.wake(Routine.INTERRUPT)

    sim.spawn(job())
    sim.run()
    assert sim.now == pytest.approx(cal.transition_time_s)
    assert cpu.psm.state == CpuState.IDLE
    assert cpu.wake_count == 1


def test_cpu_wake_when_awake_is_noop(rig):
    sim, recorder = rig
    cpu = Cpu(sim, recorder, default_calibration().cpu, CpuState.IDLE)

    def job():
        yield from cpu.wake(Routine.INTERRUPT)

    sim.spawn(job())
    sim.run()
    assert sim.now == 0.0
    assert cpu.wake_count == 0


def test_cpu_cannot_sleep_while_busy(rig):
    sim, recorder = rig
    cpu = Cpu(sim, recorder, default_calibration().cpu, CpuState.IDLE)
    cpu.psm.set_state(CpuState.BUSY)
    with pytest.raises(HardwareError):
        cpu.enter_sleep(deep=False, routine=Routine.IDLE)


def test_cpu_compute_time_from_instructions():
    sim = Simulator()
    cpu = Cpu(sim, TimelineRecorder(), default_calibration().cpu, CpuState.IDLE)
    # 24,000 MIPS -> 24e9 instructions per second.
    assert cpu.compute_time(24e9) == pytest.approx(1.0)
    with pytest.raises(HardwareError):
        cpu.compute_time(-1)


def test_mcu_is_19x_slower_than_cpu():
    cal = default_calibration()
    ratio = cal.cpu.mips / cal.mcu.mips
    assert ratio == pytest.approx(19.0)


def test_mcu_execute(rig):
    sim, recorder = rig
    mcu = Mcu(sim, recorder, default_calibration().mcu, McuState.IDLE)

    def job():
        yield from mcu.execute(0.005, Routine.DATA_COLLECTION)

    sim.spawn(job())
    sim.run()
    assert recorder.time_in_state("mcu", McuState.BUSY, sim.now) == pytest.approx(
        0.005
    )


def test_memory_region_accounting():
    region = MemoryRegion("ram", 100)
    region.allocate("a", 40)
    region.allocate("b", 30)
    assert region.used_bytes == 70
    assert region.free_bytes == 30
    assert not region.would_fit(31)
    assert region.would_fit(30)
    with pytest.raises(CapacityError):
        region.allocate("c", 31)
    assert region.free("a") == 40
    assert region.used_bytes == 30
    assert region.peak_bytes == 70
    assert region.free("missing") == 0


def test_memory_region_label_accumulates():
    region = MemoryRegion("ram", 100)
    region.allocate("buf", 10)
    region.allocate("buf", 15)
    assert region.usage() == {"buf": 25}


def test_memory_region_rejects_bad_capacity():
    with pytest.raises(CapacityError):
        MemoryRegion("ram", 0)
