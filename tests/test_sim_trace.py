"""Unit tests for the timeline recorder."""

import pytest

from repro.sim.trace import StateChange, TimelineRecorder


def change(time, component="cpu", state="busy", power=5.0, routine="idle"):
    return StateChange(
        time=time, component=component, state=state, power_w=power, routine=routine
    )


def test_intervals_close_at_end_time():
    recorder = TimelineRecorder()
    recorder.record(change(0.0, state="idle", power=2.5))
    recorder.record(change(1.0, state="busy", power=5.0))
    intervals = list(recorder.intervals("cpu", end_time=3.0))
    assert [(c.state, d) for c, d in intervals] == [("idle", 1.0), ("busy", 2.0)]


def test_zero_length_intervals_skipped():
    recorder = TimelineRecorder()
    recorder.record(change(0.0, state="idle"))
    recorder.record(change(1.0, state="busy"))
    recorder.record(change(1.0, state="sleep", power=1.5))
    intervals = list(recorder.intervals("cpu", end_time=2.0))
    assert [c.state for c, _ in intervals] == ["idle", "sleep"]


def test_out_of_order_record_rejected():
    recorder = TimelineRecorder()
    recorder.record(change(2.0))
    with pytest.raises(ValueError):
        recorder.record(change(1.0))


def test_state_at_returns_latest_change():
    recorder = TimelineRecorder()
    recorder.record(change(0.0, state="sleep"))
    recorder.record(change(5.0, state="busy"))
    assert recorder.state_at("cpu", 2.0).state == "sleep"
    assert recorder.state_at("cpu", 5.0).state == "busy"
    assert recorder.state_at("cpu", 9.0).state == "busy"
    assert recorder.state_at("mcu", 1.0) is None


def test_time_in_state():
    recorder = TimelineRecorder()
    recorder.record(change(0.0, state="sleep"))
    recorder.record(change(4.0, state="busy"))
    recorder.record(change(6.0, state="sleep"))
    assert recorder.time_in_state("cpu", "sleep", end_time=10.0) == pytest.approx(8.0)
    assert recorder.time_in_state("cpu", "busy", end_time=10.0) == pytest.approx(2.0)


def test_components_sorted():
    recorder = TimelineRecorder()
    recorder.record(change(0.0, component="mcu"))
    recorder.record(change(0.0, component="cpu"))
    assert recorder.components == ("cpu", "mcu")


def test_render_ascii_strip():
    recorder = TimelineRecorder()
    recorder.record(change(0.0, state="sleep"))
    recorder.record(change(0.5, state="busy"))
    strip = recorder.render_ascii(
        "cpu", end_time=1.0, width=10, state_chars={"sleep": ".", "busy": "#"}
    )
    assert strip == "....." + "#####"
