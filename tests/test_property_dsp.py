"""Property-based tests for the DSP substrate (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.dsp import (
    dct2,
    dtw_distance,
    fir_filter,
    idct2,
    magnitude,
    moving_average,
    normalize,
    rr_intervals,
    sta_lta,
    zigzag_order,
)

finite = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False
)


@given(arrays(np.float64, (8, 8), elements=finite))
def test_dct_roundtrip_any_block(block):
    assert np.allclose(idct2(dct2(block)), block, atol=1e-8)


@given(arrays(np.float64, (8, 8), elements=finite))
def test_dct_preserves_energy(block):
    """Orthonormal transform: Parseval's identity holds."""
    coeffs = dct2(block)
    assert np.sum(coeffs**2) == np.float64(0).__class__(
        np.sum(coeffs**2)
    )  # finite
    assert np.isclose(np.sum(coeffs**2), np.sum(block**2), rtol=1e-9)


@given(arrays(np.float64, (8, 8), elements=finite))
def test_zigzag_is_a_permutation(block):
    flat = zigzag_order(block)
    assert sorted(flat.tolist()) == sorted(block.flatten().tolist())


@given(
    arrays(np.float64, st.integers(4, 64), elements=finite),
    st.integers(1, 10),
)
def test_moving_average_stays_within_range(signal, window):
    smoothed = moving_average(signal, window)
    assert len(smoothed) == len(signal)
    assert smoothed.min() >= signal.min() - 1e-9
    assert smoothed.max() <= signal.max() + 1e-9


@given(arrays(np.float64, st.integers(2, 64), elements=finite))
def test_normalize_properties(signal):
    result = normalize(signal)
    if signal.std() <= 1e-12 * max(1.0, abs(signal.mean())):
        assert np.allclose(result, 0.0)
    else:
        assert abs(result.mean()) < 1e-6
        assert abs(result.std() - 1.0) < 1e-6


@given(arrays(np.float64, st.integers(1, 32), elements=finite))
def test_fir_identity_preserves_signal(signal):
    assert np.allclose(fir_filter(signal, np.array([1.0])), signal)


@given(arrays(np.float64, (5, 3), elements=finite))
def test_magnitude_nonnegative(vectors):
    assert (magnitude(vectors) >= 0).all()


@given(
    st.lists(st.integers(0, 10_000), min_size=2, max_size=30, unique=True),
    st.floats(min_value=1.0, max_value=10_000.0),
)
def test_rr_intervals_positive_for_sorted_peaks(peaks, rate):
    intervals = rr_intervals(sorted(peaks), rate)
    assert (intervals > 0).all()
    assert len(intervals) == len(peaks) - 1


@given(
    arrays(
        np.float64,
        st.integers(50, 200),
        elements=st.floats(min_value=0.01, max_value=100.0),
    )
)
def test_sta_lta_warmup_is_one(signal):
    ratio = sta_lta(signal, short_window=5, long_window=20)
    assert np.allclose(ratio[:20], 1.0)
    assert (ratio >= 0).all()


@settings(deadline=None)
@given(
    arrays(np.float64, st.tuples(st.integers(2, 12), st.just(3)), elements=finite),
    arrays(np.float64, st.tuples(st.integers(2, 12), st.just(3)), elements=finite),
)
def test_dtw_symmetry_and_identity(seq_a, seq_b):
    assert dtw_distance(seq_a, seq_a) < 1e-9
    forward = dtw_distance(seq_a, seq_b)
    backward = dtw_distance(seq_b, seq_a)
    assert np.isclose(forward, backward, rtol=1e-9)
    assert forward >= 0
