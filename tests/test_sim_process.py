"""Unit tests for processes, signals and joins."""

import pytest

from repro.errors import SimulationError
from repro.sim import Delay, Join, Signal, Simulator, Wait


def test_signal_delivers_payload():
    sim = Simulator()
    received = []
    gate = Signal("gate")

    def waiter():
        payload = yield Wait(gate)
        received.append((sim.now, payload))

    def firer():
        yield Delay(2.0)
        gate.fire("hello")

    sim.spawn(waiter())
    sim.spawn(firer())
    sim.run()
    assert received == [(2.0, "hello")]


def test_signal_wakes_all_waiters():
    sim = Simulator()
    woken = []
    gate = Signal()

    def waiter(tag):
        yield Wait(gate)
        woken.append(tag)

    for tag in range(3):
        sim.spawn(waiter(tag))

    def firer():
        yield Delay(1.0)
        count = gate.fire()
        woken.append(("count", count))

    sim.spawn(firer())
    sim.run()
    assert set(woken) == {0, 1, 2, ("count", 3)}


def test_fire_before_wait_is_not_remembered():
    sim = Simulator()
    gate = Signal()
    gate.fire("lost")
    state = {"woken": False}

    def waiter():
        yield Wait(gate)
        state["woken"] = True

    sim.spawn(waiter())
    sim.run(until=5.0)
    assert not state["woken"]


def test_join_waits_for_result():
    sim = Simulator()
    results = []

    def worker():
        yield Delay(3.0)
        return 42

    def parent():
        child = sim.spawn(worker())
        value = yield Join(child)
        results.append((sim.now, value))

    sim.spawn(parent())
    sim.run()
    assert results == [(3.0, 42)]


def test_join_on_finished_process_returns_immediately():
    sim = Simulator()
    results = []

    def worker():
        yield Delay(1.0)
        return "early"

    worker_proc = sim.spawn(worker())

    def late_parent():
        yield Delay(5.0)
        value = yield Join(worker_proc)
        results.append((sim.now, value))

    sim.spawn(late_parent())
    sim.run()
    assert results == [(5.0, "early")]


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Delay(-1.0)


def test_unsupported_yield_raises():
    sim = Simulator()

    def bad():
        yield "what is this"

    sim.spawn(bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_interrupt_cancels_waiting_process():
    sim = Simulator()
    gate = Signal()
    log = []

    def waiter():
        yield Wait(gate)
        log.append("should not happen")

    process = sim.spawn(waiter())

    def killer():
        yield Delay(1.0)
        process.interrupt()

    sim.spawn(killer())
    sim.run()
    assert process.finished
    assert log == []
    assert gate.fire() == 0  # waiter was removed from the signal


def test_process_finish_time_recorded():
    sim = Simulator()

    def worker():
        yield Delay(2.5)

    process = sim.spawn(worker())
    sim.run()
    assert process.finish_time == 2.5
