"""Framework-level behavior of ``repro lint``: suppression comments,
rule selection, reporters, CLI plumbing — and the meta-test pinning the
shipped tree lint-clean."""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    JSON_SCHEMA_VERSION,
    LintConfigError,
    Severity,
    all_rules,
    exit_code,
    lint_paths,
    lint_source,
    render_json,
    render_text,
    resolve_rules,
)
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent

BAD_UNITS = "x = duration_s * 1e3\n"


# ----------------------------------------------------------------------
# suppression comments
# ----------------------------------------------------------------------
class TestSuppression:
    def test_rule_id_suppresses_the_line(self):
        src = "x = duration_s * 1e3  # repro-lint: disable=units-magic-literal\n"
        assert lint_source(src) == []

    def test_family_token_suppresses(self):
        src = "x = duration_s * 1e3  # repro-lint: disable=units\n"
        assert lint_source(src) == []

    def test_all_token_suppresses(self):
        src = "raise KeyError('x')  # repro-lint: disable=all\n"
        assert lint_source(src) == []

    def test_unrelated_token_does_not_suppress(self):
        src = "x = duration_s * 1e3  # repro-lint: disable=det-wallclock\n"
        assert [f.rule_id for f in lint_source(src)] == [
            "units-magic-literal"
        ]

    def test_suppression_is_per_line(self):
        src = (
            "a = duration_s * 1e3  # repro-lint: disable=units\n"
            "b = duration_s * 1e3\n"
        )
        findings = lint_source(src)
        assert [(f.rule_id, f.line) for f in findings] == [
            ("units-magic-literal", 2)
        ]

    def test_multiple_tokens(self):
        src = (
            "raise KeyError(str(duration_s * 1e3))"
            "  # repro-lint: disable=units-magic-literal,err-raise-foreign\n"
        )
        assert lint_source(src) == []


# ----------------------------------------------------------------------
# rule selection
# ----------------------------------------------------------------------
class TestSelection:
    def test_select_restricts_to_family(self):
        src = "raise KeyError(str(duration_s * 1e3))\n"
        findings = lint_source(src, select=["err"])
        assert [f.rule_id for f in findings] == ["err-raise-foreign"]

    def test_ignore_drops_a_rule(self):
        findings = lint_source(BAD_UNITS, ignore=["units-magic-literal"])
        assert findings == []

    def test_unknown_token_raises(self):
        with pytest.raises(LintConfigError):
            resolve_rules(select=["no-such-rule"])

    def test_every_family_has_rules(self):
        families = {cls().family for cls in all_rules().values()}
        assert {"units", "det", "err", "scheme"} <= families


# ----------------------------------------------------------------------
# reporters
# ----------------------------------------------------------------------
class TestReporters:
    def test_text_report_rows_and_summary(self):
        findings = lint_source(BAD_UNITS, path="pkg/mod.py")
        text = render_text(findings, files_checked=1)
        assert "pkg/mod.py:1:5: units-magic-literal [error]" in text
        assert "1 file checked: 1 error(s), 0 warning(s)" in text

    def test_json_schema(self):
        findings = lint_source(BAD_UNITS, path="pkg/mod.py")
        payload = json.loads(render_json(findings, files_checked=3))
        assert payload["version"] == JSON_SCHEMA_VERSION
        assert payload["files_checked"] == 3
        assert payload["counts"] == {"units-magic-literal": 1}
        (finding,) = payload["findings"]
        assert finding["path"] == "pkg/mod.py"
        assert finding["line"] == 1
        assert finding["col"] == 5
        assert finding["rule"] == "units-magic-literal"
        assert finding["severity"] == "error"
        assert "units.to_ms()" in finding["message"]

    def test_exit_code_semantics(self):
        findings = lint_source(BAD_UNITS)
        assert exit_code(findings) == 1
        assert exit_code([]) == 0
        assert all(f.severity is Severity.ERROR for f in findings)

    def test_parse_error_is_a_finding(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        findings = lint_paths([str(bad)])
        assert [f.rule_id for f in findings] == ["parse-error"]
        assert exit_code(findings) == 1


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestLintCli:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert main(["lint", str(clean)]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text(BAD_UNITS)
        assert main(["lint", str(dirty)]) == 1
        assert "units-magic-literal" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text(BAD_UNITS)
        assert main(["lint", str(dirty), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"] == {"units-magic-literal": 1}

    def test_select_and_ignore(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text(BAD_UNITS)
        assert main(["lint", str(dirty), "--select", "err"]) == 0
        assert (
            main(["lint", str(dirty), "--ignore", "units-magic-literal"])
            == 0
        )
        capsys.readouterr()

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert main(["lint", str(clean), "--select", "bogus"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_exits_two(self, capsys):
        assert main(["lint", "definitely/not/here"]) == 2
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in all_rules():
            assert rule_id in out

    def test_directory_walk_skips_pycache(self, tmp_path, capsys):
        package = tmp_path / "pkg"
        (package / "__pycache__").mkdir(parents=True)
        (package / "__pycache__" / "junk.py").write_text(BAD_UNITS)
        (package / "ok.py").write_text("x = 1\n")
        assert main(["lint", str(package)]) == 0
        capsys.readouterr()


# ----------------------------------------------------------------------
# the repo itself
# ----------------------------------------------------------------------
class TestRepoIsClean:
    def test_repro_lint_src_exits_zero(self, capsys):
        """Acceptance: the shipped tree is lint-clean under its own linter."""
        assert main(["lint", str(REPO_ROOT / "src")]) == 0
        capsys.readouterr()

    def test_every_rule_family_fires_somewhere(self):
        """Each family detects a deliberately-injected violation."""
        doc = '"""Doc."""\n'
        injected = {
            "units": (doc + "x = duration_s * 1e3\n", "src/repro/any.py"),
            "det": (
                doc + "import time\nt = time.time()\n",
                "src/repro/sim/any.py",
            ),
            "err": (doc + "raise RuntimeError('x')\n", "src/repro/any.py"),
            "scheme": (
                doc + 'def helper():\n    """Doc."""\n    return 1\n',
                "src/repro/core/schemes/any.py",
            ),
            "docs": ("def helper():\n    return 1\n", "src/repro/any.py"),
        }
        for family, (source, path) in injected.items():
            findings = lint_source(source, path)
            assert findings, f"{family} fixture produced no findings"
            assert all(f.rule_id.startswith(family) for f in findings)
