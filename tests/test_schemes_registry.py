"""Tests for the scheme registry and the plugin protocol."""

import pytest

from repro.core import (
    Scenario,
    Scheme,
    SchemeExecutor,
    register_scheme,
    run_apps,
    run_scenario,
    scheme_names,
)
from repro.core.schemes import get_scheme, iter_schemes, unregister_scheme
from repro.core.schemes.batching import spawn_buffered
from repro.errors import WorkloadError


def test_builtin_schemes_registered_in_paper_order():
    assert scheme_names() == Scheme.ALL


def test_every_builtin_scheme_has_a_docstring_summary():
    for name, cls in iter_schemes():
        assert cls.__doc__, name
        assert cls.__doc__.strip().splitlines()[0], name


def test_get_scheme_unknown_name_lists_known():
    with pytest.raises(WorkloadError, match="registered"):
        get_scheme("warp")


def test_reregistering_same_name_different_class_rejected():
    with pytest.raises(WorkloadError, match="already registered"):

        @register_scheme("baseline")
        class Impostor(SchemeExecutor):
            pass


@pytest.fixture
def one_file_scheme():
    """A new scheme in 'one file': batching with an MCU-buffer twist."""

    @register_scheme("batching-test")
    class BatchingTwin(SchemeExecutor):
        """Test double: identical wiring to batching under a new name."""

        def build(self, ctx):
            spawn_buffered(
                ctx, com_apps=[], batch_apps=list(ctx.scenario.apps)
            )

    yield "batching-test"
    unregister_scheme("batching-test")


def test_plugin_scheme_runs_through_scenario(one_file_scheme):
    """A freshly registered scheme is accepted end to end by name."""
    result = run_scenario(Scenario.of(["A2"], scheme=one_file_scheme))
    assert result.scheme == one_file_scheme
    assert result.results_ok
    # Same wiring as batching -> bit-identical physics.
    reference = run_apps(["A2"], Scheme.BATCHING)
    assert result.energy.total_j == reference.energy.total_j
    assert result.interrupt_count == reference.interrupt_count


def test_unknown_scheme_rejected_at_scenario_creation():
    with pytest.raises(WorkloadError, match="unknown scheme"):
        Scenario.of(["A2"], scheme="batching-test")  # not registered here
