"""Unit tests for Table I sensor specifications."""

import pytest

from repro.errors import SensorError
from repro.sensors import TABLE_I, SensorSpec, get_spec
from repro.units import ms, mw


def test_table_has_all_paper_sensors():
    assert set(TABLE_I) == {
        "S1", "S2", "S3", "S4", "S5", "S6", "S7", "S8", "S9", "S10", "S10H",
    }


def test_accelerometer_matches_paper_row():
    spec = get_spec("S4")
    assert spec.name == "Accelerometer"
    assert spec.bus == "Analog"
    assert spec.read_time_s == pytest.approx(ms(0.5))
    assert spec.typical_power_w == pytest.approx(mw(1.3))
    assert spec.sample_bytes == 12
    assert spec.qos_rate_hz == 1000.0
    assert spec.mcu_friendly


def test_only_highres_image_is_mcu_unfriendly():
    unfriendly = [s for s in TABLE_I.values() if not s.mcu_friendly]
    assert [s.sensor_id for s in unfriendly] == ["S10H"]


def test_on_demand_sensors_have_effective_qos_one():
    assert get_spec("S3").effective_qos_hz == 1.0
    assert get_spec("S10").effective_qos_hz == 1.0


def test_samples_per_window():
    assert get_spec("S4").samples_per_window(1.0) == 1000
    assert get_spec("S1").samples_per_window(1.0) == 10
    assert get_spec("S10").samples_per_window(1.0) == 1
    # Even tiny windows need at least one acquisition.
    assert get_spec("S1").samples_per_window(0.01) == 1


def test_unknown_sensor_rejected():
    with pytest.raises(SensorError):
        get_spec("S99")


def test_spec_validation_power_ordering():
    with pytest.raises(SensorError):
        SensorSpec(
            sensor_id="X", name="bad", bus="I2C", read_time_s=0.001,
            min_power_w=1.0, typical_power_w=0.5, max_power_w=2.0,
            output_type="int", sample_bytes=4, max_rate_hz=10.0,
            qos_rate_hz=1.0,
        )


def test_spec_validation_qos_within_max():
    with pytest.raises(SensorError):
        SensorSpec(
            sensor_id="X", name="bad", bus="I2C", read_time_s=0.001,
            min_power_w=0.1, typical_power_w=0.5, max_power_w=2.0,
            output_type="int", sample_bytes=4, max_rate_hz=10.0,
            qos_rate_hz=100.0,
        )


def test_spec_validation_read_time():
    with pytest.raises(SensorError):
        SensorSpec(
            sensor_id="X", name="bad", bus="I2C", read_time_s=0.0,
            min_power_w=0.1, typical_power_w=0.5, max_power_w=2.0,
            output_type="int", sample_bytes=4, max_rate_hz=10.0,
            qos_rate_hz=1.0,
        )


def test_lowres_frame_matches_paper_size():
    # 23.81 KB in Table II for one A9 frame.
    assert get_spec("S10").sample_bytes == pytest.approx(23.81 * 1024, rel=0.01)
