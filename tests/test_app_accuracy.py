"""Functional accuracy sweeps: the apps' algorithms work across their
operating ranges, not just at one lucky parameter point."""

import numpy as np
import pytest

from repro.apps import create_app
from repro.apps.offline import collect_window
from repro.sensors.accelerometer import SeismicWaveform, WalkingWaveform
from repro.sensors.camera import CameraWaveform, render_scene
from repro.sensors.fingerprint import FingerprintWaveform
from repro.sensors.pulse import EcgWaveform
from repro.sensors.sound import SpokenWordWaveform, VOCABULARY


# ----------------------------------------------------------------------
# step counter: cadence sweep
# ----------------------------------------------------------------------
@pytest.mark.parametrize("cadence", [1.2, 1.5, 1.8, 2.2, 2.6])
def test_stepcounter_accuracy_across_cadences(cadence):
    app = create_app("A2")
    waveform = WalkingWaveform(cadence_hz=cadence)
    total_steps = 0
    windows = 4
    for index in range(windows):
        window = collect_window(
            app, window_index=index, start_s=float(index),
            waveforms={"S4": waveform},
        )
        total_steps += app.compute(window).payload["steps"]
    expected = waveform.expected_steps(float(windows))
    assert total_steps == pytest.approx(expected, abs=2)


@pytest.mark.parametrize("noise", [0.1, 0.25, 0.5])
def test_stepcounter_noise_robustness(noise):
    app = create_app("A2")
    waveform = WalkingWaveform(cadence_hz=2.0, noise_amplitude=noise)
    window = collect_window(app, waveforms={"S4": waveform})
    assert app.compute(window).payload["steps"] == pytest.approx(2, abs=1)


# ----------------------------------------------------------------------
# heartbeat: rate sweep and irregularity threshold
# ----------------------------------------------------------------------
@pytest.mark.parametrize("bpm", [52.0, 64.0, 80.0, 96.0, 110.0])
def test_heartbeat_bpm_accuracy(bpm):
    app = create_app("A8")
    window = collect_window(app, waveforms={"S6": EcgWaveform(heart_rate_bpm=bpm)})
    result = app.compute(window)
    assert result.payload["bpm"] == pytest.approx(bpm, rel=0.12)
    assert not result.payload["irregular"]


@pytest.mark.parametrize(
    "irregularity,expected", [(0.0, False), (0.3, True), (0.45, True)]
)
def test_heartbeat_irregularity_threshold(irregularity, expected):
    app = create_app("A8")
    waveform = EcgWaveform(
        heart_rate_bpm=72.0,
        irregular=irregularity > 0,
        irregularity=irregularity if irregularity > 0 else 0.35,
    )
    window = collect_window(app, waveforms={"S6": waveform})
    assert app.compute(window).payload["irregular"] is expected


# ----------------------------------------------------------------------
# earthquake: amplitude sweep (detection threshold behaviour)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("amplitude,expected", [
    (0.05, False),   # microtremor: below trigger
    (1.5, True),
    (3.0, True),
    (8.0, True),
])
def test_earthquake_amplitude_threshold(amplitude, expected):
    app = create_app("A7")
    quake = SeismicWaveform(
        quake_start_s=0.6, quake_duration_s=0.3, quake_amplitude=amplitude
    )
    window = collect_window(app, waveforms={"S4": quake})
    assert app.compute(window).payload["triggered"] is expected


def test_earthquake_no_false_positives_over_many_quiet_windows():
    app = create_app("A7")
    background = SeismicWaveform()
    for index in range(5):
        window = collect_window(
            app, window_index=index, start_s=float(index),
            waveforms={"S4": background},
        )
        assert not app.compute(window).payload["triggered"]
    assert app.detections == 0


# ----------------------------------------------------------------------
# speech: full-vocabulary recognition and sequences
# ----------------------------------------------------------------------
@pytest.mark.parametrize("word", sorted(VOCABULARY))
def test_speech_every_vocabulary_word(word):
    app = create_app("A11")
    window = collect_window(app, waveforms={"S8": SpokenWordWaveform([word])})
    assert app.compute(window).payload["words"] == [word]


def test_speech_recognizes_word_sequences_across_windows():
    app = create_app("A11")
    speech = SpokenWordWaveform(["open", "stop", "close"])
    heard = []
    for index in range(3):
        window = collect_window(
            app, window_index=index, start_s=float(index),
            waveforms={"S8": speech},
        )
        heard.extend(app.compute(window).payload["words"])
    assert heard == ["open", "stop", "close"]


# ----------------------------------------------------------------------
# fingerprint: population identification
# ----------------------------------------------------------------------
def test_fingerprint_identifies_population_without_confusion():
    app = create_app("A10")
    people = (0, 1, 2, 3, 4)
    reader = FingerprintWaveform(person_ids=people)
    identities = {}
    # First pass enrolls everyone.
    for index, person in enumerate(people):
        window = collect_window(
            app, window_index=index, start_s=float(index),
            waveforms={"S3": reader},
        )
        result = app.compute(window)
        assert result.payload["action"] == "enrolled"
        identities[person] = result.payload["identity"]
    # Second pass must identify each person as themselves.
    for index, person in enumerate(people):
        window = collect_window(
            app, window_index=len(people) + index,
            start_s=float(len(people) + index),
            waveforms={"S3": reader},
        )
        result = app.compute(window)
        assert result.payload["action"] == "identified"
        assert result.payload["identity"] == identities[person]
    assert app.enrolled == len(people)


# ----------------------------------------------------------------------
# JPEG: reconstruction quality across frames
# ----------------------------------------------------------------------
def _psnr(reference, decoded):
    mse = float(np.mean((reference - decoded) ** 2))
    if mse == 0:
        return float("inf")
    return 10.0 * np.log10(255.0**2 / mse)


@pytest.mark.parametrize("frame_index", [0, 1, 2])
def test_jpeg_psnr_across_frames(frame_index):
    from repro.apps.jpegdec import decode_frame_pixels

    camera = CameraWaveform()
    frame = camera.frame_at(float(frame_index))
    decoded = decode_frame_pixels(frame)
    scene = render_scene(camera.shape, frame.frame_id)
    rows, cols = camera.shape
    psnr = _psnr(scene, decoded[:rows, :cols])
    assert psnr > 28.0  # visually faithful for a quantized pipeline
