"""Tests for the scenario engine: fingerprints, disk cache, fan-out."""

import dataclasses
import pickle

import pytest

from repro.calibration import default_calibration
from repro.core import (
    Scenario,
    ScenarioEngine,
    Scheme,
    canonicalize_scenario,
    grid_of,
    run_scenario,
    run_sweep,
    scenario_fingerprint,
)
from repro.errors import OffloadError
from repro.sensors.synthetic import ConstantWaveform


# ----------------------------------------------------------------------
# fingerprinting
# ----------------------------------------------------------------------
def test_fingerprint_deterministic_across_instances():
    a = Scenario.of(["A2", "A4"], scheme=Scheme.BATCHING, windows=2)
    b = Scenario.of(["A2", "A4"], scheme=Scheme.BATCHING, windows=2)
    assert scenario_fingerprint(a) == scenario_fingerprint(b)


@pytest.mark.parametrize(
    "variant",
    [
        lambda: Scenario.of(["A2"], scheme=Scheme.COM),
        lambda: Scenario.of(["A2"], scheme=Scheme.BATCHING, windows=2),
        lambda: Scenario.of(["A2"], scheme=Scheme.BATCHING, batch_size=100),
        lambda: Scenario.of(["A2", "A4"], scheme=Scheme.BATCHING),
        lambda: Scenario.of(
            ["A2"],
            scheme=Scheme.BATCHING,
            calibration=default_calibration().with_cpu(active_power_w=4.0),
        ),
        lambda: Scenario.of(
            ["A2"],
            scheme=Scheme.BATCHING,
            waveforms={"S4": ConstantWaveform(0.5)},
        ),
        lambda: Scenario.of(
            ["A2"], scheme=Scheme.BATCHING, sensor_failure_rates={"S4": 0.1}
        ),
    ],
    ids=[
        "scheme",
        "windows",
        "batch_size",
        "apps",
        "calibration",
        "waveform",
        "failure_rate",
    ],
)
def test_fingerprint_sensitive_to_every_simulation_input(variant):
    base = scenario_fingerprint(Scenario.of(["A2"], scheme=Scheme.BATCHING))
    assert scenario_fingerprint(variant()) != base


def test_fingerprint_equal_waveform_params_collide():
    a = Scenario.of(
        ["A2"], scheme=Scheme.BATCHING, waveforms={"S4": ConstantWaveform(0.5)}
    )
    b = Scenario.of(
        ["A2"], scheme=Scheme.BATCHING, waveforms={"S4": ConstantWaveform(0.5)}
    )
    assert scenario_fingerprint(a) == scenario_fingerprint(b)


def test_fingerprint_ignores_presentational_name():
    a = Scenario.of(["A2"], scheme=Scheme.BATCHING)
    b = dataclasses.replace(a, name="my-study")
    assert scenario_fingerprint(a) == scenario_fingerprint(b)


def test_fingerprint_canonicalizes_app_permutations():
    fwd = Scenario.of(["A4", "A5"], scheme=Scheme.BEAM)
    rev = Scenario.of(["A5", "A4"], scheme=Scheme.BEAM)
    assert scenario_fingerprint(fwd) == scenario_fingerprint(rev)
    # The as-given ordering is a different execution; canonical=False
    # (the dedup=False engine's mode) must keep them apart.
    assert scenario_fingerprint(fwd, canonical=False) != scenario_fingerprint(
        rev, canonical=False
    )


def test_fingerprint_failure_injection_disables_canonicalization():
    fwd = Scenario.of(
        ["A4", "A5"], scheme=Scheme.BEAM, sensor_failure_rates={"S4": 0.1}
    )
    rev = Scenario.of(
        ["A5", "A4"], scheme=Scheme.BEAM, sensor_failure_rates={"S4": 0.1}
    )
    # Failure draws key off absolute read order, so permutations are
    # real behavioral variants and must never collide.
    assert scenario_fingerprint(fwd) != scenario_fingerprint(rev)
    assert canonicalize_scenario(rev) is rev


def test_canonicalize_scenario_sorts_apps_keeps_name():
    scenario = Scenario.of(["A5", "A4"], scheme=Scheme.BEAM)
    canonical = canonicalize_scenario(scenario)
    assert [app.table2_id for app in canonical.apps] == ["A4", "A5"]
    assert canonical.name == scenario.name
    # Already-canonical scenarios come back untouched (same object).
    assert canonicalize_scenario(canonical) is canonical


# ----------------------------------------------------------------------
# disk cache
# ----------------------------------------------------------------------
def test_cache_survives_engine_instances(tmp_path):
    first = ScenarioEngine(cache_dir=tmp_path)
    cold = first.run(Scenario.of(["A2"], scheme=Scheme.COM))
    second = ScenarioEngine(cache_dir=tmp_path)
    hit = second.run(Scenario.of(["A2"], scheme=Scheme.COM))
    assert second.cache_hits == 1
    assert hit.energy.total_j == cold.energy.total_j


def test_corrupt_cache_entry_is_a_miss_not_an_error(tmp_path):
    engine = ScenarioEngine(cache_dir=tmp_path)
    scenario = Scenario.of(["A2"], scheme=Scheme.BATCHING)
    engine.run(scenario)
    (entry,) = tmp_path.rglob("*.pkl")
    entry.write_bytes(b"not a pickle")
    # A second engine (no warm memory tier) must hit the corrupt disk
    # entry, treat it as a miss, re-simulate and replace it.
    rerun_engine = ScenarioEngine(cache_dir=tmp_path)
    rerun = rerun_engine.run(Scenario.of(["A2"], scheme=Scheme.BATCHING))
    assert rerun.results_ok
    assert rerun_engine.cache_misses == 1
    with open(entry, "rb") as handle:
        assert pickle.load(handle)["result"].results_ok


def test_engine_without_cache_never_touches_disk(tmp_path):
    engine = ScenarioEngine()
    engine.run(Scenario.of(["A2"], scheme=Scheme.BATCHING))
    assert engine.cache_hits == engine.cache_misses == 0
    assert list(tmp_path.iterdir()) == []


def test_engine_rejects_bad_worker_count():
    with pytest.raises(ValueError):
        ScenarioEngine(workers=0)


# ----------------------------------------------------------------------
# batch execution and fan-out
# ----------------------------------------------------------------------
def test_run_many_raises_library_errors():
    engine = ScenarioEngine()
    with pytest.raises(OffloadError):
        engine.run_many([Scenario.of(["A11"], scheme=Scheme.COM)])


def test_parallel_sweep_identical_to_serial(tmp_path):
    def factory(batch_size):
        return Scenario.of(
            ["A2"], scheme=Scheme.BATCHING, batch_size=batch_size
        )

    grid = grid_of(batch_size=[100, 1000])
    serial = run_sweep(grid, factory, workers=1)
    parallel = run_sweep(grid, factory, workers=2)
    assert len(serial) == len(parallel) == 2
    for one, two in zip(serial, parallel):
        assert one.params == two.params
        assert one.result.energy.total_j == two.result.energy.total_j
        assert one.result.duration_s == two.result.duration_s
        assert one.result.interrupt_count == two.result.interrupt_count
        assert one.result.busy_times == two.result.busy_times


def test_parallel_sweep_captures_library_errors():
    def factory(app_id):
        return Scenario.of([app_id], scheme=Scheme.COM)

    sweep = run_sweep(grid_of(app_id=["A11", "A2"]), factory, workers=2)
    assert len(sweep.failed) == 1
    assert "offloaded" in sweep.failed[0].error
    assert len(sweep.succeeded) == 1


def test_sweep_fills_from_cache(tmp_path):
    def factory(scheme):
        return Scenario.of(["A2"], scheme=scheme)

    grid = grid_of(scheme=[Scheme.BASELINE, Scheme.BATCHING])
    engine = ScenarioEngine(cache_dir=tmp_path)
    first = run_sweep(grid, factory, engine=engine)
    assert engine.cache_misses == 2
    second = run_sweep(grid, factory, engine=engine)
    assert engine.cache_hits == 2
    for one, two in zip(first, second):
        assert one.result.energy.total_j == two.result.energy.total_j


def test_second_engine_hits_disk_then_memory(tmp_path):
    scenario = Scenario.of(["A2"], scheme=Scheme.COM)
    ScenarioEngine(cache_dir=tmp_path).run(scenario)
    engine = ScenarioEngine(cache_dir=tmp_path)
    engine.run(scenario)  # disk hit, promoted into the memory LRU
    engine.run(scenario)  # memory hit
    assert engine.metrics.cache_disk_hits == 1
    assert engine.metrics.cache_memory_hits == 1
    assert engine.cache_hits == 2


# ----------------------------------------------------------------------
# dedup: permutation-equivalent points simulate once
# ----------------------------------------------------------------------
def test_batch_dedups_permuted_points_bit_identically():
    fwd = Scenario.of(["A4", "A5"], scheme=Scheme.BEAM)
    rev = Scenario.of(["A5", "A4"], scheme=Scheme.BEAM)
    engine = ScenarioEngine()
    first, second = engine.run_batch([fwd, rev])
    assert engine.dedup_hits == 1
    assert engine.metrics.scenarios_run == 1
    # Each point keeps its own presentational identity...
    assert first.scenario_name == fwd.name
    assert second.scenario_name == rev.name
    assert second.app_ids == ["A5", "A4"]
    # ...over physics bit-identical to a per-point serial run.
    reference = run_scenario(canonicalize_scenario(rev))
    for result in (first, second):
        assert result.energy.total_j == reference.energy.total_j
        assert result.duration_s == reference.duration_s
        assert result.interrupt_count == reference.interrupt_count
        assert result.busy_times == reference.busy_times


def test_single_run_executes_canonical_ordering():
    rev = Scenario.of(["A5", "A4"], scheme=Scheme.BEAM)
    result = ScenarioEngine().run(rev)
    reference = run_scenario(canonicalize_scenario(rev))
    assert result.energy.total_j == reference.energy.total_j
    assert result.app_ids == ["A5", "A4"]  # presentation is as requested


def test_dedup_disabled_runs_each_permutation():
    fwd = Scenario.of(["A4", "A5"], scheme=Scheme.BEAM)
    rev = Scenario.of(["A5", "A4"], scheme=Scheme.BEAM)
    engine = ScenarioEngine(dedup=False)
    first, second = engine.run_batch([fwd, rev])
    assert engine.dedup_hits == 0
    assert engine.metrics.scenarios_run == 2
    # As-given execution order: results legitimately differ from the
    # canonical ordering's (this is why dedup re-executes canonically).
    assert first.energy.total_j == run_scenario(fwd).energy.total_j
    assert second.energy.total_j == run_scenario(rev).energy.total_j


def test_failure_injection_points_never_dedup():
    fwd = Scenario.of(
        ["A4", "A5"], scheme=Scheme.BEAM, sensor_failure_rates={"S1": 0.2}
    )
    rev = Scenario.of(
        ["A5", "A4"], scheme=Scheme.BEAM, sensor_failure_rates={"S1": 0.2}
    )
    engine = ScenarioEngine()
    engine.run_batch([fwd, rev])
    assert engine.dedup_hits == 0
    assert engine.metrics.scenarios_run == 2


def test_dedup_error_fans_out_to_every_member():
    fwd = Scenario.of(["A11", "A2"], scheme=Scheme.COM)
    rev = Scenario.of(["A2", "A11"], scheme=Scheme.COM)
    engine = ScenarioEngine()
    outcomes = engine.run_batch([fwd, rev])
    assert all(isinstance(outcome, OffloadError) for outcome in outcomes)
    assert engine.metrics.scenarios_run == 1


# ----------------------------------------------------------------------
# persistent pool and engine-managed cache GC
# ----------------------------------------------------------------------
def test_pool_persists_across_batches():
    grid = [
        Scenario.of([app_id], scheme=Scheme.BASELINE)
        for app_id in ("A2", "A3")
    ]
    # Explicit backend: the assertion is about process-pool reuse, so it
    # must hold even when $REPRO_BACKEND selects another default.
    with ScenarioEngine(workers=2, backend="process") as engine:
        engine.run_batch(grid)
        assert engine.metrics.pool_spawns == 1
        assert engine.metrics.backend_name == "process"
        assert engine.metrics.backend_spawns == 1
        more = [
            Scenario.of([app_id], scheme=Scheme.BEAM)
            for app_id in ("A2", "A3")
        ]
        engine.run_batch(more)
        assert engine.metrics.pool_spawns == 1  # reused, not respawned
        assert engine.metrics.pool_tasks == 4
        assert engine.metrics.pool_dispatches >= 2


def test_memory_only_engine_caches_without_disk(tmp_path):
    engine = ScenarioEngine(memory_cache=8)
    scenario = Scenario.of(["A2"], scheme=Scheme.BATCHING)
    engine.run(scenario)
    hit = engine.run(scenario)
    assert engine.metrics.cache_memory_hits == 1
    assert hit.hub is None  # cached results come back hub-stripped
    assert list(tmp_path.iterdir()) == []


def test_engine_cache_max_bytes_evicts_after_runs(tmp_path):
    engine = ScenarioEngine(cache_dir=tmp_path, cache_max_bytes=0)
    engine.run(Scenario.of(["A2"], scheme=Scheme.BATCHING))
    # The post-run GC pass evicted everything (cap is zero bytes).
    assert list(tmp_path.rglob("*.pkl")) == []
