"""Tests for the scenario engine: fingerprints, disk cache, fan-out."""

import pickle

import pytest

from repro.calibration import default_calibration
from repro.core import (
    Scenario,
    ScenarioEngine,
    Scheme,
    grid_of,
    run_sweep,
    scenario_fingerprint,
)
from repro.errors import OffloadError
from repro.sensors.synthetic import ConstantWaveform


# ----------------------------------------------------------------------
# fingerprinting
# ----------------------------------------------------------------------
def test_fingerprint_deterministic_across_instances():
    a = Scenario.of(["A2", "A4"], scheme=Scheme.BATCHING, windows=2)
    b = Scenario.of(["A2", "A4"], scheme=Scheme.BATCHING, windows=2)
    assert scenario_fingerprint(a) == scenario_fingerprint(b)


@pytest.mark.parametrize(
    "variant",
    [
        lambda: Scenario.of(["A2"], scheme=Scheme.COM),
        lambda: Scenario.of(["A2"], scheme=Scheme.BATCHING, windows=2),
        lambda: Scenario.of(["A2"], scheme=Scheme.BATCHING, batch_size=100),
        lambda: Scenario.of(["A2", "A4"], scheme=Scheme.BATCHING),
        lambda: Scenario.of(
            ["A2"],
            scheme=Scheme.BATCHING,
            calibration=default_calibration().with_cpu(active_power_w=4.0),
        ),
        lambda: Scenario.of(
            ["A2"],
            scheme=Scheme.BATCHING,
            waveforms={"S4": ConstantWaveform(0.5)},
        ),
        lambda: Scenario.of(
            ["A2"], scheme=Scheme.BATCHING, sensor_failure_rates={"S4": 0.1}
        ),
    ],
    ids=[
        "scheme",
        "windows",
        "batch_size",
        "apps",
        "calibration",
        "waveform",
        "failure_rate",
    ],
)
def test_fingerprint_sensitive_to_every_simulation_input(variant):
    base = scenario_fingerprint(Scenario.of(["A2"], scheme=Scheme.BATCHING))
    assert scenario_fingerprint(variant()) != base


def test_fingerprint_equal_waveform_params_collide():
    a = Scenario.of(
        ["A2"], scheme=Scheme.BATCHING, waveforms={"S4": ConstantWaveform(0.5)}
    )
    b = Scenario.of(
        ["A2"], scheme=Scheme.BATCHING, waveforms={"S4": ConstantWaveform(0.5)}
    )
    assert scenario_fingerprint(a) == scenario_fingerprint(b)


# ----------------------------------------------------------------------
# disk cache
# ----------------------------------------------------------------------
def test_cache_survives_engine_instances(tmp_path):
    first = ScenarioEngine(cache_dir=tmp_path)
    cold = first.run(Scenario.of(["A2"], scheme=Scheme.COM))
    second = ScenarioEngine(cache_dir=tmp_path)
    hit = second.run(Scenario.of(["A2"], scheme=Scheme.COM))
    assert second.cache_hits == 1
    assert hit.energy.total_j == cold.energy.total_j


def test_corrupt_cache_entry_is_a_miss_not_an_error(tmp_path):
    engine = ScenarioEngine(cache_dir=tmp_path)
    scenario = Scenario.of(["A2"], scheme=Scheme.BATCHING)
    engine.run(scenario)
    (entry,) = tmp_path.glob("*.pkl")
    entry.write_bytes(b"not a pickle")
    rerun = engine.run(Scenario.of(["A2"], scheme=Scheme.BATCHING))
    assert rerun.results_ok
    assert engine.cache_misses == 2  # corrupt entry re-simulated and replaced
    with open(entry, "rb") as handle:
        assert pickle.load(handle).results_ok


def test_engine_without_cache_never_touches_disk(tmp_path):
    engine = ScenarioEngine()
    engine.run(Scenario.of(["A2"], scheme=Scheme.BATCHING))
    assert engine.cache_hits == engine.cache_misses == 0
    assert list(tmp_path.iterdir()) == []


def test_engine_rejects_bad_worker_count():
    with pytest.raises(ValueError):
        ScenarioEngine(workers=0)


# ----------------------------------------------------------------------
# batch execution and fan-out
# ----------------------------------------------------------------------
def test_run_many_raises_library_errors():
    engine = ScenarioEngine()
    with pytest.raises(OffloadError):
        engine.run_many([Scenario.of(["A11"], scheme=Scheme.COM)])


def test_parallel_sweep_identical_to_serial(tmp_path):
    def factory(batch_size):
        return Scenario.of(
            ["A2"], scheme=Scheme.BATCHING, batch_size=batch_size
        )

    grid = grid_of(batch_size=[100, 1000])
    serial = run_sweep(grid, factory, workers=1)
    parallel = run_sweep(grid, factory, workers=2)
    assert len(serial) == len(parallel) == 2
    for one, two in zip(serial, parallel):
        assert one.params == two.params
        assert one.result.energy.total_j == two.result.energy.total_j
        assert one.result.duration_s == two.result.duration_s
        assert one.result.interrupt_count == two.result.interrupt_count
        assert one.result.busy_times == two.result.busy_times


def test_parallel_sweep_captures_library_errors():
    def factory(app_id):
        return Scenario.of([app_id], scheme=Scheme.COM)

    sweep = run_sweep(grid_of(app_id=["A11", "A2"]), factory, workers=2)
    assert len(sweep.failed) == 1
    assert "offloaded" in sweep.failed[0].error
    assert len(sweep.succeeded) == 1


def test_sweep_fills_from_cache(tmp_path):
    def factory(scheme):
        return Scenario.of(["A2"], scheme=scheme)

    grid = grid_of(scheme=[Scheme.BASELINE, Scheme.BATCHING])
    engine = ScenarioEngine(cache_dir=tmp_path)
    first = run_sweep(grid, factory, engine=engine)
    assert engine.cache_misses == 2
    second = run_sweep(grid, factory, engine=engine)
    assert engine.cache_hits == 2
    for one, two in zip(first, second):
        assert one.result.energy.total_j == two.result.energy.total_j
