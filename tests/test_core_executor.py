"""Integration tests: scenarios through the full simulator."""

import pytest

from repro.core import Scenario, Scheme, run_apps, run_scenario
from repro.errors import OffloadError, WorkloadError
from repro.hw.cpu import CpuState
from repro.hw.power import Routine


# ----------------------------------------------------------------------
# scenario validation
# ----------------------------------------------------------------------
def test_scenario_rejects_empty_and_bad_scheme():
    with pytest.raises(WorkloadError):
        Scenario(apps=[])
    with pytest.raises(WorkloadError):
        Scenario.of(["A2"], scheme="warp")
    with pytest.raises(WorkloadError):
        Scenario.of(["A2"], windows=0)
    with pytest.raises(WorkloadError):
        Scenario.of(["A2", "A2"])


def test_scenario_sensor_union():
    scenario = Scenario.of(["A2", "A4"])
    assert scenario.sensor_ids == ["S4", "S1", "S2", "S5", "S7"]


# ----------------------------------------------------------------------
# baseline semantics
# ----------------------------------------------------------------------
def test_baseline_interrupt_count_matches_table2():
    result = run_apps(["A2"], Scheme.BASELINE)
    assert result.interrupt_count == 1000
    result = run_apps(["A4"], Scheme.BASELINE)
    assert result.interrupt_count == 2220


def test_baseline_cpu_never_sleeps():
    result = run_apps(["A2"], Scheme.BASELINE)
    recorder = result.hub.recorder
    assert recorder.time_in_state("cpu", CpuState.SLEEP, result.duration_s) == 0.0
    assert result.cpu_wake_count == 0


def test_baseline_results_are_functional():
    result = run_apps(["A2"], Scheme.BASELINE)
    assert result.results_ok
    payload = result.result_payloads("stepcounter")[0]
    assert payload["samples"] == 1000
    assert payload["steps"] >= 1  # default walking waveform


def test_baseline_transfer_dominates_energy():
    result = run_apps(["A2"], Scheme.BASELINE)
    fractions = result.energy.routine_fractions()
    assert fractions[Routine.DATA_TRANSFER] > 0.7  # paper: ~77-81%
    assert fractions[Routine.INTERRUPT] > 0.05  # paper: ~10-16%
    assert fractions[Routine.APP_COMPUTE] < 0.05


def test_multi_window_baseline():
    result = run_apps(["A2"], Scheme.BASELINE, windows=3)
    assert result.interrupt_count == 3000
    assert len(result.app_results["stepcounter"]) == 3
    assert result.duration_s >= 3.0


# ----------------------------------------------------------------------
# batching semantics
# ----------------------------------------------------------------------
def test_batching_single_interrupt_per_window():
    result = run_apps(["A2"], Scheme.BATCHING)
    assert result.interrupt_count == 1  # paper: 1000 -> 1
    assert result.results_ok


def test_batching_cpu_sleeps_most_of_window():
    result = run_apps(["A2"], Scheme.BATCHING)
    recorder = result.hub.recorder
    asleep = recorder.time_in_state("cpu", CpuState.SLEEP, result.duration_s)
    # Paper Fig. 7 caption: CPU sleeps ~93% of the time under Batching.
    assert asleep / result.duration_s > 0.8


def test_batching_saves_energy_vs_baseline():
    baseline = run_apps(["A2"], Scheme.BASELINE)
    batching = run_apps(["A2"], Scheme.BATCHING)
    savings = batching.energy.savings_vs(baseline.energy)
    assert 0.4 < savings < 0.7  # paper: 52% avg / 63% for the step counter


def test_batching_same_functional_results_as_baseline():
    baseline = run_apps(["A2"], Scheme.BASELINE)
    batching = run_apps(["A2"], Scheme.BATCHING)
    assert (
        baseline.result_payloads("stepcounter")[0]["steps"]
        == batching.result_payloads("stepcounter")[0]["steps"]
    )


def test_batching_multi_window_reuses_buffer():
    result = run_apps(["A2"], Scheme.BATCHING, windows=2)
    assert result.interrupt_count == 2
    assert result.hub.mcu.ram.used_bytes == 0  # all batches flushed


# ----------------------------------------------------------------------
# COM semantics
# ----------------------------------------------------------------------
def test_com_eliminates_sample_interrupts():
    result = run_apps(["A2"], Scheme.COM)
    assert result.interrupt_count == 1  # only the result crosses
    assert result.bus_bytes <= 64  # output payload, not 12 KB of samples


def test_com_saves_most_energy():
    baseline = run_apps(["A2"], Scheme.BASELINE)
    com = run_apps(["A2"], Scheme.COM)
    savings = com.energy.savings_vs(baseline.energy)
    assert 0.8 < savings < 0.95  # paper: 85% average


def test_com_cpu_deep_sleeps():
    result = run_apps(["A2"], Scheme.COM)
    recorder = result.hub.recorder
    deep = recorder.time_in_state("cpu", CpuState.DEEP_SLEEP, result.duration_s)
    assert deep / result.duration_s > 0.8


def test_com_functional_results_identical_to_baseline():
    baseline = run_apps(["A2"], Scheme.BASELINE)
    com = run_apps(["A2"], Scheme.COM)
    assert (
        baseline.result_payloads("stepcounter")[0]["steps"]
        == com.result_payloads("stepcounter")[0]["steps"]
    )


def test_com_rejects_heavy_app():
    with pytest.raises(OffloadError):
        run_apps(["A11"], Scheme.COM)


def test_com_meets_qos():
    result = run_apps(["A2"], Scheme.COM, windows=2)
    assert result.qos_violations == []


def test_com_offload_report_attached():
    result = run_apps(["A2"], Scheme.COM)
    assert result.offload_reports["stepcounter"].offloadable


# ----------------------------------------------------------------------
# BEAM semantics
# ----------------------------------------------------------------------
def test_beam_shares_common_sensor_stream():
    baseline = run_apps(["A2", "A7"], Scheme.BASELINE)
    beam = run_apps(["A2", "A7"], Scheme.BEAM)
    # Both apps read S4 at 1 kHz: baseline polls twice, BEAM once.
    assert baseline.interrupt_count == 2000
    assert beam.interrupt_count == 1000
    assert beam.results_ok


def test_beam_saves_energy_only_with_sharing():
    baseline = run_apps(["A2", "A7"], Scheme.BASELINE)
    beam = run_apps(["A2", "A7"], Scheme.BEAM)
    savings = beam.energy.savings_vs(baseline.energy)
    # A2+A7 is BEAM's best case (fully shared sensor).  The paper reports
    # 48.2% there; our baseline charges most energy to the always-awake
    # CPU, which BEAM cannot reduce, so the saving is smaller but must
    # clearly exceed the no-sharing case (see EXPERIMENTS.md).
    assert savings > 0.08


def test_beam_no_sharing_no_benefit():
    baseline = run_apps(["A2", "A8"], Scheme.BASELINE)
    beam = run_apps(["A2", "A8"], Scheme.BEAM)
    assert beam.interrupt_count == baseline.interrupt_count
    assert abs(beam.energy.savings_vs(baseline.energy)) < 0.05


def test_beam_delivers_every_subscriber_full_windows():
    beam = run_apps(["A2", "A7"], Scheme.BEAM)
    assert beam.result_payloads("stepcounter")[0]["samples"] == 1000
    assert beam.result_payloads("earthquake")[0]["peak_ratio"] > 0


# ----------------------------------------------------------------------
# BCOM semantics
# ----------------------------------------------------------------------
def test_bcom_partitions_heavy_and_light():
    result = run_apps(["A11", "A6"], Scheme.BCOM)
    assert result.offload_reports["dropbox"].offloadable
    assert not result.offload_reports["speech2text"].offloadable
    assert result.results_ok


def test_bcom_beats_batching_with_mixed_apps():
    baseline = run_apps(["A11", "A6"], Scheme.BASELINE)
    batching = run_apps(["A11", "A6"], Scheme.BATCHING)
    bcom = run_apps(["A11", "A6"], Scheme.BCOM)
    batching_savings = batching.energy.savings_vs(baseline.energy)
    bcom_savings = bcom.energy.savings_vs(baseline.energy)
    assert bcom_savings > batching_savings > 0


def test_bcom_all_light_apps_acts_like_com():
    bcom = run_apps(["A2"], Scheme.BCOM)
    com = run_apps(["A2"], Scheme.COM)
    assert bcom.interrupt_count == com.interrupt_count == 1


# ----------------------------------------------------------------------
# cross-scheme invariants
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "scheme", [Scheme.BASELINE, Scheme.BATCHING, Scheme.COM, Scheme.BCOM]
)
def test_every_scheme_is_functionally_equivalent(scheme):
    result = run_apps(["A7"], scheme)
    payload = result.result_payloads("earthquake")[0]
    assert "triggered" in payload
    assert result.results_ok


def test_energy_conservation_full_run():
    result = run_apps(["A2", "A4"], Scheme.BASELINE)
    by_routine = sum(result.energy.by_routine.values())
    by_component = sum(result.energy.by_component.values())
    assert by_routine == pytest.approx(result.energy.total_j)
    assert by_component == pytest.approx(result.energy.total_j)


def test_deterministic_reruns():
    first = run_apps(["A2"], Scheme.BATCHING)
    second = run_apps(["A2"], Scheme.BATCHING)
    assert first.energy.total_j == pytest.approx(second.energy.total_j, rel=1e-12)
    assert first.duration_s == second.duration_s
