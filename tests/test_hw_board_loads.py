"""Board-level details: constant loads, idle floor, offload runtime."""

import pytest

from repro.apps import create_app
from repro.apps.offline import collect_window
from repro.energy import PowerMonitor
from repro.firmware import run_offloaded_compute
from repro.hubos.polling import cpu_blocking_read
from repro.hw import IoTHub
from repro.hw.cpu import CpuState
from repro.sensors import ConstantWaveform, SensorDevice
from repro.sim import Delay


def test_constant_board_loads_always_draw():
    hub = IoTHub()

    def idle_for_a_second():
        yield Delay(1.0)

    hub.sim.spawn(idle_for_a_second())
    hub.run()
    report = PowerMonitor(hub.recorder, hub.idle_power_w).measure(1.0)
    board = report.component_j("board")
    carrier = report.component_j("mcu_board")
    assert board == pytest.approx(hub.calibration.board.overhead_power_w)
    assert carrier == pytest.approx(
        hub.calibration.board.mcu_overhead_power_w
    )


def test_idle_hub_total_matches_declared_floor():
    hub = IoTHub()  # CPU deep asleep, MCU asleep, nothing attached

    def wait():
        yield Delay(2.0)

    hub.sim.spawn(wait())
    hub.run()
    report = PowerMonitor(hub.recorder, hub.idle_power_w).measure(2.0)
    assert report.total_j == pytest.approx(hub.idle_power_w * 2.0)
    assert report.marginal_j == pytest.approx(0.0, abs=1e-9)


def test_offloaded_compute_runs_real_algorithm_on_mcu():
    hub = IoTHub()
    hub.mcu.set_idle("data_collection")
    app = create_app("A2")
    window = collect_window(app)
    results = []

    def offload():
        result = yield from run_offloaded_compute(hub, app, window)
        results.append(result)

    hub.sim.spawn(offload())
    hub.run()
    assert results[0].payload["steps"] >= 1
    assert hub.sim.now == pytest.approx(
        app.profile.mcu_compute_time_s(hub.calibration)
    )
    assert hub.mcu.instructions_retired == pytest.approx(
        app.profile.instructions
    )


def test_cpu_blocking_read_holds_core_busy_for_read_time():
    hub = IoTHub(cpu_initial_state=CpuState.IDLE)
    device = SensorDevice.attach(hub, "S1", ConstantWaveform(1.0))
    samples = []

    def reader():
        sample = yield from cpu_blocking_read(hub, device)
        samples.append(sample)

    hub.sim.spawn(reader())
    hub.run()
    busy = hub.recorder.time_in_state("cpu", CpuState.BUSY, hub.sim.now)
    # The 37.5 ms barometer read blocks the CPU entirely.
    assert busy >= device.spec.read_time_s
    assert samples[0].sensor_id == "S1"


def test_cpu_instruction_counter_accumulates():
    hub = IoTHub(cpu_initial_state=CpuState.IDLE)

    def job():
        yield from hub.cpu.core.acquire()
        yield from hub.cpu.execute(0.001, "app_compute", instructions=5e6)
        hub.cpu.core.release()

    hub.sim.spawn(job())
    hub.run()
    assert hub.cpu.instructions_retired == pytest.approx(5e6)
