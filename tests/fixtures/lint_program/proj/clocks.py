"""Impure helpers the determinism pass must trace into.

This module sits *outside* the deterministic core, so the per-file
``det-*`` rules never look at it — only the interprocedural pass can
connect the sim entry points to the wall-clock read below.
"""

import time


def stamp():
    """Wall-clock read — the impurity sink."""
    return time.time()


def jitter():
    """One call hop above the sink."""
    return stamp() * 0.5


class Meter:
    """Receiver-type resolution target (``m = Meter(); m.read()``)."""

    def read(self):
        """Impure method reached through a typed receiver."""
        return stamp()
