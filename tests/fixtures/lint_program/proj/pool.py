"""Cross-process boundary with one of each pickle hazard shape."""


class Pool:
    """Minimal backend look-alike exposing the submit seam."""

    def submit_batch(self, fn, items):
        """Pretend to ship ``fn``/``items`` to worker processes."""
        return [fn(item) for item in items]


def scale(items, hub):
    """Lambda hazard: an inline closure crosses the boundary."""
    pool = Pool()
    return pool.submit_batch(lambda item: item + hub.gain, items)


def run_nested(items):
    """Closure hazard: a nested function with free variables."""
    offset = 3

    def shifted(item):
        """Closure over ``offset``."""
        return item + offset

    pool = Pool()
    return pool.submit_batch(shifted, items)


def export(engine, items):
    """Live-handle hazard: ships the engine's recorder handle."""
    recorder = engine.recorder
    pool = Pool()
    return pool.submit_batch(recorder, items)


def ship_reviewed(items):
    """A suppressed hazard (tests hyphen-prefix suppression)."""
    pool = Pool()
    return pool.submit_batch(  # repro-lint: disable=program-pickle
        lambda item: item, items
    )
