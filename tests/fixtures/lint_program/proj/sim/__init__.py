"""Deterministic-core subpackage of the fixture project."""
