"""Fixture simulation kernel: deterministic-core entry points.

Each function below reaches the wall-clock sink in ``proj.clocks``
through a *different* call-graph edge kind, so the tests can assert
every resolver independently: direct cross-module call, callback
registration, receiver-typed method call, and registry dispatch.
"""

from ..clocks import Meter, jitter
from ..registry import get_scheme


def advance(now_s):
    """Direct cross-module chain: advance -> jitter -> stamp."""
    return now_s + jitter()


def run_callback(fn):
    """Deferred-call trampoline used by :func:`schedule`."""
    return fn


def schedule():
    """Callback edge: ``jitter`` passed by name, called later."""
    return run_callback(jitter)


def sample():
    """Receiver-type edge: ``meter = Meter(); meter.read()``."""
    meter = Meter()
    return meter.read()


def dispatch():
    """Registry edge: get_scheme -> ThermalScheme.build -> stamp."""
    scheme = get_scheme("therm")
    return scheme
