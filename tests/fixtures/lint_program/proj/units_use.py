"""Cross-function unit mismatches — one per ``program-units-*`` seam."""


def wait(timeout_s):
    """Expects seconds (declared by the parameter suffix)."""
    return timeout_s


def span_ms():
    """Returns a millisecond count (declared by the name suffix)."""
    return 5.0


def poll():
    """Call seam: passes milliseconds where seconds are expected."""
    interval_ms = 50.0
    return wait(interval_ms)


def period_ms():
    """Return seam: named ``_ms`` but returns a seconds value."""
    delay_s = 2.0
    return delay_s


def tick():
    """Assign seam: ``_s`` binding fed by a ``_ms``-returning call."""
    delay_s = span_ms()
    return delay_s
