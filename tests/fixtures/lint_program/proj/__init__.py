"""Fixture mini-project for the whole-program lint tests.

Deliberately seeded with one bug per ``program-*`` rule family (plus
the call-graph shapes the passes must resolve: direct cross-module
calls, receiver-typed method calls, registry dispatch and callback
registration).  Never linted by the repo-wide run — only the tests in
``tests/test_lint_program.py`` point the analyzer here.
"""
