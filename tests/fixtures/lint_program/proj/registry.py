"""Scheme registry for the fixture project (mirrors repro's shape)."""

_SCHEMES = {}


def register_scheme(name):
    """Class decorator registering a scheme under ``name``."""

    def wrap(cls):
        _SCHEMES[name] = cls
        return cls

    return wrap


def get_scheme(name):
    """Look up a registered scheme class by name."""
    return _SCHEMES[name]


_BACKENDS = {}


def register_backend(name):
    """Class decorator registering a backend under ``name``."""

    def wrap(cls):
        _BACKENDS[name] = cls
        return cls

    return wrap


def get_backend(name):
    """Look up a registered backend class by name."""
    return _BACKENDS[name]
