"""A registered scheme whose build hook is impure.

No module imports this class directly — the only route from the sim
entry points into :meth:`ThermalScheme.build` is the registry-dispatch
edge (``get_scheme(...)`` reaches every ``@register_scheme`` class's
entry hooks).
"""

from .clocks import stamp
from .registry import register_backend, register_scheme


@register_scheme("therm")
class ThermalScheme:
    """Scheme plugin resolved only through the registry."""

    def build(self, ctx):
        """Entry hook reaching a wall-clock sink via ``stamp``."""
        del ctx
        return stamp()


@register_backend("sockets")
class SocketishBackend:
    """Backend plugin — ``get_scheme`` callers must NOT reach this."""

    @classmethod
    def create(cls, workers=1):
        """Impure factory (env-flavoured); only get_backend reaches it."""
        return stamp()
