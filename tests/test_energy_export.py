"""Tests for trace export: CSV dumps and sparklines."""

import io

import pytest

from repro.core import Scheme, run_apps
from repro.energy import (
    PowerMonitor,
    power_csv_string,
    power_sparkline,
    sparkline,
    write_power_csv,
    write_state_csv,
)
from repro.cli import main


@pytest.fixture(scope="module")
def measured():
    result = run_apps(["A2"], Scheme.BATCHING)
    monitor = PowerMonitor(result.hub.recorder, result.energy.idle_floor_power_w)
    return result, monitor


def test_power_csv_rows_and_header(measured):
    result, monitor = measured
    buffer = io.StringIO()
    rows = write_power_csv(monitor, result.duration_s, 0.01, buffer)
    lines = buffer.getvalue().strip().splitlines()
    assert lines[0] == "time_s,power_w"
    assert len(lines) == rows + 1
    assert rows == int(result.duration_s / 0.01) + 1
    # Every row parses as two floats.
    for line in lines[1:]:
        time_s, power_w = line.split(",")
        assert float(time_s) >= 0.0
        assert float(power_w) > 0.0


def test_power_csv_integrates_to_total_energy(measured):
    """Riemann sum of the CSV approximates the meter's total.

    The interval must not be commensurate with the 1 kHz poll rate or the
    samples alias onto the read bursts (a real measurement pitfall — the
    Monsoon avoids it by sampling at 10 MHz).
    """
    result, monitor = measured
    interval = 0.000317
    text = power_csv_string(monitor, result.duration_s, interval)
    rows = [line.split(",") for line in text.strip().splitlines()[1:]]
    powers = [float(power) for _, power in rows]
    approx_energy = sum(powers) * interval
    assert approx_energy == pytest.approx(result.energy.total_j, rel=0.05)


def test_state_csv_covers_all_components(measured):
    result, monitor = measured
    buffer = io.StringIO()
    rows = write_state_csv(result.hub.recorder, result.duration_s, buffer)
    text = buffer.getvalue()
    assert rows > 10
    for component in ("cpu", "mcu", "sensor:S4", "board"):
        assert component in text


def test_sparkline_shapes():
    assert sparkline([]) == ""
    assert sparkline([1.0, 1.0, 1.0]) == "▁▁▁"
    strip = sparkline([0, 1, 2, 3, 4, 5, 6, 7], width=8)
    assert strip[0] == "▁"
    assert strip[-1] == "█"
    # Long series are downsampled to the requested width.
    assert len(sparkline(list(range(1000)), width=40)) == 40


def test_power_sparkline_bounds(measured):
    result, monitor = measured
    strip, low, high = power_sparkline(monitor, result.duration_s, width=32)
    assert len(strip) == 32
    assert 0.0 < low < high < 20.0


def test_cli_trace_writes_csv(tmp_path, capsys):
    out_file = tmp_path / "trace.csv"
    assert main(["trace", "A2", "--scheme", "batching", "--out", str(out_file)]) == 0
    printed = capsys.readouterr().out
    assert "hub power over" in printed
    assert out_file.exists()
    content = out_file.read_text()
    assert content.startswith("time_s,power_w")
    assert len(content.splitlines()) > 100


def test_cli_trace_sparkline_only(capsys):
    assert main(["trace", "A2"]) == 0
    printed = capsys.readouterr().out
    assert "hub power over" in printed
    assert "wrote" not in printed
