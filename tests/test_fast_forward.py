"""Parity and fallback tests for steady-state fast-forward.

The contract (docs/performance.md): with ``fast_forward=True`` energy
and duration match the full simulation at rtol 1e-9, integer counters
(interrupts, wakes, bus bytes, per-app result counts) match exactly,
and scenarios without a verified steady state transparently fall back
to the full event-driven run, bit-identical to ``fast_forward=False``.
"""

import dataclasses
import random

import pytest

from repro.core import Scenario, run_apps, run_scenario
from repro.core.fastforward import MIN_WINDOWS, TRUNCATED_WINDOWS
from repro.obs import TraceRecorder
from repro.sim import hyperperiod
from repro.sim.steadystate import dicts_close

RTOL = 1e-9
ALL_SCHEMES = ["baseline", "batching", "com", "beam", "bcom", "polling"]


def run_both(apps, scheme, windows, **kwargs):
    """One full run and one fast-forward run of the same scenario."""
    full = run_apps(apps, scheme, windows=windows, **kwargs)
    recorder = TraceRecorder()
    fast = run_apps(
        apps, scheme, windows=windows, obs=recorder,
        fast_forward=True, **kwargs,
    )
    return full, fast, recorder


def assert_parity(full, fast):
    """The ISSUE acceptance bars: rtol 1e-9 floats, exact counters."""
    assert fast.energy.total_j == pytest.approx(full.energy.total_j, rel=RTOL)
    assert fast.duration_s == pytest.approx(full.duration_s, rel=RTOL)
    assert fast.energy.duration_s == pytest.approx(
        full.energy.duration_s, rel=RTOL
    )
    assert set(fast.energy.by_component_routine) == set(
        full.energy.by_component_routine
    )
    for key, joules in full.energy.by_component_routine.items():
        assert fast.energy.by_component_routine[key] == pytest.approx(
            joules, rel=RTOL, abs=1e-12
        ), key
    assert set(fast.busy_times) == set(full.busy_times)
    for routine, seconds in full.busy_times.items():
        assert fast.busy_times[routine] == pytest.approx(
            seconds, rel=RTOL, abs=1e-12
        ), routine
    # Integer counters are exact, not approximate.
    assert fast.interrupt_count == full.interrupt_count
    assert fast.cpu_wake_count == full.cpu_wake_count
    assert fast.bus_bytes == full.bus_bytes
    assert fast.windows == full.windows
    assert fast.qos_violations == full.qos_violations
    assert set(fast.app_results) == set(full.app_results)
    for name, results in full.app_results.items():
        replayed = fast.app_results[name]
        assert len(replayed) == len(results)
        assert [r.window_index for r in replayed] == [
            r.window_index for r in results
        ]
    for name, times in full.result_times.items():
        assert fast.result_times[name] == pytest.approx(
            times, rel=RTOL, abs=1e-9
        )
    assert fast.results_ok == full.results_ok


def assert_exact_fallback(full, fast, recorder, reason):
    """Fallback runs the normal path: results must be bit-identical."""
    assert recorder.counters.get("sim.ff.fallbacks") == 1
    assert recorder.counters.get(f"sim.ff.fallback.{reason}") == 1
    assert "sim.ff.cycles_skipped" not in recorder.counters
    assert fast.energy.by_component_routine == full.energy.by_component_routine
    assert fast.duration_s == full.duration_s
    assert fast.busy_times == full.busy_times
    assert fast.result_times == full.result_times
    assert fast.interrupt_count == full.interrupt_count


# ----------------------------------------------------------------------
# parity across schemes
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_parity_across_all_schemes(scheme):
    full, fast, recorder = run_both(["A3"], scheme, windows=20)
    assert_parity(full, fast)
    assert full.results_ok
    skipped = recorder.counters.get("sim.ff.cycles_skipped")
    assert skipped == 20 - TRUNCATED_WINDOWS
    assert recorder.counters.get("sim.ff.events_saved", 0) > 0


def test_parity_multi_app_shared_sensors():
    """Two apps sharing S1/S2 streams still reach a steady state."""
    full, fast, _ = run_both(["A3", "A5"], "batching", windows=12)
    assert_parity(full, fast)


def test_parity_high_rate_stream():
    """A 1000 Hz stream: thousands of events per cycle extrapolate."""
    full, fast, recorder = run_both(["A7"], "batching", windows=14)
    assert_parity(full, fast)
    assert recorder.counters["sim.ff.events_saved"] > 5_000


def test_fast_forward_executes_fewer_events():
    recorder_full = TraceRecorder()
    run_apps(["A3"], "batching", windows=40, obs=recorder_full)
    recorder_fast = TraceRecorder()
    run_apps(
        ["A3"], "batching", windows=40,
        obs=recorder_fast, fast_forward=True,
    )
    full_events = recorder_full.counters["sim.events"]
    fast_events = recorder_fast.counters["sim.events"]
    assert fast_events < full_events / 4
    assert (
        recorder_fast.counters["sim.ff.events_saved"]
        == full_events - fast_events
    )


def test_randomized_scenario_sample():
    """Seeded random scenarios: parity when fast-forwarded, exact
    equality when the engine falls back."""
    rng = random.Random(0x5EED)
    pool = ["A1", "A3", "A4", "A5", "A7"]
    for _ in range(6):
        apps = rng.sample(pool, rng.choice([1, 1, 2]))
        scheme = rng.choice(["baseline", "batching", "beam", "polling"])
        windows = rng.randrange(MIN_WINDOWS, 16)
        full, fast, recorder = run_both(sorted(apps), scheme, windows)
        if "sim.ff.cycles_skipped" in recorder.counters:
            assert_parity(full, fast)
        else:
            reasons = [
                key for key in recorder.counters
                if key.startswith("sim.ff.fallback.")
            ]
            assert len(reasons) == 1
            assert fast.energy.by_component_routine == (
                full.energy.by_component_routine
            )
            assert fast.duration_s == full.duration_s


# ----------------------------------------------------------------------
# fallbacks
# ----------------------------------------------------------------------
def test_fallback_too_short():
    full, fast, recorder = run_both(["A3"], "baseline", windows=MIN_WINDOWS - 1)
    assert_exact_fallback(full, fast, recorder, "too_short")


def test_fallback_mixed_windows():
    """A3 (1 s windows) + A8 (5 s windows): no uniform cycle to skip."""
    full, fast, recorder = run_both(
        ["A3", "A8"], "baseline", windows=MIN_WINDOWS
    )
    assert_exact_fallback(full, fast, recorder, "mixed_windows")


def test_fallback_failure_injection():
    """Failure draws are keyed to absolute read counts — aperiodic."""
    scenario = dataclasses.replace(
        Scenario.of(["A3"], scheme="baseline", windows=12),
        sensor_failure_rates={"S1": 0.05},
    )
    full = run_scenario(scenario)
    recorder = TraceRecorder()
    fast = run_scenario(scenario, obs=recorder, fast_forward=True)
    assert_exact_fallback(full, fast, recorder, "failure_injection")


def test_fallback_no_steady_state():
    """A2+A4 batching drifts across cycles; verification must refuse
    to extrapolate and rerun the full simulation."""
    full, fast, recorder = run_both(["A2", "A4"], "batching", windows=10)
    assert_exact_fallback(full, fast, recorder, "no_steady_state")
    assert_parity(full, fast)  # exact equality implies parity too


def test_flag_off_is_untouched():
    """Without the flag no fast-forward counters ever appear."""
    recorder = TraceRecorder()
    run_apps(["A3"], "batching", windows=12, obs=recorder)
    assert not any(key.startswith("sim.ff") for key in recorder.counters)


# ----------------------------------------------------------------------
# steady-state helpers
# ----------------------------------------------------------------------
def test_hyperperiod_integers_and_fractions():
    assert hyperperiod([1.0, 5.0]) == pytest.approx(5.0)
    assert hyperperiod([0.5, 0.75]) == pytest.approx(1.5)
    assert hyperperiod([2.0]) == pytest.approx(2.0)
    assert hyperperiod([1.0, 1.0, 1.0]) == pytest.approx(1.0)


def test_hyperperiod_rejects_degenerate_inputs():
    assert hyperperiod([]) is None
    assert hyperperiod([0.0, 1.0]) is None
    assert hyperperiod([-2.0]) is None


def test_dicts_close_requires_matching_keys():
    assert dicts_close({"a": 1.0}, {"a": 1.0 + 1e-15})
    assert not dicts_close({"a": 1.0}, {"a": 1.0 + 1e-6})
    assert not dicts_close({"a": 1.0}, {"a": 1.0, "b": 0.0})
