"""Tests for the parameter-sweep utilities."""

import pytest

from repro.apps import create_app
from repro.core import Scenario, Scheme, grid_of, run_sweep
from repro.calibration import default_calibration


def test_grid_of_cartesian_product():
    grid = grid_of(a=[1, 2], b=["x", "y", "z"])
    assert len(grid) == 6
    assert {"a": 2, "b": "y"} in grid


def test_grid_of_single_axis():
    assert grid_of(rate=[10]) == [{"rate": 10}]


def test_sweep_over_batch_sizes():
    def factory(batch_size):
        return Scenario(
            apps=[create_app("A2")],
            scheme=Scheme.BATCHING,
            batch_size=batch_size,
        )

    sweep = run_sweep(grid_of(batch_size=[100, 1000]), factory)
    assert len(sweep) == 2
    assert not sweep.failed
    series = sweep.series(
        "batch_size", lambda result: result.interrupt_count
    )
    assert series == [(100, 10), (1000, 1)]


def test_sweep_captures_library_errors():
    def factory(slowdown):
        return Scenario(
            apps=[create_app("A2")],
            scheme=Scheme.COM,
            calibration=default_calibration().with_uniform_mcu_slowdown(slowdown),
        )

    sweep = run_sweep(grid_of(slowdown=[10.0, 900.0]), factory)
    assert len(sweep.succeeded) == 1
    assert len(sweep.failed) == 1
    assert "QoS" in sweep.failed[0].error


def test_sweep_raises_when_errors_not_kept():
    from repro.errors import OffloadError

    def factory(app_id):
        return Scenario(apps=[create_app(app_id)], scheme=Scheme.COM)

    with pytest.raises(OffloadError):
        run_sweep(grid_of(app_id=["A11"]), factory, keep_errors=False)


def test_sweep_propagates_programming_errors_in_factory():
    """Non-library exceptions must never hide in SweepPoint.error."""

    def factory(batch_size):
        raise TypeError("bug in the factory, not a library error")

    with pytest.raises(TypeError):
        run_sweep(grid_of(batch_size=[100]), factory)


def test_sweep_propagates_programming_errors_in_run(monkeypatch):
    """A bug inside the simulator aborts the sweep instead of hiding.

    The backend layer attributes it: the raised ChunkTaskError names
    the failing scenario and chains the original exception.
    """
    import repro.core.engine as engine_module
    from repro.errors import ChunkTaskError

    def exploding(scenario, **kwargs):
        raise RuntimeError("simulated bug")

    monkeypatch.setattr(engine_module, "execute_scenario", exploding)

    def factory(batch_size):
        return Scenario(
            apps=[create_app("A2")],
            scheme=Scheme.BATCHING,
            batch_size=batch_size,
        )

    with pytest.raises(ChunkTaskError, match="simulated bug") as excinfo:
        run_sweep(grid_of(batch_size=[100]), factory)
    assert "batching[A2]" in str(excinfo.value)  # names the scenario


def test_sweep_records_merge_params_and_metrics():
    def factory(scheme):
        return Scenario(apps=[create_app("A2")], scheme=scheme)

    sweep = run_sweep(grid_of(scheme=[Scheme.BASELINE, Scheme.COM]), factory)
    records = sweep.records(
        lambda result: {"energy_j": result.energy.marginal_j}
    )
    assert len(records) == 2
    assert records[0]["scheme"] == Scheme.BASELINE
    assert records[0]["energy_j"] > records[1]["energy_j"]