"""Latency metrics and mixed-window integration scenarios."""

import pytest

from repro.apps import create_app
from repro.core import Scheme, run_apps


def test_light_app_latency_is_milliseconds():
    result = run_apps(["A2"], Scheme.BASELINE)
    latencies = result.result_latencies_s("stepcounter", window_s=1.0)
    assert len(latencies) == 1
    assert 0.0 < latencies[0] < 0.05  # compute + upload tail


def test_com_latency_includes_mcu_compute_and_deep_wake():
    result = run_apps(["A2"], Scheme.COM)
    latency = result.result_latencies_s("stepcounter", window_s=1.0)[0]
    # 21.7 ms MCU compute + 10 ms deep-sleep exit + transfer.
    assert 0.025 < latency < 0.08


def test_heavy_app_latency_exceeds_window():
    result = run_apps(["A11"], Scheme.BASELINE)
    latency = result.result_latencies_s("speech2text", window_s=1.0)[0]
    assert latency > 2.0  # slower than real time, §IV-E3


def test_mixed_window_lengths_run_concurrently():
    """A2's 1 s windows and A8's 5 s window coexist in one scenario."""
    result = run_apps(["A2", "A8"], Scheme.BASELINE)
    assert result.results_ok
    assert result.duration_s >= 5.0
    assert result.interrupt_count == 2000  # 1000 each per Table II
    assert result.result_payloads("heartbeat")[0]["beats"] > 0


def test_mixed_window_lengths_under_com():
    result = run_apps(["A2", "A8"], Scheme.COM)
    assert result.results_ok
    assert result.qos_violations == []
    # Both offloaded: only two result interrupts.
    assert result.interrupt_count == 2


@pytest.mark.parametrize(
    "scheme",
    [Scheme.POLLING, Scheme.BASELINE, Scheme.BATCHING, Scheme.COM, Scheme.BCOM],
)
def test_every_scheme_is_deterministic(scheme):
    first = run_apps(["A2"], scheme)
    second = run_apps(["A2"], scheme)
    assert first.energy.total_j == second.energy.total_j
    assert first.duration_s == second.duration_s
    assert first.busy_times == second.busy_times


def test_beam_multi_window():
    result = run_apps(["A2", "A7"], Scheme.BEAM, windows=3)
    assert result.interrupt_count == 3000
    assert len(result.result_payloads("stepcounter")) == 3
    assert len(result.result_payloads("earthquake")) == 3


def test_bcom_with_batch_size_for_the_heavy_app():
    from repro.core import Scenario, run_scenario

    scenario = Scenario(
        apps=[create_app("A11"), create_app("A6")],
        scheme=Scheme.BCOM,
        batch_size=250,
    )
    result = run_scenario(scenario)
    assert result.results_ok
    # A6 offloaded (1 result IRQ); A11 batched in 250-sample chunks
    # (4 partial/final batches).
    assert result.interrupt_count == 5
