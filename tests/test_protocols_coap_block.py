"""Tests for CoAP blockwise transfers (RFC 7959 subset)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.protocols.coap_block import (
    VALID_BLOCK_SIZES,
    BlockwiseServer,
    decode_block_option,
    encode_block_option,
    fetch_blockwise,
)


@given(
    number=st.integers(min_value=0, max_value=(1 << 20) - 1),
    more=st.booleans(),
    size=st.sampled_from(VALID_BLOCK_SIZES),
)
def test_block_option_roundtrip(number, more, size):
    decoded = decode_block_option(encode_block_option(number, more, size))
    assert decoded == (number, more, size)


def test_block_option_zero_is_empty():
    assert encode_block_option(0, False, 16) == b""
    assert decode_block_option(b"") == (0, False, 16)


def test_block_option_rejects_bad_values():
    with pytest.raises(ProtocolError):
        encode_block_option(0, False, 48)  # not a power-of-two size
    with pytest.raises(ProtocolError):
        encode_block_option(1 << 20, False, 64)
    with pytest.raises(ProtocolError):
        decode_block_option(b"\x07")  # reserved SZX
    with pytest.raises(ProtocolError):
        decode_block_option(b"\x00" * 4)


def test_blockwise_fetch_reassembles_large_payload():
    server = BlockwiseServer(block_size=64)
    payload = bytes(range(256)) * 3  # 768 B -> 12 blocks
    server.publish("/big", payload)
    fetched, requests = fetch_blockwise(server, "/big")
    assert fetched == payload
    assert requests == 12


def test_blockwise_single_block_payload():
    server = BlockwiseServer(block_size=64)
    server.publish("/small", b"tiny")
    fetched, requests = fetch_blockwise(server, "/small")
    assert fetched == b"tiny"
    assert requests == 1


def test_blockwise_block_boundary_exact_multiple():
    server = BlockwiseServer(block_size=32)
    payload = b"x" * 96  # exactly 3 blocks
    server.publish("/exact", payload)
    fetched, requests = fetch_blockwise(server, "/exact")
    assert fetched == payload
    assert requests == 3


def test_blockwise_out_of_range_block_is_bad_request():
    from repro.protocols import CoapCode, CoapMessage, decode_message, encode_message
    from repro.protocols.coap_block import OPTION_BLOCK2

    server = BlockwiseServer(block_size=64)
    server.publish("/r", b"x" * 70)
    request = CoapMessage.get("/r", message_id=5)
    request.options.append((OPTION_BLOCK2, encode_block_option(9, False, 64)))
    response = decode_message(server.handle(encode_message(request)))
    assert response.code == CoapCode.BAD_REQUEST


def test_blockwise_unknown_resource_404():
    server = BlockwiseServer()
    with pytest.raises(ProtocolError, match="4.04"):
        fetch_blockwise(server, "/missing")


def test_server_rejects_invalid_block_size():
    with pytest.raises(ProtocolError):
        BlockwiseServer(block_size=100)
