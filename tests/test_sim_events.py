"""Unit tests for the event queue."""

import pytest

from repro.errors import SchedulingError
from repro.sim.events import EventQueue


def test_pop_orders_by_time():
    queue = EventQueue()
    order = []
    queue.push(2.0, lambda: order.append("late"))
    queue.push(1.0, lambda: order.append("early"))
    queue.push(1.5, lambda: order.append("mid"))
    while queue:
        queue.pop().callback()
    assert order == ["early", "mid", "late"]


def test_same_time_events_are_fifo():
    queue = EventQueue()
    order = []
    for tag in ("a", "b", "c"):
        queue.push(1.0, lambda tag=tag: order.append(tag))
    while queue:
        queue.pop().callback()
    assert order == ["a", "b", "c"]


def test_cancelled_events_are_skipped():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    event.cancel()
    assert len(queue) == 1
    assert queue.pop().time == 2.0


def test_peek_time_skips_cancelled():
    queue = EventQueue()
    first = queue.push(1.0, lambda: None)
    queue.push(3.0, lambda: None)
    assert queue.peek_time() == 1.0
    first.cancel()
    assert queue.peek_time() == 3.0


def test_peek_time_empty_returns_none():
    assert EventQueue().peek_time() is None


def test_pop_empty_raises():
    with pytest.raises(SchedulingError):
        EventQueue().pop()


def test_nan_time_rejected():
    with pytest.raises(SchedulingError):
        EventQueue().push(float("nan"), lambda: None)


def test_len_counts_only_live_events():
    queue = EventQueue()
    events = [queue.push(float(i), lambda: None) for i in range(5)]
    events[0].cancel()
    events[3].cancel()
    assert len(queue) == 3
    assert bool(queue)
