"""Unit tests for the event queue."""

import pytest

from repro.errors import SchedulingError
from repro.sim.events import EventQueue


def test_pop_orders_by_time():
    queue = EventQueue()
    order = []
    queue.push(2.0, lambda: order.append("late"))
    queue.push(1.0, lambda: order.append("early"))
    queue.push(1.5, lambda: order.append("mid"))
    while queue:
        queue.pop().callback()
    assert order == ["early", "mid", "late"]


def test_same_time_events_are_fifo():
    queue = EventQueue()
    order = []
    for tag in ("a", "b", "c"):
        queue.push(1.0, lambda tag=tag: order.append(tag))
    while queue:
        queue.pop().callback()
    assert order == ["a", "b", "c"]


def test_cancelled_events_are_skipped():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    event.cancel()
    assert len(queue) == 1
    assert queue.pop().time == 2.0


def test_peek_time_skips_cancelled():
    queue = EventQueue()
    first = queue.push(1.0, lambda: None)
    queue.push(3.0, lambda: None)
    assert queue.peek_time() == 1.0
    first.cancel()
    assert queue.peek_time() == 3.0


def test_peek_time_empty_returns_none():
    assert EventQueue().peek_time() is None


def test_pop_empty_raises():
    with pytest.raises(SchedulingError):
        EventQueue().pop()


def test_nan_time_rejected():
    with pytest.raises(SchedulingError):
        EventQueue().push(float("nan"), lambda: None)


def test_len_counts_only_live_events():
    queue = EventQueue()
    events = [queue.push(float(i), lambda: None) for i in range(5)]
    events[0].cancel()
    events[3].cancel()
    assert len(queue) == 3
    assert bool(queue)


def test_cancel_keeps_live_count_consistent():
    """The O(1) live count agrees with a brute-force scan at every step."""
    queue = EventQueue()
    events = [queue.push(float(i), lambda: None) for i in range(10)]

    def brute_force():
        return sum(
            1 for event in queue.raw_heap() if not event.cancelled
        )

    for index in (0, 7, 3):
        events[index].cancel()
        assert len(queue) == brute_force()
    # Double-cancel must not decrement twice.
    events[7].cancel()
    assert len(queue) == brute_force() == 7
    # Pops interleaved with cancels stay consistent too.  The pop
    # skips cancelled event 0 and returns event 1; cancelling the
    # popped event afterwards must not decrement.
    assert queue.pop() is events[1]
    events[1].cancel()
    assert len(queue) == brute_force() == 6
    events[2].cancel()
    assert len(queue) == brute_force() == 5
    while queue:
        queue.pop()
    assert len(queue) == 0
    assert not queue


def test_cancel_after_pop_is_harmless():
    """Cancelling an event already executed must not corrupt the count."""
    queue = EventQueue()
    first = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    popped = queue.pop()
    assert popped is first
    first.cancel()
    assert len(queue) == 1
    assert queue.pop().time == 2.0
    assert len(queue) == 0


def test_compaction_bounds_heap_growth():
    """Cancelling most of a large heap rebuilds it instead of growing."""
    queue = EventQueue()
    events = [queue.push(float(i), lambda: None) for i in range(200)]
    for event in events[:150]:
        event.cancel()
    assert len(queue) == 50
    # Lazy compaction kicked in: the raw heap dropped the cancelled
    # majority instead of holding all 200 entries (the rebuild fires
    # once cancelled entries outnumber live ones).
    assert queue.depth < 100
    # Order and contents survive the rebuild.
    times = [queue.pop().time for _ in range(len(queue))]
    assert times == sorted(float(i) for i in range(150, 200))


def test_small_heaps_skip_compaction():
    """Tiny heaps are not worth rebuilding; cancelled entries may linger."""
    queue = EventQueue()
    events = [queue.push(float(i), lambda: None) for i in range(10)]
    for event in events[:9]:
        event.cancel()
    assert len(queue) == 1
    assert queue.depth == 10  # below the compaction threshold
    assert queue.pop().time == 9.0
