"""Tests for the synthetic workload generator and BEAM rate coalescing."""

import pytest

from repro.apps import create_app
from repro.core import Scenario, Scheme, run_scenario
from repro.errors import WorkloadError
from repro.workloads import make_synthetic_app
from repro.workloads.combos import validate_combos


def test_synthetic_app_profile_derivation():
    app = make_synthetic_app("syn", sensor_ids=("S4",), rate_hz=100.0)
    assert app.profile.samples_per_window("S4") == 100
    assert app.profile.interrupts_per_window == 100
    assert app.profile.sensor_data_bytes == 100 * 12


def test_synthetic_app_computes_real_aggregates():
    from repro.apps.offline import collect_window
    from repro.sensors import ConstantWaveform

    app = make_synthetic_app("syn", rate_hz=50.0)
    window = collect_window(app, waveforms={"S4": ConstantWaveform(7.0)})
    result = app.compute(window)
    stats = result.payload["stats"]["S4"]
    assert stats["n"] == 50
    assert stats["mean"] == pytest.approx(7.0)
    assert stats["min"] == stats["max"] == pytest.approx(7.0)


def test_synthetic_app_runs_under_every_scheme():
    for scheme in (Scheme.BASELINE, Scheme.BATCHING, Scheme.COM):
        app = make_synthetic_app("syn", rate_hz=200.0, mips=5.0)
        result = run_scenario(Scenario(apps=[app], scheme=scheme))
        assert result.results_ok, scheme


def test_synthetic_heavy_app_rejected_by_com():
    from repro.errors import OffloadError

    app = make_synthetic_app("bigsyn", rate_hz=10.0, heavy=True)
    with pytest.raises(OffloadError):
        run_scenario(Scenario(apps=[app], scheme=Scheme.COM))


# ----------------------------------------------------------------------
# BEAM rate coalescing
# ----------------------------------------------------------------------
def test_beam_decimates_slower_subscriber():
    fast = create_app("A2")  # S4 @ 1 kHz
    slow = make_synthetic_app("slow", sensor_ids=("S4",), rate_hz=100.0)
    result = run_scenario(Scenario(apps=[fast, slow], scheme=Scheme.BEAM))
    # One shared stream at the fast rate.
    assert result.interrupt_count == 1000
    assert result.result_payloads("stepcounter")[0]["samples"] == 1000
    assert result.result_payloads("slow")[0]["stats"]["S4"]["n"] == 100


def test_beam_rejects_non_divisible_rates():
    fast = create_app("A2")  # 1 kHz
    odd = make_synthetic_app("odd", sensor_ids=("S4",), rate_hz=300.0)
    with pytest.raises(WorkloadError):
        run_scenario(Scenario(apps=[fast, odd], scheme=Scheme.BEAM))


def test_beam_rejects_mismatched_windows():
    a2 = create_app("A2")
    long_window = make_synthetic_app(
        "longwin", sensor_ids=("S4",), rate_hz=1000.0, window_s=2.0
    )
    with pytest.raises(WorkloadError):
        run_scenario(Scenario(apps=[a2, long_window], scheme=Scheme.BEAM))


def test_beam_equal_rate_sharing_unchanged():
    result = run_scenario(
        Scenario(
            apps=[create_app("A2"), create_app("A7")], scheme=Scheme.BEAM
        )
    )
    assert result.interrupt_count == 1000


# ----------------------------------------------------------------------
# combos table
# ----------------------------------------------------------------------
def test_fig11_combos_are_valid():
    assert validate_combos() == []
