"""Unit tests for the SensorDevice hardware model."""

import pytest

from repro.hw import IoTHub
from repro.sensors import ConstantWaveform, SensorDevice, get_spec


def test_acquire_returns_sample_with_spec_bytes():
    hub = IoTHub()
    device = SensorDevice.attach(hub, "S4", ConstantWaveform(1.0))
    samples = []

    def reader():
        sample = yield from device.acquire()
        samples.append(sample)

    hub.sim.spawn(reader())
    hub.run()
    assert len(samples) == 1
    sample = samples[0]
    assert sample.sensor_id == "S4"
    assert sample.nbytes == 12
    assert sample.seq == 1
    assert hub.sim.now == pytest.approx(get_spec("S4").read_time_s)


def test_concurrent_reads_serialize_on_rail():
    hub = IoTHub()
    device = SensorDevice.attach(hub, "S4", ConstantWaveform(1.0))
    times = []

    def reader():
        yield from device.acquire()
        times.append(hub.sim.now)

    hub.sim.spawn(reader())
    hub.sim.spawn(reader())
    hub.run()
    read_time = get_spec("S4").read_time_s
    assert times[0] == pytest.approx(read_time)
    assert times[1] == pytest.approx(2 * read_time)
    assert device.read_count == 2


def test_rail_power_high_only_during_read():
    hub = IoTHub()
    device = SensorDevice.attach(hub, "S1", ConstantWaveform(1.0))

    def reader():
        yield from device.acquire()

    hub.sim.spawn(reader())
    hub.run()
    active = hub.recorder.time_in_state(
        "sensor:S1", SensorDevice.READ, hub.sim.now
    )
    assert active == pytest.approx(get_spec("S1").read_time_s)
    # Burst power includes the MCU IO-controller rail.
    read_change = hub.recorder.changes("sensor:S1")[1]
    expected = (
        get_spec("S1").typical_power_w
        + hub.calibration.mcu.sensor_read_power_w
    )
    assert read_change.power_w == pytest.approx(expected)


def test_default_waveform_used_when_not_injected():
    hub = IoTHub()
    device = SensorDevice.attach(hub, "S2")
    assert device.waveform is not None


def test_duty_cycle_limit():
    hub = IoTHub()
    device = SensorDevice.attach(hub, "S6", ConstantWaveform(0.0))
    assert device.duty_cycle_limit_hz == pytest.approx(10_000.0)


def test_sample_values_follow_waveform_determinism():
    hub_a = IoTHub()
    device_a = SensorDevice.attach(hub_a, "S4")
    hub_b = IoTHub()
    device_b = SensorDevice.attach(hub_b, "S4")
    out_a, out_b = [], []

    def reader(device, out):
        sample = yield from device.acquire()
        out.append(sample.value)

    hub_a.sim.spawn(reader(device_a, out_a))
    hub_b.sim.spawn(reader(device_b, out_b))
    hub_a.run()
    hub_b.run()
    assert (out_a[0] == out_b[0]).all()
