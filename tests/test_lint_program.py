"""Whole-program lint passes: call graph, determinism chains, unit
dataflow, pickle safety, the incremental cache and the new reporters.

The subject is the fixture mini-project under
``tests/fixtures/lint_program/`` — one seeded bug per ``program-*``
rule, one call-graph shape per resolver (direct, callback,
receiver-type, registry dispatch)."""

import json
import shutil
import subprocess
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    LintCache,
    SARIF_VERSION,
    build_program,
    lint_paths,
    render_sarif,
    resolve_rules,
    tokens_cover,
)
from repro.analysis.changed import ChangedFilesError, changed_report_paths
from repro.analysis.program import (
    find_impure_reaches,
    find_pickle_hazards,
    find_unit_mismatches,
    module_name_for_path,
)
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURE = REPO_ROOT / "tests" / "fixtures" / "lint_program"


def read_sources(root):
    """{path: source} for every .py file under ``root``."""
    return {
        str(path): path.read_text(encoding="utf-8")
        for path in sorted(Path(root).rglob("*.py"))
    }


@pytest.fixture(scope="module")
def fixture_index():
    """Program index over the fixture mini-project (built once)."""
    return build_program(read_sources(FIXTURE))


def fixture_findings(select):
    """Lint the fixture dir with a rule selection."""
    return lint_paths([str(FIXTURE)], select=select)


# ----------------------------------------------------------------------
# call graph
# ----------------------------------------------------------------------
class TestCallGraph:
    def test_module_names_walk_packages(self):
        path = FIXTURE / "proj" / "sim" / "kernel.py"
        assert module_name_for_path(str(path)) == "proj.sim.kernel"

    def test_direct_cross_module_edge(self, fixture_index):
        edges = fixture_index.call_edges()
        targets = [t for t, _ in edges["proj.sim.kernel:advance"]]
        assert "proj.clocks:jitter" in targets

    def test_callback_edge_from_bare_name_argument(self, fixture_index):
        edges = fixture_index.call_edges()
        targets = [t for t, _ in edges["proj.sim.kernel:schedule"]]
        assert "proj.clocks:jitter" in targets

    def test_receiver_type_method_edge(self, fixture_index):
        edges = fixture_index.call_edges()
        targets = [t for t, _ in edges["proj.sim.kernel:sample"]]
        assert "proj.clocks:Meter.read" in targets

    def test_registry_dispatch_edge(self, fixture_index):
        edges = fixture_index.call_edges()
        targets = [t for t, _ in edges["proj.sim.kernel:dispatch"]]
        assert "proj.plugins:ThermalScheme.build" in targets

    def test_registry_dispatch_respects_registry_kind(self, fixture_index):
        # get_scheme callers must not conjure edges into @register_backend
        # classes (the imprecision that false-positived the real tree).
        edges = fixture_index.call_edges()
        targets = [t for t, _ in edges["proj.sim.kernel:dispatch"]]
        assert "proj.plugins:SocketishBackend.create" not in targets


# ----------------------------------------------------------------------
# determinism pass
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_every_entry_reaches_the_sink(self, fixture_index):
        reaches = {r.entry: r for r in find_impure_reaches(fixture_index)}
        assert set(reaches) == {
            "proj.sim.kernel:advance",
            "proj.sim.kernel:schedule",
            "proj.sim.kernel:sample",
            "proj.sim.kernel:dispatch",
        }

    def test_chain_is_full_evidence_trail(self, fixture_index):
        reaches = {r.entry: r for r in find_impure_reaches(fixture_index)}
        dispatch = reaches["proj.sim.kernel:dispatch"]
        assert dispatch.chain == (
            "proj.sim.kernel:dispatch",
            "proj.plugins:ThermalScheme.build",
            "proj.clocks:stamp",
        )
        assert len(dispatch.lines) == len(dispatch.chain) - 1
        assert dispatch.sink.kind == "wallclock"
        assert "time.time" in dispatch.describe()

    def test_findings_carry_chain_data(self):
        findings = fixture_findings(["program-det"])
        assert len(findings) == 4
        by_entry = {f.data["chain"][0]: f for f in findings}
        chain = by_entry["proj.sim.kernel:sample"].data["chain"]
        assert chain[1] == "proj.clocks:Meter.read"
        assert "->" in by_entry["proj.sim.kernel:sample"].message

    def test_direct_sinks_are_not_reported_here(self, fixture_index):
        # stamp() itself contains the sink but lives outside the core;
        # and no entry with a *direct* (zero-hop) sink exists — the pass
        # only reports impurity arriving through calls.
        for reach in find_impure_reaches(fixture_index):
            assert len(reach.chain) >= 2


# ----------------------------------------------------------------------
# unit dataflow pass
# ----------------------------------------------------------------------
class TestUnitsFlow:
    def test_one_mismatch_per_seam(self, fixture_index):
        seams = sorted(
            m.seam for m in find_unit_mismatches(fixture_index)
        )
        assert seams == ["assign", "call", "return"]

    def test_call_seam_reports_param_and_units(self):
        findings = fixture_findings(["program-units-call-mismatch"])
        assert len(findings) == 1
        finding = findings[0]
        assert finding.data["expected"] == "s"
        assert finding.data["actual"] == "ms"
        assert "timeout_s" in finding.message

    def test_return_and_assign_seams_fire(self):
        rules = sorted(
            f.rule_id for f in fixture_findings(["program-units"])
        )
        assert rules == [
            "program-units-assign-mismatch",
            "program-units-call-mismatch",
            "program-units-return-mismatch",
        ]


# ----------------------------------------------------------------------
# pickle-safety pass
# ----------------------------------------------------------------------
class TestPickleSafety:
    def test_hazard_kinds(self, fixture_index):
        kinds = sorted(
            h.kind
            for h in find_pickle_hazards(fixture_index)
            if "ship_reviewed" not in h.function
        )
        assert kinds == ["closure", "lambda", "live-handle"]

    def test_lambda_rule_fires(self):
        findings = fixture_findings(["program-pickle-lambda"])
        assert [f.line for f in findings] == [15]
        assert "lambda" in findings[0].message

    def test_capture_rule_reports_closure_and_live_handle(self):
        findings = fixture_findings(["program-pickle-unsafe-capture"])
        kinds = sorted(f.data["kind"] for f in findings)
        assert kinds == ["closure", "live-handle"]
        closure = next(
            f for f in findings if f.data["kind"] == "closure"
        )
        assert "offset" in closure.message

    def test_prefix_suppression_silences_the_family(self):
        # pool.ship_reviewed carries `disable=program-pickle` on the
        # boundary line; no pickle finding may point there.
        findings = fixture_findings(["program-pickle"])
        paths_lines = {(f.path, f.line) for f in findings}
        pool = str(FIXTURE / "proj" / "pool.py")
        assert (pool, 43) not in paths_lines
        assert len(findings) == 3


# ----------------------------------------------------------------------
# selection and token prefixes
# ----------------------------------------------------------------------
class TestSelection:
    def test_tokens_cover_hyphen_prefixes(self):
        assert tokens_cover({"program"}, "program-det-impure-reach")
        assert tokens_cover({"program-det"}, "program-det-impure-reach")
        assert not tokens_cover({"program-det"}, "program-units-call-mismatch")
        assert not tokens_cover({"prog"}, "program-det-impure-reach")

    def test_select_program_family_picks_all_program_rules(self):
        rules = resolve_rules(select=["program"])
        ids = {rule.rule_id for rule in rules}
        assert ids == {
            "program-det-impure-reach",
            "program-units-call-mismatch",
            "program-units-return-mismatch",
            "program-units-assign-mismatch",
            "program-pickle-lambda",
            "program-pickle-unsafe-capture",
        }

    def test_two_segment_family_selection(self):
        findings = fixture_findings(["program-det"])
        assert {f.rule_id for f in findings} == {
            "program-det-impure-reach"
        }

    def test_no_program_flag_skips_passes(self):
        findings = lint_paths(
            [str(FIXTURE)], select=["program"], program=False
        )
        assert findings == []


# ----------------------------------------------------------------------
# incremental cache
# ----------------------------------------------------------------------
class TestIncrementalCache:
    def setup_project(self, tmp_path):
        root = tmp_path / "proj"
        shutil.copytree(FIXTURE / "proj", root)
        return root

    def test_warm_run_does_zero_reparses(self, tmp_path):
        root = self.setup_project(tmp_path)
        cache = LintCache(str(tmp_path / "cache"))
        cold = lint_paths([str(root)], cache=cache)
        assert cache.stats()["parses"] == 8
        warm_cache = LintCache(str(tmp_path / "cache"))
        warm = lint_paths([str(root)], cache=warm_cache)
        stats = warm_cache.stats()
        assert stats["parses"] == 0
        assert stats["summary_hits"] == 8
        assert stats["finding_hits"] == 8
        assert [f.to_json() for f in warm] == [f.to_json() for f in cold]

    def test_edit_invalidates_only_that_file(self, tmp_path):
        root = self.setup_project(tmp_path)
        cache_dir = str(tmp_path / "cache")
        lint_paths([str(root)], cache=LintCache(cache_dir))
        clocks = root / "clocks.py"
        clocks.write_text(
            clocks.read_text(encoding="utf-8") + "\n\nEPOCH = 0\n",
            encoding="utf-8",
        )
        cache = LintCache(cache_dir)
        lint_paths([str(root)], cache=cache)
        assert cache.stats()["parses"] == 1

    def test_identical_content_files_keep_distinct_modules(self, tmp_path):
        # Two byte-identical files must not share a cached summary —
        # the content hash is salted with the path.
        (tmp_path / "pkg_a").mkdir()
        (tmp_path / "pkg_b").mkdir()
        body = '"""Twin module."""\n\n\ndef go():\n    """Go."""\n'
        for pkg in ("pkg_a", "pkg_b"):
            (tmp_path / pkg / "__init__.py").write_text('"""P."""\n')
            (tmp_path / pkg / "mod.py").write_text(body)
        cache = LintCache(str(tmp_path / "cache"))
        lint_paths([str(tmp_path / "pkg_a"), str(tmp_path / "pkg_b")],
                   cache=cache)
        warm = LintCache(str(tmp_path / "cache"))
        index = build_program(
            read_sources(tmp_path / "pkg_a")
            | read_sources(tmp_path / "pkg_b"),
            cache=warm,
        )
        assert warm.stats()["parses"] == 0
        assert {"pkg_a.mod", "pkg_b.mod"} <= set(index.modules)

    def test_ruleset_change_reuses_summaries(self, tmp_path):
        root = self.setup_project(tmp_path)
        cache_dir = str(tmp_path / "cache")
        lint_paths([str(root)], cache=LintCache(cache_dir))
        cache = LintCache(cache_dir)
        # Different per-file ruleset -> findings cache misses, but the
        # summaries (ruleset-independent) still serve the program pass.
        lint_paths([str(root)], select=["program", "units"], cache=cache)
        assert cache.stats()["summary_hits"] == 8


# ----------------------------------------------------------------------
# CLI integration: --cache / --no-program / --out
# ----------------------------------------------------------------------
class TestCliIntegration:
    def run_json(self, capsys, *argv):
        code = main(["lint", *argv, "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        return code, payload

    def test_cache_flag_cold_then_warm(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        target = str(FIXTURE)
        code, cold = self.run_json(capsys, target, "--cache", cache_dir)
        assert code == 1
        assert cold["cache"]["parses"] == 8
        code, warm = self.run_json(capsys, target, "--cache", cache_dir)
        assert warm["cache"]["parses"] == 0
        assert warm["counts"] == cold["counts"]

    def test_no_program_drops_program_findings(self, capsys):
        code, payload = self.run_json(
            capsys, str(FIXTURE), "--no-program"
        )
        assert code == 0
        assert payload["findings"] == []

    def test_out_writes_file(self, tmp_path):
        out = tmp_path / "report.json"
        code = main(
            ["lint", str(FIXTURE), "--format", "json", "--out", str(out)]
        )
        assert code == 1
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["counts"]["program-det-impure-reach"] == 4


# ----------------------------------------------------------------------
# SARIF reporter
# ----------------------------------------------------------------------
SARIF_MINI_SCHEMA = {
    # Structural subset of the SARIF 2.1.0 schema: the properties
    # GitHub code scanning requires of an uploaded log.
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "version": {"const": "2.1.0"},
        "$schema": {"type": "string"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": [
                                "ruleId",
                                "message",
                                "locations",
                            ],
                            "properties": {
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                },
                                "level": {
                                    "enum": [
                                        "error",
                                        "warning",
                                        "note",
                                        "none",
                                    ]
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "required": [
                                            "physicalLocation"
                                        ],
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


class TestSarif:
    def make_log(self):
        findings = fixture_findings(["program"])
        return json.loads(render_sarif(findings, files_checked=8))

    def test_log_matches_sarif_2_1_0_shape(self):
        jsonschema = pytest.importorskip("jsonschema")
        jsonschema.validate(self.make_log(), SARIF_MINI_SCHEMA)

    def test_rule_index_points_into_rules_block(self):
        log = self.make_log()
        run = log["runs"][0]
        rules = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert log["version"] == SARIF_VERSION
        for result in run["results"]:
            assert rules[result["ruleIndex"]] == result["ruleId"]
            region = result["locations"][0]["physicalLocation"]["region"]
            assert region["startLine"] >= 1

    def test_cli_sarif_format(self, tmp_path):
        out = tmp_path / "lint.sarif"
        code = main(
            ["lint", str(FIXTURE), "--format", "sarif", "--out", str(out)]
        )
        assert code == 1
        log = json.loads(out.read_text(encoding="utf-8"))
        assert log["version"] == "2.1.0"
        assert len(log["runs"][0]["results"]) == 10


# ----------------------------------------------------------------------
# --changed: git base + reverse-dependency closure
# ----------------------------------------------------------------------
def git(repo, *argv):
    """Run git in ``repo`` with a hermetic identity."""
    subprocess.run(
        ["git", *argv],
        cwd=repo,
        check=True,
        capture_output=True,
        env={
            "GIT_AUTHOR_NAME": "t",
            "GIT_AUTHOR_EMAIL": "t@t",
            "GIT_COMMITTER_NAME": "t",
            "GIT_COMMITTER_EMAIL": "t@t",
            "HOME": str(repo),
            "PATH": "/usr/bin:/bin:/usr/local/bin",
        },
    )


class TestChanged:
    def make_repo(self, tmp_path):
        repo = tmp_path / "work"
        pkg = repo / "pkg"
        pkg.mkdir(parents=True)
        (pkg / "__init__.py").write_text('"""P."""\n')
        (pkg / "units.py").write_text(
            '"""Base units."""\n\n\ndef ms(v):\n    """Ms."""\n'
            "    return v / 1e3\n"
        )
        (pkg / "engine.py").write_text(
            '"""Engine imports units."""\n\nfrom .units import ms\n\n\n'
            'def run():\n    """Run."""\n    return ms(5)\n'
        )
        (pkg / "island.py").write_text(
            '"""Imports nothing."""\n\n\ndef idle():\n    """Idle."""\n'
        )
        git(repo, "init", "-q")
        git(repo, "add", ".")
        git(repo, "commit", "-qm", "seed")
        return repo

    def test_closure_includes_reverse_importers(self, tmp_path):
        repo = self.make_repo(tmp_path)
        units = repo / "pkg" / "units.py"
        units.write_text(
            units.read_text(encoding="utf-8") + "\n\nSCALE = 1\n",
            encoding="utf-8",
        )
        reported = changed_report_paths(
            "HEAD", [str(repo / "pkg")], repo_root=str(repo)
        )
        names = sorted(Path(p).name for p in reported)
        assert "units.py" in names      # the change itself
        assert "engine.py" in names     # imports units -> re-linted
        assert "island.py" not in names  # untouched, not an importer

    def test_clean_tree_reports_nothing(self, tmp_path):
        repo = self.make_repo(tmp_path)
        reported = changed_report_paths(
            "HEAD", [str(repo / "pkg")], repo_root=str(repo)
        )
        assert reported == []

    def test_bad_base_ref_raises(self, tmp_path):
        repo = self.make_repo(tmp_path)
        with pytest.raises(ChangedFilesError):
            changed_report_paths(
                "no-such-ref", [str(repo / "pkg")], repo_root=str(repo)
            )

    def test_cli_changed_bad_ref_exits_2(self, capsys):
        code = main(
            ["lint", str(FIXTURE), "--changed", "no-such-ref-xyz"]
        )
        capsys.readouterr()
        assert code == 2

    def test_report_paths_filter_restricts_findings(self):
        pool = str(FIXTURE / "proj" / "pool.py")
        findings = lint_paths(
            [str(FIXTURE)], select=["program"], report_paths=[pool]
        )
        assert findings  # pickle findings live in pool.py
        assert {f.path for f in findings} == {pool}
