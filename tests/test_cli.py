"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_run_command(capsys):
    assert main(["run", "A2", "--scheme", "batching"]) == 0
    out = capsys.readouterr().out
    assert "scheme=batching" in out
    assert "Data Transfer" in out
    assert "mJ" in out


def test_run_with_batch_size(capsys):
    assert main(["run", "A2", "--scheme", "batching", "--batch-size", "100"]) == 0
    out = capsys.readouterr().out
    assert "interrupts=10 " in out


def test_compare_command(capsys):
    assert main(["compare", "A2", "--schemes", "baseline", "com"]) == 0
    out = capsys.readouterr().out
    assert "baseline" in out and "com" in out
    assert "Savings %" in out


def test_tables_command(capsys):
    assert main(["tables"]) == 0
    out = capsys.readouterr().out
    assert "Accelerometer" in out
    assert "Speech-To-Text" in out
    assert "S10" in out


def test_apps_command(capsys):
    assert main(["apps"]) == 0
    out = capsys.readouterr().out
    assert "stepcounter" in out
    assert "heavy-weight" in out  # A11's rejection reason


def test_schemes_command_lists_registry(capsys):
    assert main(["schemes"]) == 0
    out = capsys.readouterr().out
    for name in ("polling", "baseline", "batching", "com", "beam", "bcom"):
        assert name in out
    assert "MCU" in out  # docstring summaries are printed


def test_compare_with_workers_and_cache(tmp_path, capsys):
    cache = str(tmp_path / "cache")
    args = ["compare", "A2", "--schemes", "baseline", "com",
            "--workers", "2", "--cache-dir", cache]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert main(args) == 0  # second run served from the cache
    second = capsys.readouterr().out
    assert first == second
    assert list((tmp_path / "cache").rglob("*.pkl"))


def test_run_with_cache_dir(tmp_path, capsys):
    cache = str(tmp_path / "cache")
    assert main(["run", "A2", "--scheme", "com", "--cache-dir", cache]) == 0
    out = capsys.readouterr().out
    assert "scheme=com" in out


def test_cache_stats_gc_clear_roundtrip(tmp_path, capsys):
    cache = str(tmp_path / "cache")
    assert main(["run", "A2", "--scheme", "com", "--cache-dir", cache]) == 0
    capsys.readouterr()
    assert main(["cache", "stats", "--cache-dir", cache]) == 0
    out = capsys.readouterr().out
    assert "entries:     1" in out
    assert "shard dirs:  1" in out
    assert main(
        ["cache", "gc", "--cache-dir", cache, "--max-bytes", "0"]
    ) == 0
    assert "evicted 1 entry" in capsys.readouterr().out
    assert main(["cache", "clear", "--cache-dir", cache]) == 0
    assert "cleared 0 entries" in capsys.readouterr().out
    assert list((tmp_path / "cache").rglob("*.pkl")) == []


def test_cache_gc_requires_max_bytes(tmp_path, capsys):
    assert main(["cache", "gc", "--cache-dir", str(tmp_path)]) == 2
    assert "--max-bytes is required" in capsys.readouterr().err


def test_run_with_cache_max_bytes_caps_directory(tmp_path, capsys):
    cache = str(tmp_path / "cache")
    args = ["run", "A2", "--scheme", "com", "--cache-dir", cache,
            "--cache-max-bytes", "0"]
    assert main(args) == 0
    capsys.readouterr()
    # The post-run GC pass evicted the (sole) entry: cap is 0 bytes.
    assert list((tmp_path / "cache").rglob("*.pkl")) == []


def test_parser_rejects_unknown_scheme():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "A2", "--scheme", "warp"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_rejects_unknown_app():
    from repro.errors import WorkloadError

    with pytest.raises(WorkloadError):
        main(["run", "A99"])


# ----------------------------------------------------------------------
# execution-backend flags and the worker agent subcommand
# ----------------------------------------------------------------------
def test_run_with_explicit_serial_backend(capsys):
    assert main(["run", "A2", "--backend", "serial"]) == 0
    assert "scheme=baseline" in capsys.readouterr().out


def test_compare_through_socket_backend(capsys):
    from repro.core.backends import WorkerAgent

    agents = [WorkerAgent().start() for _ in range(2)]
    hosts = ",".join(agent.address for agent in agents)
    try:
        assert main(
            [
                "compare",
                "A2",
                "--schemes",
                "baseline",
                "batching",
                "--backend",
                "socket",
                "--backend-hosts",
                hosts,
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "Savings %" in out
    finally:
        for agent in agents:
            agent.stop()


def test_parser_rejects_unknown_backend():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "A2", "--backend", "warp"])


def test_profile_refuses_remote_backends(capsys):
    assert main(["profile", "A2", "--backend", "process"]) == 2
    err = capsys.readouterr().err
    assert "trace recorder" in err


def test_worker_serves_then_exits_after_max_requests(capsys):
    import re
    import socket
    import threading

    from repro.cli import main as cli_main
    from repro.core.backends.sockets import recv_frame, send_frame

    # Run the CLI in a thread; --max-requests 1 makes it exit on its own.
    exit_codes = []
    thread = threading.Thread(
        target=lambda: exit_codes.append(
            cli_main(["worker", "--port", "0", "--max-requests", "1"])
        )
    )
    thread.start()
    # The startup line is machine-readable: scripts parse the port.
    address = None
    for _ in range(200):
        match = re.search(
            r"listening on (\S+)", capsys.readouterr().out
        )
        if match:
            address = match.group(1)
            break
        thread.join(0.05)
    assert address, "worker never announced its address"
    host, port = address.rsplit(":", 1)
    with socket.create_connection((host, int(port)), timeout=5) as sock:
        send_frame(sock, ("run", _double, [1, 2, 3], 0, None))
        status, payload = recv_frame(sock)
    assert (status, payload) == ("ok", [2, 4, 6])
    thread.join(timeout=5)
    assert not thread.is_alive()
    assert exit_codes == [0]


def _double(value):
    return value * 2
