"""HTTP-layer tests: endpoints, error statuses, streaming, the CLI."""

import json
import re
import threading
import urllib.error
import urllib.request
from contextlib import contextmanager

import pytest

from repro.cli import main
from repro.core.compare import compare_grid
from repro.core.engine import ScenarioEngine
from repro.errors import (
    JobSpecError,
    QuotaError,
    ServeError,
    UnknownJobError,
)
from repro.serve import (
    JobManager,
    ReproServer,
    ServeClient,
    canonical_json,
    result_artifact,
)

GRID = {"app_sets": [["A1"], ["A2", "A4"]], "schemes": ["baseline", "com"]}


@contextmanager
def serving(**manager_kwargs):
    """A background server over a fresh engine; yields a ServeClient."""
    engine = ScenarioEngine(memory_cache=16)
    manager = JobManager(engine, **manager_kwargs)
    server = ReproServer(manager, port=0)
    url = server.start_background()
    try:
        yield ServeClient(url)
    finally:
        server.stop_background()


def raw_request(url, method="GET", body=None):
    """One urllib round trip returning ``(status, parsed_json)``."""
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(url, data=data, method=method)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def test_http_submit_poll_result_bit_identity():
    with serving() as client:
        assert client.health()["ok"] is True
        job = client.grid(GRID["app_sets"], GRID["schemes"], client="t")
        assert job["state"] in ("pending", "running")
        final = client.wait(job["id"])
        assert final["state"] == "done"
        served = client.result(job["id"])["points"]
    grid = compare_grid(GRID["app_sets"], GRID["schemes"])
    direct = [
        result_artifact(grid[tuple(apps)][scheme])
        for apps in GRID["app_sets"]
        for scheme in GRID["schemes"]
    ]
    for ours, theirs in zip(direct, served):
        theirs = dict(theirs)
        theirs["fingerprint"] = None
        assert canonical_json(ours) == canonical_json(theirs)


def test_http_error_statuses():
    with serving(max_jobs_per_client=1) as client:
        # 404: unknown job id, via the client's exception mapping.
        with pytest.raises(UnknownJobError):
            client.job("j999")
        # 400: malformed spec.
        with pytest.raises(JobSpecError):
            client.submit({"kind": "run", "apps": []})
        # 400: spec valid JSON but not an object.
        status, payload = raw_request(
            f"{client.url}/jobs", method="POST", body=[1, 2]
        )
        assert status == 400
        assert "job spec" in payload["error"]["message"]
        # 404: unrouted path; 405: wrong method on a real path.
        status, _ = raw_request(f"{client.url}/nope")
        assert status == 404
        status, payload = raw_request(f"{client.url}/jobs", method="PUT")
        assert status == 405
        assert "POST" in payload["error"]["message"]


def test_http_quota_429_and_cancel():
    gate_entered = threading.Event()
    gate_release = threading.Event()

    def hook(job):
        gate_entered.set()
        gate_release.wait(timeout=30)

    try:
        with serving(
            max_jobs_per_client=1, chunk_points=1, executor_hook=hook
        ) as client:
            first = client.grid(
                GRID["app_sets"], GRID["schemes"], client="greedy"
            )
            assert gate_entered.wait(10)
            with pytest.raises(QuotaError):
                client.run(["A3"], client="greedy")
            status, payload = raw_request(
                f"{client.url}/jobs",
                method="POST",
                body={"kind": "run", "apps": ["A3"], "client": "greedy"},
            )
            assert status == 429
            assert payload["error"]["type"] == "QuotaError"
            # Result before terminal -> 409 via the generic ServeError.
            with pytest.raises(ServeError):
                client.result(first["id"])
            cancelled = client.cancel(first["id"])
            assert cancelled["cancel_requested"] is True
            gate_release.set()
            final = client.wait(first["id"])
            assert final["state"] == "cancelled"
            assert client.stats()["quota"]["rejections"] == 2
    finally:
        gate_release.set()


def test_http_event_stream_ndjson():
    with serving(chunk_points=1) as client:
        job = client.run(["A1", "A3"], scheme="baseline", windows=2)
        # follow=True blocks until terminal, straight over HTTP.
        records = list(client.events(job["id"], follow=True))
        kinds = [record["record"] for record in records]
        assert kinds[0] == "state"
        assert "progress" in kinds
        assert "snapshot" in kinds
        states = [
            r["state"] for r in records if r["record"] == "state"
        ]
        assert states[-1] == "done"
        # Raw wire format: one JSON object per line.
        raw = urllib.request.urlopen(
            f"{client.url}/jobs/{job['id']}/events?follow=0", timeout=30
        )
        assert raw.headers["Content-Type"] == "application/x-ndjson"
        lines = [line for line in raw.read().split(b"\n") if line]
        assert len(lines) == len(records)
        assert json.loads(lines[0])["job"] == job["id"]


def test_http_jobs_listing_and_stats():
    with serving() as client:
        client.run(["A1"], client="alpha")
        job_b = client.run(["A3"], client="beta")
        client.wait(job_b["id"])
        listing = client.jobs()
        assert {j["client"] for j in listing["jobs"]} == {"alpha", "beta"}
        only_beta = client.jobs(client="beta")
        assert [j["client"] for j in only_beta["jobs"]] == ["beta"]
        stats = client.stats()
        assert stats["jobs_finished"] >= 1
        assert "engine" in stats and "coalescer" in stats


def test_cli_serve_and_client_round_trip(capsys):
    exit_codes = []
    thread = threading.Thread(
        target=lambda: exit_codes.append(
            main(["serve", "--port", "0", "--max-jobs", "1"])
        )
    )
    thread.start()
    url = None
    for _ in range(200):
        match = re.search(
            r"listening on (\S+)", capsys.readouterr().out
        )
        if match:
            url = match.group(1)
            break
        thread.join(0.05)
    assert url, "serve never announced its URL"
    assert main(
        ["client", "--url", url, "run", "A1", "--wait"]
    ) == 0
    out = capsys.readouterr().out
    payload = json.loads(out[out.index("{"):])
    assert payload["state"] == "done"
    assert len(payload["points"]) == 1
    # --max-jobs 1 + quiescence: the server exits on its own.
    thread.join(timeout=30)
    assert not thread.is_alive()
    assert exit_codes == [0]


def test_cli_client_status_events_and_stats(capsys):
    with serving(chunk_points=1) as client:
        job = client.grid(GRID["app_sets"], GRID["schemes"])
        assert main(
            ["client", "--url", client.url, "wait", job["id"]]
        ) == 0
        capsys.readouterr()
        assert main(
            ["client", "--url", client.url, "status", job["id"]]
        ) == 0
        assert json.loads(capsys.readouterr().out)["state"] == "done"
        assert main(
            ["client", "--url", client.url, "events", job["id"],
             "--no-follow"]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert all(json.loads(line)["job"] == job["id"] for line in lines)
        assert main(["client", "--url", client.url, "stats"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["engine"]["scenarios_run"] == 4


def test_index_lists_endpoints():
    with serving() as client:
        index = client.index()
        assert "POST /jobs" in index["endpoints"]
        assert "GET /jobs/{id}/events" in index["endpoints"]
        assert index["artifact_version"] == 2
