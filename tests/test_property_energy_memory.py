"""Property-based tests: energy integration and memory accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.energy import EnergyReport, PowerMonitor
from repro.errors import CapacityError
from repro.hw.memory import MemoryRegion
from repro.hw.power import Routine
from repro.sim.trace import StateChange, TimelineRecorder

routines = st.sampled_from([r for r in Routine.ORDER])


@st.composite
def power_traces(draw):
    """A per-component piecewise-constant power trace."""
    count = draw(st.integers(1, 12))
    times = sorted(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=9.0, allow_nan=False),
                min_size=count,
                max_size=count,
            )
        )
    )
    return [
        (
            time,
            draw(st.floats(min_value=0.0, max_value=10.0, allow_nan=False)),
            draw(routines),
        )
        for time in times
    ]


@settings(max_examples=100)
@given(
    st.dictionaries(
        st.sampled_from(["cpu", "mcu", "bus"]), power_traces(), min_size=1
    )
)
def test_integration_matches_manual_sum(traces):
    recorder = TimelineRecorder()
    end_time = 10.0
    expected = 0.0
    for component, trace in traces.items():
        for index, (time, power, routine) in enumerate(trace):
            recorder.record(
                StateChange(
                    time=time,
                    component=component,
                    state=f"s{index}",
                    power_w=power,
                    routine=routine,
                )
            )
        for (time, power, _), nxt in zip(trace, trace[1:] + [None]):
            next_time = nxt[0] if nxt else end_time
            expected += power * max(0.0, next_time - time)
    report = PowerMonitor(recorder, idle_floor_power_w=0.0).measure(end_time)
    assert report.total_j == pytest.approx(expected, rel=1e-9, abs=1e-9)
    # Conservation across both views.
    assert sum(report.by_routine.values()) == pytest.approx(report.total_j)
    assert sum(report.by_component.values()) == pytest.approx(report.total_j)


@settings(max_examples=100)
@given(
    st.floats(min_value=0.01, max_value=100.0),
    st.floats(min_value=0.0, max_value=5.0),
    st.floats(min_value=0.1, max_value=10.0),
)
def test_marginal_bounds(total_power, floor_power, duration):
    report = EnergyReport(duration_s=duration, idle_floor_power_w=floor_power)
    report.by_component_routine[("cpu", Routine.DATA_TRANSFER)] = (
        total_power * duration
    )
    assert 0.0 <= report.marginal_j <= report.total_j + 1e-12


@settings(max_examples=60)
@given(
    st.dictionaries(
        routines,
        st.floats(min_value=0.0, max_value=50.0),
        min_size=1,
    ),
    st.floats(min_value=0.0, max_value=3.0),
)
def test_scaled_bars_sum_to_normalized_total(routine_energy, floor):
    baseline = EnergyReport(duration_s=1.0, idle_floor_power_w=floor)
    report = EnergyReport(duration_s=1.0, idle_floor_power_w=floor)
    for routine, joules in routine_energy.items():
        baseline.by_component_routine[("cpu", routine)] = joules * 2 + 1.0
        report.by_component_routine[("cpu", routine)] = joules
    bars = report.scaled_routine_bars(baseline)
    assert sum(bars.values()) == pytest.approx(
        report.normalized_to(baseline), abs=1e-9
    )


# ----------------------------------------------------------------------
# memory region: random alloc/free sequences never corrupt accounting
# ----------------------------------------------------------------------
@settings(max_examples=100)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["alloc", "free"]),
            st.sampled_from(["a", "b", "c"]),
            st.integers(min_value=0, max_value=600),
        ),
        max_size=30,
    )
)
def test_memory_region_invariants(operations):
    region = MemoryRegion("ram", 1024)
    shadow = {}
    for op, label, nbytes in operations:
        if op == "alloc":
            if nbytes <= region.free_bytes:
                region.allocate(label, nbytes)
                shadow[label] = shadow.get(label, 0) + nbytes
            else:
                with pytest.raises(CapacityError):
                    region.allocate(label, nbytes)
        else:
            freed = region.free(label)
            assert freed == shadow.pop(label, 0)
        assert region.used_bytes == sum(shadow.values())
        assert 0 <= region.used_bytes <= region.capacity_bytes
        assert region.peak_bytes >= region.used_bytes
