"""Unit tests for the MFCC front end and DTW matcher."""

import numpy as np
import pytest

from repro.dsp import dtw_distance, frame_signal, hamming_window, mel_filterbank, mfcc
from repro.sensors.sound import VOCABULARY, synthesize_word


def test_hamming_window_endpoints_low_center_high():
    window = hamming_window(64)
    assert window[0] == pytest.approx(0.08, abs=1e-6)
    assert window[32] > 0.9


def test_hamming_window_rejects_bad_length():
    with pytest.raises(ValueError):
        hamming_window(0)


def test_frame_signal_shapes():
    frames = frame_signal(np.arange(1000.0), frame_length=256, hop_length=128)
    assert frames.shape[1] == 256
    assert frames.shape[0] == 1 + (1000 - 256) // 128


def test_frame_signal_pads_short_input():
    frames = frame_signal(np.arange(10.0), frame_length=64, hop_length=32)
    assert frames.shape == (1, 64)


def test_mel_filterbank_rows_cover_spectrum():
    bank = mel_filterbank(20, 256, 8000.0)
    assert bank.shape == (20, 129)
    assert (bank.sum(axis=1) > 0).all()
    assert bank.min() >= 0.0


def test_mfcc_shape_and_determinism():
    signal = np.sin(2 * np.pi * 440.0 * np.arange(4000) / 8000.0)
    features_a = mfcc(signal, 8000.0)
    features_b = mfcc(signal, 8000.0)
    assert features_a.shape[1] == 12
    assert np.allclose(features_a, features_b)


def test_mfcc_distinguishes_frequencies():
    t = np.arange(4000) / 8000.0
    low = mfcc(np.sin(2 * np.pi * 200.0 * t), 8000.0)
    high = mfcc(np.sin(2 * np.pi * 2000.0 * t), 8000.0)
    assert not np.allclose(low.mean(axis=0), high.mean(axis=0), atol=0.5)


def test_dtw_zero_for_identical_sequences():
    seq = np.random.default_rng(0).normal(size=(20, 4))
    assert dtw_distance(seq, seq) == pytest.approx(0.0, abs=1e-9)


def test_dtw_tolerates_time_warping():
    base = np.sin(np.linspace(0, 4 * np.pi, 60)).reshape(-1, 1)
    stretched = np.sin(np.linspace(0, 4 * np.pi, 90)).reshape(-1, 1)
    different = np.cos(np.linspace(0, 9 * np.pi, 60)).reshape(-1, 1)
    assert dtw_distance(base, stretched) < dtw_distance(base, different)


def test_dtw_rejects_dimension_mismatch():
    with pytest.raises(ValueError):
        dtw_distance(np.zeros((5, 2)), np.zeros((5, 3)))


def test_dtw_rejects_empty():
    with pytest.raises(ValueError):
        dtw_distance(np.zeros((0, 2)), np.zeros((5, 2)))


def test_word_templates_are_mutually_distinguishable():
    """MFCC+DTW must separate every vocabulary word from the others."""
    rate = 8000.0
    features = {
        word: mfcc(synthesize_word(word, rate), rate) for word in VOCABULARY
    }
    for word, feats in features.items():
        same = dtw_distance(
            feats, mfcc(synthesize_word(word, rate, seed=5), rate)
        )
        for other, other_feats in features.items():
            if other == word:
                continue
            cross = dtw_distance(feats, other_feats)
            assert same < cross, f"{word} confused with {other}"
