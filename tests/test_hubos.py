"""Unit tests for the hub OS layer: governor, IRQ service, transfers."""

import pytest

from repro.apps import create_app, light_weight_ids
from repro.calibration import default_calibration
from repro.hubos import CpuRestPolicy, SleepGovernor, characterize_apps, cpu_transfer
from repro.hubos.interrupts import service_interrupt
from repro.hw import IoTHub
from repro.hw.cpu import Cpu, CpuState
from repro.sim import Simulator
from repro.sim.trace import TimelineRecorder


def make_cpu(state=CpuState.IDLE):
    sim = Simulator()
    recorder = TimelineRecorder()
    return Cpu(sim, recorder, default_calibration().cpu, state)


# ----------------------------------------------------------------------
# rest policy
# ----------------------------------------------------------------------
def test_policy_next_work_lookup():
    policy = CpuRestPolicy([0.0, 0.001, 0.5, 1.0])
    assert policy.next_work_after(0.0) == 0.001
    assert policy.next_work_after(0.25) == 0.5
    assert policy.expected_idle(0.9) == pytest.approx(0.1)
    assert policy.expected_idle(2.0) is None


def test_policy_sorts_input():
    policy = CpuRestPolicy([3.0, 1.0, 2.0])
    assert policy.work_times == [1.0, 2.0, 3.0]


# ----------------------------------------------------------------------
# governor decisions
# ----------------------------------------------------------------------
def test_governor_stays_awake_for_short_gaps():
    cpu = make_cpu()
    governor = SleepGovernor(cpu)
    governor.rest(expected_idle_s=0.0007)  # baseline's 1 kHz gap
    assert cpu.psm.state == CpuState.IDLE
    assert governor.stay_awake_decisions == 1


def test_governor_sleeps_for_long_gaps():
    cpu = make_cpu()
    governor = SleepGovernor(cpu)
    governor.rest(expected_idle_s=0.9)  # batching's window-length gap
    assert cpu.psm.state == CpuState.SLEEP
    assert governor.sleep_decisions == 1


def test_governor_break_even_boundary():
    cpu = make_cpu()
    governor = SleepGovernor(cpu)
    edge = governor.break_even_s
    governor.rest(expected_idle_s=edge * 0.99)
    assert cpu.psm.state == CpuState.IDLE
    governor.rest(expected_idle_s=edge * 1.01)
    assert cpu.psm.state == CpuState.SLEEP


def test_governor_break_even_close_to_paper():
    governor = SleepGovernor(make_cpu())
    # The paper derives 1.14 ms; with the awake-idle power the gap is
    # 4 mJ / (4.5 - 1.5) W = 1.33 ms.
    assert governor.break_even_s == pytest.approx(1.33e-3, rel=0.01)


def test_governor_deep_sleep_when_no_work_and_allowed():
    cpu = make_cpu()
    governor = SleepGovernor(cpu)
    governor.rest(expected_idle_s=None, allow_deep=True)
    assert cpu.psm.state == CpuState.DEEP_SLEEP


def test_governor_shallow_sleep_when_no_work_not_allowed_deep():
    cpu = make_cpu()
    SleepGovernor(cpu).rest(expected_idle_s=None, allow_deep=False)
    assert cpu.psm.state == CpuState.SLEEP


def test_governor_deep_sleep_for_long_gaps_when_allowed():
    cpu = make_cpu()
    governor = SleepGovernor(cpu)
    governor.rest(expected_idle_s=1.0, allow_deep=True)
    assert cpu.psm.state == CpuState.DEEP_SLEEP
    # Short gaps still avoid deep sleep even when allowed.
    cpu2 = make_cpu()
    SleepGovernor(cpu2).rest(expected_idle_s=0.01, allow_deep=True)
    assert cpu2.psm.state == CpuState.SLEEP


def test_governor_never_disturbs_busy_cpu():
    cpu = make_cpu()
    cpu.psm.set_state(CpuState.BUSY)
    SleepGovernor(cpu).rest(expected_idle_s=5.0)
    assert cpu.psm.state == CpuState.BUSY


# ----------------------------------------------------------------------
# IRQ service + transfer
# ----------------------------------------------------------------------
def test_service_interrupt_wakes_sleeping_cpu():
    hub = IoTHub()
    hub.cpu.enter_sleep(deep=False, routine="idle")

    def handler():
        yield from service_interrupt(hub)

    hub.sim.spawn(handler())
    hub.run()
    assert hub.cpu.wake_count == 1
    expected = (
        hub.calibration.cpu.transition_time_s
        + hub.calibration.cpu.interrupt_handling_time_s
    )
    assert hub.sim.now == pytest.approx(expected)


def test_cpu_transfer_bulk_amortizes_per_sample_cost():
    cal = default_calibration()

    def run_transfer(bulk):
        hub = IoTHub(cpu_initial_state=CpuState.IDLE)

        def mover():
            yield from cpu_transfer(hub, nbytes=12_000, sample_count=1000, bulk=bulk)

        hub.sim.spawn(mover())
        hub.run()
        return hub.sim.now

    slow = run_transfer(bulk=False)
    fast = run_transfer(bulk=True)
    assert fast < slow
    wire = 20e-6 + 12_000 / cal.bus.bandwidth_bytes_per_s
    assert fast == pytest.approx(
        cal.cpu.bulk_transfer_time_per_sample_s * 1000 + wire, rel=0.01
    )


def test_bulk_transfer_matches_paper_100ms():
    # §III-A: transferring 1000 batched samples takes ~100 ms.
    hub = IoTHub(cpu_initial_state=CpuState.IDLE)

    def mover():
        yield from cpu_transfer(hub, nbytes=12_000, sample_count=1000, bulk=True)

    hub.sim.spawn(mover())
    hub.run()
    assert hub.sim.now == pytest.approx(0.102, rel=0.05)


# ----------------------------------------------------------------------
# profiler (Fig. 6)
# ----------------------------------------------------------------------
def test_characterize_apps_reports_fig6_quantities():
    rows = characterize_apps([create_app(i) for i in light_weight_ids()])
    assert len(rows) == 10
    by_id = {row.table2_id: row for row in rows}
    assert by_id["A2"].mips == pytest.approx(3.94)
    assert by_id["A9"].memory_kb == pytest.approx(36.3, rel=0.01)
    average_memory = sum(row.memory_kb for row in rows) / len(rows)
    assert average_memory == pytest.approx(26.2, rel=0.01)
    for row in rows:
        assert row.window_samples > 0
        assert row.host_compute_s >= 0.0
