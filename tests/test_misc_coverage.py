"""Coverage for remaining corners: exports, firmware details, windows."""

import pytest

import repro
from repro.apps import create_app
from repro.core import Scenario, Scheme
from repro.errors import WorkloadError
from repro.firmware.driver import mcu_transfer_busy
from repro.hw import InterruptController, IoTHub
from repro.sim import Delay, Simulator


def test_public_api_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None, name


def test_version_string():
    assert repro.__version__.count(".") == 2


def test_scenario_of_validates_batch_size():
    with pytest.raises(WorkloadError):
        Scenario.of(["A2"], scheme=Scheme.BATCHING, batch_size=0)


def test_scenario_of_accepts_failure_rates():
    scenario = Scenario.of(
        ["A2"], sensor_failure_rates={"S4": 0.1}
    )
    assert scenario.sensor_failure_rates == {"S4": 0.1}


def test_irq_concurrent_waiters_each_get_one_request():
    sim = Simulator()
    irq = InterruptController(sim)
    received = []

    def waiter(tag):
        request = yield from irq.wait()
        received.append((tag, request.payload))

    sim.spawn(waiter("a"))
    sim.spawn(waiter("b"))

    def device():
        yield Delay(1.0)
        irq.raise_irq("mcu", "v", payload=1)
        yield Delay(1.0)
        irq.raise_irq("mcu", "v", payload=2)

    sim.spawn(device())
    sim.run()
    assert sorted(payload for _, payload in received) == [1, 2]
    assert len({tag for tag, _ in received}) == 2


def test_mcu_bulk_transfer_is_cheaper_per_sample():
    def measure(bulk):
        hub = IoTHub()
        hub.mcu.set_idle("data_collection")

        def mover():
            yield from mcu_transfer_busy(hub, 100, bulk=bulk)

        hub.sim.spawn(mover())
        hub.run()
        return hub.sim.now

    assert measure(bulk=True) < measure(bulk=False)


def test_app_mcu_buffer_bytes_rules():
    # Streamable kHz app: capped at the ring size.
    stepcounter = create_app("A2").profile
    assert stepcounter.mcu_buffer_bytes == 4096
    # Single-large-reading app: must hold the whole frame.
    jpeg = create_app("A9").profile
    assert jpeg.mcu_buffer_bytes == jpeg.sample_bytes("S10")
    # Tiny-data app: just its window's bytes.
    arduinojson = create_app("A3").profile
    assert arduinojson.mcu_buffer_bytes == max(
        arduinojson.sensor_data_bytes, 8
    )


def test_hub_components_registry():
    hub = IoTHub()
    psm = hub.add_component("widget", {"on": 1.0, "off": 0.0}, "off")
    assert hub.component("widget") is psm
    with pytest.raises(KeyError):
        hub.component("missing")


def test_run_until_horizon_even_if_events_remain():
    hub = IoTHub()

    def slow():
        yield Delay(100.0)

    hub.sim.spawn(slow())
    end = hub.run(until=2.0)
    assert end == 2.0


def test_result_summary_mentions_violations():
    from repro.core import run_scenario
    from repro.calibration import default_calibration

    tight = default_calibration().with_mcu(ram_bytes=2048)
    result = run_scenario(
        Scenario(apps=[create_app("A2")], scheme=Scheme.BATCHING,
                 calibration=tight)
    )
    assert "QoS violations" in result.summary()
