"""Functional tests: each app's computation produces correct results."""

import numpy as np
import pytest

from repro.apps import create_app
from repro.apps.offline import collect_window
from repro.sensors.accelerometer import SeismicWaveform, WalkingWaveform
from repro.sensors.camera import CameraWaveform, render_scene
from repro.sensors.fingerprint import FingerprintWaveform
from repro.sensors.pulse import EcgWaveform
from repro.sensors.sound import SpokenWordWaveform


# ----------------------------------------------------------------------
# A2 step counter
# ----------------------------------------------------------------------
def test_stepcounter_counts_walking_steps():
    app = create_app("A2")
    cadence = 2.0
    window = collect_window(app, waveforms={"S4": WalkingWaveform(cadence_hz=cadence)})
    result = app.compute(window)
    assert result.payload["samples"] == 1000
    assert result.payload["steps"] == pytest.approx(cadence * 1.0, abs=1)


def test_stepcounter_zero_steps_when_still():
    app = create_app("A2")
    window = collect_window(app, waveforms={"S4": WalkingWaveform(walking=False)})
    assert app.compute(window).payload["steps"] == 0


def test_stepcounter_accumulates_across_windows():
    app = create_app("A2")
    waveform = WalkingWaveform(cadence_hz=2.0)
    for index in range(3):
        window = collect_window(
            app, window_index=index, start_s=float(index), waveforms={"S4": waveform}
        )
        app.compute(window)
    assert app.total_steps == pytest.approx(6, abs=2)


# ----------------------------------------------------------------------
# A7 earthquake
# ----------------------------------------------------------------------
def test_earthquake_triggers_on_quake():
    app = create_app("A7")
    quake = SeismicWaveform(quake_start_s=0.5, quake_duration_s=0.5)
    window = collect_window(app, waveforms={"S4": quake})
    result = app.compute(window)
    assert result.payload["triggered"]
    # Onset detected near 0.5 s into the window (index at 1 kHz).
    assert 450 <= result.payload["onset_index"] <= 650
    assert result.payload["verification_query"] is not None


def test_earthquake_quiet_background_no_trigger():
    app = create_app("A7")
    window = collect_window(app, waveforms={"S4": SeismicWaveform()})
    result = app.compute(window)
    assert not result.payload["triggered"]
    assert result.payload["verification_query"] is None


def test_earthquake_ignores_walking():
    """Walking must not read as an earthquake (steady rhythm, no onset)."""
    app = create_app("A7")
    window = collect_window(app, waveforms={"S4": WalkingWaveform(cadence_hz=1.8)})
    result = app.compute(window)
    assert not result.payload["triggered"]


# ----------------------------------------------------------------------
# A8 heartbeat
# ----------------------------------------------------------------------
def test_heartbeat_regular_rhythm_not_flagged():
    app = create_app("A8")
    window = collect_window(app, waveforms={"S6": EcgWaveform(heart_rate_bpm=72.0)})
    result = app.compute(window)
    assert not result.payload["irregular"]
    assert result.payload["bpm"] == pytest.approx(72.0, rel=0.1)


def test_heartbeat_irregular_rhythm_flagged():
    app = create_app("A8")
    window = collect_window(
        app, waveforms={"S6": EcgWaveform(heart_rate_bpm=72.0, irregular=True)}
    )
    result = app.compute(window)
    assert result.payload["irregular"]
    assert result.payload["rmssd_s"] > 0.12


def test_heartbeat_counts_beats():
    app = create_app("A8")
    window = collect_window(app, waveforms={"S6": EcgWaveform(heart_rate_bpm=60.0)})
    result = app.compute(window)
    # 5-second window at 60 bpm -> ~5 beats.
    assert result.payload["beats"] == pytest.approx(5, abs=1)


# ----------------------------------------------------------------------
# A1 CoAP server
# ----------------------------------------------------------------------
def test_coap_serves_all_window_requests():
    app = create_app("A1")
    window = collect_window(app)
    result = app.compute(window)
    # 8 observe GETs plus the blockwise history fetch.
    assert result.payload["requests_served"] >= 8 + result.payload["history_blocks"]
    assert result.payload["history_blocks"] >= 2  # history spans blocks
    assert result.payload["light_samples"] == 1000
    assert result.payload["sound_samples"] == 1000
    assert result.payload["response_bytes"] > 0


# ----------------------------------------------------------------------
# A3 arduinoJSON
# ----------------------------------------------------------------------
def test_arduinojson_roundtrip_document():
    app = create_app("A3")
    window = collect_window(app)
    result = app.compute(window)
    assert result.payload["readings"] == 20  # 10 + 10 samples
    assert result.payload["json_bytes"] > 100


# ----------------------------------------------------------------------
# A4 M2X
# ----------------------------------------------------------------------
def test_m2x_batches_five_streams():
    app = create_app("A4")
    window = collect_window(app)
    result = app.compute(window)
    assert result.payload["streams"] == 5
    assert result.payload["raw_samples"] == 2220
    assert result.payload["points"] > 0
    assert result.payload["payload_bytes"] > 500


# ----------------------------------------------------------------------
# A5 Blynk
# ----------------------------------------------------------------------
def test_blynk_updates_all_pins():
    app = create_app("A5")
    window = collect_window(app)
    result = app.compute(window)
    assert result.payload["pins_updated"] == 5
    assert result.payload["acks"] == 5


# ----------------------------------------------------------------------
# A6 Dropbox manager
# ----------------------------------------------------------------------
def test_dropbox_first_sync_uploads_everything():
    app = create_app("A6")
    window = collect_window(app)
    result = app.compute(window)
    assert result.payload["chunks_uploaded"] == result.payload["chunks"]
    assert result.payload["upload_bytes"] == result.payload["log_bytes"]


def test_dropbox_incremental_sync_skips_unchanged_chunks():
    app = create_app("A6")
    first = app.compute(collect_window(app, window_index=0, start_s=0.0))
    second = app.compute(collect_window(app, window_index=1, start_s=1.0))
    assert second.payload["chunks_skipped"] > 0
    assert second.payload["upload_bytes"] < second.payload["log_bytes"]
    assert first.payload["log_bytes"] < second.payload["log_bytes"]


# ----------------------------------------------------------------------
# A9 JPEG decoder
# ----------------------------------------------------------------------
def test_jpeg_decodes_frame_close_to_scene():
    app = create_app("A9")
    camera = CameraWaveform()
    window = collect_window(app, waveforms={"S10": camera})
    result = app.compute(window)
    scene = render_scene(camera.shape, result.payload["frame_id"])
    assert result.payload["mean_luma"] == pytest.approx(scene.mean(), abs=4.0)
    assert result.payload["height"] >= camera.shape[0]


# ----------------------------------------------------------------------
# A10 fingerprint
# ----------------------------------------------------------------------
def test_fingerprint_enrolls_then_identifies():
    app = create_app("A10")
    reader = FingerprintWaveform(person_ids=(3,))
    first = app.compute(
        collect_window(app, window_index=0, start_s=0.0, waveforms={"S3": reader})
    )
    second = app.compute(
        collect_window(app, window_index=1, start_s=1.0, waveforms={"S3": reader})
    )
    assert first.payload["action"] == "enrolled"
    assert second.payload["action"] == "identified"
    assert second.payload["identity"] == first.payload["identity"]


def test_fingerprint_distinguishes_people():
    app = create_app("A10")
    reader = FingerprintWaveform(person_ids=(1, 2))
    first = app.compute(
        collect_window(app, window_index=0, start_s=0.0, waveforms={"S3": reader})
    )
    second = app.compute(
        collect_window(app, window_index=1, start_s=1.0, waveforms={"S3": reader})
    )
    assert second.payload["action"] == "enrolled"
    assert second.payload["identity"] != first.payload["identity"]
    assert second.payload["database_size"] == 2


# ----------------------------------------------------------------------
# A11 speech-to-text
# ----------------------------------------------------------------------
def test_speech_recognizes_spoken_word():
    app = create_app("A11")
    speech = SpokenWordWaveform(["on"])
    window = collect_window(app, waveforms={"S8": speech})
    result = app.compute(window)
    assert result.payload["words"] == ["on"]


def test_speech_silence_decodes_to_nothing():
    app = create_app("A11")
    speech = SpokenWordWaveform([], noise_amplitude=0.001)
    window = collect_window(app, waveforms={"S8": speech})
    result = app.compute(window)
    assert result.payload["words"] == []


@pytest.mark.parametrize("word", ["on", "off", "stop", "open"])
def test_speech_vocabulary_words_recognized(word):
    app = create_app("A11")
    window = collect_window(app, waveforms={"S8": SpokenWordWaveform([word])})
    assert app.compute(window).payload["words"] == [word]
