"""Coverage for reporting helpers, units, calibration and comparisons."""

import pytest

from repro.apps import create_app
from repro.apps.offline import collect_window
from repro.calibration import Calibration, default_calibration
from repro.core import Scenario, Scheme, compare_schemes, savings_table
from repro.core.compare import average_savings
from repro.energy.report import ROUTINE_LABELS, format_breakdown_table, format_series
from repro.errors import WorkloadError
from repro.hw.power import Routine
from repro.units import (
    kib,
    khz,
    mhz,
    mj,
    ms,
    mw,
    ns,
    to_kib,
    to_mj,
    to_ms,
    to_mw,
    us,
)
from repro.workloads import table1_rows, table2_rows


# ----------------------------------------------------------------------
# units
# ----------------------------------------------------------------------
def test_unit_roundtrips():
    assert to_ms(ms(2.5)) == pytest.approx(2.5)
    assert to_mw(mw(13.5)) == pytest.approx(13.5)
    assert to_mj(mj(42.0)) == pytest.approx(42.0)
    assert to_kib(kib(36.3)) == pytest.approx(36.3, rel=1e-3)


def test_unit_scales():
    assert us(1000) == pytest.approx(ms(1))
    assert ns(1e6) == pytest.approx(ms(1))
    assert khz(1) == 1000.0
    assert mhz(80) == 80e6


# ----------------------------------------------------------------------
# calibration
# ----------------------------------------------------------------------
def test_calibration_paper_constants():
    cal = default_calibration()
    assert cal.cpu.active_power_w == 5.0
    assert cal.cpu.sleep_power_w == 1.5
    assert cal.cpu.wake_energy_j == pytest.approx(4e-3)
    assert cal.mcu.ram_bytes == 80 * 1024
    assert cal.idle_hub_power_w == pytest.approx(0.5, abs=0.05)


def test_calibration_with_cpu_is_a_copy():
    cal = default_calibration()
    tweaked = cal.with_cpu(active_power_w=7.0)
    assert tweaked.cpu.active_power_w == 7.0
    assert cal.cpu.active_power_w == 5.0  # original untouched


def test_calibration_uniform_slowdown():
    cal = default_calibration().with_uniform_mcu_slowdown(10.0)
    assert cal.mcu_slowdown("stepcounter") == pytest.approx(10.0)
    assert cal.mcu_slowdown("anything") == pytest.approx(10.0)
    with pytest.raises(ValueError):
        default_calibration().with_uniform_mcu_slowdown(0.0)


def test_calibration_per_app_overrides_apply():
    cal = default_calibration()
    assert cal.mcu_slowdown("stepcounter") == pytest.approx(9.8)
    assert cal.mcu_slowdown("unknown-app") == pytest.approx(19.0)


# ----------------------------------------------------------------------
# report formatting
# ----------------------------------------------------------------------
def test_routine_labels_cover_all_routines():
    assert set(ROUTINE_LABELS) == set(Routine.ORDER)


def test_format_breakdown_table_structure():
    results = compare_schemes(["A2"], [Scheme.BASELINE, Scheme.COM])
    table = format_breakdown_table(
        {name: result.energy for name, result in results.items()},
        baseline_key=Scheme.BASELINE,
        title="demo",
    )
    lines = table.splitlines()
    assert lines[0] == "demo"
    assert "Savings %" in lines[1]
    assert len(lines) == 2 + 2  # title + header + two scheme rows


def test_format_breakdown_table_rejects_missing_baseline():
    results = compare_schemes(["A2"], [Scheme.BASELINE])
    with pytest.raises(WorkloadError):
        format_breakdown_table(
            {name: result.energy for name, result in results.items()},
            baseline_key="nonexistent",
        )


def test_format_series():
    text = format_series(["a", "b"], [1.0, 2.5], unit="J")
    assert "a" in text and "2.500 J" in text


# ----------------------------------------------------------------------
# tables
# ----------------------------------------------------------------------
def test_table1_rows_cover_all_sensors():
    rows = table1_rows()
    assert len(rows) == 12  # header + 11 sensors
    text = "\n".join(rows)
    for sensor in ("Barometer", "Fingerprint", "HighResImage"):
        assert sensor in text


def test_table2_rows_cover_all_apps():
    rows = table2_rows()
    assert len(rows) == 12  # header + 11 apps
    text = "\n".join(rows)
    assert "Speech-To-Text" in text
    assert "11.72" in text  # the repeated sensor-data KB of A1/A2/A6/A7


# ----------------------------------------------------------------------
# comparisons
# ----------------------------------------------------------------------
def test_savings_table_excludes_baseline():
    results = compare_schemes(["A2"], [Scheme.BASELINE, Scheme.BATCHING, Scheme.COM])
    table = savings_table(results)
    assert set(table) == {Scheme.BATCHING, Scheme.COM}
    assert table[Scheme.COM] > table[Scheme.BATCHING] > 0


def test_average_savings_over_apps():
    per_app = {
        app_id: compare_schemes([app_id], [Scheme.BASELINE, Scheme.BATCHING])
        for app_id in ("A2", "A3")
    }
    value = average_savings(per_app, Scheme.BATCHING)
    assert 0.0 < value < 1.0
    assert average_savings({}, Scheme.BATCHING) == 0.0


# ----------------------------------------------------------------------
# scenario / offline helpers
# ----------------------------------------------------------------------
def test_scenario_autoname_and_horizon():
    scenario = Scenario.of(["A2", "A8"], scheme=Scheme.BASELINE, windows=2)
    assert scenario.name == "A2+A8:baseline"
    assert scenario.horizon_s == pytest.approx(10.0)  # A8's 5 s window x 2


def test_collect_window_counts_and_times():
    app = create_app("A4")
    window = collect_window(app, start_s=3.0)
    assert window.total_count == 2220
    times = window.times("S4")
    assert times[0] == pytest.approx(3.0)
    assert times[-1] == pytest.approx(3.999)
    assert window.count("S1") == 10
    assert window.values("S1").shape == (10, 1)


def test_sample_window_empty_sensor_queries():
    app = create_app("A2")
    window = app.build_window(0, 0.0)
    assert window.count("S4") == 0
    assert window.values("S4").size == 0
    assert window.scalar_series("S4").size == 0
