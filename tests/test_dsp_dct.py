"""Unit tests for the DCT/IDCT and JPEG-style block coding."""

import numpy as np
import pytest

from repro.dsp import (
    blockwise_dct,
    blockwise_idct,
    dct2,
    dct_matrix,
    dequantize,
    idct2,
    quantize,
    zigzag_order,
)
from repro.dsp.dct import JPEG_LUMA_QTABLE, zigzag_indices


def test_dct_matrix_is_orthonormal():
    matrix = dct_matrix(8)
    assert np.allclose(matrix @ matrix.T, np.eye(8), atol=1e-12)


def test_dct_matrix_rejects_bad_size():
    with pytest.raises(ValueError):
        dct_matrix(0)


def test_idct_inverts_dct():
    rng = np.random.default_rng(42)
    block = rng.uniform(-128, 127, size=(8, 8))
    assert np.allclose(idct2(dct2(block)), block, atol=1e-9)


def test_dct_of_constant_block_is_dc_only():
    block = np.full((8, 8), 50.0)
    coeffs = dct2(block)
    assert coeffs[0, 0] == pytest.approx(50.0 * 8)
    coeffs[0, 0] = 0.0
    assert np.allclose(coeffs, 0.0, atol=1e-9)


def test_quantize_roundtrip_small_error():
    rng = np.random.default_rng(7)
    block = rng.uniform(-128, 127, size=(8, 8))
    coeffs = dct2(block)
    restored = idct2(dequantize(quantize(coeffs)))
    # Quantization loses detail but must stay visually close.
    assert np.abs(restored - block).mean() < 30.0


def test_blockwise_roundtrip():
    rng = np.random.default_rng(3)
    image = rng.uniform(0, 255, size=(16, 24))
    assert np.allclose(blockwise_idct(blockwise_dct(image)), image, atol=1e-9)


def test_blockwise_rejects_non_multiple_shapes():
    with pytest.raises(ValueError):
        blockwise_dct(np.zeros((10, 16)))


def test_zigzag_covers_all_indices_once():
    indices = zigzag_indices(8)
    assert len(indices) == 64
    assert len(set(indices)) == 64
    assert indices[0] == (0, 0)
    assert indices[1] in ((0, 1), (1, 0))


def test_zigzag_order_low_frequencies_first():
    block = np.arange(64).reshape(8, 8)
    flat = zigzag_order(block)
    assert flat[0] == block[0, 0]
    # The last zigzag element is the highest-frequency corner.
    assert flat[-1] == block[7, 7]


def test_qtable_shape():
    assert JPEG_LUMA_QTABLE.shape == (8, 8)
    assert (JPEG_LUMA_QTABLE > 0).all()
