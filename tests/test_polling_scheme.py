"""Tests for the main-board polling scheme (§II-A)."""

import pytest

from repro.core import Scheme, run_apps
from repro.hw.mcu import McuState


def test_polling_uses_no_interrupts_or_bus():
    result = run_apps(["A2"], Scheme.POLLING)
    assert result.interrupt_count == 0
    assert result.bus_bytes == 0


def test_polling_leaves_mcu_asleep():
    result = run_apps(["A2"], Scheme.POLLING)
    asleep = result.hub.recorder.time_in_state(
        "mcu", McuState.SLEEP, result.duration_s
    )
    assert asleep == pytest.approx(result.duration_s)


def test_polling_blocks_cpu_for_read_time():
    result = run_apps(["A2"], Scheme.POLLING)
    busy = result.hub.recorder.time_in_state("cpu", "busy", result.duration_s)
    # 1000 blocking reads x 0.5 ms each, plus stores and compute.
    assert busy > 0.5
    assert result.results_ok


def test_polling_matches_baseline_functionally():
    polling = run_apps(["A2"], Scheme.POLLING)
    baseline = run_apps(["A2"], Scheme.BASELINE)
    assert (
        polling.result_payloads("stepcounter")[0]["steps"]
        == baseline.result_payloads("stepcounter")[0]["steps"]
    )


def test_polling_slow_sensors_saturate_the_cpu():
    """A3's two slow sensors block the CPU for most of the window."""
    result = run_apps(["A3"], Scheme.POLLING)
    busy = result.hub.recorder.time_in_state("cpu", "busy", result.duration_s)
    # S1: 10 x 37.5 ms + S2: 10 x 18.75 ms = 562.5 ms of blocking reads.
    assert busy > 0.55


def test_polling_multi_app_contention_extends_collection():
    """Concurrent apps queue behind each other's blocking reads."""
    result = run_apps(["A2", "A3"], Scheme.POLLING, windows=1)
    assert result.results_ok
    busy = result.hub.recorder.time_in_state("cpu", "busy", result.duration_s)
    assert busy > 1.0  # reads serialize on the single CPU core


def test_polling_multi_window():
    result = run_apps(["A2"], Scheme.POLLING, windows=2)
    assert len(result.result_payloads("stepcounter")) == 2
    assert result.qos_violations == []
