"""Property-based tests for the simulation kernel."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Delay, Simulator
from repro.sim.events import EventQueue
from repro.sim.resources import Resource

delays = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


@settings(max_examples=100)
@given(st.lists(delays, min_size=1, max_size=50))
def test_events_always_fire_in_time_order(times):
    queue = EventQueue()
    fired = []
    for time in times:
        queue.push(time, lambda t=time: fired.append(t))
    while queue:
        queue.pop().callback()
    assert fired == sorted(times)


@settings(max_examples=100)
@given(st.lists(delays, min_size=1, max_size=30))
def test_clock_is_monotone(delay_list):
    sim = Simulator()
    observed = []

    def proc():
        for delay in delay_list:
            yield Delay(delay)
            observed.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert observed == sorted(observed)
    assert sim.now == pytest.approx(sum(delay_list))


@settings(max_examples=60)
@given(
    st.lists(
        st.tuples(delays, st.floats(min_value=0.0, max_value=5.0)),
        min_size=1,
        max_size=12,
    )
)
def test_resource_is_never_double_held(jobs):
    """Workers with random arrival/hold times: exclusion always holds."""
    sim = Simulator()
    resource = Resource("core")
    inside = {"count": 0, "max": 0}
    completions = []

    def worker(arrival, hold):
        yield Delay(arrival)
        yield from resource.acquire()
        inside["count"] += 1
        inside["max"] = max(inside["max"], inside["count"])
        yield Delay(hold)
        inside["count"] -= 1
        resource.release()
        completions.append(sim.now)

    for arrival, hold in jobs:
        sim.spawn(worker(arrival, hold))
    sim.run()
    assert inside["max"] == 1
    assert inside["count"] == 0
    assert len(completions) == len(jobs)
    assert not resource.busy
    # Total serialized hold time is a lower bound on the finish time.
    assert sim.now >= max(0.0, max(a for a, _ in jobs))


@settings(max_examples=50)
@given(st.integers(1, 20))
def test_fifo_handoff_order(count):
    sim = Simulator()
    resource = Resource()
    order = []

    def worker(tag):
        yield Delay(tag * 0.001)  # distinct arrival order
        yield from resource.acquire()
        yield Delay(1.0)
        order.append(tag)
        resource.release()

    for tag in range(count):
        sim.spawn(worker(tag))
    sim.run()
    assert order == list(range(count))
