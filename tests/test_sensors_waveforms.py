"""Unit tests for synthetic waveforms."""

import numpy as np
import pytest

from repro.sensors import ConstantWaveform, SlowDriftWaveform, pseudo_noise
from repro.sensors.accelerometer import GRAVITY, SeismicWaveform, WalkingWaveform
from repro.sensors.camera import (
    CameraWaveform,
    LOWRES_SHAPE,
    encode_frame,
    render_scene,
)
from repro.sensors.fingerprint import (
    SIGNATURE_BYTES,
    FingerprintWaveform,
    person_template,
    scan_of,
)
from repro.sensors.pulse import EcgWaveform
from repro.sensors.sound import SpokenWordWaveform, VOCABULARY
from repro.dsp import blockwise_idct, dequantize


def test_pseudo_noise_deterministic_and_bounded():
    values = [pseudo_noise(t * 0.001, seed=3) for t in range(1000)]
    assert all(-1.0 <= v <= 1.0 for v in values)
    assert pseudo_noise(0.123, seed=3) == pseudo_noise(0.123, seed=3)
    assert pseudo_noise(0.123, seed=3) != pseudo_noise(0.123, seed=4)


def test_constant_waveform():
    assert ConstantWaveform(5.0).sample(123.0)[0] == 5.0


def test_window_shape_and_rate():
    waveform = ConstantWaveform(1.0)
    window = waveform.window(0.0, 100.0, 50)
    assert window.shape == (50, 1)
    with pytest.raises(ValueError):
        waveform.window(0.0, -1.0, 10)
    with pytest.raises(ValueError):
        waveform.window(0.0, 10.0, 0)


def test_slow_drift_stays_in_envelope():
    waveform = SlowDriftWaveform(base=20.0, drift_amplitude=2.0, noise_amplitude=0.1)
    window = waveform.window(0.0, 1.0, 100)
    assert window.min() >= 20.0 - 2.2
    assert window.max() <= 20.0 + 2.2


def test_walking_waveform_has_gravity_baseline():
    waveform = WalkingWaveform(walking=False, noise_amplitude=0.0)
    sample = waveform.sample(0.5)
    assert sample[2] == pytest.approx(GRAVITY)


def test_walking_waveform_step_periodicity():
    waveform = WalkingWaveform(cadence_hz=2.0, noise_amplitude=0.0)
    assert waveform.expected_steps(10.0) == 20
    window = waveform.window(0.0, 100.0, 1000)[:, 2]
    # Strong vertical activity above gravity during impacts.
    assert window.max() > GRAVITY + 2.0


def test_seismic_waveform_quiet_without_quake():
    waveform = SeismicWaveform(quake_start_s=None)
    assert not waveform.has_quake
    window = waveform.window(0.0, 100.0, 500)
    assert np.abs(window[:, 0]).max() < 0.05


def test_seismic_waveform_burst_inside_interval():
    waveform = SeismicWaveform(quake_start_s=2.0, quake_duration_s=1.0)
    before = np.abs(waveform.window(0.0, 100.0, 150)[:, 0]).max()
    during = np.abs(waveform.window(2.0, 100.0, 100)[:, 0]).max()
    assert during > 10 * before


def test_ecg_beat_times_regular():
    waveform = EcgWaveform(heart_rate_bpm=60.0)
    beats = waveform.beat_times(5.0)
    assert np.allclose(np.diff(beats), 1.0)


def test_ecg_irregular_rhythm_varies_intervals():
    waveform = EcgWaveform(heart_rate_bpm=60.0, irregular=True)
    intervals = np.diff(waveform.beat_times(12.0))
    assert intervals.std() > 0.1


def test_ecg_pulse_visible_at_beat():
    waveform = EcgWaveform(heart_rate_bpm=60.0, noise_amplitude=0.0)
    assert waveform.sample(1.0)[0] > 0.9
    assert waveform.sample(1.5)[0] < 0.1


def test_ecg_rejects_bad_params():
    with pytest.raises(ValueError):
        EcgWaveform(heart_rate_bpm=0.0)
    with pytest.raises(ValueError):
        EcgWaveform(irregularity=0.7)


def test_spoken_word_ground_truth_positions():
    waveform = SpokenWordWaveform(["on", "off"])
    assert waveform.word_at(0.1)[0] == "on"
    assert waveform.word_at(1.1)[0] == "off"
    assert waveform.word_at(0.9) is None  # inter-word gap
    assert waveform.word_at(5.0) is None  # past the utterances


def test_spoken_word_rejects_unknown_words():
    with pytest.raises(ValueError):
        SpokenWordWaveform(["xyzzy"])


def test_vocabulary_nonempty():
    assert len(VOCABULARY) >= 4


def test_render_scene_in_range():
    scene = render_scene(LOWRES_SHAPE)
    assert scene.shape == LOWRES_SHAPE
    assert scene.min() >= 0.0
    assert scene.max() <= 255.0


def test_encode_frame_decodes_back_to_scene():
    scene = render_scene((32, 48), frame_id=1)
    frame = encode_frame(scene, frame_id=1)
    decoded = blockwise_idct(dequantize(frame.levels, frame.qtable)) + 128.0
    assert np.abs(decoded[:32, :48] - scene).mean() < 6.0


def test_camera_waveform_frame_ids_advance():
    camera = CameraWaveform(frame_rate_hz=2.0)
    assert camera.frame_id_at(0.4) == 0
    assert camera.frame_id_at(1.2) == 2
    frame = camera.frame_at(0.0)
    assert frame.nbytes >= LOWRES_SHAPE[0] * LOWRES_SHAPE[1]


def test_fingerprint_templates_differ_between_people():
    assert not np.array_equal(person_template(0), person_template(1))
    assert person_template(0).shape == (SIGNATURE_BYTES,)


def test_fingerprint_scan_close_to_template():
    template = person_template(2)
    scan = scan_of(2, scan_seed=9)
    differing = int((template != scan).sum())
    assert 0 < differing <= 12


def test_fingerprint_waveform_rotates_people():
    waveform = FingerprintWaveform(person_ids=(0, 1))
    assert waveform.person_at(0.0) == 0
    assert waveform.person_at(1.0) == 1
    assert waveform.person_at(2.0) == 0
    assert waveform.scan_at(0.0).shape == (SIGNATURE_BYTES,)
