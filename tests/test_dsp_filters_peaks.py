"""Unit tests for filters, peak detection and stats kernels."""

import numpy as np
import pytest

from repro.dsp import (
    adaptive_threshold,
    ema,
    find_peaks,
    fir_filter,
    magnitude,
    moving_average,
    normalize,
    rmssd,
    rr_intervals,
    sta_lta,
)


def test_moving_average_smooths_constant_signal():
    signal = np.full(50, 3.0)
    assert np.allclose(moving_average(signal, 5), 3.0)


def test_moving_average_window_one_is_identity():
    signal = np.arange(10.0)
    assert np.allclose(moving_average(signal, 1), signal)


def test_moving_average_preserves_length():
    assert len(moving_average(np.arange(33.0), 7)) == 33


def test_moving_average_rejects_bad_window():
    with pytest.raises(ValueError):
        moving_average(np.arange(5.0), 0)


def test_ema_converges_to_constant():
    signal = np.full(200, 10.0)
    assert ema(signal, 0.3)[-1] == pytest.approx(10.0)


def test_ema_rejects_bad_alpha():
    with pytest.raises(ValueError):
        ema(np.arange(5.0), 0.0)
    with pytest.raises(ValueError):
        ema(np.arange(5.0), 1.5)


def test_fir_filter_identity_tap():
    signal = np.arange(10.0)
    assert np.allclose(fir_filter(signal, np.array([1.0])), signal)


def test_fir_filter_delay_tap():
    signal = np.arange(5.0)
    delayed = fir_filter(signal, np.array([0.0, 1.0]))
    assert np.allclose(delayed, [0.0, 0.0, 1.0, 2.0, 3.0])


def test_fir_filter_rejects_empty_taps():
    with pytest.raises(ValueError):
        fir_filter(np.arange(5.0), np.array([]))


def test_magnitude_of_axis_vectors():
    vectors = np.array([[3.0, 4.0, 0.0], [1.0, 2.0, 2.0]])
    assert np.allclose(magnitude(vectors), [5.0, 3.0])


def test_normalize_zero_mean_unit_std():
    data = np.array([1.0, 2.0, 3.0, 4.0])
    result = normalize(data)
    assert result.mean() == pytest.approx(0.0)
    assert result.std() == pytest.approx(1.0)


def test_normalize_constant_signal_is_zero():
    assert np.allclose(normalize(np.full(10, 7.0)), 0.0)


def test_find_peaks_simple():
    signal = np.array([0, 1, 0, 2, 0, 3, 0], dtype=float)
    assert find_peaks(signal, threshold=0.5) == [1, 3, 5]


def test_find_peaks_threshold_filters():
    signal = np.array([0, 1, 0, 2, 0, 3, 0], dtype=float)
    assert find_peaks(signal, threshold=2.5) == [5]


def test_find_peaks_min_distance_suppresses():
    signal = np.array([0, 5, 0, 5, 0, 5, 0], dtype=float)
    assert find_peaks(signal, threshold=1.0, min_distance=3) == [1, 5]


def test_find_peaks_rejects_bad_distance():
    with pytest.raises(ValueError):
        find_peaks(np.zeros(5), threshold=0.0, min_distance=0)


def test_adaptive_threshold_between_min_and_max():
    signal = np.array([0.0, 0.0, 10.0, 0.0, 0.0])
    threshold = adaptive_threshold(signal)
    assert 0.0 < threshold < 10.0


def test_sta_lta_triggers_on_burst():
    quiet = np.full(200, 0.1)
    burst = np.concatenate([quiet, np.full(50, 5.0), quiet])
    ratio = sta_lta(burst, short_window=10, long_window=100)
    assert ratio[:200].max() < 1.5
    assert ratio[200:250].max() > 3.0


def test_sta_lta_rejects_bad_windows():
    with pytest.raises(ValueError):
        sta_lta(np.zeros(10), short_window=5, long_window=5)


def test_rr_intervals_from_peaks():
    intervals = rr_intervals([0, 100, 200, 320], sample_rate_hz=100.0)
    assert np.allclose(intervals, [1.0, 1.0, 1.2])


def test_rr_intervals_too_few_peaks():
    assert rr_intervals([5], 100.0).size == 0


def test_rr_intervals_rejects_bad_rate():
    with pytest.raises(ValueError):
        rr_intervals([0, 1], 0.0)


def test_rmssd_zero_for_regular_rhythm():
    assert rmssd(np.full(10, 0.8)) == pytest.approx(0.0)


def test_rmssd_positive_for_irregular_rhythm():
    intervals = np.array([0.8, 1.1, 0.7, 1.2, 0.8])
    assert rmssd(intervals) > 0.2
