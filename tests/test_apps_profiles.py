"""Tests that the app profiles reproduce Table II's derived columns."""

import pytest

from repro.apps import APP_FACTORIES, all_ids, create_app, light_weight_ids
from repro.calibration import default_calibration
from repro.errors import WorkloadError
from repro.units import to_kib

#: Table II ground truth: (interrupts, sensor-data KB) per app.
TABLE_II = {
    "A1": (2000, 11.72),
    "A2": (1000, 11.72),
    "A3": (20, 0.16),
    "A4": (2220, 20.47),
    "A5": (1221, 36.91),
    "A6": (2000, 11.72),
    "A7": (1000, 11.72),
    "A8": (1000, 3.91),
    "A9": (1, 23.81),
    "A10": (1, 0.50),
    "A11": (1000, 5.86),
}


def test_registry_has_eleven_apps():
    assert all_ids() == [f"A{i}" for i in range(1, 12)]


@pytest.mark.parametrize("table2_id", list(TABLE_II))
def test_interrupt_counts_match_table2(table2_id):
    app = create_app(table2_id)
    expected_interrupts, _ = TABLE_II[table2_id]
    assert app.profile.interrupts_per_window == expected_interrupts


@pytest.mark.parametrize("table2_id", list(TABLE_II))
def test_sensor_data_matches_table2(table2_id):
    app = create_app(table2_id)
    _, expected_kb = TABLE_II[table2_id]
    assert to_kib(app.profile.sensor_data_bytes) == pytest.approx(
        expected_kb, rel=0.03
    )


def test_create_app_by_machine_name():
    assert create_app("stepcounter").table2_id == "A2"
    assert create_app("m2x").table2_id == "A4"


def test_create_app_rejects_unknown():
    with pytest.raises(WorkloadError):
        create_app("A99")


def test_light_weight_excludes_a11():
    ids = light_weight_ids()
    assert "A11" not in ids
    assert len(ids) == 10


def test_only_a11_is_heavy():
    heavy = [i for i in all_ids() if create_app(i).profile.heavy]
    assert heavy == ["A11"]


def test_fig6_mips_average():
    mips = [create_app(i).profile.mips for i in light_weight_ids()]
    assert sum(mips) / len(mips) == pytest.approx(47.45, rel=0.01)


def test_fig6_mips_extremes():
    mips = {i: create_app(i).profile.mips for i in light_weight_ids()}
    assert min(mips, key=mips.get) == "A2"  # step counter, 3.94
    assert max(mips, key=mips.get) == "A8"  # heartbeat, 108.8
    assert mips["A2"] == pytest.approx(3.94)
    assert mips["A8"] == pytest.approx(108.8)


def test_fig6_memory_average_and_extremes():
    totals = {
        i: to_kib(create_app(i).profile.memory_bytes) for i in light_weight_ids()
    }
    average = sum(totals.values()) / len(totals)
    assert average == pytest.approx(26.2, rel=0.01)
    assert min(totals, key=totals.get) == "A7"  # earthquake, 16.8 KB
    assert max(totals, key=totals.get) == "A9"  # JPEG, 36.3 KB
    assert totals["A7"] == pytest.approx(16.8, rel=0.01)
    assert totals["A9"] == pytest.approx(36.3, rel=0.01)


def test_stepcounter_cpu_time_matches_fig8():
    app = create_app("A2")
    # Fig. 8: 2.21 ms of app-specific computing on the CPU.
    assert app.profile.cpu_compute_time_s() == pytest.approx(2.21e-3, rel=0.01)


def test_stepcounter_mcu_time_matches_fig8():
    app = create_app("A2")
    # Fig. 8: 21.7 ms on the MCU.
    assert app.profile.mcu_compute_time_s() == pytest.approx(21.7e-3, rel=0.01)


def test_arduinojson_mcu_time_matches_paper():
    app = create_app("A3")
    cal = default_calibration()
    # §IV-F: ~7 ms on the MCU vs 0.45 ms on the main board (we match the
    # ratio via the per-app slowdown override).
    ratio = app.profile.mcu_compute_time_s(cal) / app.profile.cpu_compute_time_s(cal)
    assert ratio == pytest.approx(15.6, rel=0.01)


def test_a11_cannot_fit_mcu_ram():
    app = create_app("A11")
    cal = default_calibration()
    assert app.profile.memory_bytes > cal.mcu.ram_bytes


def test_a11_is_slower_than_real_time():
    app = create_app("A11")
    # 4683 M instructions single-threaded at ~1783 MIPS: ~2.6 s per 1 s of
    # audio — the reason the compute routine dominates Fig. 12a.
    assert app.profile.cpu_compute_time_s() == pytest.approx(2.63, rel=0.01)
    assert app.profile.cpu_compute_time_s() > app.profile.window_s


def test_profile_validation():
    from repro.apps.base import AppProfile

    with pytest.raises(WorkloadError):
        AppProfile(
            table2_id="X", name="x", title="x", category="c",
            user_task="t", sensor_ids=(),
        )
    with pytest.raises(WorkloadError):
        AppProfile(
            table2_id="X", name="x", title="x", category="c",
            user_task="t", sensor_ids=("S4",), window_s=0.0,
        )
    with pytest.raises(WorkloadError):
        AppProfile(
            table2_id="X", name="x", title="x", category="c",
            user_task="t", sensor_ids=("S99",),
        )
