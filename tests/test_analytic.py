"""The analytic tier's validation harness and the fidelity planner.

The first half pins the closed-form models against the DES: every
Figure 11 app set under all six schemes, plus seeded random app mixes
and multi-window scenarios, must land within :data:`ANALYTIC_RTOL` on
every energy/duration figure with exact integer counters.  The second
half exercises the engine plumbing — fingerprint separation, the
``auto`` planner's frontier selection (exact-match assertions), cache
fidelity accounting, and the serve/CLI surfaces.
"""

import pickle
import random

import pytest

from repro.core import (
    ANALYTIC_RTOL,
    AUTO_CONFIRM_BAND,
    FIDELITIES,
    Scenario,
    ScenarioEngine,
    analytic_scenario_result,
    scenario_fingerprint,
    scenario_group_key,
    supports_analytic,
)
from repro.core.cache import DiskResultCache
from repro.core.schemes.base import execute_scenario
from repro.errors import AnalyticUnsupported, ReproError

SCHEMES = ("baseline", "polling", "com", "batching", "beam", "bcom")

#: The paper's Figure 11 multi-app sets (offload-heavy A2..A7 mixes).
FIG11_COMBOS = (
    ("A2", "A5"),
    ("A5", "A7"),
    ("A4", "A5"),
    ("A3", "A5"),
    ("A2", "A7"),
    ("A2", "A4"),
    ("A4", "A7"),
    ("A3", "A4"),
    ("A2", "A5", "A7"),
    ("A2", "A4", "A5"),
    ("A5", "A7", "A4"),
    ("A3", "A4", "A5"),
    ("A2", "A4", "A7"),
    ("A2", "A4", "A5", "A7"),
)

#: Seeded random mixes over the full Table II roster: the tier must hold
#: beyond the combos it was tuned on.  The seed pins the suite; a new
#: mix joining the list is a deliberate act, not flake.
_rng = random.Random(0x1C0DE)
_POOL = ["A1", "A2", "A3", "A4", "A5", "A6", "A7", "A8", "A9", "A10"]
RANDOM_MIXES = tuple(
    tuple(sorted(_rng.sample(_POOL, _rng.choice([2, 2, 3]))))
    for _ in range(6)
)


def _close(a, b, rtol=ANALYTIC_RTOL):
    return abs(a - b) <= rtol * max(1.0, abs(a))


def assert_analytic_matches_des(apps, scheme, windows=1):
    """One comparison: identical errors, or figures within the band."""

    def attempt(runner):
        scenario = Scenario.of(list(apps), scheme=scheme, windows=windows)
        try:
            return runner(scenario), None
        except AnalyticUnsupported:
            raise
        except ReproError as exc:
            return None, f"{type(exc).__name__}: {exc}"

    supported, _reason = supports_analytic(
        Scenario.of(list(apps), scheme=scheme, windows=windows)
    )
    if not supported:
        with pytest.raises(AnalyticUnsupported):
            analytic_scenario_result(
                Scenario.of(list(apps), scheme=scheme, windows=windows)
            )
        return
    try:
        ana, ana_err = attempt(analytic_scenario_result)
    except AnalyticUnsupported:
        # The runtime RAM-occupancy gate: the DES must actually be
        # dropping samples there (a QoS violation), or the bail-out
        # would be spurious.
        des, des_err = attempt(execute_scenario)
        assert des_err is None
        assert any("RAM" in violation for violation in des.qos_violations)
        return
    des, des_err = attempt(execute_scenario)
    assert des_err == ana_err
    if des_err is not None:
        return
    assert ana.fidelity == "analytic" and des.fidelity == "des"
    assert _close(des.duration_s, ana.duration_s)
    assert _close(des.energy.total_j, ana.energy.total_j)
    assert _close(des.energy.marginal_j, ana.energy.marginal_j)
    assert des.interrupt_count == ana.interrupt_count
    assert des.cpu_wake_count == ana.cpu_wake_count
    assert des.bus_bytes == ana.bus_bytes
    assert des.qos_violations == ana.qos_violations
    keys = set(des.energy.by_component_routine) | set(
        ana.energy.by_component_routine
    )
    for key in keys:
        assert _close(
            des.energy.by_component_routine.get(key, 0.0),
            ana.energy.by_component_routine.get(key, 0.0),
        ), key
    for key in set(des.busy_times) | set(ana.busy_times):
        assert _close(
            des.busy_times.get(key, 0.0), ana.busy_times.get(key, 0.0)
        ), key
    assert set(des.result_times) == set(ana.result_times)
    for app, times in des.result_times.items():
        assert len(times) == len(ana.result_times[app])
        for expected, got in zip(times, ana.result_times[app]):
            assert abs(expected - got) <= 1e-9, app


@pytest.mark.parametrize("apps", FIG11_COMBOS, ids="+".join)
@pytest.mark.parametrize("scheme", SCHEMES)
def test_analytic_matches_des_fig11(apps, scheme):
    assert_analytic_matches_des(apps, scheme)


@pytest.mark.parametrize("apps", RANDOM_MIXES, ids="+".join)
@pytest.mark.parametrize("scheme", SCHEMES)
def test_analytic_matches_des_random_mixes(apps, scheme):
    assert_analytic_matches_des(apps, scheme)


@pytest.mark.parametrize("apps", [("A2", "A5"), ("A3", "A4", "A5")],
                         ids="+".join)
@pytest.mark.parametrize("scheme", SCHEMES)
def test_analytic_matches_des_multi_window(apps, scheme):
    assert_analytic_matches_des(apps, scheme, windows=3)


# ----------------------------------------------------------------------
# envelope gates
# ----------------------------------------------------------------------
def test_unsupported_gates():
    failure = Scenario.of(
        ["A2"], scheme="baseline", sensor_failure_rates={"S4": 0.5}
    )
    supported, reason = supports_analytic(failure)
    assert not supported and "stochastic" in reason
    partial = Scenario.of(["A2"], scheme="batching", batch_size=100)
    supported, reason = supports_analytic(partial)
    assert not supported and "partial-batch" in reason


def test_offload_error_counts_as_supported():
    # COM on a non-offloadable mix raises the identical error in both
    # tiers, so no DES fallback is needed.
    scenario = Scenario.of(["A2", "A11"], scheme="com")
    supported, reason = supports_analytic(scenario)
    assert supported and reason == ""
    with pytest.raises(ReproError) as ana_exc:
        analytic_scenario_result(scenario)
    with pytest.raises(ReproError) as des_exc:
        execute_scenario(Scenario.of(["A2", "A11"], scheme="com"))
    assert type(ana_exc.value) is type(des_exc.value)
    assert str(ana_exc.value) == str(des_exc.value)


# ----------------------------------------------------------------------
# fingerprints and grouping
# ----------------------------------------------------------------------
def test_fingerprint_separates_fidelity_tiers():
    scenario = Scenario.of(["A2", "A5"], scheme="baseline")
    des = scenario_fingerprint(scenario)
    ana = scenario_fingerprint(scenario, fidelity="analytic")
    assert des != ana
    # The closed form has no fast_forward toggle: one analytic entry
    # whatever the engine's setting.
    assert ana == scenario_fingerprint(
        scenario, fast_forward=True, fidelity="analytic"
    )
    assert des != scenario_fingerprint(scenario, fast_forward=True)
    with pytest.raises(ValueError):
        scenario_fingerprint(scenario, fidelity="auto")


def test_group_key_spans_schemes_not_workloads():
    a = scenario_group_key(Scenario.of(["A2", "A5"], scheme="baseline"))
    b = scenario_group_key(Scenario.of(["A2", "A5"], scheme="bcom"))
    c = scenario_group_key(Scenario.of(["A5", "A2"], scheme="beam"))
    assert a == b == c  # schemes collapse; app permutations canonicalize
    other_apps = scenario_group_key(Scenario.of(["A2", "A7"], scheme="bcom"))
    other_windows = scenario_group_key(
        Scenario.of(["A2", "A5"], scheme="baseline", windows=2)
    )
    assert a != other_apps
    assert a != other_windows


# ----------------------------------------------------------------------
# the engine's fidelity tiers
# ----------------------------------------------------------------------
def _grid(apps_sets, schemes, windows=1):
    return [
        Scenario.of(list(apps), scheme=scheme, windows=windows)
        for apps in apps_sets
        for scheme in schemes
    ]


def test_engine_rejects_unknown_fidelity():
    with pytest.raises(ValueError):
        ScenarioEngine(fidelity="exact")
    with ScenarioEngine() as engine:
        with pytest.raises(ValueError):
            engine.run_batch([], fidelity="fast")


def test_analytic_tier_through_engine():
    with ScenarioEngine(fidelity="analytic") as engine:
        result = engine.run(Scenario.of(["A2", "A5"], scheme="bcom"))
        assert result.fidelity == "analytic"
        assert engine.metrics.analytic_evals == 1
        assert engine.metrics.scenarios_run == 0
        des = execute_scenario(Scenario.of(["A2", "A5"], scheme="bcom"))
        assert _close(des.energy.marginal_j, result.energy.marginal_j)


def test_analytic_tier_falls_back_to_des_when_unsupported():
    scenario = Scenario.of(
        ["A2"], scheme="baseline", sensor_failure_rates={"S4": 0.25}
    )
    with ScenarioEngine() as engine:
        (outcome,) = engine.run_batch([scenario], fidelity="analytic")
        assert outcome.fidelity == "des"
        assert engine.metrics.scenarios_run == 1
        assert engine.metrics.analytic_evals == 0


def test_auto_frontier_selection_exact():
    schemes = ("baseline", "beam", "bcom")
    grid = _grid([("A2", "A5")], schemes)
    with ScenarioEngine() as engine:
        outcomes = engine.run_batch(grid, fidelity="auto")
        # bcom wins this app set outright (no within-band near-tie), so
        # the planner confirms exactly one point through the DES.
        assert [r.fidelity for r in outcomes] == ["analytic", "analytic",
                                                  "des"]
        assert engine.metrics.analytic_evals == 3
        assert engine.metrics.frontier_points == 1
        assert engine.metrics.des_confirmations == 1
        assert engine.metrics.scenarios_run == 1
        winner = min(outcomes, key=lambda r: r.energy.marginal_j)
        assert winner.scheme == "bcom" and winner.fidelity == "des"


def test_auto_confirms_all_within_band_ties():
    # Two copies of one scheme are a perfect tie — both sit inside
    # AUTO_CONFIRM_BAND of the winner, so both are frontier points; the
    # DES pass then dedups them into a single simulation.
    assert AUTO_CONFIRM_BAND > 0
    grid = _grid([("A2", "A5")], ("baseline", "baseline"))
    with ScenarioEngine() as engine:
        outcomes = engine.run_batch(grid, fidelity="auto")
        assert [r.fidelity for r in outcomes] == ["des", "des"]
        assert engine.metrics.frontier_points == 2
        assert engine.metrics.des_confirmations == 2
        assert engine.metrics.scenarios_run == 1  # deduped confirmation
        assert engine.metrics.dedup_hits >= 1


def test_auto_sends_unsupported_points_to_des():
    supported = Scenario.of(["A2", "A5"], scheme="baseline")
    unsupported = Scenario.of(["A2", "A5"], scheme="batching",
                              batch_size=100)
    with ScenarioEngine() as engine:
        outcomes = engine.run_batch([supported, unsupported],
                                    fidelity="auto")
        # Different group keys (batch_size differs), so the supported
        # point is its own group winner: both end up DES-confirmed.
        assert [r.fidelity for r in outcomes] == ["des", "des"]
        assert engine.metrics.analytic_evals == 1
        assert engine.metrics.frontier_points == 1
        assert engine.metrics.des_confirmations == 2


def test_auto_matches_des_bit_identically_on_confirmed_points():
    schemes = ("baseline", "beam", "bcom")
    grid = _grid(FIG11_COMBOS[:4], schemes)
    with ScenarioEngine() as auto_engine, ScenarioEngine() as des_engine:
        auto = auto_engine.run_batch(grid, fidelity="auto")
        des = des_engine.run_batch(_grid(FIG11_COMBOS[:4], schemes))
        assert des_engine.metrics.scenarios_run == len(grid)
        assert auto_engine.metrics.scenarios_run < len(grid) / 2
        for a, d in zip(auto, des):
            if a.fidelity == "des":
                assert a.energy.marginal_j == d.energy.marginal_j
                assert a.duration_s == d.duration_s
            else:
                assert _close(d.energy.marginal_j, a.energy.marginal_j)


def test_fidelity_tiers_never_collide_in_cache(tmp_path):
    cache_dir = tmp_path / "cache"
    scenario = Scenario.of(["A2", "A5"], scheme="bcom")
    with ScenarioEngine(cache_dir=cache_dir) as engine:
        ana = engine.run(scenario, fidelity="analytic")
        des = engine.run(Scenario.of(["A2", "A5"], scheme="bcom"))
        assert ana.fidelity == "analytic" and des.fidelity == "des"
        # Second analytic call is a pure cache hit (no new eval).
        evals = engine.metrics.analytic_evals
        again = engine.run(
            Scenario.of(["A2", "A5"], scheme="bcom"), fidelity="analytic"
        )
        assert again.fidelity == "analytic"
        assert engine.metrics.analytic_evals == evals
    counts = DiskResultCache(cache_dir).fidelity_counts()
    assert counts == {"analytic": 1, "des": 1}


def test_fidelity_counts_treats_legacy_entries_as_des(tmp_path):
    cache = DiskResultCache(tmp_path / "cache")
    with ScenarioEngine(cache_dir=tmp_path / "cache") as engine:
        engine.run(Scenario.of(["A2"], scheme="baseline"))
    # A pre-fidelity envelope: rewrite the entry without the key.
    (path, _size, _mtime), = cache.entries()
    with open(path, "rb") as handle:
        envelope = pickle.load(handle)
    del envelope["fidelity"]
    with open(path, "wb") as handle:
        pickle.dump(envelope, handle, pickle.HIGHEST_PROTOCOL)
    assert cache.fidelity_counts() == {"des": 1}


def test_batch_key_mixes_fidelity():
    scenarios = _grid([("A2", "A5")], ("baseline", "bcom"))
    with ScenarioEngine() as engine:
        des = engine.batch_key(scenarios)
        auto = engine.batch_key(scenarios, fidelity="auto")
        ana = engine.batch_key(scenarios, fidelity="analytic")
        assert len({des, auto, ana}) == 3
        # Fingerprints for auto are the DES grid identity.
        assert engine.fingerprints(scenarios, fidelity="auto") == \
            engine.fingerprints(scenarios)
        assert engine.fingerprints(scenarios, fidelity="analytic") != \
            engine.fingerprints(scenarios)


def test_fidelities_tuple_is_closed():
    assert FIDELITIES == ("des", "analytic", "auto")


def test_analytic_obs_spans():
    from repro.obs import TraceRecorder

    recorder = TraceRecorder()
    analytic_scenario_result(
        Scenario.of(["A2", "A5"], scheme="bcom"), obs=recorder
    )
    spans = [span for span in recorder.spans if span.cat == "analytic"]
    assert any(span.name == "bcom" for span in spans)
    assert any(span.name.startswith("result:") for span in spans)
