"""Unit tests for the from-scratch JSON codec."""

import pytest

from repro.protocols import JsonError, dumps, loads


@pytest.mark.parametrize(
    "value",
    [
        None,
        True,
        False,
        0,
        -17,
        3.5,
        -0.125,
        "hello",
        "",
        'quote " and \\ backslash',
        "newline\nand tab\t",
        [],
        [1, 2, 3],
        {"a": 1},
        {},
        {"nested": {"list": [1, [2, {"deep": None}]]}},
        {"sensors": {"S1": 1013.25, "S2": 22.5}, "count": 20},
    ],
)
def test_roundtrip(value):
    assert loads(dumps(value)) == value


def test_float_precision_survives_roundtrip():
    value = 1013.2534879123
    assert loads(dumps(value)) == pytest.approx(value, rel=1e-12)


def test_control_characters_escaped():
    encoded = dumps("\x01")
    assert "\\u0001" in encoded
    assert loads(encoded) == "\x01"


def test_dumps_rejects_non_finite():
    with pytest.raises(JsonError):
        dumps(float("nan"))
    with pytest.raises(JsonError):
        dumps(float("inf"))


def test_dumps_rejects_non_string_keys():
    with pytest.raises(JsonError):
        dumps({1: "a"})


def test_dumps_rejects_unknown_types():
    with pytest.raises(JsonError):
        dumps(object())


def test_loads_scientific_notation():
    assert loads("1.5e3") == 1500.0
    assert loads("-2E-2") == pytest.approx(-0.02)


def test_loads_whitespace_tolerant():
    assert loads('  { "a" : [ 1 , 2 ] }  ') == {"a": [1, 2]}


@pytest.mark.parametrize(
    "text",
    [
        "",
        "{",
        "[1, 2",
        '{"a": }',
        '{"a" 1}',
        '"unterminated',
        "tru",
        "1.2.3x",
        '{"a": 1} trailing',
        '"bad \\q escape"',
        '["raw \x01 control"]',
        '"\\u00"',
        "-",
    ],
)
def test_loads_rejects_malformed(text):
    with pytest.raises(JsonError):
        loads(text)


def test_ints_stay_ints():
    assert isinstance(loads("42"), int)
    assert isinstance(loads("42.0"), float)
