"""Property-based tests for the protocol codecs (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols import (
    BlynkFrame,
    ChunkStore,
    CoapMessage,
    CoapType,
    M2XBatch,
    build_update_payload,
    chunk_bytes,
    compute_delta,
    decode_frame,
    decode_message,
    dumps,
    encode_frame,
    encode_message,
    loads,
    parse_update_payload,
    rolling_checksum,
)

# ----------------------------------------------------------------------
# JSON
# ----------------------------------------------------------------------
json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**40), max_value=2**40)
    | st.floats(allow_nan=False, allow_infinity=False, width=32)
    | st.text(max_size=30),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=10), children, max_size=4),
    max_leaves=20,
)


@settings(max_examples=150)
@given(json_values)
def test_json_roundtrip_any_value(value):
    assert loads(dumps(value)) == value


@given(st.text(max_size=200))
def test_json_string_escaping_total(text):
    assert loads(dumps(text)) == text


# ----------------------------------------------------------------------
# CoAP
# ----------------------------------------------------------------------
coap_options = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=2000),
        st.binary(max_size=40),
    ),
    max_size=5,
)


@settings(max_examples=150)
@given(
    mtype=st.integers(0, 3),
    code=st.integers(0, 255),
    message_id=st.integers(0, 0xFFFF),
    token=st.binary(max_size=8),
    options=coap_options,
    payload=st.binary(min_size=0, max_size=64),
)
def test_coap_roundtrip_any_message(mtype, code, message_id, token, options, payload):
    message = CoapMessage(
        mtype=mtype,
        code=code,
        message_id=message_id,
        token=token,
        options=options,
        payload=payload,
    )
    decoded = decode_message(encode_message(message))
    assert decoded.mtype == mtype
    assert decoded.code == code
    assert decoded.message_id == message_id
    assert decoded.token == token
    assert decoded.payload == payload
    # Options come back sorted by number with values intact.
    assert sorted(decoded.options) == sorted(options)


@given(
    st.text(
        st.characters(min_codepoint=97, max_codepoint=122),
        min_size=1,
        max_size=12,
    )
)
def test_coap_get_path_roundtrip(segment):
    request = CoapMessage.get(f"/{segment}/{segment}", message_id=1)
    decoded = decode_message(encode_message(request))
    assert decoded.uri_path() == f"/{segment}/{segment}"
    assert decoded.mtype == CoapType.CONFIRMABLE


# ----------------------------------------------------------------------
# Blynk
# ----------------------------------------------------------------------
@settings(max_examples=150)
@given(
    command=st.integers(0, 255),
    message_id=st.integers(0, 0xFFFF),
    body=st.binary(max_size=128),
)
def test_blynk_roundtrip_any_frame(command, message_id, body):
    frame = BlynkFrame(command, message_id, body)
    decoded, rest = decode_frame(encode_frame(frame))
    assert decoded == frame
    assert rest == b""


# ----------------------------------------------------------------------
# M2X
# ----------------------------------------------------------------------
@settings(max_examples=60)
@given(
    st.dictionaries(
        st.text(
            st.characters(min_codepoint=97, max_codepoint=122),
            min_size=1,
            max_size=8,
        ),
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=86_000.0, allow_nan=False),
                st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            ),
            min_size=1,
            max_size=5,
        ),
        min_size=1,
        max_size=4,
    )
)
def test_m2x_roundtrip_preserves_point_counts(streams):
    batch = M2XBatch(device_id="dev")
    for stream, points in streams.items():
        for timestamp, value in points:
            batch.add(stream, timestamp, value)
    parsed = parse_update_payload(build_update_payload(batch, "key"))
    assert parsed.point_count == batch.point_count
    assert set(parsed.streams) == set(batch.streams)


# ----------------------------------------------------------------------
# chunk sync
# ----------------------------------------------------------------------
@settings(max_examples=80)
@given(st.binary(min_size=0, max_size=4096))
def test_sync_unchanged_data_never_uploads(data):
    store = ChunkStore(chunk_size=256)
    store.accept(data)
    delta = compute_delta(data, store.signatures(), chunk_size=256)
    assert delta.changed_indices == []
    assert delta.upload_bytes == 0


@settings(max_examples=80)
@given(
    st.binary(min_size=600, max_size=4096),
    st.integers(min_value=0, max_value=599),
)
def test_sync_single_byte_change_touches_one_chunk(data, position):
    store = ChunkStore(chunk_size=256)
    store.accept(data)
    mutated = bytearray(data)
    mutated[position] = (mutated[position] + 1) % 256
    delta = compute_delta(bytes(mutated), store.signatures(), chunk_size=256)
    assert delta.changed_indices == [position // 256]


@given(st.binary(min_size=0, max_size=2048), st.integers(1, 512))
def test_chunking_reassembles(data, chunk_size):
    assert b"".join(chunk_bytes(data, chunk_size)) == data


@given(st.binary(min_size=1, max_size=512))
def test_rolling_checksum_is_deterministic_32bit(chunk):
    value = rolling_checksum(chunk)
    assert value == rolling_checksum(chunk)
    assert 0 <= value < 2**32
