"""Tests for the two-tier result cache: LRU, sharded disk, recovery.

The concurrency section is the satellite the ISSUE calls out: two
engines sharing one cache directory must tolerate write races, torn
and garbage entries, and entries written by other library versions —
every failure mode degrades to a recomputation, never an exception.
"""

import os
import pickle
import threading

import pytest

from repro.core import Scenario, ScenarioEngine, Scheme, run_scenario
from repro.core.cache import (
    ENTRY_VERSION,
    DiskResultCache,
    LRUResultCache,
    TieredResultCache,
)
from repro.core.engine import scenario_fingerprint, strip_hub


@pytest.fixture(scope="module")
def sample_result():
    """One real (hub-stripped) result to shuttle through the caches."""
    return strip_hub(run_scenario(Scenario.of(["A2"], scheme=Scheme.COM)))


def _fingerprint(index: int = 0) -> str:
    return f"{index:02x}" + "ab" * 31


# ----------------------------------------------------------------------
# memory tier
# ----------------------------------------------------------------------
def test_lru_evicts_least_recently_used(sample_result):
    cache = LRUResultCache(max_entries=2)
    cache.put(_fingerprint(0), sample_result)
    cache.put(_fingerprint(1), sample_result)
    assert cache.get(_fingerprint(0)) is not None  # refresh 0
    cache.put(_fingerprint(2), sample_result)  # evicts 1, not 0
    assert cache.get(_fingerprint(1)) is None
    assert cache.get(_fingerprint(0)) is not None
    assert len(cache) == 2


def test_lru_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        LRUResultCache(max_entries=0)


def test_lru_clear(sample_result):
    cache = LRUResultCache()
    cache.put(_fingerprint(), sample_result)
    cache.clear()
    assert len(cache) == 0
    assert cache.get(_fingerprint()) is None


# ----------------------------------------------------------------------
# disk tier: layout, atomicity, recovery
# ----------------------------------------------------------------------
def test_disk_layout_is_sharded(tmp_path, sample_result):
    cache = DiskResultCache(tmp_path)
    fingerprint = _fingerprint()
    cache.store(fingerprint, sample_result)
    expected = tmp_path / fingerprint[:2] / f"{fingerprint[2:]}.pkl"
    assert expected.is_file()
    assert cache.load(fingerprint).energy.total_j == (
        sample_result.energy.total_j
    )
    # No stray tmp files survive a successful store.
    assert list(tmp_path.rglob("*.tmp")) == []


def test_disk_missing_entry_is_none(tmp_path):
    assert DiskResultCache(tmp_path).load(_fingerprint()) is None


@pytest.mark.parametrize(
    "payload",
    [b"", b"garbage not a pickle", pickle.dumps({"truncated": True})[:-4]],
    ids=["empty", "garbage", "truncated"],
)
def test_disk_corrupt_entry_is_miss_and_discarded(
    tmp_path, sample_result, payload
):
    cache = DiskResultCache(tmp_path)
    fingerprint = _fingerprint()
    cache.store(fingerprint, sample_result)
    path = cache.path_for(fingerprint)
    with open(path, "wb") as handle:
        handle.write(payload)
    assert cache.load(fingerprint) is None
    assert not os.path.exists(path)  # useless bytes were dropped


def test_disk_version_mismatch_skipped_not_deleted(tmp_path, sample_result):
    cache = DiskResultCache(tmp_path)
    fingerprint = _fingerprint()
    path = cache.path_for(fingerprint)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "wb") as handle:
        pickle.dump(
            {
                "entry_version": ENTRY_VERSION + 1,
                "fingerprint": fingerprint,
                "result": sample_result,
            },
            handle,
        )
    assert cache.load(fingerprint) is None
    # Another library version may still want it: left in place.
    assert os.path.exists(path)


def test_disk_foreign_fingerprint_is_miss(tmp_path, sample_result):
    """A valid envelope renamed into the wrong slot never serves."""
    cache = DiskResultCache(tmp_path)
    path = cache.path_for(_fingerprint(2))
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "wb") as handle:
        pickle.dump(
            {
                "entry_version": ENTRY_VERSION,
                "fingerprint": _fingerprint(0),
                "result": sample_result,
            },
            handle,
        )
    assert cache.load(_fingerprint(2)) is None


# ----------------------------------------------------------------------
# disk tier: stats / gc / clear
# ----------------------------------------------------------------------
def test_stats_counts_entries_and_shards(tmp_path, sample_result):
    cache = DiskResultCache(tmp_path)
    for index in range(3):
        cache.store(_fingerprint(index), sample_result)
    stats = cache.stats()
    assert stats.entries == 3
    assert stats.shard_dirs == 3  # distinct 2-char prefixes
    assert stats.total_bytes > 0


def test_gc_evicts_oldest_first(tmp_path, sample_result):
    cache = DiskResultCache(tmp_path)
    for index in range(3):
        cache.store(_fingerprint(index), sample_result)
        os.utime(cache.path_for(_fingerprint(index)), (index, index))
    entry_size = os.path.getsize(cache.path_for(_fingerprint(0)))
    outcome = cache.gc(max_bytes=entry_size)  # room for exactly one
    assert outcome.evicted == 2
    assert outcome.remaining_entries == 1
    assert cache.load(_fingerprint(2)) is not None  # newest survives
    assert cache.load(_fingerprint(0)) is None


def test_gc_without_cap_raises(tmp_path):
    with pytest.raises(ValueError):
        DiskResultCache(tmp_path).gc()


def test_maybe_gc_noop_without_configured_cap(tmp_path, sample_result):
    cache = DiskResultCache(tmp_path)
    cache.store(_fingerprint(), sample_result)
    assert cache.maybe_gc() is None
    assert cache.stats().entries == 1


def test_clear_covers_legacy_flat_entries(tmp_path, sample_result):
    cache = DiskResultCache(tmp_path)
    cache.store(_fingerprint(), sample_result)
    # A pre-shard cache left flat files directly under the root.
    (tmp_path / "legacyentry.pkl").write_bytes(b"old layout")
    assert cache.stats().entries == 2
    assert cache.clear() == 2
    assert cache.stats().entries == 0


# ----------------------------------------------------------------------
# tier composition
# ----------------------------------------------------------------------
def test_tiered_promotes_disk_hits_to_memory(tmp_path, sample_result):
    disk = DiskResultCache(tmp_path)
    memory = LRUResultCache()
    tiered = TieredResultCache(memory=memory, disk=disk)
    fingerprint = _fingerprint()
    disk.store(fingerprint, sample_result)
    tier, _ = tiered.get(fingerprint)
    assert tier == "disk"
    tier, _ = tiered.get(fingerprint)
    assert tier == "memory"


def test_tiered_disabled_without_tiers():
    assert not TieredResultCache().enabled
    assert TieredResultCache(memory=LRUResultCache()).enabled


# ----------------------------------------------------------------------
# concurrency: shared directories and racing writers
# ----------------------------------------------------------------------
def test_two_engines_share_one_cache_dir(tmp_path):
    scenario = Scenario.of(["A2"], scheme=Scheme.BATCHING)
    first = ScenarioEngine(cache_dir=tmp_path)
    second = ScenarioEngine(cache_dir=tmp_path)
    cold = first.run(scenario)
    hit = second.run(scenario)
    assert first.cache_misses == 1
    assert second.metrics.cache_disk_hits == 1
    assert hit.energy.total_j == cold.energy.total_j


def test_racing_writers_leave_one_complete_entry(tmp_path, sample_result):
    fingerprint = _fingerprint()
    errors = []

    def writer():
        try:
            for _ in range(50):
                DiskResultCache(tmp_path).store(fingerprint, sample_result)
        except BaseException as exc:  # noqa: BLE001 - test harness
            errors.append(exc)

    threads = [threading.Thread(target=writer) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    loaded = DiskResultCache(tmp_path).load(fingerprint)
    assert loaded is not None
    assert loaded.energy.total_j == sample_result.energy.total_j
    assert list(tmp_path.rglob("*.tmp")) == []


def test_reader_racing_clear_sees_miss_not_error(tmp_path, sample_result):
    cache = DiskResultCache(tmp_path)
    fingerprint = _fingerprint()
    cache.store(fingerprint, sample_result)
    cache.clear()
    assert cache.load(fingerprint) is None
    assert cache.entries() == []


def test_fingerprint_roundtrip_through_engine_cache(tmp_path):
    """The engine's disk entries live where DiskResultCache says."""
    scenario = Scenario.of(["A2"], scheme=Scheme.BATCHING)
    engine = ScenarioEngine(cache_dir=tmp_path)
    engine.run(scenario)
    fingerprint = scenario_fingerprint(scenario)
    assert os.path.exists(DiskResultCache(tmp_path).path_for(fingerprint))
