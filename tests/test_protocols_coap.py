"""Unit tests for the CoAP codec and mini server."""

import pytest

from repro.protocols import (
    CoapCode,
    CoapError,
    CoapMessage,
    CoapServer,
    CoapType,
    decode_message,
    encode_message,
)
from repro.protocols.coap import OPTION_URI_PATH


def test_get_roundtrip():
    request = CoapMessage.get("/sensors/light", message_id=7, token=b"\xab")
    decoded = decode_message(encode_message(request))
    assert decoded.mtype == CoapType.CONFIRMABLE
    assert decoded.code == CoapCode.GET
    assert decoded.message_id == 7
    assert decoded.token == b"\xab"
    assert decoded.uri_path() == "/sensors/light"


def test_response_roundtrip_with_payload():
    request = CoapMessage.get("/x", message_id=99)
    response = request.reply(CoapCode.CONTENT, b'{"v": 1}')
    decoded = decode_message(encode_message(response))
    assert decoded.mtype == CoapType.ACKNOWLEDGEMENT
    assert decoded.code == CoapCode.CONTENT
    assert decoded.payload == b'{"v": 1}'
    assert decoded.message_id == 99


def test_large_option_values_use_extended_encoding():
    long_segment = "x" * 300  # needs the 14 + 2-byte extended length
    message = CoapMessage(
        mtype=CoapType.CONFIRMABLE,
        code=CoapCode.GET,
        message_id=1,
        options=[(OPTION_URI_PATH, long_segment.encode())],
    )
    decoded = decode_message(encode_message(message))
    assert decoded.options[0][1] == long_segment.encode()


def test_option_delta_encoding_over_gaps():
    message = CoapMessage(
        mtype=CoapType.NON_CONFIRMABLE,
        code=CoapCode.GET,
        message_id=5,
        options=[(6, b"a"), (60, b"b"), (600, b"c")],
    )
    decoded = decode_message(encode_message(message))
    assert [number for number, _ in decoded.options] == [6, 60, 600]


def test_dotted_code_rendering():
    assert CoapCode.dotted(CoapCode.CONTENT) == "2.05"
    assert CoapCode.dotted(CoapCode.NOT_FOUND) == "4.04"


def test_encode_rejects_bad_fields():
    with pytest.raises(CoapError):
        encode_message(
            CoapMessage(mtype=0, code=1, message_id=70000)
        )
    with pytest.raises(CoapError):
        encode_message(
            CoapMessage(mtype=0, code=1, message_id=1, token=b"123456789")
        )
    with pytest.raises(CoapError):
        encode_message(CoapMessage(mtype=9, code=1, message_id=1))


def test_decode_rejects_truncated():
    request = encode_message(CoapMessage.get("/a/b", message_id=3))
    with pytest.raises(CoapError):
        decode_message(request[:3])


def test_decode_rejects_bad_version():
    data = bytearray(encode_message(CoapMessage.get("/a", message_id=1)))
    data[0] = (2 << 6) | (data[0] & 0x3F)
    with pytest.raises(CoapError):
        decode_message(bytes(data))


def test_decode_rejects_empty_payload_after_marker():
    data = encode_message(CoapMessage.get("/a", message_id=1)) + b"\xff"
    with pytest.raises(CoapError):
        decode_message(data)


def test_server_serves_published_resources():
    server = CoapServer()
    server.publish("/sensors/sound", b"42")
    request = encode_message(CoapMessage.get("/sensors/sound", message_id=11))
    response = decode_message(server.handle(request))
    assert response.code == CoapCode.CONTENT
    assert response.payload == b"42"
    assert server.request_count == 1


def test_server_404_for_unknown_path():
    server = CoapServer()
    request = encode_message(CoapMessage.get("/nope", message_id=2))
    response = decode_message(server.handle(request))
    assert response.code == CoapCode.NOT_FOUND


def test_server_rejects_non_get():
    server = CoapServer()
    post = CoapMessage(
        mtype=CoapType.CONFIRMABLE, code=CoapCode.POST, message_id=4
    )
    response = decode_message(server.handle(encode_message(post)))
    assert response.code == CoapCode.BAD_REQUEST
