"""Cross-scheme invariants: relationships that must hold whatever the
workload, because they are structural properties of the optimizations."""

import pytest

from repro.apps import create_app
from repro.core import Scheme, run_apps
from repro.hw.power import Routine

#: A representative spread: kHz single-sensor, slow multi-sensor,
#: on-demand single-read, and multi-rate multi-sensor.
CASES = ("A2", "A3", "A9", "A4")


@pytest.fixture(scope="module")
def matrix():
    return {
        app_id: {
            scheme: run_apps([app_id], scheme)
            for scheme in (Scheme.BASELINE, Scheme.BATCHING, Scheme.COM)
        }
        for app_id in CASES
    }


def test_energy_ordering_baseline_batching_com(matrix):
    """Marginal energy: baseline >= batching >= com, for every light app."""
    for app_id, results in matrix.items():
        baseline = results[Scheme.BASELINE].energy.marginal_j
        batching = results[Scheme.BATCHING].energy.marginal_j
        com = results[Scheme.COM].energy.marginal_j
        assert baseline >= batching - 1e-9, app_id
        assert batching >= com - 1e-9, app_id


def test_interrupt_ordering(matrix):
    """Interrupts: baseline = Table II count; batching/com = windows."""
    for app_id, results in matrix.items():
        profile = create_app(app_id).profile
        assert (
            results[Scheme.BASELINE].interrupt_count
            == profile.interrupts_per_window
        ), app_id
        assert results[Scheme.BATCHING].interrupt_count == 1, app_id
        assert results[Scheme.COM].interrupt_count == 1, app_id


def test_bus_traffic_shrinks_under_com(matrix):
    """COM moves only the result; batching still moves the window."""
    for app_id, results in matrix.items():
        profile = create_app(app_id).profile
        baseline_bytes = results[Scheme.BASELINE].bus_bytes
        batching_bytes = results[Scheme.BATCHING].bus_bytes
        com_bytes = results[Scheme.COM].bus_bytes
        assert baseline_bytes == profile.sensor_data_bytes, app_id
        assert batching_bytes == profile.sensor_data_bytes, app_id
        assert com_bytes == profile.output_bytes, app_id


def test_collection_energy_is_scheme_invariant(matrix):
    """Sensor reading costs the same no matter where compute happens."""
    for app_id, results in matrix.items():
        energies = [
            results[scheme].energy.marginal_by_routine().get(
                Routine.DATA_COLLECTION, 0.0
            )
            for scheme in (Scheme.BASELINE, Scheme.BATCHING, Scheme.COM)
        ]
        low, high = min(energies), max(energies)
        assert high <= low * 1.4 + 0.05, (app_id, energies)


def test_functional_payloads_identical_across_schemes(matrix):
    """The computation's answer does not depend on its placement."""
    comparable_keys = {
        "A2": "steps",
        "A3": "readings",
        "A9": "frame_id",
        "A4": "streams",
    }
    for app_id, results in matrix.items():
        key = comparable_keys[app_id]
        app_name = create_app(app_id).name
        values = {
            scheme: result.result_payloads(app_name)[0][key]
            for scheme, result in results.items()
        }
        assert len(set(values.values())) == 1, (app_id, values)


def test_all_schemes_meet_light_app_qos(matrix):
    for app_id, results in matrix.items():
        for scheme, result in results.items():
            assert result.qos_violations == [], (app_id, scheme)


def test_durations_stay_near_the_window(matrix):
    """No scheme stretches a light app's window materially."""
    for app_id, results in matrix.items():
        window = create_app(app_id).profile.window_s
        for scheme, result in results.items():
            assert result.duration_s < window * 1.6, (app_id, scheme)
