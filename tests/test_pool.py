"""Tests for the persistent worker pool and its chunked dispatch.

``WorkerPool`` is now the compatibility alias of
``repro.core.backends.process.ProcessPoolBackend``; these tests pin the
old import surface and behavior.  The cross-backend contract lives in
``tests/test_backends_contract.py``.
"""

import pytest

from repro.core.backends import ProcessPoolBackend
from repro.core.pool import WorkerPool, adaptive_chunk_size, chunked
from repro.errors import ChunkTaskError


def test_workerpool_is_the_process_backend():
    assert WorkerPool is ProcessPoolBackend


def _square(value):
    return value * value


def _boom(value):
    raise RuntimeError(f"boom {value}")


# ----------------------------------------------------------------------
# chunk-size arithmetic
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    ("tasks", "workers", "expected"),
    [
        (0, 4, 1),
        (1, 4, 1),
        (16, 4, 1),  # exactly chunks_per_worker chunks each
        (42, 4, 3),  # the fig11+permutations batch: 14 dispatches
        (1000, 4, 63),
        (5, 8, 1),  # fewer tasks than workers: no starvation
    ],
)
def test_adaptive_chunk_size(tasks, workers, expected):
    assert adaptive_chunk_size(tasks, workers) == expected


def test_adaptive_chunk_size_rejects_bad_workers():
    with pytest.raises(ValueError):
        adaptive_chunk_size(10, 0)


def test_chunked_splits_and_preserves_order():
    assert chunked([1, 2, 3, 4, 5], 2) == [[1, 2], [3, 4], [5]]
    with pytest.raises(ValueError):
        chunked([1], 0)


# ----------------------------------------------------------------------
# pool lifecycle
# ----------------------------------------------------------------------
def test_map_returns_results_in_item_order():
    with WorkerPool(2) as pool:
        assert pool.map(_square, list(range(10))) == [
            value * value for value in range(10)
        ]
        assert pool.tasks == 10
        assert pool.dispatches >= 2


def test_pool_spawns_once_across_maps():
    with WorkerPool(2) as pool:
        pool.map(_square, [1, 2, 3])
        pool.map(_square, [4, 5, 6])
        assert pool.spawns == 1
        assert pool.tasks == 6


def test_empty_map_never_spawns():
    with WorkerPool(2) as pool:
        assert pool.map(_square, []) == []
        assert pool.spawns == 0
        assert not pool.alive


def test_closed_pool_respawns_transparently():
    pool = WorkerPool(2)
    pool.map(_square, [1])
    pool.close()
    assert not pool.alive
    pool.close()  # idempotent
    assert pool.map(_square, [2]) == [4]
    assert pool.spawns == 2
    pool.close()


def test_worker_exceptions_propagate():
    # A real bug still aborts the batch, now attributed to the failing
    # item (ChunkTaskError chains the original RuntimeError).
    with WorkerPool(2) as pool:
        with pytest.raises(ChunkTaskError, match="boom") as excinfo:
            pool.map(_boom, [1, 2])
        assert excinfo.value.index in (0, 1)
        # The original exception survives in the message (the pickled
        # __cause__ becomes a remote-traceback stub across processes).
        assert "RuntimeError" in str(excinfo.value)


def test_explicit_chunk_size_controls_dispatch_count():
    with WorkerPool(2) as pool:
        pool.map(_square, list(range(6)), chunk_size=6)
        assert pool.dispatches == 1
        assert pool.tasks == 6


def test_pool_rejects_bad_worker_count():
    with pytest.raises(ValueError):
        WorkerPool(0)
