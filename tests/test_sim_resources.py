"""Unit tests for FIFO resource locks."""

import pytest

from repro.errors import SimulationError
from repro.sim import Delay, Simulator
from repro.sim.resources import Resource


def run_workers(count, hold_time):
    """Spawn ``count`` workers contending for one resource; return the log."""
    sim = Simulator()
    resource = Resource("core")
    log = []

    def worker(tag):
        yield from resource.acquire()
        log.append((tag, "in", sim.now))
        yield Delay(hold_time)
        log.append((tag, "out", sim.now))
        resource.release()

    for tag in range(count):
        sim.spawn(worker(tag))
    sim.run()
    return log, resource


def test_mutual_exclusion_and_fifo_order():
    log, resource = run_workers(3, hold_time=1.0)
    entries = [item for item in log if item[1] == "in"]
    exits = [item for item in log if item[1] == "out"]
    assert [tag for tag, _, _ in entries] == [0, 1, 2]
    # Each worker enters exactly when the previous one exits.
    assert [time for _, _, time in entries] == [0.0, 1.0, 2.0]
    assert [time for _, _, time in exits] == [1.0, 2.0, 3.0]
    assert not resource.busy
    assert resource.contention_count == 2


def test_uncontended_acquire_is_immediate():
    log, resource = run_workers(1, hold_time=0.5)
    assert log == [(0, "in", 0.0), (0, "out", 0.5)]
    assert resource.contention_count == 0


def test_release_without_acquire_raises():
    with pytest.raises(SimulationError):
        Resource().release()


def test_queue_length_reflects_waiters():
    sim = Simulator()
    resource = Resource()
    depths = []

    def holder():
        yield from resource.acquire()
        yield Delay(2.0)
        depths.append(resource.queue_length)
        resource.release()

    def waiter():
        yield Delay(0.5)
        yield from resource.acquire()
        resource.release()

    sim.spawn(holder())
    sim.spawn(waiter())
    sim.run()
    assert depths == [1]
    assert resource.queue_length == 0
