"""Cross-backend conformance suite for the execution-backend layer.

Every registered backend must honor the same contract: ordered results,
attributed error propagation, exact scheduling counters, an idempotent
close/reopen lifecycle — and, through the engine, grid results that are
bit-identical to an inline (serial) run.  The suite is parametrized
over every stock backend so a new implementation inherits the whole
checklist by adding one ``_BACKEND_FIXTURES`` entry.
"""

import pickle
import time

import pytest

from repro.core import Scenario, ScenarioEngine, Scheme, compare_grid
from repro.core.backends import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    SocketBackend,
    WorkerAgent,
    backend_names,
    create_backend,
    default_backend_name,
    register_backend,
    unregister_backend,
)
from repro.core.engine import strip_hub
from repro.errors import BackendError, ChunkTaskError


def _square(value):
    return value * value


def _slow_square(value):
    time.sleep(0.02)  # keeps every socket worker busy long enough to
    return value * value  # guarantee the doomed host steals some chunks


def _boom_on_five(value):
    if value == 5:
        raise ValueError("boom")
    return value


# ----------------------------------------------------------------------
# backend construction, parametrized over the registry
# ----------------------------------------------------------------------
class _BackendHarness:
    """One ready-to-use backend plus whatever infrastructure it needs."""

    def __init__(self, backend, agents=()):
        self.backend = backend
        self.agents = list(agents)

    def shutdown(self):
        self.backend.close()
        for agent in self.agents:
            agent.stop()


def _serial_harness():
    return _BackendHarness(SerialBackend())


def _process_harness():
    return _BackendHarness(ProcessPoolBackend(max_workers=2))


def _socket_harness():
    agents = [WorkerAgent().start() for _ in range(2)]
    backend = SocketBackend(hosts=[agent.address for agent in agents])
    return _BackendHarness(backend, agents)


_BACKEND_FIXTURES = {
    "serial": _serial_harness,
    "process": _process_harness,
    "socket": _socket_harness,
}


def test_suite_covers_every_registered_backend():
    """A new stock backend must join this conformance suite."""
    assert set(backend_names()) == set(_BACKEND_FIXTURES)


@pytest.fixture(params=sorted(_BACKEND_FIXTURES))
def harness(request):
    built = _BACKEND_FIXTURES[request.param]()
    yield built
    built.shutdown()


# ----------------------------------------------------------------------
# ordering and counters
# ----------------------------------------------------------------------
def test_results_come_back_in_item_order(harness):
    backend = harness.backend
    items = list(range(25))
    assert backend.submit_batch(_square, items, chunk_size=4) == [
        value * value for value in items
    ]
    # Counter exactness: 25 tasks in ceil(25/4) = 7 dispatched chunks.
    assert backend.tasks == 25
    assert backend.dispatches == 7
    assert backend.retries == 0
    if backend.parallel:
        assert backend.spawns >= 1
    else:
        assert backend.spawns == 0


def test_empty_batch_is_free(harness):
    backend = harness.backend
    assert backend.submit_batch(_square, []) == []
    assert backend.spawns == 0
    assert backend.tasks == 0
    assert backend.dispatches == 0


def test_map_is_a_submit_batch_alias(harness):
    assert harness.backend.map(_square, [1, 2, 3]) == [1, 4, 9]


# ----------------------------------------------------------------------
# error propagation with attribution
# ----------------------------------------------------------------------
def test_task_errors_carry_index_and_label(harness):
    backend = harness.backend
    labels = [f"point-{value}" for value in range(8)]
    with pytest.raises(ChunkTaskError, match="boom") as excinfo:
        backend.submit_batch(
            _boom_on_five, list(range(8)), chunk_size=2, labels=labels
        )
    assert excinfo.value.index == 5
    assert excinfo.value.label == "point-5"
    # A genuine task failure is never retried, on any backend.
    assert backend.retries == 0


def test_backend_stays_usable_after_a_task_error(harness):
    backend = harness.backend
    with pytest.raises(ChunkTaskError):
        backend.submit_batch(_boom_on_five, list(range(8)), chunk_size=2)
    assert backend.submit_batch(_square, [3, 4]) == [9, 16]


def test_chunk_task_error_survives_pickling():
    error = ChunkTaskError("task 7 (pt) failed", index=7, label="pt")
    clone = pickle.loads(pickle.dumps(error))
    assert isinstance(clone, ChunkTaskError)
    assert (clone.index, clone.label) == (7, "pt")
    assert str(clone) == str(error)


# ----------------------------------------------------------------------
# lifecycle
# ----------------------------------------------------------------------
def test_close_is_idempotent_and_reopens_transparently(harness):
    backend = harness.backend
    assert backend.submit_batch(_square, [2]) == [4]
    backend.close()
    backend.close()  # double-close must never raise
    assert not backend.alive or not backend.parallel
    assert backend.submit_batch(_square, [3]) == [9]  # transparent reopen


def test_close_before_any_batch_is_safe(harness):
    harness.backend.close()  # nothing spawned yet
    assert harness.backend.spawns == 0


def test_context_manager_closes(harness):
    backend = harness.backend
    with backend as entered:
        assert entered is backend
        assert backend.submit_batch(_square, [5]) == [25]
    if backend.parallel:
        assert not backend.alive


# ----------------------------------------------------------------------
# engine integration: bit-identical grids on every backend
# ----------------------------------------------------------------------
def _result_signature(result):
    """Every deterministic field of a result, hub stripped."""
    bare = strip_hub(result)
    return (
        bare.scenario_name,
        bare.scheme,
        bare.app_ids,
        bare.windows,
        bare.duration_s,
        bare.energy.total_j,
        bare.energy.marginal_j,
        bare.busy_times,
        bare.result_times,
        bare.qos_violations,
        bare.interrupt_count,
        bare.cpu_wake_count,
        bare.bus_bytes,
    )


_GRID_APP_SETS = [["A2"], ["A4", "A5"], ["A5", "A4"]]
_GRID_SCHEMES = [Scheme.BASELINE, Scheme.BATCHING]


def _grid_signatures(engine):
    grid = compare_grid(_GRID_APP_SETS, _GRID_SCHEMES, engine=engine)
    return {
        (key, scheme): _result_signature(result)
        for key, per_scheme in grid.items()
        for scheme, result in per_scheme.items()
    }


@pytest.fixture(scope="module")
def serial_grid_signatures():
    with ScenarioEngine(backend="serial") as engine:
        return _grid_signatures(engine)


def test_engine_grid_bit_identical_across_backends(
    harness, serial_grid_signatures
):
    backend = harness.backend
    hosts = [agent.address for agent in harness.agents] or None
    with ScenarioEngine(
        workers=2, backend=backend.name, backend_hosts=hosts
    ) as engine:
        assert _grid_signatures(engine) == serial_grid_signatures
        assert engine.metrics.backend_name == backend.name


# ----------------------------------------------------------------------
# socket backend specifics: worker loss, retry, degradation
# ----------------------------------------------------------------------
def test_socket_redispatches_chunks_from_a_killed_worker():
    # The doomed agent abruptly shuts down after ONE chunk (its listener
    # and connections close mid-batch), deterministically exercising the
    # lost-host path; the surviving agent absorbs the re-queued chunks.
    survivor = WorkerAgent().start()
    doomed = WorkerAgent(max_requests=1).start()
    backend = SocketBackend(hosts=[survivor.address, doomed.address])
    try:
        items = list(range(12))
        assert backend.submit_batch(_slow_square, items, chunk_size=1) == [
            value * value for value in items
        ]
        assert backend.retries >= 1
        assert backend.hosts_lost >= 1
        assert backend.tasks == 12
    finally:
        backend.close()
        survivor.stop()
        doomed.stop()


def test_socket_raises_when_every_host_is_lost():
    doomed = WorkerAgent(max_requests=1).start()
    backend = SocketBackend(hosts=[doomed.address])
    try:
        with pytest.raises(BackendError, match="lost"):
            backend.submit_batch(_slow_square, list(range(6)), chunk_size=1)
    finally:
        backend.close()
        doomed.stop()


def test_socket_needs_hosts(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND_HOSTS", raising=False)
    with pytest.raises(BackendError, match="hosts"):
        create_backend("socket")


def test_socket_hosts_come_from_the_environment(monkeypatch):
    agent = WorkerAgent().start()
    monkeypatch.setenv("REPRO_BACKEND_HOSTS", agent.address)
    backend = create_backend("socket")
    try:
        assert backend.submit_batch(_square, [6]) == [36]
    finally:
        backend.close()
        agent.stop()


def test_socket_connects_only_reachable_hosts():
    agent = WorkerAgent().start()
    backend = SocketBackend(
        hosts=[agent.address, "127.0.0.1:1"], connect_timeout_s=0.25
    )
    try:
        assert backend.submit_batch(_square, [2, 3]) == [4, 9]
        assert backend.spawns == 1  # degraded start: one live host
        assert backend.hosts_lost == 1
    finally:
        backend.close()
        agent.stop()


def test_socket_rejects_malformed_host_specs():
    with pytest.raises(BackendError, match="host:port"):
        SocketBackend(hosts="localhost")
    with pytest.raises(BackendError, match="port"):
        SocketBackend(hosts="localhost:not-a-port")


# ----------------------------------------------------------------------
# registry and default resolution
# ----------------------------------------------------------------------
def test_unknown_backend_name_is_an_error():
    with pytest.raises(BackendError, match="unknown backend"):
        create_backend("warp-drive")


def test_default_backend_follows_workers(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    assert default_backend_name(1) == "serial"
    assert default_backend_name(4) == "process"


def test_env_var_overrides_the_default(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "serial")
    assert default_backend_name(8) == "serial"
    engine = ScenarioEngine(workers=8)
    try:
        assert engine.backend.name == "serial"
    finally:
        engine.close()


def test_explicit_backend_beats_the_env_var(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "process")
    engine = ScenarioEngine(backend="serial")
    try:
        assert engine.backend.name == "serial"
    finally:
        engine.close()


def test_third_party_backends_register_and_resolve():
    @register_backend("inline-twin")
    class InlineTwin(SerialBackend):
        pass

    try:
        backend = create_backend("inline-twin")
        assert isinstance(backend, InlineTwin)
        assert backend.name == "inline-twin"
        assert backend.submit_batch(_square, [4]) == [16]
    finally:
        unregister_backend("inline-twin")
    assert "inline-twin" not in backend_names()


def test_engine_close_safe_after_failed_backend_construction():
    engine = None
    try:
        engine = ScenarioEngine(backend="warp-drive")
    except BackendError:
        pass
    assert engine is None
    # Simulate the CLI/atexit double-close pattern on a real engine.
    engine = ScenarioEngine(backend="serial")
    engine.close()
    engine.close()


def test_base_class_requires_submit_batch():
    with pytest.raises(NotImplementedError):
        ExecutionBackend().submit_batch(_square, [1])
