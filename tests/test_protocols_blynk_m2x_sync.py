"""Unit tests for the Blynk, M2X and chunk-sync codecs."""

import pytest

from repro.errors import ProtocolError
from repro.protocols import (
    BlynkCommand,
    BlynkError,
    BlynkFrame,
    ChunkStore,
    M2XBatch,
    build_update_payload,
    chunk_bytes,
    compute_delta,
    decode_frame,
    decode_stream,
    encode_frame,
    ok_response,
    parse_update_payload,
    parse_virtual_write,
    rolling_checksum,
    virtual_write,
)
from repro.protocols.sync import strong_digest


# ----------------------------------------------------------------------
# Blynk
# ----------------------------------------------------------------------
def test_blynk_frame_roundtrip():
    frame = BlynkFrame(BlynkCommand.HARDWARE, 42, b"vw\x005\x003.14")
    decoded, rest = decode_frame(encode_frame(frame))
    assert decoded == frame
    assert rest == b""


def test_blynk_virtual_write_roundtrip():
    frame = virtual_write(message_id=3, pin=7, value="22.5")
    pin, value = parse_virtual_write(frame)
    assert (pin, value) == (7, "22.5")


def test_blynk_stream_decoding():
    frames = [virtual_write(i, i, str(i)) for i in range(5)]
    data = b"".join(encode_frame(frame) for frame in frames)
    assert decode_stream(data) == frames


def test_blynk_ok_response():
    frame = ok_response(9)
    assert frame.command == BlynkCommand.RESPONSE
    assert frame.parts() == ["200"]


def test_blynk_rejects_truncated():
    frame = encode_frame(virtual_write(1, 2, "x"))
    with pytest.raises(BlynkError):
        decode_frame(frame[:4])
    with pytest.raises(BlynkError):
        decode_frame(frame[:-1])


def test_blynk_rejects_bad_fields():
    with pytest.raises(BlynkError):
        encode_frame(BlynkFrame(300, 1, b""))
    with pytest.raises(BlynkError):
        virtual_write(1, -2, "x")
    with pytest.raises(BlynkError):
        parse_virtual_write(BlynkFrame(BlynkCommand.HARDWARE, 1, b"dw\x001\x002"))


# ----------------------------------------------------------------------
# M2X
# ----------------------------------------------------------------------
def test_m2x_payload_roundtrip():
    batch = M2XBatch(device_id="hub-01")
    batch.add("temperature", 0.5, 22.5)
    batch.add("temperature", 1.5, 22.6)
    batch.add("pressure", 0.25, 1013.25)
    payload = build_update_payload(batch, api_key="k" * 8)
    parsed = parse_update_payload(payload)
    assert parsed.device_id == "hub-01"
    assert parsed.point_count == 3
    times = [ts for ts, _ in parsed.streams["temperature"]]
    assert times == pytest.approx([0.5, 1.5])


def test_m2x_payload_has_http_framing():
    batch = M2XBatch(device_id="d")
    batch.add("s", 0.0, 1.0)
    text = build_update_payload(batch, "key").decode()
    assert text.startswith("PUT /v2/devices/d/updates HTTP/1.1\r\n")
    assert "X-M2X-KEY: key" in text
    assert "Content-Length:" in text


def test_m2x_rejects_empty_device():
    with pytest.raises(ProtocolError):
        build_update_payload(M2XBatch(device_id=""), "key")


def test_m2x_rejects_length_mismatch():
    batch = M2XBatch(device_id="d")
    batch.add("s", 0.0, 1.0)
    payload = build_update_payload(batch, "key") + b"extra"
    with pytest.raises(ProtocolError):
        parse_update_payload(payload)


def test_m2x_rejects_bad_request_line():
    with pytest.raises(ProtocolError):
        parse_update_payload(b"GET /x HTTP/1.1\r\n\r\n{}")


# ----------------------------------------------------------------------
# Chunk sync
# ----------------------------------------------------------------------
def test_chunking_sizes():
    chunks = chunk_bytes(b"x" * 1100, chunk_size=512)
    assert [len(chunk) for chunk in chunks] == [512, 512, 76]
    with pytest.raises(ValueError):
        chunk_bytes(b"x", chunk_size=0)


def test_rolling_checksum_sensitive_to_order():
    assert rolling_checksum(b"ab") != rolling_checksum(b"ba")


def test_delta_empty_store_uploads_everything():
    data = b"log line\n" * 200
    delta = compute_delta(data, previous={})
    assert delta.unchanged_chunks == 0
    assert delta.upload_bytes == len(data)


def test_delta_unchanged_file_uploads_nothing():
    data = b"log line\n" * 200
    store = ChunkStore()
    store.accept(data)
    delta = compute_delta(data, store.signatures())
    assert delta.changed_indices == []
    assert delta.upload_bytes == 0


def test_delta_detects_single_changed_chunk():
    data = bytearray(b"a" * 2048)
    store = ChunkStore()
    store.accept(bytes(data))
    data[700] = ord("b")  # inside chunk index 1
    delta = compute_delta(bytes(data), store.signatures())
    assert delta.changed_indices == [1]
    assert delta.upload_bytes == 512


def test_delta_detects_appended_data():
    base = b"a" * 1024
    store = ChunkStore()
    store.accept(base)
    delta = compute_delta(base + b"new tail", store.signatures())
    assert delta.changed_indices == [2]


def test_strong_digest_guards_weak_collisions():
    # Same weak checksum by construction is unlikely; emulate by handing a
    # store with matching weak but wrong strong digest.
    from repro.protocols import ChunkSignature

    data = b"z" * 512
    fake = {0: ChunkSignature(rolling_checksum(data), strong_digest(b"other"))}
    delta = compute_delta(data, fake)
    assert delta.changed_indices == [0]
