"""Tests for sensor availability-check failure injection (§II-B Task I)."""

import pytest

from repro.core import Scenario, Scheme, run_scenario
from repro.apps import create_app
from repro.errors import SensorError
from repro.hw import IoTHub
from repro.sensors import ConstantWaveform, SensorDevice


def run_reads(device, hub, count):
    samples = []

    def reader():
        for _ in range(count):
            sample = yield from device.acquire()
            samples.append(sample)

    hub.sim.spawn(reader())
    hub.run()
    return samples


def test_zero_failure_rate_never_fails():
    hub = IoTHub()
    device = SensorDevice.attach(hub, "S4", ConstantWaveform(1.0))
    samples = run_reads(device, hub, 50)
    assert device.failed_checks == 0
    assert all(sample.ok for sample in samples)


def test_failures_cost_extra_rail_time():
    hub_clean = IoTHub()
    clean = SensorDevice.attach(hub_clean, "S4", ConstantWaveform(1.0))
    run_reads(clean, hub_clean, 100)
    clean_time = hub_clean.sim.now

    hub_flaky = IoTHub()
    flaky = SensorDevice.attach(
        hub_flaky, "S4", ConstantWaveform(1.0), failure_rate=0.4
    )
    run_reads(flaky, hub_flaky, 100)
    assert flaky.failed_checks > 10
    assert hub_flaky.sim.now > clean_time


def test_exhausted_retries_return_stale_sample():
    hub = IoTHub()
    device = SensorDevice.attach(
        hub, "S4", ConstantWaveform(1.0), failure_rate=0.9
    )
    samples = run_reads(device, hub, 60)
    assert device.stale_samples > 0
    stale = [sample for sample in samples if not sample.ok]
    assert stale
    # A stale sample still carries a usable (last-good) value.
    assert all(sample.value is not None for sample in samples)


def test_moderate_failure_rate_mostly_recovers_via_retry():
    hub = IoTHub()
    device = SensorDevice.attach(
        hub, "S4", ConstantWaveform(1.0), failure_rate=0.2
    )
    samples = run_reads(device, hub, 100)
    ok_fraction = sum(1 for sample in samples if sample.ok) / len(samples)
    assert ok_fraction > 0.9  # retries absorb most transient failures


def test_invalid_failure_rate_rejected():
    hub = IoTHub()
    with pytest.raises(SensorError):
        SensorDevice.attach(hub, "S4", ConstantWaveform(1.0), failure_rate=1.5)


def test_scenario_level_failure_injection_runs_end_to_end():
    scenario = Scenario(
        apps=[create_app("A2")],
        scheme=Scheme.BASELINE,
        sensor_failure_rates={"S4": 0.15},
    )
    result = run_scenario(scenario)
    assert result.results_ok
    device = None
    # The runner's device registry is internal; recover stats via hub.
    # Failed checks show up as extra read-state rail time.
    read_time = result.hub.recorder.time_in_state(
        "sensor:S4", "read", result.duration_s
    )
    assert read_time > 0.5  # more than 1000 x 0.5 ms of clean reads


def test_failure_injection_is_deterministic():
    def run():
        hub = IoTHub()
        device = SensorDevice.attach(
            hub, "S4", ConstantWaveform(1.0), failure_rate=0.3
        )
        run_reads(device, hub, 50)
        return device.failed_checks, device.stale_samples

    assert run() == run()
