"""Job-manager tests: lifecycle, coalescing, quotas, cancel, drain."""

import asyncio
import threading

import pytest

from repro.core.compare import compare_grid
from repro.core.engine import ScenarioEngine
from repro.errors import (
    JobSpecError,
    QuotaError,
    ServiceClosedError,
    UnknownJobError,
)
from repro.serve import (
    JobManager,
    JobState,
    canonical_json,
    result_artifact,
    scenarios_from_spec,
    spec_fidelity,
)

GRID_SPEC = {
    "kind": "grid",
    "app_sets": [["A1"], ["A2", "A4"]],
    "schemes": ["baseline", "batching"],
    "windows": 1,
}


def run_async(coro):
    """Drive one async test body to completion."""
    return asyncio.run(coro)


class Gate:
    """A two-event latch blocking the engine thread inside a job."""

    def __init__(self):
        self.entered = threading.Event()
        self.release = threading.Event()

    def __call__(self, job):
        """Executor hook: signal entry, then hold until released."""
        self.entered.set()
        self.release.wait(timeout=30)


async def wait_for(predicate, timeout_s=10.0):
    """Poll an async-loop-friendly predicate until true."""
    for _ in range(int(timeout_s / 0.02)):
        if predicate():
            return
        await asyncio.sleep(0.02)
    raise AssertionError("condition never became true")


def test_spec_parsing_kinds():
    kind, scenarios, grid = scenarios_from_spec(GRID_SPEC)
    assert kind == "grid"
    assert len(scenarios) == 4
    assert grid["schemes"] == ["baseline", "batching"]
    # compare_grid order: app sets outer, schemes inner.
    assert [s.scheme for s in scenarios] == [
        "baseline", "batching", "baseline", "batching",
    ]
    kind, scenarios, grid = scenarios_from_spec(
        {"kind": "run", "apps": ["A1"], "scheme": "com"}
    )
    assert (kind, len(scenarios), grid) == ("run", 1, None)
    kind, scenarios, _ = scenarios_from_spec(
        {"kind": "sweep", "points": [{"apps": ["A1"]}, {"apps": ["A3"]}]}
    )
    assert (kind, len(scenarios)) == ("sweep", 2)


@pytest.mark.parametrize(
    "spec",
    [
        "not a dict",
        {"kind": "warp"},
        {"kind": "run", "apps": []},
        {"kind": "run", "apps": [1, 2]},
        {"kind": "grid", "app_sets": [], "schemes": ["baseline"]},
        {"kind": "grid", "app_sets": [["A1"]], "schemes": []},
        {"kind": "sweep", "points": []},
    ],
)
def test_bad_specs_rejected(spec):
    with pytest.raises(JobSpecError):
        scenarios_from_spec(spec)


def test_run_job_completes_with_artifacts():
    async def body():
        with ScenarioEngine() as engine:
            manager = JobManager(engine, close_engine=False).start()
            job = manager.submit(
                {"kind": "run", "apps": ["A1"], "scheme": "baseline"}
            )
            await manager.wait(job.id)
            assert job.state == JobState.DONE
            payload = job.result_payload()
            assert payload["points_done"] == 1
            point = payload["points"][0]
            assert point["artifact_version"] == 2
            assert point["fidelity"] == "des"
            assert point["scenario"]["apps"] == ["A1"]
            assert point["fingerprint"] == job.fingerprints[0]
            await manager.close()

    run_async(body())


def test_fidelity_spec_threads_through_job():
    async def body():
        with ScenarioEngine() as engine:
            manager = JobManager(engine, close_engine=False).start()
            job = manager.submit(
                {"kind": "run", "apps": ["A1"], "scheme": "baseline",
                 "fidelity": "analytic"}
            )
            await manager.wait(job.id)
            assert job.state == JobState.DONE
            assert job.fidelity == "analytic"
            assert job.describe()["fidelity"] == "analytic"
            point = job.result_payload()["points"][0]
            assert point["fidelity"] == "analytic"
            # The closed form answered: no DES simulation ran.
            assert engine.metrics.scenarios_run == 0
            assert engine.metrics.analytic_evals == 1
            await manager.close()

    run_async(body())


def test_bad_fidelity_rejected():
    with pytest.raises(JobSpecError):
        spec_fidelity({"kind": "run", "apps": ["A1"], "fidelity": "warp"})


def test_grid_job_bit_identical_to_compare_grid():
    async def body():
        with ScenarioEngine() as engine:
            manager = JobManager(engine, close_engine=False).start()
            job = manager.submit(GRID_SPEC)
            await manager.wait(job.id)
            served = job.result_payload()["points"]
            await manager.close()
        grid = compare_grid(
            GRID_SPEC["app_sets"], GRID_SPEC["schemes"], windows=1
        )
        direct = [
            result_artifact(grid[tuple(apps)][scheme])
            for apps in GRID_SPEC["app_sets"]
            for scheme in GRID_SPEC["schemes"]
        ]
        assert len(served) == len(direct)
        for ours, theirs in zip(direct, served):
            theirs = dict(theirs)
            theirs["fingerprint"] = None
            assert canonical_json(ours) == canonical_json(theirs)

    run_async(body())


def test_identical_concurrent_submissions_execute_once():
    async def body():
        gate = Gate()
        engine = ScenarioEngine()
        manager = JobManager(engine, executor_hook=gate).start()
        primary = manager.submit(dict(GRID_SPEC, client="c0"))
        await asyncio.get_running_loop().run_in_executor(
            None, gate.entered.wait, 10
        )
        # Primary is now held mid-execution; identical submissions
        # from other clients must coalesce, not re-execute.
        waiters = [
            manager.submit(dict(GRID_SPEC, client=f"c{n}"))
            for n in range(1, 4)
        ]
        assert all(w.coalesced_into == primary.id for w in waiters)
        assert primary.waiters == [w.id for w in waiters]
        gate.release.set()
        for job in [primary, *waiters]:
            await manager.wait(job.id)
            assert job.state == JobState.DONE
            assert len(job.outcomes) == 4
        # The load-bearing assertion: one execution for k submissions.
        assert engine.metrics.scenarios_run == 4
        assert manager.coalescer.snapshot()["coalesced"] == 3
        fan_events = [
            e for w in waiters for e in w.events
            if e.get("fanned_out_from") == primary.id
        ]
        assert len(fan_events) == 3
        await manager.close()

    run_async(body())


def test_cancel_pending_job_and_waiter_promotion():
    async def body():
        gate = Gate()
        engine = ScenarioEngine()
        manager = JobManager(engine, executor_hook=gate).start()
        blocker = manager.submit(
            {"kind": "run", "apps": ["A1"], "client": "x"}
        )
        await asyncio.get_running_loop().run_in_executor(
            None, gate.entered.wait, 10
        )
        # While the engine is held, queue a different job + a waiter.
        primary = manager.submit(dict(GRID_SPEC, client="a"))
        waiter = manager.submit(dict(GRID_SPEC, client="b"))
        assert waiter.coalesced_into == primary.id
        cancelled = manager.cancel(primary.id)
        assert cancelled.state == JobState.CANCELLED
        # The waiter took over as primary and will execute.
        assert waiter.coalesced_into is None
        assert any(
            e["record"] == "promoted" for e in waiter.events
        )
        gate.release.set()
        await manager.wait(blocker.id)
        await manager.wait(waiter.id)
        assert waiter.state == JobState.DONE
        assert len(waiter.outcomes) == 4
        await manager.close()

    run_async(body())


def test_cancel_while_running_stops_at_chunk_boundary():
    async def body():
        gate = Gate()
        engine = ScenarioEngine()
        manager = JobManager(
            engine, chunk_points=1, executor_hook=gate
        ).start()
        job = manager.submit(GRID_SPEC)
        await asyncio.get_running_loop().run_in_executor(
            None, gate.entered.wait, 10
        )
        assert job.state == JobState.RUNNING
        manager.cancel(job.id)
        assert job.cancel_requested
        gate.release.set()
        await manager.wait(job.id)
        assert job.state == JobState.CANCELLED
        # Partial results: at least the first chunk, not the whole job.
        assert 0 < job.points_done < job.points_total
        assert len(job.outcomes) == job.points_done
        # Cancelling a terminal job is a no-op.
        assert manager.cancel(job.id).state == JobState.CANCELLED
        await manager.close()

    run_async(body())


def test_quota_rejects_and_releases():
    async def body():
        gate = Gate()
        engine = ScenarioEngine()
        manager = JobManager(
            engine, max_jobs_per_client=1, executor_hook=gate
        ).start()
        first = manager.submit(
            {"kind": "run", "apps": ["A1"], "client": "greedy"}
        )
        with pytest.raises(QuotaError):
            manager.submit(
                {"kind": "run", "apps": ["A3"], "client": "greedy"}
            )
        # Another client label is unaffected by greedy's quota.
        other = manager.submit(
            {"kind": "run", "apps": ["A3"], "client": "polite"}
        )
        assert manager.quota.snapshot()["rejections"] == 1
        gate.release.set()
        await manager.wait(first.id)
        await manager.wait(other.id)
        # Terminal jobs release their slot: the resubmit now fits.
        retry = manager.submit(
            {"kind": "run", "apps": ["A3"], "client": "greedy"}
        )
        await manager.wait(retry.id)
        assert retry.state == JobState.DONE
        await manager.close()

    run_async(body())


def test_event_stream_lifecycle_and_follow():
    async def body():
        engine = ScenarioEngine()
        manager = JobManager(engine, chunk_points=1).start()
        job = manager.submit(GRID_SPEC)
        records = [
            record
            async for record in manager.follow_events(job.id, follow=True)
        ]
        assert job.terminal
        states = [
            r["state"] for r in records if r["record"] == "state"
        ]
        assert states[0] == JobState.PENDING
        assert states[1] == JobState.RUNNING
        assert states[-1] == JobState.DONE
        progress = [
            r["points_done"] for r in records if r["record"] == "progress"
        ]
        assert progress == [1, 2, 3, 4]
        assert [r["seq"] for r in records] == list(range(len(records)))
        await manager.close()

    run_async(body())


def test_unknown_job_and_closed_service():
    async def body():
        engine = ScenarioEngine()
        manager = JobManager(engine).start()
        with pytest.raises(UnknownJobError):
            manager.get("j999")
        with pytest.raises(UnknownJobError):
            manager.cancel("j999")
        job = manager.submit({"kind": "run", "apps": ["A1"]})
        await manager.drain()
        assert job.state == JobState.DONE
        with pytest.raises(ServiceClosedError):
            manager.submit({"kind": "run", "apps": ["A1"]})
        await manager.close()

    run_async(body())


def test_close_without_drain_cancels_pending():
    async def body():
        gate = Gate()
        engine = ScenarioEngine()
        manager = JobManager(engine, executor_hook=gate).start()
        running = manager.submit({"kind": "run", "apps": ["A1"]})
        await asyncio.get_running_loop().run_in_executor(
            None, gate.entered.wait, 10
        )
        queued = manager.submit({"kind": "run", "apps": ["A3"]})
        gate.release.set()
        await manager.close(drain=False)
        assert running.terminal
        assert queued.state == JobState.CANCELLED

    run_async(body())


def test_stats_shape():
    async def body():
        engine = ScenarioEngine(memory_cache=8)
        manager = JobManager(engine).start()
        job = manager.submit(dict(GRID_SPEC, client="ci"))
        await manager.wait(job.id)
        stats = manager.stats()
        assert stats["jobs"]["done"] == 1
        assert stats["engine"]["scenarios_run"] == 4
        assert "ci" in stats["cache_clients"]
        assert stats["cache_clients"]["ci"]["stores"] == 4
        assert stats["quota"]["active"] == {}
        await manager.close()

    run_async(body())
