"""Unit tests for the PIO bus, NIC and interrupt controller."""

import pytest

from repro.calibration import default_calibration
from repro.errors import BusError
from repro.hw import InterruptController, IoTHub, NetworkInterface, PioBus
from repro.sim import Delay, Simulator
from repro.sim.trace import TimelineRecorder


def make_bus():
    sim = Simulator()
    recorder = TimelineRecorder()
    bus = PioBus(sim, recorder, default_calibration().bus)
    return sim, recorder, bus


def test_transfer_duration_scales_with_bytes():
    _, _, bus = make_bus()
    small = bus.transfer_duration(10)
    large = bus.transfer_duration(10_000)
    assert large > small
    expected = bus.cal.setup_time_s + 10_000 / bus.cal.bandwidth_bytes_per_s
    assert large == pytest.approx(expected)


def test_transfer_rejects_non_positive_sizes():
    _, _, bus = make_bus()
    with pytest.raises(BusError):
        bus.transfer_duration(0)
    with pytest.raises(BusError):
        bus.transfer_duration(-5)


def test_transfers_serialize_on_the_bus():
    sim, recorder, bus = make_bus()
    finish_times = []

    def sender(nbytes):
        yield from bus.transfer(nbytes)
        finish_times.append(sim.now)

    sim.spawn(sender(1000))
    sim.spawn(sender(1000))
    sim.run()
    single = bus.transfer_duration(1000)
    assert finish_times[0] == pytest.approx(single)
    assert finish_times[1] == pytest.approx(2 * single)
    assert bus.bytes_transferred == 2000
    assert bus.transfer_count == 2


def test_bus_power_active_only_during_transfer():
    sim, recorder, bus = make_bus()

    def sender():
        yield Delay(1.0)
        yield from bus.transfer(2880)  # ~10 ms on the default UART

    sim.spawn(sender())
    sim.run()
    active = recorder.time_in_state("pio_bus", PioBus.ACTIVE, sim.now)
    assert active == pytest.approx(bus.transfer_duration(2880))


def test_nic_send():
    sim = Simulator()
    recorder = TimelineRecorder()
    nic = NetworkInterface(sim, recorder, default_calibration().board)

    def sender():
        yield from nic.send(2000)

    sim.spawn(sender())
    sim.run()
    assert nic.bytes_sent == 2000
    assert nic.messages_sent == 1
    assert sim.now == pytest.approx(nic.tx_duration(2000))


def test_irq_wait_blocks_until_raised():
    sim = Simulator()
    irq = InterruptController(sim)
    received = []

    def handler():
        request = yield from irq.wait()
        received.append((sim.now, request.vector, request.payload))

    def device():
        yield Delay(2.0)
        irq.raise_irq("mcu", "sample_ready", payload=123)

    sim.spawn(handler())
    sim.spawn(device())
    sim.run()
    assert received == [(2.0, "sample_ready", 123)]


def test_irq_queued_requests_not_lost():
    sim = Simulator()
    irq = InterruptController(sim)
    received = []

    def device():
        for index in range(3):
            irq.raise_irq("mcu", "v", payload=index)
            yield Delay(0.001)

    def handler():
        for _ in range(3):
            request = yield from irq.wait()
            received.append(request.payload)
            yield Delay(0.010)  # slower than the device raises

    sim.spawn(device())
    sim.spawn(handler())
    sim.run()
    assert received == [0, 1, 2]
    assert irq.pending_count == 0
    assert irq.raised_count == 3


def test_hub_assembles_components():
    hub = IoTHub()
    assert hub.cpu.psm.state == "deep_sleep"
    assert hub.mcu.psm.state == "sleep"
    assert hub.idle_power_w == pytest.approx(
        hub.calibration.idle_hub_power_w
    )
    psm = hub.add_component("sensor:test", {"off": 0.0, "on": 0.5}, "off")
    assert hub.component("sensor:test") is psm
