"""Observability layer: recorders, exporters, metrics and the CLI.

The two load-bearing invariants from ``docs/observability.md``:

* zero-cost-when-off — the default :class:`NullRecorder` allocates
  nothing on the hot path, and attaching a :class:`TraceRecorder` does
  not change a single simulated number (golden parity);
* deterministic content — the JSONL and Chrome exports contain only
  virtual-time quantities, so the same scenario always produces the
  same bytes.
"""

import io
import json
import tracemalloc

import pytest

from repro.core import Scenario, ScenarioEngine
from repro.core.schemes.base import execute_scenario
from repro.obs import (
    Metrics,
    NULL_RECORDER,
    NullRecorder,
    TRACE_SCHEMA_VERSION,
    TraceRecorder,
    chrome_trace_events,
    read_jsonl,
    render_summary,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.export import TraceFormatError
from repro.obs.metrics import EngineMetrics
from repro.obs.recorder import SIM_TRACK, WALL_TRACK
from repro.units import ms


def small_scenario(scheme="batching", apps=("A2",), windows=1):
    """One cheap, deterministic scenario for exporter tests."""
    return Scenario.of(list(apps), scheme=scheme, windows=windows)


def recorded_run(scheme="batching", apps=("A2",), windows=1):
    """Run a small scenario with a TraceRecorder attached."""
    recorder = TraceRecorder()
    result = execute_scenario(small_scenario(scheme, apps, windows), obs=recorder)
    return recorder, result


# ----------------------------------------------------------------------
# recorder basics
# ----------------------------------------------------------------------
class TestRecorders:
    def test_null_recorder_is_disabled_and_silent(self):
        assert NullRecorder.enabled is False
        assert NULL_RECORDER.span("cat", "name", 0.0, 1.0) is None
        assert NULL_RECORDER.count("x") is None
        assert NULL_RECORDER.gauge_max("x", 3.0) is None

    def test_null_recorder_hot_path_allocates_nothing(self):
        obs = NULL_RECORDER
        # Warm up so the guard itself isn't charged for byte-code caches.
        for _ in range(3):
            if obs.enabled:
                obs.count("sim.events")
        tracemalloc.start()
        before = tracemalloc.take_snapshot()
        for _ in range(10_000):
            if obs.enabled:
                obs.count("sim.events")
                obs.span("cat", "name", 0.0, 1.0)
        after = tracemalloc.take_snapshot()
        tracemalloc.stop()
        # Nothing may be charged to the recorder module itself; the test
        # harness is allowed its own bookkeeping allocations.
        grown = [
            stat
            for stat in after.compare_to(before, "filename")
            if stat.size_diff > 0
            and stat.traceback[0].filename.endswith("recorder.py")
        ]
        assert grown == []

    def test_trace_recorder_collects(self):
        recorder = TraceRecorder()
        assert recorder.enabled is True
        recorder.span("sense", "s1", 0.0, ms(2.0))
        recorder.span("engine", "run", 0.0, 1.0, track=WALL_TRACK)
        recorder.count("sim.events", 3)
        recorder.count("sim.events")
        recorder.gauge_max("depth", 2)
        recorder.gauge_max("depth", 7)
        recorder.gauge_max("depth", 4)
        assert recorder.counters == {"sim.events": 4}
        assert recorder.gauges == {"depth": 7}
        assert [span.track for span in recorder.spans] == [
            SIM_TRACK,
            WALL_TRACK,
        ]
        assert [span.cat for span in recorder.sim_spans()] == ["sense"]

    def test_metrics_aggregation(self):
        recorder = TraceRecorder()
        recorder.span("sense", "s1", 0.0, 1.0)
        recorder.span("sense", "s1", 1.0, 3.0)
        recorder.span("sense", "s2", 0.0, 4.0)
        recorder.span("engine", "run", 0.0, 100.0, track=WALL_TRACK)
        metrics = Metrics.from_recorder(recorder)
        assert metrics.by_name[("sense", "s1")].count == 2
        assert metrics.by_name[("sense", "s1")].total_s == pytest.approx(3.0)
        assert metrics.by_name[("sense", "s1")].mean_s == pytest.approx(1.5)
        assert metrics.by_cat["sense"].count == 3
        assert metrics.by_cat["sense"].total_s == pytest.approx(7.0)
        # The wall track stays out of sim aggregates.
        assert "engine" not in metrics.by_cat
        snapshot = metrics.snapshot()
        assert snapshot["spans"]["sense"]["by_name"]["s2"]["count"] == 1


# ----------------------------------------------------------------------
# instrumented simulation
# ----------------------------------------------------------------------
class TestInstrumentedRun:
    def test_sim_counters_and_spans_are_populated(self):
        recorder, result = recorded_run()
        assert result.energy.total_j > 0
        assert recorder.counters["sim.events"] > 0
        assert recorder.gauges["sim.heap_depth"] >= 1
        cats = {span.cat for span in recorder.sim_spans()}
        assert "kernel" in cats
        assert "sense" in cats

    def test_bcom_multi_app_covers_the_span_taxonomy(self):
        recorder, _ = recorded_run(scheme="bcom", apps=("A2", "A4"))
        cats = {span.cat for span in recorder.sim_spans()}
        assert {"sense", "irq", "transfer", "compute", "kernel"} <= cats

    @pytest.mark.parametrize(
        "scheme", ["baseline", "batching", "com", "bcom"]
    )
    def test_golden_parity_with_observability_on_and_off(self, scheme):
        plain = execute_scenario(small_scenario(scheme, ("A2", "A4")))
        recorder = TraceRecorder()
        observed = execute_scenario(
            small_scenario(scheme, ("A2", "A4")), obs=recorder
        )
        # Bit-identical, not approximately equal: the instrumentation
        # must never perturb the simulation.
        assert observed.energy.total_j == plain.energy.total_j
        assert observed.duration_s == plain.duration_s
        assert observed.interrupt_count == plain.interrupt_count
        assert observed.cpu_wake_count == plain.cpu_wake_count
        assert observed.bus_bytes == plain.bus_bytes
        assert observed.busy_times == plain.busy_times
        assert recorder.counters["sim.events"] > 0

    def test_recorder_content_is_deterministic_across_runs(self):
        first, _ = recorded_run(scheme="bcom", apps=("A2", "A4"))
        second, _ = recorded_run(scheme="bcom", apps=("A2", "A4"))
        assert first.spans == second.spans
        assert first.counters == second.counters
        assert first.gauges == second.gauges


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------
class TestJsonlExport:
    def test_round_trip_preserves_everything(self):
        recorder, _ = recorded_run()
        buffer = io.StringIO()
        written = write_jsonl(recorder, buffer)
        lines = buffer.getvalue().splitlines()
        assert written == len(lines)
        assert json.loads(lines[0]) == {
            "type": "header",
            "version": TRACE_SCHEMA_VERSION,
        }
        loaded = read_jsonl(lines)
        assert loaded.counters == recorder.counters
        assert loaded.gauges == recorder.gauges
        assert len(loaded.spans) == len(recorder.spans)
        for original, restored in zip(recorder.spans, loaded.spans):
            assert restored.cat == original.cat
            assert restored.name == original.name
            assert restored.track == original.track
            assert restored.t0_s == pytest.approx(original.t0_s, abs=1e-12)
            assert restored.t1_s == pytest.approx(original.t1_s, abs=1e-12)

    def test_identical_runs_export_identical_bytes(self):
        first, second = io.StringIO(), io.StringIO()
        write_jsonl(recorded_run()[0], first)
        write_jsonl(recorded_run()[0], second)
        assert first.getvalue() == second.getvalue()

    def test_missing_header_is_rejected(self):
        with pytest.raises(TraceFormatError):
            read_jsonl(['{"type": "span"}'])
        with pytest.raises(TraceFormatError):
            read_jsonl([])

    def test_wrong_version_is_rejected(self):
        with pytest.raises(TraceFormatError):
            read_jsonl(['{"type": "header", "version": 999}'])

    def test_garbage_line_is_rejected(self):
        header = json.dumps(
            {"type": "header", "version": TRACE_SCHEMA_VERSION}
        )
        with pytest.raises(TraceFormatError):
            read_jsonl([header, "not json"])
        with pytest.raises(TraceFormatError):
            read_jsonl([header, '{"type": "mystery"}'])
        with pytest.raises(TraceFormatError):
            read_jsonl([header, '{"type": "span", "cat": "only"}'])


class TestChromeExport:
    def test_events_follow_the_trace_event_schema(self):
        recorder, _ = recorded_run(scheme="bcom", apps=("A2", "A4"))
        events = chrome_trace_events(recorder)
        metadata = [e for e in events if e["ph"] == "M"]
        timed = [e for e in events if e["ph"] == "X"]
        assert len(timed) == len(recorder.sim_spans())
        names = {e["name"] for e in metadata}
        assert "process_name" in names and "thread_name" in names
        # One tid lane per category, consistently assigned.
        lanes = {
            e["args"]["name"]: e["tid"]
            for e in metadata
            if e["name"] == "thread_name"
        }
        for event in timed:
            assert event["tid"] == lanes[event["cat"]]
            assert event["dur"] >= 0.0
            assert event["pid"] == 0
        # Sorted by timestamp for viewer friendliness.
        stamps = [e["ts"] for e in timed]
        assert stamps == sorted(stamps)

    def test_written_document_is_valid_json(self):
        recorder, _ = recorded_run()
        buffer = io.StringIO()
        count = write_chrome_trace(recorder, buffer)
        document = json.loads(buffer.getvalue())
        assert document["displayTimeUnit"] == "ms"
        assert len(document["traceEvents"]) == count

    def test_wall_spans_never_reach_the_chrome_trace(self):
        recorder = TraceRecorder()
        recorder.span("sense", "s1", 0.0, 1.0)
        recorder.span("engine", "run", 0.0, 9.0, track=WALL_TRACK)
        events = chrome_trace_events(recorder)
        assert all(e.get("cat") != "engine" for e in events)


class TestSummaryExport:
    def test_summary_mentions_counters_gauges_and_spans(self):
        recorder, _ = recorded_run()
        text = render_summary(recorder)
        assert "sim.events" in text
        assert "sim.heap_depth" in text
        assert "kernel:run" in text

    def test_summary_includes_engine_metrics_when_given(self):
        recorder, _ = recorded_run()
        engine = EngineMetrics(cache_hits=2, cache_misses=1)
        text = render_summary(recorder, engine_metrics=engine)
        assert "engine" in text
        assert "2 hit(s)" in text


# ----------------------------------------------------------------------
# engine metrics
# ----------------------------------------------------------------------
class TestEngineMetrics:
    def test_serial_run_populates_metrics(self):
        engine = ScenarioEngine()
        engine.run(small_scenario())
        metrics = engine.metrics
        assert metrics.scenarios_run == 1
        assert metrics.run_wall_s > 0.0
        assert metrics.scenarios_per_sec > 0.0
        assert list(metrics.worker_wall_s) == ["w0"]
        assert metrics.worker_wall_s["w0"] > 0.0

    def test_cache_traffic_is_counted(self, tmp_path):
        engine = ScenarioEngine(cache_dir=tmp_path)
        engine.run(small_scenario())
        engine.run(small_scenario())
        assert engine.cache_misses == 1
        assert engine.cache_hits == 1
        assert engine.metrics.fingerprint_wall_s > 0.0
        assert engine.metrics.scenarios_run == 1

    def test_snapshot_and_summary_lines(self):
        metrics = EngineMetrics(
            cache_hits=1, cache_misses=2, scenarios_run=2, run_wall_s=0.5
        )
        metrics.note_worker("w0", 0.25)
        metrics.note_worker("w0", 0.25)
        snapshot = metrics.snapshot()
        assert snapshot["scenarios_per_sec"] == pytest.approx(4.0)
        assert snapshot["worker_wall_s"] == {"w0": 0.5}
        lines = metrics.summary_lines()
        assert any("1 hit(s)" in line for line in lines)
        assert any("w0=0.500s" in line for line in lines)

    def test_zero_wall_time_has_zero_rate(self):
        assert EngineMetrics().scenarios_per_sec == 0.0


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestProfileCli:
    def run_cli(self, argv, capsys):
        from repro.cli import main

        code = main(argv)
        return code, capsys.readouterr().out

    def test_summary_format(self, capsys):
        code, out = self.run_cli(
            ["profile", "A2", "--scheme", "batching"], capsys
        )
        assert code == 0
        assert "instrumentation summary" in out
        assert "sim.events" in out

    def test_jsonl_to_file(self, tmp_path, capsys):
        out_path = tmp_path / "trace.jsonl"
        code, out = self.run_cli(
            ["profile", "A2", "--format", "jsonl", "--out", str(out_path)],
            capsys,
        )
        assert code == 0
        assert "record(s)" in out
        loaded = read_jsonl(out_path.read_text().splitlines())
        assert loaded.counters["sim.events"] > 0

    def test_chrome_to_file_is_perfetto_loadable(self, tmp_path, capsys):
        out_path = tmp_path / "trace.json"
        code, out = self.run_cli(
            [
                "profile",
                "A2",
                "A4",
                "--scheme",
                "bcom",
                "--format",
                "chrome",
                "--out",
                str(out_path),
            ],
            capsys,
        )
        assert code == 0
        assert "trace event(s)" in out
        document = json.loads(out_path.read_text())
        assert document["displayTimeUnit"] == "ms"
        phases = {event["ph"] for event in document["traceEvents"]}
        assert phases == {"M", "X"}

    def test_jsonl_to_stdout(self, capsys):
        code, out = self.run_cli(["profile", "A2", "--format", "jsonl"], capsys)
        assert code == 0
        assert json.loads(out.splitlines()[0])["type"] == "header"
