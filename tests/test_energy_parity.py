"""Golden energy-parity tests across the scheme-plugin refactor.

The fixtures below were recorded from the pre-refactor monolithic
executor (the seed commit) as exact ``float.hex()`` values.  The
simulator is fully deterministic, so any refactor of the execution
layer must reproduce these totals *bit for bit* — a mismatch means the
event ordering or the energy accounting changed, not just noise.
"""

import pytest

from repro.core import ScenarioEngine, Scenario, run_apps

#: (scenario label, scheme) -> (total_j.hex(), duration_s.hex()),
#: recorded from the seed executor before the schemes/ refactor.
GOLDEN = {
    ("A2", "polling"): ("0x1.5ae49392e9d5fp+2", "0x1.00726d04e618dp+0"),
    ("A2", "baseline"): ("0x1.5c26818829ef8p+2", "0x1.00887d5938c81p+0"),
    ("A2", "batching"): ("0x1.658e3432b922cp+1", "0x1.1aecec6e9a593p+0"),
    ("A2", "com"): ("0x1.1a5da260b0ba6p+0", "0x1.0816f1e3c5ae2p+0"),
    ("A2", "beam"): ("0x1.5c26818829ef8p+2", "0x1.00887d5938c81p+0"),
    ("A2", "bcom"): ("0x1.1a5da260b0ba6p+0", "0x1.0816f1e3c5ae2p+0"),
    ("A2+A7", "baseline"): ("0x1.9d38173211726p+2", "0x1.0e44a867a0282p+0"),
    ("A2+A7", "beam"): ("0x1.6de006c88d495p+2", "0x1.0e30e3472871cp+0"),
    ("A2+A7", "bcom"): ("0x1.e9d4f1476e2f1p+0", "0x1.59f5bd142af3ap+0"),
    ("A11+A6", "baseline"): ("0x1.3e712e468246dp+4", "0x1.d18e395397c94p+1"),
    ("A11+A6", "batching"): ("0x1.1b14e97b21345p+4", "0x1.f0b9ce2cd841ep+1"),
    ("A11+A6", "bcom"): ("0x1.127538f835707p+4", "0x1.f398e15ce660dp+1"),
}

APPS = {"A2": ["A2"], "A2+A7": ["A2", "A7"], "A11+A6": ["A11", "A6"]}


@pytest.mark.parametrize(
    "label,scheme", sorted(GOLDEN), ids=[f"{l}-{s}" for l, s in sorted(GOLDEN)]
)
def test_total_energy_bit_identical_to_seed(label, scheme):
    expected_j, expected_s = GOLDEN[(label, scheme)]
    result = run_apps(APPS[label], scheme)
    assert result.energy.total_j == float.fromhex(expected_j)
    assert result.duration_s == float.fromhex(expected_s)


def test_all_six_schemes_covered():
    """The A2 golden block exercises every registered built-in scheme."""
    from repro.core import Scheme

    covered = {scheme for label, scheme in GOLDEN if label == "A2"}
    assert covered == set(Scheme.ALL)


def test_cached_engine_hit_matches_cold_run(tmp_path):
    """A cache hit is indistinguishable from a cold run (minus the hub)."""
    engine = ScenarioEngine(cache_dir=tmp_path)
    cold = engine.run(Scenario.of(["A2"], scheme="batching"))
    hit = engine.run(Scenario.of(["A2"], scheme="batching"))
    assert engine.cache_misses == 1
    assert engine.cache_hits == 1
    assert hit.energy.total_j == cold.energy.total_j
    assert hit.duration_s == cold.duration_s
    assert hit.interrupt_count == cold.interrupt_count
    assert hit.busy_times == cold.busy_times
    assert (
        hit.result_payloads("stepcounter")
        == cold.result_payloads("stepcounter")
    )
    # The cold in-process run keeps its hub; cached copies never carry one.
    assert cold.hub is not None
    assert hit.hub is None
