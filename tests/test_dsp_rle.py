"""Tests for the zigzag + RLE entropy codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.dsp.rle import _read_varint, _zigzag_varint, decode_plane, encode_plane
from repro.errors import ProtocolError
from repro.sensors.camera import encode_frame, render_scene


@given(st.integers(min_value=-(2**40), max_value=2**40))
def test_varint_roundtrip(value):
    data = _zigzag_varint(value)
    decoded, pos = _read_varint(data, 0)
    assert decoded == value
    assert pos == len(data)


def test_varint_small_values_are_one_byte():
    for value in range(-63, 64):
        assert len(_zigzag_varint(value)) == 1


@settings(max_examples=60, deadline=None)
@given(
    arrays(
        np.int32,
        st.tuples(
            st.sampled_from([8, 16, 24]), st.sampled_from([8, 16, 32])
        ),
        elements=st.integers(min_value=-512, max_value=512),
    )
)
def test_plane_roundtrip_any_levels(levels):
    assert np.array_equal(decode_plane(encode_plane(levels)), levels)


def test_sparse_plane_compresses_well():
    levels = np.zeros((64, 64), dtype=np.int32)
    levels[0, 0] = 100  # one DC coefficient
    encoded = encode_plane(levels)
    # 64 blocks x (1B DC + 1B EOB) + 4B header + 1 extra varint byte.
    assert len(encoded) < 200
    assert np.array_equal(decode_plane(encoded), levels)


def test_camera_frame_bitstream_is_smaller_than_raw():
    frame = encode_frame(render_scene((32, 48)))
    stream = frame.to_bytes()
    assert len(stream) < frame.nbytes
    assert np.array_equal(decode_plane(stream), frame.levels)


def test_decode_rejects_malformed():
    with pytest.raises(ProtocolError):
        decode_plane(b"")
    with pytest.raises(ProtocolError):
        decode_plane(b"\x00\x08\x00\x08")  # header only, no blocks
    good = encode_plane(np.ones((8, 8), dtype=np.int32))
    with pytest.raises(ProtocolError):
        decode_plane(good + b"\x00")  # trailing garbage
    with pytest.raises(ProtocolError):
        decode_plane(good[:-2])  # truncated


def test_decode_rejects_misaligned_dimensions():
    data = (7).to_bytes(2, "big") + (8).to_bytes(2, "big")
    with pytest.raises(ProtocolError):
        decode_plane(data)


def test_encode_rejects_misaligned_plane():
    with pytest.raises(ProtocolError):
        encode_plane(np.zeros((10, 8), dtype=np.int32))


def test_jpeg_app_decodes_via_bitstream():
    from repro.apps import create_app
    from repro.apps.offline import collect_window
    from repro.sensors.camera import CameraWaveform

    app = create_app("A9")
    window = collect_window(app, waveforms={"S10": CameraWaveform()})
    result = app.compute(window)
    assert result.payload["frames_decoded"] == 1
    assert 0.0 < result.payload["mean_luma"] < 255.0
