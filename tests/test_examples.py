"""The example scripts must run cleanly end to end."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, argv=()):
    saved = sys.argv
    sys.argv = [name, *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = saved


def test_examples_directory_has_at_least_three_scripts():
    scripts = sorted(EXAMPLES.glob("*.py"))
    assert len(scripts) >= 3
    assert (EXAMPLES / "quickstart.py").exists()


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "baseline" in out
    assert "com" in out
    assert "legend" in out


def test_smart_home_hub(capsys):
    run_example("smart_home_hub.py")
    out = capsys.readouterr().out
    assert "BCOM placement decisions" in out
    assert "-> MCU" in out
    assert "complete results" in out


def test_health_monitor(capsys):
    run_example("health_monitor.py")
    out = capsys.readouterr().out
    assert "irregular=True" in out
    assert "COM saves" in out


def test_offload_advisor_fast(capsys):
    run_example("offload_advisor.py", argv=["--fast"])
    out = capsys.readouterr().out
    assert "speech2text" in out
    assert "CPU" in out and "MCU" in out


def test_field_deployment(capsys):
    run_example("field_deployment.py")
    out = capsys.readouterr().out
    assert "Deployed configuration" in out
    assert "hub power" in out
    assert "Cloud upload intact" in out
