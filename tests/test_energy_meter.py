"""Unit tests for energy integration and reports."""

import pytest

from repro.energy import EnergyReport, PowerMonitor
from repro.hw.power import Routine
from repro.sim.trace import StateChange, TimelineRecorder


def record(recorder, time, component, state, power, routine):
    recorder.record(
        StateChange(
            time=time,
            component=component,
            state=state,
            power_w=power,
            routine=routine,
        )
    )


def test_integration_is_power_times_time():
    recorder = TimelineRecorder()
    record(recorder, 0.0, "cpu", "busy", 5.0, Routine.APP_COMPUTE)
    monitor = PowerMonitor(recorder, idle_floor_power_w=0.5)
    report = monitor.measure(end_time=2.0)
    assert report.total_j == pytest.approx(10.0)
    assert report.routine_j(Routine.APP_COMPUTE) == pytest.approx(10.0)


def test_routine_attribution_splits():
    recorder = TimelineRecorder()
    record(recorder, 0.0, "cpu", "busy", 5.0, Routine.INTERRUPT)
    record(recorder, 1.0, "cpu", "busy", 5.0, Routine.DATA_TRANSFER)
    record(recorder, 3.0, "cpu", "idle", 2.5, Routine.DATA_TRANSFER)
    monitor = PowerMonitor(recorder, idle_floor_power_w=0.0)
    report = monitor.measure(end_time=4.0)
    assert report.routine_j(Routine.INTERRUPT) == pytest.approx(5.0)
    assert report.routine_j(Routine.DATA_TRANSFER) == pytest.approx(12.5)
    assert report.total_j == pytest.approx(17.5)


def test_energy_conservation_across_views():
    recorder = TimelineRecorder()
    record(recorder, 0.0, "cpu", "busy", 5.0, Routine.APP_COMPUTE)
    record(recorder, 0.5, "cpu", "idle", 2.5, Routine.IDLE)
    record(recorder, 0.0, "mcu", "busy", 0.35, Routine.DATA_COLLECTION)
    monitor = PowerMonitor(recorder, idle_floor_power_w=0.1)
    report = monitor.measure(end_time=2.0)
    assert sum(report.by_routine.values()) == pytest.approx(report.total_j)
    assert sum(report.by_component.values()) == pytest.approx(report.total_j)


def test_marginal_subtracts_idle_floor():
    report = EnergyReport(duration_s=2.0, idle_floor_power_w=0.5)
    report.by_component_routine[("cpu", Routine.APP_COMPUTE)] = 10.0
    assert report.idle_floor_j == pytest.approx(1.0)
    assert report.marginal_j == pytest.approx(9.0)


def test_marginal_never_negative():
    report = EnergyReport(duration_s=10.0, idle_floor_power_w=1.0)
    report.by_component_routine[("cpu", Routine.IDLE)] = 2.0
    assert report.marginal_j == 0.0


def test_savings_vs_baseline():
    baseline = EnergyReport(duration_s=1.0, idle_floor_power_w=0.0)
    baseline.by_component_routine[("cpu", Routine.DATA_TRANSFER)] = 10.0
    optimized = EnergyReport(duration_s=1.0, idle_floor_power_w=0.0)
    optimized.by_component_routine[("cpu", Routine.DATA_TRANSFER)] = 4.0
    assert optimized.savings_vs(baseline) == pytest.approx(0.6)
    assert optimized.normalized_to(baseline) == pytest.approx(0.4)


def test_routine_fractions_exclude_idle_by_default():
    report = EnergyReport(duration_s=1.0, idle_floor_power_w=0.0)
    report.by_component_routine[("cpu", Routine.DATA_TRANSFER)] = 8.0
    report.by_component_routine[("cpu", Routine.IDLE)] = 2.0
    fractions = report.routine_fractions()
    assert fractions[Routine.DATA_TRANSFER] == pytest.approx(1.0)
    with_idle = report.routine_fractions(include_idle=True)
    assert with_idle[Routine.IDLE] == pytest.approx(0.2)


def test_scaled_routine_bars_sum_to_normalized_total():
    baseline = EnergyReport(duration_s=1.0, idle_floor_power_w=0.1)
    baseline.by_component_routine[("cpu", Routine.DATA_TRANSFER)] = 8.0
    baseline.by_component_routine[("cpu", Routine.INTERRUPT)] = 2.0
    optimized = EnergyReport(duration_s=1.0, idle_floor_power_w=0.1)
    optimized.by_component_routine[("cpu", Routine.DATA_TRANSFER)] = 3.0
    optimized.by_component_routine[("cpu", Routine.INTERRUPT)] = 1.0
    bars = optimized.scaled_routine_bars(baseline)
    assert sum(bars.values()) == pytest.approx(optimized.normalized_to(baseline))


def test_sample_trace_matches_instantaneous_power():
    recorder = TimelineRecorder()
    record(recorder, 0.0, "cpu", "idle", 2.5, Routine.IDLE)
    record(recorder, 1.0, "cpu", "busy", 5.0, Routine.APP_COMPUTE)
    record(recorder, 0.0, "mcu", "sleep", 0.01, Routine.IDLE)
    monitor = PowerMonitor(recorder, idle_floor_power_w=0.0)
    samples = monitor.sample_trace(end_time=2.0, sample_interval_s=0.5)
    assert samples[0] == (0.0, pytest.approx(2.51))
    assert samples[-1] == (2.0, pytest.approx(5.01))
