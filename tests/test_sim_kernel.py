"""Unit tests for the simulation kernel."""

import pytest

from repro.errors import SchedulingError, SimulationError
from repro.sim import Delay, Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_schedule_advances_clock():
    sim = Simulator()
    seen = []
    sim.schedule(1.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [1.5]
    assert sim.now == 1.5


def test_schedule_negative_delay_rejected():
    with pytest.raises(SchedulingError):
        Simulator().schedule(-0.1, lambda: None)


def test_schedule_at_in_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SchedulingError):
        sim.schedule_at(0.5, lambda: None)


def test_run_until_stops_clock_at_horizon():
    sim = Simulator()
    fired = []
    sim.schedule(10.0, lambda: fired.append(True))
    end = sim.run(until=3.0)
    assert end == 3.0
    assert not fired
    assert sim.pending_events == 1


def test_nested_scheduling():
    sim = Simulator()
    times = []

    def outer():
        times.append(sim.now)
        sim.schedule(2.0, inner)

    def inner():
        times.append(sim.now)

    sim.schedule(1.0, outer)
    sim.run()
    assert times == [1.0, 3.0]


def test_spawn_runs_generator_to_completion():
    sim = Simulator()
    marks = []

    def proc():
        marks.append(("start", sim.now))
        yield Delay(0.25)
        marks.append(("mid", sim.now))
        yield Delay(0.25)
        marks.append(("end", sim.now))
        return "done"

    process = sim.spawn(proc())
    sim.run()
    assert process.finished
    assert process.result == "done"
    assert marks == [("start", 0.0), ("mid", 0.25), ("end", 0.5)]


def test_next_event_time_visible_to_governors():
    sim = Simulator()
    sim.schedule(4.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.next_event_time() == 2.0


def test_runaway_guard():
    sim = Simulator()

    def forever():
        while True:
            yield Delay(0.001)

    sim.spawn(forever())
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_deterministic_ordering_between_processes():
    sim = Simulator()
    order = []

    def proc(tag):
        yield Delay(1.0)
        order.append(tag)

    sim.spawn(proc("first"))
    sim.spawn(proc("second"))
    sim.run()
    assert order == ["first", "second"]
