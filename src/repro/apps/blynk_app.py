"""A5 — Blynk (Smartphone Interactions).

Pushes per-sensor virtual-pin updates to a phone client using the Blynk
binary framing, including a camera snapshot summary, and processes the
client's acknowledgements.
"""

from __future__ import annotations

import numpy as np

from ..protocols import (
    decode_stream,
    encode_frame,
    ok_response,
    parse_virtual_write,
    virtual_write,
)
from ..units import kib
from .base import AppProfile, AppResult, IoTApp, SampleWindow

#: Virtual pin assignment per sensor.
PIN_MAP = {"S1": 1, "S2": 2, "S4": 3, "S5": 4, "S10": 5}

PROFILE = AppProfile(
    table2_id="A5",
    name="blynk",
    title="Blynk",
    category="Smartphone Interactions",
    user_task="Platform interacting with Smartphones",
    sensor_ids=("S1", "S2", "S4", "S5", "S10"),
    mips=45.0,
    heap_bytes=kib(31.6),
    stack_bytes=kib(0.4),
    output_bytes=1024,
)


class BlynkApp(IoTApp):
    """Aggregates sensors into Blynk virtual-pin writes."""

    def __init__(self) -> None:
        super().__init__(PROFILE)
        self._message_id = 0
        self.updates_sent = 0

    def _next_id(self) -> int:
        self._message_id = (self._message_id + 1) % 0x10000
        return self._message_id

    def compute(self, window: SampleWindow) -> AppResult:
        """Summarize each stream into a Blynk virtual-write frame."""
        frames = []
        for sensor_id, pin in PIN_MAP.items():
            series = window.scalar_series(sensor_id)
            if series.size == 0:
                continue
            if sensor_id == "S4":
                value = f"{float(np.abs(series).max()):.3f}"
            elif sensor_id == "S10":
                # Snapshot summary: the frame id that was captured.
                value = f"frame:{int(series[-1])}"
            else:
                value = f"{float(series.mean()):.3f}"
            frames.append(virtual_write(self._next_id(), pin, value))
        stream = b"".join(encode_frame(frame) for frame in frames)
        # Phone side: decode, validate, acknowledge each frame.
        decoded = decode_stream(stream)
        acks = []
        for frame in decoded:
            pin, _ = parse_virtual_write(frame)
            if pin not in PIN_MAP.values():
                raise AssertionError(f"unexpected virtual pin {pin}")
            acks.append(ok_response(frame.message_id))
        self.updates_sent += len(decoded)
        return self.make_result(
            window,
            {
                "pins_updated": len(decoded),
                "stream_bytes": len(stream),
                "acks": len(acks),
                "updates_sent": self.updates_sent,
            },
        )
