"""A7 — Earthquake detection (Smart City).

Runs an STA/LTA trigger over the accelerometer magnitude.  On a trigger
the app, like the paper's version, prepares a verification request against
a public earthquake API (we build the request; the NIC model sends it).
"""

from __future__ import annotations

from ..dsp import magnitude, sta_lta
from ..protocols import dumps
from ..sensors.accelerometer import GRAVITY
from ..units import kib
from .base import AppProfile, AppResult, IoTApp, SampleWindow

#: STA/LTA windows at the 1 kHz QoS rate.
STA_SAMPLES = 50
LTA_SAMPLES = 500
#: Trigger ratio.  Set above the ~3-4x excursions rhythmic human activity
#: (walking impacts) produces so only genuine onsets fire.
TRIGGER_RATIO = 6.0

PROFILE = AppProfile(
    table2_id="A7",
    name="earthquake",
    title="Earthquake Detection",
    category="Smart City",
    user_task="Earthquake Predicting Algorithm",
    sensor_ids=("S4",),
    mips=95.0,  # Fig. 6 / §IV-E1: among the heaviest of the ten light apps
    heap_bytes=kib(16.4),  # Fig. 6: minimum memory usage (16.8 KB total)
    stack_bytes=kib(0.4),
    output_bytes=160,
)


class EarthquakeApp(IoTApp):
    """Detects seismic onsets and prepares verification queries."""

    def __init__(self) -> None:
        super().__init__(PROFILE)
        self.detections = 0

    def compute(self, window: SampleWindow) -> AppResult:
        """Run STA/LTA tremor detection over the accelerometer window."""
        vectors = window.values("S4")
        shaking = magnitude(vectors) - GRAVITY
        ratio = sta_lta(shaking, STA_SAMPLES, LTA_SAMPLES)
        above = ratio >= TRIGGER_RATIO
        triggered = bool(above.any())
        onset_index = int(above.argmax()) if triggered else -1
        verification_query = None
        if triggered:
            self.detections += 1
            rate = self.profile.rate_hz("S4")
            onset_time = window.start_s + onset_index / rate
            verification_query = dumps(
                {
                    "event": "tremor",
                    "onset_s": round(onset_time, 3),
                    "peak_ratio": round(float(ratio.max()), 2),
                    "station": "hub-01",
                }
            )
        return self.make_result(
            window,
            {
                "triggered": triggered,
                "onset_index": onset_index,
                "peak_ratio": float(ratio.max()),
                "verification_query": verification_query,
                "detections": self.detections,
            },
        )
