"""A2 — Step counter (Health Care): the paper's running example (§II-B).

1000 accelerometer samples per 1-second window; the step-detection
algorithm [33] smooths the magnitude, thresholds it adaptively and counts
peaks at a plausible human cadence.
"""

from __future__ import annotations

from ..dsp import adaptive_threshold, find_peaks, magnitude, moving_average
from ..sensors.accelerometer import GRAVITY
from ..units import kib
from .base import AppProfile, AppResult, IoTApp, SampleWindow

#: Smoothing window in samples at the 1 kHz QoS rate.
SMOOTHING_SAMPLES = 51
#: Two steps can be at most ~3.3 Hz apart for a human; at 1 kHz that is
#: 300 samples minimum peak spacing.
MIN_STEP_SPACING_SAMPLES = 300

PROFILE = AppProfile(
    table2_id="A2",
    name="stepcounter",
    title="Step counter",
    category="Health Care",
    user_task="Step-detection Algorithm",
    sensor_ids=("S4",),
    mips=3.94,  # Fig. 6: the lightest compute of the ten apps
    heap_bytes=kib(19.6),
    stack_bytes=kib(0.4),
    output_bytes=32,
)


class StepCounterApp(IoTApp):
    """Counts steps in each accelerometer window."""

    def __init__(self) -> None:
        super().__init__(PROFILE)
        self.total_steps = 0

    def compute(self, window: SampleWindow) -> AppResult:
        """Count steps as threshold-crossing peaks in the magnitude."""
        vectors = window.values("S4")
        series = magnitude(vectors) - GRAVITY
        smoothed = moving_average(series, SMOOTHING_SAMPLES)
        threshold = adaptive_threshold(smoothed, factor=0.6)
        # Quiet windows: the threshold hugs the noise floor; require real
        # activity before counting anything.
        if smoothed.max() - smoothed.min() < 0.5:
            steps = 0
        else:
            steps = len(
                find_peaks(
                    smoothed,
                    threshold=threshold,
                    min_distance=MIN_STEP_SPACING_SAMPLES,
                )
            )
        self.total_steps += steps
        return self.make_result(
            window,
            {
                "steps": steps,
                "total_steps": self.total_steps,
                "samples": int(len(series)),
            },
        )
