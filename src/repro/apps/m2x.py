"""A4 — AT&T M2X cloud client (Cloud Communication).

Batches five sensor streams into an M2X update payload each window and
verifies it server-side (parse + point-count check), then ships it
upstream.  With 2220 samples over five sensors this is the interrupt-
heaviest light app in Table II.
"""

from __future__ import annotations

from ..protocols import M2XBatch, build_update_payload, parse_update_payload
from ..units import kib
from .base import AppProfile, AppResult, IoTApp, SampleWindow

#: M2X stream name per sensor id.
STREAM_NAMES = {
    "S1": "pressure",
    "S2": "temperature",
    "S4": "acceleration",
    "S5": "air-quality",
    "S7": "light",
}

PROFILE = AppProfile(
    table2_id="A4",
    name="m2x",
    title="M2X",
    category="Cloud Communication",
    user_task="Cloud Interfacing with AT&T",
    sensor_ids=("S1", "S2", "S4", "S5", "S7"),
    mips=28.0,
    heap_bytes=kib(28.6),
    stack_bytes=kib(0.4),
    output_bytes=2048,
)


class M2XApp(IoTApp):
    """Builds and verifies M2X batch updates from five sensors."""

    def __init__(self, api_key: str = "feedbeef" * 4) -> None:
        super().__init__(PROFILE)
        self.api_key = api_key
        self.points_uploaded = 0

    def compute(self, window: SampleWindow) -> AppResult:
        """Decimate the window's streams into one M2X update payload."""
        batch = M2XBatch(device_id="hub-01")
        for sensor_id, stream in STREAM_NAMES.items():
            # The cloud plan rate-limits points per stream: decimate dense
            # streams to at most 50 points per window, like the real client.
            samples = window.samples(sensor_id)
            stride = max(1, len(samples) // 50)
            for sample in samples[::stride]:
                batch.add(stream, sample.time, float(sample.value[0]))
        payload = build_update_payload(batch, self.api_key)
        echoed = parse_update_payload(payload)  # server-side verification
        if echoed.point_count != batch.point_count:
            raise AssertionError("M2X payload lost points in transit")
        self.points_uploaded += batch.point_count
        return self.make_result(
            window,
            {
                "streams": len(batch.streams),
                "points": batch.point_count,
                "payload_bytes": len(payload),
                "raw_samples": window.total_count,
                "points_uploaded": self.points_uploaded,
            },
        )
