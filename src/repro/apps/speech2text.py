"""A11 — Speech-to-text (Smart City): the heavy-weight workload.

Converts each window's 1 kHz sound samples to text with an MFCC + DTW
template matcher (our PocketSphinx substitute): voice-activity detection
segments utterances, each segment's MFCC features are matched against
per-word templates, and the best word under a rejection threshold wins.

The paper: A11 needs 4683 MIPS and a 1.43 GB model footprint, so it can
never be offloaded to the 80 KB MCU — making it the Batching/BCOM test
case of Figure 12.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..dsp import dtw_distance, mfcc
from ..sensors.sound import VOCABULARY, synthesize_word
from ..sensors.specs import A11_SOUND_SAMPLE_BYTES
from ..units import MIB, kib
from .base import AppProfile, AppResult, IoTApp, SampleWindow

PROFILE = AppProfile(
    table2_id="A11",
    name="speech2text",
    title="Speech-To-Text",
    category="Smart City",
    user_task="Voice-to-text conversion",
    sensor_ids=("S8",),
    mips=4683.0,  # §IV-E3
    heap_bytes=int(1.43 * 1024 * MIB),  # §IV-E3: 1.43 GB model footprint
    stack_bytes=kib(64),
    output_bytes=128,
    # The PocketSphinx decode is single-threaded: converting 1 s of audio
    # takes ~2.6 s of CPU — slower than real time, which is exactly why
    # the app-specific routine dominates A11's energy (Fig. 12a).
    parallel_cores=1,
    heavy=True,
    sample_bytes_overrides={"S8": A11_SOUND_SAMPLE_BYTES},
)

#: MFCC framing at the 1 kHz sensor rate.
FRAME_LENGTH = 128
HOP_LENGTH = 64
NUM_FILTERS = 16
#: Normalized DTW cost above this is rejected as "not a word".
REJECT_THRESHOLD = 4.0
#: Energy fraction (of the window's max frame energy) that counts as voice.
VAD_LEVEL = 0.15


def _frame_energies(signal: np.ndarray) -> np.ndarray:
    count = max(1, 1 + (len(signal) - FRAME_LENGTH) // HOP_LENGTH)
    energies = np.empty(count)
    for index in range(count):
        start = index * HOP_LENGTH
        chunk = signal[start : start + FRAME_LENGTH]
        energies[index] = float(np.mean(chunk**2)) if chunk.size else 0.0
    return energies


def segment_utterances(
    signal: np.ndarray, min_frames: int = 3
) -> List[Tuple[int, int]]:
    """(start, end) sample ranges of voiced segments via energy VAD."""
    energies = _frame_energies(signal)
    if energies.max() <= 0:
        return []
    voiced = energies > VAD_LEVEL * energies.max()
    segments: List[Tuple[int, int]] = []
    start = None
    for index, active in enumerate(voiced):
        if active and start is None:
            start = index
        elif not active and start is not None:
            if index - start >= min_frames:
                segments.append(
                    (start * HOP_LENGTH, index * HOP_LENGTH + FRAME_LENGTH)
                )
            start = None
    if start is not None and len(voiced) - start >= min_frames:
        segments.append((start * HOP_LENGTH, len(signal)))
    return segments


class SpeechToTextApp(IoTApp):
    """MFCC + DTW keyword recognizer over sound-sensor windows."""

    def __init__(self, sample_rate_hz: float = 1000.0):
        super().__init__(PROFILE)
        self.sample_rate_hz = sample_rate_hz
        self._templates: Dict[str, np.ndarray] = {
            word: self._features(synthesize_word(word, sample_rate_hz))
            for word in VOCABULARY
        }
        self.words_recognized = 0

    def _features(self, signal: np.ndarray) -> np.ndarray:
        return mfcc(
            signal,
            self.sample_rate_hz,
            frame_length=FRAME_LENGTH,
            hop_length=HOP_LENGTH,
            num_filters=NUM_FILTERS,
        )

    def recognize(self, signal: np.ndarray) -> List[str]:
        """Decode a PCM window into a word list."""
        words: List[str] = []
        for start, end in segment_utterances(signal):
            segment = signal[start:end]
            features = self._features(segment)
            best_word, best_cost = None, float("inf")
            for word, template in self._templates.items():
                cost = dtw_distance(features, template)
                if cost < best_cost:
                    best_word, best_cost = word, cost
            if best_word is not None and best_cost <= REJECT_THRESHOLD:
                words.append(best_word)
        return words

    def compute(self, window: SampleWindow) -> AppResult:
        """Recognize spoken words in the window's audio signal."""
        signal = window.scalar_series("S8")
        words = self.recognize(signal)
        self.words_recognized += len(words)
        return self.make_result(
            window,
            {
                "text": " ".join(words),
                "words": words,
                "segments": len(segment_utterances(signal)),
                "words_recognized_total": self.words_recognized,
            },
        )
