"""A8 — Heartbeat irregularity detection (Health Care).

ECG-style feature extraction on the pulse sensor: smooth, find R-peaks,
derive RR intervals, and threshold the RMSSD variability measure to flag
arrhythmia.  This is the heaviest *offloadable* computation in Fig. 6
(108.8 MIPS) and one of the two apps that regress under COM (Fig. 13).
"""

from __future__ import annotations

from ..dsp import adaptive_threshold, find_peaks, moving_average, rmssd, rr_intervals
from ..units import kib
from .base import AppProfile, AppResult, IoTApp, SampleWindow

#: Smoothing width at the 1 kHz QoS rate.
SMOOTHING_SAMPLES = 15
#: Refractory period between beats (physiological limit ~200 bpm).
MIN_BEAT_SPACING_SAMPLES = 300
#: RMSSD above this (seconds) is flagged as irregular.
IRREGULARITY_THRESHOLD_S = 0.12

PROFILE = AppProfile(
    table2_id="A8",
    name="heartbeat",
    title="Heartbeat Irregularity Detection",
    category="Health Care",
    user_task="ECG Feature-extraction",
    sensor_ids=("S6",),
    window_s=5.0,  # needs several beats to judge rhythm
    rate_overrides={"S6": 200.0},  # 1000 samples per 5 s window
    mips=108.8,  # Fig. 6 maximum
    heap_bytes=kib(26.6),
    stack_bytes=kib(0.4),
    output_bytes=48,
)
#: Beat spacing adjusted for the 200 Hz window rate.
_MIN_SPACING = 60


class HeartbeatApp(IoTApp):
    """Flags irregular heart rhythm from pulse-sensor windows."""

    def __init__(self) -> None:
        super().__init__(PROFILE)
        self.irregular_windows = 0

    def compute(self, window: SampleWindow) -> AppResult:
        """Detect beats in the ECG window and score rhythm regularity."""
        series = window.scalar_series("S6")
        rate = self.profile.rate_hz("S6")
        smoothed = moving_average(series, SMOOTHING_SAMPLES)
        threshold = adaptive_threshold(smoothed, factor=1.2)
        peaks = find_peaks(smoothed, threshold, min_distance=_MIN_SPACING)
        intervals = rr_intervals(peaks, rate)
        variability = rmssd(intervals)
        irregular = bool(
            intervals.size >= 3 and variability > IRREGULARITY_THRESHOLD_S
        )
        if irregular:
            self.irregular_windows += 1
        bpm = 0.0
        if intervals.size:
            bpm = 60.0 / float(intervals.mean())
        return self.make_result(
            window,
            {
                "beats": len(peaks),
                "bpm": bpm,
                "rmssd_s": variability,
                "irregular": irregular,
                "irregular_windows": self.irregular_windows,
            },
        )
