"""A1 — CoAP server (Building Automation).

Publishes light and sound observations as CoAP resources and answers a
set of GET requests per window, exercising the full encode/decode path of
the in-house RFC 7252 codec.
"""

from __future__ import annotations

import numpy as np

from ..protocols import CoapCode, CoapMessage, decode_message, dumps, encode_message
from ..protocols.coap_block import BlockwiseServer, fetch_blockwise
from ..units import kib
from .base import AppProfile, AppResult, IoTApp, SampleWindow

PROFILE = AppProfile(
    table2_id="A1",
    name="coap",
    title="CoAP Server",
    category="Building Automation",
    user_task="Constrained Application Protocol",
    sensor_ids=("S7", "S8"),
    mips=22.0,
    heap_bytes=kib(25.6),
    stack_bytes=kib(0.4),
    output_bytes=256,
)

#: GETs served per window (observe notifications to subscribed clients).
REQUESTS_PER_WINDOW = 8


class CoapServerApp(IoTApp):
    """Aggregates light/sound windows into CoAP observe resources."""

    def __init__(self) -> None:
        super().__init__(PROFILE)
        self.server = BlockwiseServer(block_size=64)
        self._message_id = 0

    def _next_id(self) -> int:
        self._message_id = (self._message_id + 1) % 0x10000
        return self._message_id

    def compute(self, window: SampleWindow) -> AppResult:
        """Publish light/sound summaries and serve the pending GETs."""
        light = window.scalar_series("S7")
        sound = window.scalar_series("S8")
        self.server.publish(
            "/sensors/light",
            dumps(
                {
                    "mean_lux": round(float(np.mean(light)), 2),
                    "max_lux": round(float(np.max(light)), 2),
                    "n": int(light.size),
                }
            ).encode("utf-8"),
        )
        self.server.publish(
            "/sensors/sound",
            dumps(
                {
                    "rms": round(float(np.sqrt(np.mean(sound**2))), 4),
                    "n": int(sound.size),
                }
            ).encode("utf-8"),
        )
        # A larger observe resource: the decimated light history, which a
        # subscriber pulls with RFC 7959 blockwise GETs.
        history = dumps(
            {"lux": [round(float(v), 1) for v in light[:: max(1, light.size // 50)]]}
        ).encode("utf-8")
        self.server.publish("/sensors/light/history", history)

        served = 0
        response_bytes = 0
        for index in range(REQUESTS_PER_WINDOW):
            path = "/sensors/light" if index % 2 == 0 else "/sensors/sound"
            request = encode_message(
                CoapMessage.get(path, message_id=self._next_id())
            )
            response = decode_message(self.server.handle(request))
            if response.code != CoapCode.CONTENT:
                raise AssertionError(f"resource {path} missing")
            served += 1
            response_bytes += len(response.payload)
        fetched, block_requests = fetch_blockwise(
            self.server, "/sensors/light/history", first_message_id=self._next_id()
        )
        if fetched != history:
            raise AssertionError("blockwise reassembly corrupted the history")
        return self.make_result(
            window,
            {
                "requests_served": served + block_requests,
                "history_blocks": block_requests,
                "response_bytes": response_bytes + len(fetched),
                "light_samples": int(light.size),
                "sound_samples": int(sound.size),
            },
        )
