"""The app framework: profiles, sample windows and the app base class.

An :class:`IoTApp` bundles two things:

* an :class:`AppProfile` — the *costs* of the app (which sensors at which
  rates, instructions per window from Fig. 6, memory footprint, output
  size).  The simulator charges time and energy from the profile.
* a real ``compute()`` implementation — the *function* of the app,
  executed on the collected samples so results (step counts, decoded
  frames, recognized words...) are genuine and testable.  Schemes run the
  same ``compute()`` whether it is placed on the CPU or offloaded to the
  MCU, which is exactly the paper's "no loss in functionality" claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..calibration import Calibration, default_calibration
from ..errors import SensorError, WorkloadError
from ..sensors.base import SensorSample
from ..sensors.specs import SensorSpec, get_spec
from ..sensors.synthetic import Waveform
from ..units import kib


@dataclass(frozen=True)
class AppProfile:
    """Static cost model of one Table II workload."""

    #: Table II identifier ("A1" ... "A11").
    table2_id: str
    #: Machine name used in registries and calibration overrides.
    name: str
    #: Human title from Table II.
    title: str
    #: Table II category (Health Care, Smart City, ...).
    category: str
    #: Table II user-level task description.
    user_task: str
    #: Sensor ids read each window.
    sensor_ids: Tuple[str, ...]
    #: User-level computation window (the step counter's "1000 samples in
    #: 1 second").
    window_s: float = 1.0
    #: Instructions per window in millions — Figure 6's MIPS bar.
    mips: float = 10.0
    #: Heap footprint (Fig. 6 left axis).
    heap_bytes: int = kib(25.8)
    #: Stack footprint (Fig. 6 left axis).
    stack_bytes: int = kib(0.4)
    #: Result payload published upstream after each window.
    output_bytes: int = 64
    #: Cores the computation can use on the CPU (A11's decoder threads).
    parallel_cores: int = 1
    #: Heavy-weight apps cannot be offloaded (A11).
    heavy: bool = False
    #: Per-sensor sampling-rate overrides; defaults to each sensor's QoS.
    rate_overrides: Mapping[str, float] = field(default_factory=dict)
    #: Per-sensor sample-size overrides in bytes (A11 ships 16-bit audio
    #: plus timestamps).
    sample_bytes_overrides: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.sensor_ids:
            raise WorkloadError(f"{self.table2_id}: app uses no sensors")
        if self.window_s <= 0:
            raise WorkloadError(f"{self.table2_id}: non-positive window")
        if self.mips <= 0:
            raise WorkloadError(f"{self.table2_id}: non-positive MIPS")
        for sensor_id in self.sensor_ids:
            try:
                get_spec(sensor_id)
            except SensorError as exc:
                raise WorkloadError(
                    f"{self.table2_id}: {exc}"
                ) from exc

    # ------------------------------------------------------------------
    # derived Table II columns
    # ------------------------------------------------------------------
    def sensor_specs(self) -> List[SensorSpec]:
        """Specs of all sensors the app reads."""
        return [get_spec(sensor_id) for sensor_id in self.sensor_ids]

    def rate_hz(self, sensor_id: str) -> float:
        """Sampling rate used for one sensor (override or Table I QoS)."""
        if sensor_id in self.rate_overrides:
            return self.rate_overrides[sensor_id]
        return get_spec(sensor_id).effective_qos_hz

    def sample_bytes(self, sensor_id: str) -> int:
        """Bytes per sample moved for one sensor."""
        if sensor_id in self.sample_bytes_overrides:
            return self.sample_bytes_overrides[sensor_id]
        return get_spec(sensor_id).sample_bytes

    def samples_per_window(self, sensor_id: str) -> int:
        """Acquisitions of one sensor per window."""
        return max(1, int(round(self.rate_hz(sensor_id) * self.window_s)))

    @property
    def interrupts_per_window(self) -> int:
        """Table II's '# Interrupts' column (baseline scheme)."""
        return sum(
            self.samples_per_window(sensor_id) for sensor_id in self.sensor_ids
        )

    @property
    def sensor_data_bytes(self) -> int:
        """Table II's 'Sensor Data (KB)' column, in bytes."""
        return sum(
            self.samples_per_window(sensor_id) * self.sample_bytes(sensor_id)
            for sensor_id in self.sensor_ids
        )

    @property
    def memory_bytes(self) -> int:
        """Total heap + stack footprint."""
        return self.heap_bytes + self.stack_bytes

    #: Figure 6's heaps are measured on the Linux main board, whose
    #: allocator arenas inflate them; the MCU firmware build of the same
    #: app is leaner by roughly this factor (the paper offloads four apps
    #: onto one 80 KB ESP8266 concurrently, so the real footprints must
    #: fit — §IV-E2).
    MCU_HEAP_DIVISOR = 3

    #: Ring-buffer size an offloaded app keeps per window for streaming
    #: consumption of its samples.
    MCU_STREAM_BUFFER_BYTES = 4096

    @property
    def mcu_buffer_bytes(self) -> int:
        """Sample buffer an offloaded (COM) app needs resident on the MCU.

        Streamable inputs are consumed incrementally through a small ring;
        an app whose largest single reading exceeds the ring (a camera
        frame) must hold that reading whole.
        """
        largest_sample = max(
            self.sample_bytes(sensor_id) for sensor_id in self.sensor_ids
        )
        ring = min(self.sensor_data_bytes, self.MCU_STREAM_BUFFER_BYTES)
        return max(ring, largest_sample)

    @property
    def mcu_footprint_bytes(self) -> int:
        """Total MCU RAM an offloaded app occupies (code/heap + buffer)."""
        return (
            self.heap_bytes // self.MCU_HEAP_DIVISOR
            + self.stack_bytes
            + self.mcu_buffer_bytes
        )

    @property
    def instructions(self) -> float:
        """Instructions retired per window."""
        return self.mips * 1e6

    # ------------------------------------------------------------------
    # timing
    # ------------------------------------------------------------------
    def cpu_compute_time_s(self, cal: Optional[Calibration] = None) -> float:
        """Wall time of the window computation on the hub CPU."""
        cal = cal or default_calibration()
        effective = cal.cpu.app_mips * 1e6 * max(1, self.parallel_cores)
        return self.instructions / effective

    def mcu_compute_time_s(self, cal: Optional[Calibration] = None) -> float:
        """Wall time of the window computation offloaded to the MCU."""
        cal = cal or default_calibration()
        single_core = self.instructions / (cal.cpu.app_mips * 1e6)
        return single_core * cal.mcu_slowdown(self.name)


class SampleWindow:
    """All samples one app collected over one window, plus their sources.

    ``sources`` maps a sensor id to the waveform behind it so rich-payload
    apps (camera frames, fingerprint scans) can fetch the full reading by
    timestamp — the scalar in each :class:`SensorSample` is the PIO-sized
    value the hardware moved.
    """

    def __init__(
        self,
        window_index: int,
        start_s: float,
        duration_s: float,
        sources: Optional[Mapping[str, Waveform]] = None,
    ):
        self.window_index = window_index
        self.start_s = start_s
        self.duration_s = duration_s
        self.sources: Dict[str, Waveform] = dict(sources or {})
        self._samples: Dict[str, List[SensorSample]] = {}

    def add(self, sample: SensorSample) -> None:
        """Record one collected sample."""
        self._samples.setdefault(sample.sensor_id, []).append(sample)

    def samples(self, sensor_id: str) -> List[SensorSample]:
        """All samples of one sensor, in collection order."""
        return self._samples.get(sensor_id, [])

    def count(self, sensor_id: str) -> int:
        """Number of samples collected for one sensor."""
        return len(self._samples.get(sensor_id, []))

    @property
    def total_count(self) -> int:
        """Samples across all sensors."""
        return sum(len(samples) for samples in self._samples.values())

    def values(self, sensor_id: str) -> np.ndarray:
        """Sample values stacked into an array (rows = samples)."""
        samples = self.samples(sensor_id)
        if not samples:
            return np.empty((0,))
        return np.vstack([np.atleast_1d(sample.value) for sample in samples])

    def scalar_series(self, sensor_id: str) -> np.ndarray:
        """First channel of each sample as a 1-D series."""
        values = self.values(sensor_id)
        if values.size == 0:
            return np.empty(0)
        return values[:, 0]

    def times(self, sensor_id: str) -> np.ndarray:
        """Acquisition timestamps of one sensor's samples."""
        return np.array([sample.time for sample in self.samples(sensor_id)])


@dataclass
class AppResult:
    """Output of one window computation."""

    app_name: str
    window_index: int
    payload: Dict[str, Any]
    output_bytes: int

    def __post_init__(self) -> None:
        if self.output_bytes <= 0:
            raise WorkloadError(
                f"{self.app_name}: window {self.window_index} produced no output"
            )


class IoTApp:
    """Base class for the eleven Table II workloads."""

    profile: AppProfile

    def __init__(self, profile: AppProfile):
        self.profile = profile

    @property
    def name(self) -> str:
        """Machine name (profile shortcut)."""
        return self.profile.name

    @property
    def table2_id(self) -> str:
        """Table II identifier (profile shortcut)."""
        return self.profile.table2_id

    def build_window(
        self,
        window_index: int,
        start_s: float,
        sources: Optional[Mapping[str, Waveform]] = None,
    ) -> SampleWindow:
        """Create an empty window for the executor to fill."""
        return SampleWindow(
            window_index=window_index,
            start_s=start_s,
            duration_s=self.profile.window_s,
            sources=sources,
        )

    def compute(self, window: SampleWindow) -> AppResult:
        """The app-specific computation on one window of samples."""
        raise NotImplementedError

    def make_result(
        self, window: SampleWindow, payload: Dict[str, Any]
    ) -> AppResult:
        """Convenience: wrap a payload with the profile's output size."""
        return AppResult(
            app_name=self.name,
            window_index=window.window_index,
            payload=payload,
            output_bytes=self.profile.output_bytes,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.table2_id} {self.name}>"
