"""A6 — Dropbox manager (Web Control).

Appends each window's sound/distance readings to an in-memory log file,
then syncs the file upstream with the chunk/rolling-hash delta protocol:
only changed chunks are uploaded, exactly like the real sync client.
"""

from __future__ import annotations

import numpy as np

from ..protocols import ChunkStore, compute_delta
from ..units import kib
from .base import AppProfile, AppResult, IoTApp, SampleWindow

PROFILE = AppProfile(
    table2_id="A6",
    name="dropbox",
    title="Dropbox Manager",
    category="Web Control",
    user_task="File Sync, Upload, etc.",
    sensor_ids=("S8", "S9"),
    mips=18.0,
    heap_bytes=kib(24.6),
    stack_bytes=kib(0.4),
    output_bytes=600,
)

#: Keep the log bounded like a rotating sensor journal.
MAX_LOG_BYTES = 64 * 1024


class DropboxApp(IoTApp):
    """Maintains and syncs a rolling sensor log."""

    def __init__(self) -> None:
        super().__init__(PROFILE)
        self._log = bytearray()
        self._store = ChunkStore()
        self.bytes_uploaded = 0

    def _append_window(self, window: SampleWindow) -> None:
        sound = window.scalar_series("S8")
        distance = window.scalar_series("S9")
        count = min(len(sound), len(distance))
        lines = []
        for index in range(count):
            lines.append(
                f"{window.start_s + index / 1000.0:.3f},"
                f"{sound[index]:.4f},{distance[index]:.2f}\n"
            )
        self._log += "".join(lines).encode("utf-8")
        if len(self._log) > MAX_LOG_BYTES:
            del self._log[: len(self._log) - MAX_LOG_BYTES]

    def compute(self, window: SampleWindow) -> AppResult:
        """Append the window to the log and sync only the changed chunks."""
        self._append_window(window)
        snapshot = bytes(self._log)
        delta = compute_delta(snapshot, self._store.signatures())
        self._store.accept(snapshot)
        self.bytes_uploaded += delta.upload_bytes
        sound = window.scalar_series("S8")
        return self.make_result(
            window,
            {
                "log_bytes": len(snapshot),
                "chunks": delta.total_chunks,
                "chunks_uploaded": len(delta.changed_indices),
                "chunks_skipped": delta.unchanged_chunks,
                "upload_bytes": delta.upload_bytes,
                "sound_rms": float(np.sqrt(np.mean(sound**2)))
                if sound.size
                else 0.0,
                "bytes_uploaded_total": self.bytes_uploaded,
            },
        )
