"""A10 — Fingerprint register (Security).

Enrolls fingerprint signatures and identifies incoming scans against the
enrolled database with a byte-distance matcher: a scan matches a template
when fewer than a threshold fraction of bytes differ (tolerating the
sensor's per-scan jitter), otherwise it can be enrolled as a new identity.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..errors import WorkloadError
from ..units import kib
from .base import AppProfile, AppResult, IoTApp, SampleWindow

PROFILE = AppProfile(
    table2_id="A10",
    name="fingerprint",
    title="Fingerprint Register",
    category="Security",
    user_task="Fingerprint Enroll, Identify, etc",
    sensor_ids=("S3",),
    mips=53.8,
    heap_bytes=kib(31.6),
    stack_bytes=kib(0.4),
    output_bytes=80,
)

#: Scans differing in at most this fraction of bytes match a template.
MATCH_THRESHOLD = 0.10


def byte_distance(scan_a: np.ndarray, scan_b: np.ndarray) -> float:
    """Fraction of differing bytes between two signatures."""
    if scan_a.shape != scan_b.shape:
        raise WorkloadError("signature length mismatch")
    return float((scan_a != scan_b).mean())


class FingerprintApp(IoTApp):
    """Enroll-or-identify loop over fingerprint scans."""

    def __init__(self) -> None:
        super().__init__(PROFILE)
        self._database: Dict[int, np.ndarray] = {}
        self.identified = 0
        self.enrolled = 0

    def match(self, scan: np.ndarray) -> Optional[int]:
        """Identity of the best-matching enrolled template, or None."""
        best_id, best_distance = None, 1.0
        for identity, template in self._database.items():
            distance = byte_distance(scan, template)
            if distance < best_distance:
                best_id, best_distance = identity, distance
        if best_id is not None and best_distance <= MATCH_THRESHOLD:
            return best_id
        return None

    def compute(self, window: SampleWindow) -> AppResult:
        """Match the window's scan against the database, enrolling misses."""
        reader = window.sources.get("S3")
        if reader is None:
            raise WorkloadError("fingerprint: window carries no scanner source")
        samples = window.samples("S3")
        if not samples:
            raise WorkloadError("fingerprint: no scan captured this window")
        scan_time = samples[-1].time
        scan = reader.scan_at(scan_time)
        identity = self.match(scan)
        action = "identified"
        if identity is None:
            identity = len(self._database)
            self._database[identity] = scan.copy()
            self.enrolled += 1
            action = "enrolled"
        else:
            self.identified += 1
        return self.make_result(
            window,
            {
                "action": action,
                "identity": identity,
                "database_size": len(self._database),
                "identified_total": self.identified,
                "enrolled_total": self.enrolled,
            },
        )
