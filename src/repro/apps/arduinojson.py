"""A3 — arduinoJSON (Protocol Library).

Formats barometer + temperature readings into a JSON document and parses
it back (the round trip is the library's self-test).  Collects only 0.16
KB of sensor data per window (Table II) — which is exactly why COM slows
it down: there is almost no transfer cost to save (§IV-F).
"""

from __future__ import annotations

from ..protocols import dumps, loads
from ..units import kib
from .base import AppProfile, AppResult, IoTApp, SampleWindow

PROFILE = AppProfile(
    table2_id="A3",
    name="arduinojson",
    title="arduinoJSON",
    category="Protocol Library",
    user_task="JSON Formatting",
    sensor_ids=("S1", "S2"),
    mips=12.0,
    heap_bytes=kib(17.6),
    stack_bytes=kib(0.4),
    output_bytes=512,
)


class ArduinoJsonApp(IoTApp):
    """Serializes sensor readings to JSON and verifies the round trip."""

    def __init__(self) -> None:
        super().__init__(PROFILE)
        self.documents_built = 0

    def compute(self, window: SampleWindow) -> AppResult:
        """Serialize the window's readings into a JSON document."""
        document = {
            "device": "hub-01",
            "window": window.window_index,
            "readings": {
                "barometer_hpa": [
                    round(float(value), 4)
                    for value in window.scalar_series("S1")
                ],
                "temperature_c": [
                    round(float(value), 4)
                    for value in window.scalar_series("S2")
                ],
            },
        }
        text = dumps(document)
        parsed = loads(text)  # the library's own verification pass
        if parsed["window"] != window.window_index:
            raise AssertionError("JSON round trip corrupted the document")
        self.documents_built += 1
        return self.make_result(
            window,
            {
                "json_bytes": len(text),
                "readings": len(parsed["readings"]["barometer_hpa"])
                + len(parsed["readings"]["temperature_c"]),
                "documents_built": self.documents_built,
            },
        )
