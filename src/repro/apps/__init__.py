"""The eleven IoT workloads of Table II, implemented for real.

A1-A10 are light-weight (offloadable); A11 (speech-to-text) is the
heavy-weight app used in the paper's Figure 12 scenarios.
"""

from .arduinojson import ArduinoJsonApp
from .base import AppProfile, AppResult, IoTApp, SampleWindow
from .blynk_app import BlynkApp
from .coap_server import CoapServerApp
from .dropbox import DropboxApp
from .earthquake import EarthquakeApp
from .fingerprint_app import FingerprintApp
from .heartbeat import HeartbeatApp
from .jpegdec import JpegDecoderApp
from .m2x import M2XApp
from .registry import APP_FACTORIES, all_ids, create_app, light_weight_ids
from .speech2text import SpeechToTextApp
from .stepcounter import StepCounterApp

__all__ = [
    "APP_FACTORIES",
    "AppProfile",
    "AppResult",
    "ArduinoJsonApp",
    "BlynkApp",
    "CoapServerApp",
    "DropboxApp",
    "EarthquakeApp",
    "FingerprintApp",
    "HeartbeatApp",
    "IoTApp",
    "JpegDecoderApp",
    "M2XApp",
    "SampleWindow",
    "SpeechToTextApp",
    "StepCounterApp",
    "all_ids",
    "create_app",
    "light_weight_ids",
]
