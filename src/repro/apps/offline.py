"""Offline window synthesis: run app computations without the simulator.

Used by the app unit tests, the Fig. 6 characterizer and the examples'
"dry-run" modes.  It produces exactly the :class:`SampleWindow` an
executor would deliver, minus the hardware timing.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..sensors.base import SensorSample, default_waveform
from ..sensors.synthetic import Waveform
from .base import IoTApp, SampleWindow


def collect_window(
    app: IoTApp,
    window_index: int = 0,
    start_s: float = 0.0,
    waveforms: Optional[Mapping[str, Waveform]] = None,
) -> SampleWindow:
    """Synthesize one full sample window for ``app``.

    ``waveforms`` overrides the default signal per sensor id (e.g. inject a
    quake trace into the earthquake app).
    """
    overrides = dict(waveforms or {})
    sources = {
        sensor_id: overrides.get(sensor_id, default_waveform(sensor_id))
        for sensor_id in app.profile.sensor_ids
    }
    window = app.build_window(window_index, start_s, sources=sources)
    for sensor_id in app.profile.sensor_ids:
        waveform = sources[sensor_id]
        rate = app.profile.rate_hz(sensor_id)
        count = app.profile.samples_per_window(sensor_id)
        nbytes = app.profile.sample_bytes(sensor_id)
        for seq in range(count):
            time = start_s + seq / rate
            window.add(
                SensorSample(
                    time=time,
                    sensor_id=sensor_id,
                    value=waveform.sample(time),
                    nbytes=nbytes,
                    seq=seq + 1,
                )
            )
    return window
