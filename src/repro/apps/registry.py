"""Registry of the eleven Table II workloads."""

from __future__ import annotations

from typing import Callable, Dict, List

from ..errors import WorkloadError
from .arduinojson import ArduinoJsonApp
from .base import IoTApp
from .blynk_app import BlynkApp
from .coap_server import CoapServerApp
from .dropbox import DropboxApp
from .earthquake import EarthquakeApp
from .fingerprint_app import FingerprintApp
from .heartbeat import HeartbeatApp
from .jpegdec import JpegDecoderApp
from .m2x import M2XApp
from .speech2text import SpeechToTextApp
from .stepcounter import StepCounterApp

#: Constructor per Table II id, in table order.
APP_FACTORIES: Dict[str, Callable[[], IoTApp]] = {
    "A1": CoapServerApp,
    "A2": StepCounterApp,
    "A3": ArduinoJsonApp,
    "A4": M2XApp,
    "A5": BlynkApp,
    "A6": DropboxApp,
    "A7": EarthquakeApp,
    "A8": HeartbeatApp,
    "A9": JpegDecoderApp,
    "A10": FingerprintApp,
    "A11": SpeechToTextApp,
}

#: Alternate lookup by machine name ("stepcounter", "m2x", ...).
_BY_NAME: Dict[str, str] = {
    factory().name: table2_id for table2_id, factory in APP_FACTORIES.items()
}


def create_app(identifier: str) -> IoTApp:
    """Instantiate a workload by Table II id or machine name."""
    table2_id = identifier if identifier in APP_FACTORIES else _BY_NAME.get(identifier)
    if table2_id is None:
        raise WorkloadError(f"unknown app {identifier!r}")
    return APP_FACTORIES[table2_id]()


def light_weight_ids() -> List[str]:
    """A1..A10 — offload candidates."""
    return [
        table2_id
        for table2_id, factory in APP_FACTORIES.items()
        if not factory().profile.heavy
    ]


def all_ids() -> List[str]:
    """All Table II ids in order."""
    return list(APP_FACTORIES)
