"""A9 — JPEG decoder (Security).

Takes the camera's quantized-DCT frame and reconstructs the image:
dequantize, blockwise inverse DCT, level shift, clip — the IDCT pipeline
the paper cites [59, 60].  One frame per window (Table II: 1 interrupt,
23.81 KB).
"""

from __future__ import annotations

import numpy as np

from ..dsp import blockwise_idct, dequantize
from ..errors import WorkloadError
from ..sensors.camera import EncodedFrame
from ..units import kib
from .base import AppProfile, AppResult, IoTApp, SampleWindow

PROFILE = AppProfile(
    table2_id="A9",
    name="jpeg",
    title="JPEG Decoder",
    category="Security",
    user_task="Inverse Discrete Cosine Transform (IDCT)",
    sensor_ids=("S10",),
    mips=88.0,
    heap_bytes=kib(35.9),  # Fig. 6: the largest footprint (36.3 KB total)
    stack_bytes=kib(0.4),
    output_bytes=96,
)


def decode_frame_pixels(frame: EncodedFrame) -> np.ndarray:
    """Full decode of one frame: parse the entropy-coded bitstream, then
    dequantize and run the blockwise inverse DCT."""
    from ..dsp.rle import decode_plane

    levels = decode_plane(frame.to_bytes())
    coeffs = dequantize(levels, frame.qtable)
    pixels = blockwise_idct(coeffs) + 128.0
    return np.clip(pixels, 0.0, 255.0)


class JpegDecoderApp(IoTApp):
    """Decodes one camera frame per window."""

    def __init__(self) -> None:
        super().__init__(PROFILE)
        self.frames_decoded = 0

    def compute(self, window: SampleWindow) -> AppResult:
        """Decode the frame captured in this window to pixel statistics."""
        camera = window.sources.get("S10")
        if camera is None:
            raise WorkloadError("jpeg: window carries no camera source")
        samples = window.samples("S10")
        if not samples:
            raise WorkloadError("jpeg: no frame captured this window")
        capture_time = samples[-1].time
        frame = camera.frame_at(capture_time)
        pixels = decode_frame_pixels(frame)
        self.frames_decoded += 1
        return self.make_result(
            window,
            {
                "frame_id": frame.frame_id,
                "width": int(pixels.shape[1]),
                "height": int(pixels.shape[0]),
                "mean_luma": float(pixels.mean()),
                "min_luma": float(pixels.min()),
                "max_luma": float(pixels.max()),
                "frames_decoded": self.frames_decoded,
            },
        )
