"""Signal-processing substrate shared by the IoT apps.

Everything the apps' user-level computations need is implemented here from
first principles on top of numpy: block DCT/IDCT for the JPEG decoder,
filters and peak detection for the step counter and heartbeat apps, STA/LTA
for earthquake detection, and an MFCC + DTW front end for speech-to-text.
"""

from .dct import (
    block_idct2,
    blockwise_dct,
    blockwise_idct,
    dct2,
    dct_matrix,
    dequantize,
    idct2,
    quantize,
    zigzag_indices,
    zigzag_order,
)
from .dtw import dtw_distance
from .filters import (
    ema,
    fir_filter,
    magnitude,
    moving_average,
    normalize,
)
from .mfcc import frame_signal, hamming_window, mel_filterbank, mfcc
from .peaks import adaptive_threshold, find_peaks
from .stats import rmssd, rr_intervals, sta_lta

__all__ = [
    "adaptive_threshold",
    "block_idct2",
    "blockwise_dct",
    "blockwise_idct",
    "dct2",
    "dct_matrix",
    "dequantize",
    "dtw_distance",
    "ema",
    "find_peaks",
    "fir_filter",
    "frame_signal",
    "hamming_window",
    "idct2",
    "magnitude",
    "mel_filterbank",
    "mfcc",
    "moving_average",
    "normalize",
    "quantize",
    "rmssd",
    "rr_intervals",
    "sta_lta",
    "zigzag_indices",
    "zigzag_order",
]
