"""Dynamic time warping distance for the speech template matcher."""

from __future__ import annotations

import numpy as np


def dtw_distance(series_a: np.ndarray, series_b: np.ndarray) -> float:
    """DTW alignment cost between two feature sequences.

    Rows are time steps; columns are feature dimensions.  Local cost is the
    Euclidean distance between feature vectors, and the path may step
    (+1, 0), (0, +1) or (+1, +1).  Returns the total path cost normalized
    by the path-length upper bound so that lengths don't dominate.
    """
    a = np.atleast_2d(np.asarray(series_a, dtype=np.float64))
    b = np.atleast_2d(np.asarray(series_b, dtype=np.float64))
    if a.shape[1] != b.shape[1]:
        raise ValueError(
            f"feature dimensions differ: {a.shape[1]} vs {b.shape[1]}"
        )
    len_a, len_b = a.shape[0], b.shape[0]
    if len_a == 0 or len_b == 0:
        raise ValueError("cannot align empty sequences")
    # Pairwise local distances, vectorized.
    deltas = a[:, None, :] - b[None, :, :]
    local = np.sqrt((deltas**2).sum(axis=2))
    cost = np.full((len_a + 1, len_b + 1), np.inf)
    cost[0, 0] = 0.0
    for i in range(1, len_a + 1):
        row = cost[i]
        prev = cost[i - 1]
        for j in range(1, len_b + 1):
            best = min(prev[j], row[j - 1], prev[j - 1])
            row[j] = local[i - 1, j - 1] + best
    return float(cost[len_a, len_b] / (len_a + len_b))
