"""Basic smoothing/filtering kernels used by the sensing apps."""

from __future__ import annotations

import numpy as np


def moving_average(signal: np.ndarray, window: int) -> np.ndarray:
    """Centered-causal moving average with edge padding (same length)."""
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    if window == 1:
        return np.asarray(signal, dtype=np.float64).copy()
    data = np.asarray(signal, dtype=np.float64)
    padded = np.concatenate([np.full(window - 1, data[0]), data])
    kernel = np.full(window, 1.0 / window)
    return np.convolve(padded, kernel, mode="valid")


def ema(signal: np.ndarray, alpha: float) -> np.ndarray:
    """Exponential moving average, ``y[n] = a*x[n] + (1-a)*y[n-1]``."""
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    data = np.asarray(signal, dtype=np.float64)
    result = np.empty_like(data)
    accumulator = data[0]
    for index, value in enumerate(data):
        accumulator = alpha * value + (1.0 - alpha) * accumulator
        result[index] = accumulator
    return result


def fir_filter(signal: np.ndarray, taps: np.ndarray) -> np.ndarray:
    """Causal FIR convolution, same output length as the input."""
    data = np.asarray(signal, dtype=np.float64)
    coeffs = np.asarray(taps, dtype=np.float64)
    if coeffs.size == 0:
        raise ValueError("empty tap vector")
    padded = np.concatenate([np.zeros(coeffs.size - 1), data])
    return np.convolve(padded, coeffs, mode="valid")


def magnitude(vectors: np.ndarray) -> np.ndarray:
    """Euclidean norm along the last axis (3-axis accel -> scalar)."""
    return np.linalg.norm(np.asarray(vectors, dtype=np.float64), axis=-1)


def normalize(signal: np.ndarray) -> np.ndarray:
    """Zero-mean, unit-variance scaling.

    (Near-)constant signals map to zeros: a std at floating-point rounding
    scale would otherwise blow residual noise up to full amplitude.
    """
    data = np.asarray(signal, dtype=np.float64)
    mean = data.mean()
    std = data.std()
    if std <= 1e-12 * max(1.0, abs(mean)):
        return np.zeros_like(data)
    return (data - mean) / std
