"""A compact MFCC front end for the speech-to-text app (A11).

The paper's A11 runs PocketSphinx; our substitute is a template matcher:
MFCC features (this module) + dynamic time warping (:mod:`repro.dsp.dtw`)
against per-word templates.  The point, for the energy study, is that the
computation is far too heavy for the MCU — which this pipeline faithfully
is — while remaining a real, testable recognizer.
"""

from __future__ import annotations

import numpy as np

from .dct import dct_matrix


def hamming_window(length: int) -> np.ndarray:
    """Standard Hamming window."""
    if length <= 0:
        raise ValueError(f"window length must be positive, got {length}")
    if length == 1:
        return np.ones(1)
    n = np.arange(length)
    return 0.54 - 0.46 * np.cos(2 * np.pi * n / (length - 1))


def frame_signal(
    signal: np.ndarray, frame_length: int, hop_length: int
) -> np.ndarray:
    """Split a 1-D signal into overlapping frames (rows)."""
    if frame_length <= 0 or hop_length <= 0:
        raise ValueError("frame and hop lengths must be positive")
    data = np.asarray(signal, dtype=np.float64)
    if len(data) < frame_length:
        data = np.concatenate([data, np.zeros(frame_length - len(data))])
    count = 1 + (len(data) - frame_length) // hop_length
    frames = np.empty((count, frame_length))
    for index in range(count):
        start = index * hop_length
        frames[index] = data[start : start + frame_length]
    return frames


def _hz_to_mel(hz: np.ndarray) -> np.ndarray:
    return 2595.0 * np.log10(1.0 + hz / 700.0)


def _mel_to_hz(mel: np.ndarray) -> np.ndarray:
    return 700.0 * (10.0 ** (mel / 2595.0) - 1.0)


def mel_filterbank(
    num_filters: int, fft_size: int, sample_rate_hz: float
) -> np.ndarray:
    """Triangular mel filterbank matrix of shape (filters, fft_size//2+1)."""
    if num_filters <= 0:
        raise ValueError("need at least one mel filter")
    low_mel = _hz_to_mel(np.array(0.0))
    high_mel = _hz_to_mel(np.array(sample_rate_hz / 2.0))
    mel_points = np.linspace(low_mel, high_mel, num_filters + 2)
    hz_points = _mel_to_hz(mel_points)
    bins = np.floor((fft_size + 1) * hz_points / sample_rate_hz).astype(int)
    bank = np.zeros((num_filters, fft_size // 2 + 1))
    for index in range(1, num_filters + 1):
        left, center, right = bins[index - 1], bins[index], bins[index + 1]
        center = max(center, left + 1)
        right = max(right, center + 1)
        for freq_bin in range(left, center):
            bank[index - 1, freq_bin] = (freq_bin - left) / (center - left)
        for freq_bin in range(center, min(right, bank.shape[1])):
            bank[index - 1, freq_bin] = (right - freq_bin) / (right - center)
    return bank


def mfcc(
    signal: np.ndarray,
    sample_rate_hz: float,
    frame_length: int = 256,
    hop_length: int = 128,
    num_filters: int = 20,
    num_coefficients: int = 12,
) -> np.ndarray:
    """MFCC feature matrix, one row per frame."""
    frames = frame_signal(signal, frame_length, hop_length)
    window = hamming_window(frame_length)
    spectrum = np.abs(np.fft.rfft(frames * window, n=frame_length)) ** 2
    bank = mel_filterbank(num_filters, frame_length, sample_rate_hz)
    energies = spectrum @ bank.T
    energies = np.where(energies > 1e-12, energies, 1e-12)
    log_energies = np.log(energies)
    dct = dct_matrix(num_filters)[:num_coefficients]
    return log_energies @ dct.T
