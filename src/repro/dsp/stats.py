"""Statistics kernels: STA/LTA triggering and heart-rate variability."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def sta_lta(
    signal: np.ndarray, short_window: int, long_window: int
) -> np.ndarray:
    """Short-term / long-term average ratio (seismic trigger classic).

    The ratio is computed over the rectified signal; indices before one
    full long window are left at 1.0 (no trigger during warm-up).
    """
    if not 0 < short_window < long_window:
        raise ValueError(
            f"need 0 < short ({short_window}) < long ({long_window})"
        )
    data = np.abs(np.asarray(signal, dtype=np.float64))
    cumulative = np.concatenate([[0.0], np.cumsum(data)])
    ratio = np.ones(len(data))
    for index in range(long_window, len(data)):
        sta = (
            cumulative[index + 1] - cumulative[index + 1 - short_window]
        ) / short_window
        lta = (
            cumulative[index + 1] - cumulative[index + 1 - long_window]
        ) / long_window
        ratio[index] = sta / lta if lta > 0 else 1.0
    return ratio


def rr_intervals(peak_indices: Sequence[int], sample_rate_hz: float) -> np.ndarray:
    """Inter-beat intervals in seconds from R-peak sample indices."""
    if sample_rate_hz <= 0:
        raise ValueError(f"sample rate must be positive, got {sample_rate_hz}")
    peaks = np.asarray(peak_indices, dtype=np.float64)
    if peaks.size < 2:
        return np.empty(0)
    return np.diff(peaks) / sample_rate_hz


def rmssd(intervals: np.ndarray) -> float:
    """Root mean square of successive differences — the HRV irregularity
    measure the heartbeat app thresholds on."""
    data = np.asarray(intervals, dtype=np.float64)
    if data.size < 2:
        return 0.0
    diffs = np.diff(data)
    return float(np.sqrt(np.mean(diffs**2)))
