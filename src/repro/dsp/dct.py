"""Type-II/III discrete cosine transforms and JPEG-style block coding.

The JPEG decoder app (A9) performs the inverse DCT the paper cites [60];
the camera sensor model uses the forward path to synthesize realistic
frequency-domain frames for it to decode.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

import numpy as np

#: Standard JPEG luminance quantization table (ITU T.81 Annex K).
JPEG_LUMA_QTABLE = np.array(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=np.float64,
)


@lru_cache(maxsize=16)
def dct_matrix(size: int) -> np.ndarray:
    """Orthonormal type-II DCT matrix ``C`` such that ``X = C @ x``."""
    if size <= 0:
        raise ValueError(f"DCT size must be positive, got {size}")
    k = np.arange(size).reshape(-1, 1)
    n = np.arange(size).reshape(1, -1)
    matrix = np.cos(np.pi * (2 * n + 1) * k / (2 * size))
    matrix *= np.sqrt(2.0 / size)
    matrix[0, :] /= np.sqrt(2.0)
    return matrix


def dct2(block: np.ndarray) -> np.ndarray:
    """2-D type-II DCT of a square block."""
    matrix = dct_matrix(block.shape[0])
    return matrix @ block @ matrix.T


def idct2(coeffs: np.ndarray) -> np.ndarray:
    """2-D inverse (type-III) DCT; exact inverse of :func:`dct2`."""
    matrix = dct_matrix(coeffs.shape[0])
    return matrix.T @ coeffs @ matrix


def block_idct2(coeffs: np.ndarray) -> np.ndarray:
    """Alias for :func:`idct2` (the paper's 'IDCT algorithm')."""
    return idct2(coeffs)


def _tiled_qtable(shape: Tuple[int, int], qtable: np.ndarray) -> np.ndarray:
    """Tile a block qtable over a whole (block-aligned) coefficient plane."""
    rows, cols = shape
    block = qtable.shape[0]
    if (rows, cols) == qtable.shape:
        return qtable
    if rows % block or cols % block:
        raise ValueError(f"plane {shape} not aligned to {block}x{block} blocks")
    return np.tile(qtable, (rows // block, cols // block))


def quantize(coeffs: np.ndarray, qtable: np.ndarray = JPEG_LUMA_QTABLE) -> np.ndarray:
    """Quantize DCT coefficients to integers with a JPEG-style table.

    Accepts either a single block or a whole block-aligned plane (the
    table is tiled across it).
    """
    table = _tiled_qtable(coeffs.shape, qtable)
    return np.round(coeffs / table).astype(np.int32)


def dequantize(levels: np.ndarray, qtable: np.ndarray = JPEG_LUMA_QTABLE) -> np.ndarray:
    """Invert :func:`quantize` (up to rounding loss)."""
    table = _tiled_qtable(levels.shape, qtable)
    return levels.astype(np.float64) * table


@lru_cache(maxsize=8)
def zigzag_indices(size: int = 8) -> Tuple[Tuple[int, int], ...]:
    """Zigzag scan order of an ``size x size`` block as (row, col) pairs."""
    order = sorted(
        ((row, col) for row in range(size) for col in range(size)),
        key=lambda rc: (
            rc[0] + rc[1],
            rc[1] if (rc[0] + rc[1]) % 2 == 0 else rc[0],
        ),
    )
    return tuple(order)


def zigzag_order(block: np.ndarray) -> np.ndarray:
    """Flatten a block in zigzag order (entropy-coding order)."""
    indices = zigzag_indices(block.shape[0])
    return np.array([block[row, col] for row, col in indices])


def _iter_blocks(shape: Tuple[int, int], size: int):
    rows, cols = shape
    if rows % size or cols % size:
        raise ValueError(f"image {shape} not divisible into {size}x{size} blocks")
    for top in range(0, rows, size):
        for left in range(0, cols, size):
            yield top, left


def blockwise_dct(image: np.ndarray, size: int = 8) -> np.ndarray:
    """Forward DCT applied independently to each ``size x size`` tile."""
    result = np.empty_like(image, dtype=np.float64)
    for top, left in _iter_blocks(image.shape, size):
        tile = image[top : top + size, left : left + size]
        result[top : top + size, left : left + size] = dct2(tile)
    return result


def blockwise_idct(coeffs: np.ndarray, size: int = 8) -> np.ndarray:
    """Inverse of :func:`blockwise_dct`."""
    result = np.empty_like(coeffs, dtype=np.float64)
    for top, left in _iter_blocks(coeffs.shape, size):
        tile = coeffs[top : top + size, left : left + size]
        result[top : top + size, left : left + size] = idct2(tile)
    return result
