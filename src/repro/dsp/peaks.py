"""Peak detection used by the step counter and heartbeat apps."""

from __future__ import annotations

from typing import List

import numpy as np


def adaptive_threshold(signal: np.ndarray, factor: float = 0.5) -> float:
    """Mean + ``factor`` * std — the classic pedometer trigger level."""
    data = np.asarray(signal, dtype=np.float64)
    return float(data.mean() + factor * data.std())


def find_peaks(
    signal: np.ndarray,
    threshold: float,
    min_distance: int = 1,
) -> List[int]:
    """Indices of local maxima above ``threshold``.

    A sample is a peak if it exceeds both neighbours (ties broken toward
    the earlier sample) and the threshold; peaks closer than
    ``min_distance`` samples to an accepted peak are suppressed in
    left-to-right order.
    """
    if min_distance < 1:
        raise ValueError(f"min_distance must be >= 1, got {min_distance}")
    data = np.asarray(signal, dtype=np.float64)
    peaks: List[int] = []
    last_accepted = -min_distance
    for index in range(1, len(data) - 1):
        if data[index] < threshold:
            continue
        if data[index - 1] < data[index] >= data[index + 1]:
            if index - last_accepted >= min_distance:
                peaks.append(index)
                last_accepted = index
    return peaks
