"""JPEG-style entropy coding: zigzag scan + run-length + varint bytes.

The camera serializes each quantized 8x8 block as a (DC, [(run, level)…],
end-of-block) stream, the way JPEG's entropy stage does before Huffman
coding; the decoder app parses it back.  Values use a zigzag varint (the
protobuf trick) so small coefficients cost one byte.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from ..errors import ProtocolError
from .dct import zigzag_indices

#: Marker level terminating a block's AC list.
_END_OF_BLOCK_RUN = 0xFF


def _zigzag_varint(value: int) -> bytes:
    """Signed varint: zigzag-map to unsigned, then 7-bit groups."""
    unsigned = (value << 1) if value >= 0 else ((-value) << 1) - 1
    out = bytearray()
    while True:
        bits = unsigned & 0x7F
        unsigned >>= 7
        if unsigned:
            out.append(bits | 0x80)
        else:
            out.append(bits)
            return bytes(out)


def _read_varint(data: bytes, pos: int) -> Tuple[int, int]:
    """Decode one signed varint; returns (value, new position)."""
    shift = 0
    unsigned = 0
    while True:
        if pos >= len(data):
            raise ProtocolError("truncated varint in block stream")
        byte = data[pos]
        pos += 1
        unsigned |= (byte & 0x7F) << shift
        if not byte & 0x80:
            break
        shift += 7
        if shift > 63:
            raise ProtocolError("varint too long")
    value = (unsigned >> 1) if not unsigned & 1 else -((unsigned + 1) >> 1)
    return value, pos


def _iter_blocks(levels: np.ndarray) -> Iterator[np.ndarray]:
    rows, cols = levels.shape
    if rows % 8 or cols % 8:
        raise ProtocolError(f"plane {levels.shape} not 8x8-aligned")
    for top in range(0, rows, 8):
        for left in range(0, cols, 8):
            yield levels[top : top + 8, left : left + 8]


def encode_plane(levels: np.ndarray) -> bytes:
    """Serialize a quantized coefficient plane to an RLE byte stream."""
    indices = zigzag_indices(8)
    out = bytearray()
    rows, cols = levels.shape
    out += int(rows).to_bytes(2, "big") + int(cols).to_bytes(2, "big")
    for block in _iter_blocks(levels):
        scan = [int(block[r, c]) for r, c in indices]
        out += _zigzag_varint(scan[0])  # DC
        run = 0
        for level in scan[1:]:
            if level == 0:
                run += 1
                continue
            while run > 254:
                out.append(254)
                out += _zigzag_varint(0)
                run -= 254
            out.append(run)
            out += _zigzag_varint(level)
            run = 0
        out.append(_END_OF_BLOCK_RUN)
    return bytes(out)


def decode_plane(data: bytes) -> np.ndarray:
    """Parse :func:`encode_plane` output back into the coefficient plane."""
    if len(data) < 4:
        raise ProtocolError("truncated plane header")
    rows = int.from_bytes(data[0:2], "big")
    cols = int.from_bytes(data[2:4], "big")
    if rows % 8 or cols % 8 or rows == 0 or cols == 0:
        raise ProtocolError(f"bad plane dimensions {rows}x{cols}")
    indices = zigzag_indices(8)
    levels = np.zeros((rows, cols), dtype=np.int32)
    pos = 4
    for top in range(0, rows, 8):
        for left in range(0, cols, 8):
            scan: List[int] = [0] * 64
            dc, pos = _read_varint(data, pos)
            scan[0] = dc
            index = 1
            while True:
                if pos >= len(data):
                    raise ProtocolError("truncated block stream")
                run = data[pos]
                pos += 1
                if run == _END_OF_BLOCK_RUN:
                    break
                value, pos = _read_varint(data, pos)
                index += run
                if index >= 64:
                    raise ProtocolError("AC index past block end")
                scan[index] = value
                index += 1
            for (r, c), value in zip(indices, scan):
                levels[top + r, left + c] = value
    if pos != len(data):
        raise ProtocolError(f"{len(data) - pos} trailing bytes after plane")
    return levels
