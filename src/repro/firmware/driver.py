"""The MCU-side sensor driver: §II-B's three-task read pipeline.

Task I (availability check) and Task II (register read) occupy the sensor
rail for the spec's read time; Task III (raw-data -> information decode)
runs on the MCU core for the calibrated decode time.
"""

from __future__ import annotations

from typing import Generator

from ..hw.board import IoTHub
from ..hw.mcu import McuState
from ..hw.power import Routine
from ..sensors.base import SensorDevice, SensorSample


def read_and_decode(
    hub: IoTHub,
    device: SensorDevice,
    idle_routine: str = Routine.DATA_COLLECTION,
) -> Generator:
    """Generator: acquire one decoded sample from ``device``.

    Returns the :class:`SensorSample`.  The rail read and the core decode
    are both attributed to the data-collection routine.
    """
    sample = yield from device.acquire(Routine.DATA_COLLECTION)
    yield from hub.mcu.core.acquire()
    yield from hub.mcu.execute(
        hub.calibration.mcu.decode_time_per_sample_s,
        Routine.DATA_COLLECTION,
        after_state=McuState.IDLE,
        after_routine=idle_routine,
    )
    hub.mcu.core.release()
    return sample


def raise_interrupt(hub: IoTHub, vector: str, payload) -> Generator:
    """Generator: MCU raises one interrupt toward the main board."""
    yield from hub.mcu.core.acquire()
    yield from hub.mcu.execute(
        hub.calibration.mcu.interrupt_raise_time_s, Routine.INTERRUPT
    )
    hub.mcu.core.release()
    hub.irq.raise_irq("mcu", vector, payload)


def mcu_transfer_busy(hub: IoTHub, sample_count: int, bulk: bool) -> Generator:
    """Generator: MCU-side busy time for putting data on the PIO bus.

    Per-sample handshakes dominate in baseline; batched transfers amortize
    them (the MCU streams from its buffer).
    """
    per_sample = hub.calibration.mcu.transfer_time_per_sample_s
    if bulk:
        per_sample = per_sample / 4.0
    duration = per_sample * sample_count
    yield from hub.mcu.core.acquire()
    # After its side of the handshake the MCU waits for the CPU to drain
    # the PIO bus; that wait belongs to the transfer routine (Fig. 4).
    yield from hub.mcu.execute(
        duration, Routine.DATA_TRANSFER, after_routine=Routine.DATA_TRANSFER
    )
    hub.mcu.core.release()
