"""Offloadability analysis: can this app run on the MCU at all? (§III-B)

The paper's criteria, checked in order:

1. the app must not be heavy-weight (A11's 1.43 GB model),
2. every sensor's driver must be MCU-friendly (Table I),
3. code + data must fit the MCU's user RAM,
4. the slowed-down computation must still meet the window QoS
   (collection and compute are pipelined across windows, so the compute
   itself must finish within one window length).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..calibration import Calibration, default_calibration
from ..apps.base import IoTApp
from ..sensors.specs import get_spec
from ..units import to_ms


@dataclass
class OffloadReport:
    """Outcome of the offloadability check with human-readable reasons."""

    app_name: str
    offloadable: bool
    reasons: List[str] = field(default_factory=list)
    mcu_compute_time_s: float = 0.0
    required_ram_bytes: int = 0

    def __bool__(self) -> bool:
        return self.offloadable


def check_offloadable(
    app: IoTApp, cal: Optional[Calibration] = None
) -> OffloadReport:
    """Evaluate the paper's four COM feasibility criteria for ``app``."""
    cal = cal or default_calibration()
    profile = app.profile
    reasons: List[str] = []

    if profile.heavy:
        reasons.append(
            f"heavy-weight app: needs {profile.mips:.0f}M instructions and "
            f"{profile.memory_bytes / 2**20:.0f} MiB per window"
        )

    for sensor_id in profile.sensor_ids:
        spec = get_spec(sensor_id)
        if not spec.mcu_friendly:
            reasons.append(f"sensor {sensor_id} ({spec.name}) is MCU-unfriendly")

    required_ram = profile.mcu_footprint_bytes
    if required_ram > cal.mcu.ram_bytes:
        reasons.append(
            f"needs {required_ram} B of MCU RAM "
            f"(capacity {cal.mcu.ram_bytes} B)"
        )

    mcu_time = profile.mcu_compute_time_s(cal)
    if mcu_time > profile.window_s:
        reasons.append(
            f"MCU compute time {to_ms(mcu_time):.1f} ms exceeds the "
            f"{to_ms(profile.window_s):.0f} ms window (QoS violation)"
        )

    return OffloadReport(
        app_name=app.name,
        offloadable=not reasons,
        reasons=reasons,
        mcu_compute_time_s=mcu_time,
        required_ram_bytes=required_ram,
    )
