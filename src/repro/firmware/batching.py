"""The Batching scheme's MCU-side sample buffer (§III-A).

Samples accumulate in the ESP8266's 80 KB user RAM instead of being
pushed to the CPU one interrupt at a time.  The buffer accounts its bytes
against the real :class:`~repro.hw.memory.MemoryRegion`, so an
over-committed batch fails exactly the way the hardware would.
"""

from __future__ import annotations

from typing import List

from ..errors import CapacityError
from ..hw.memory import MemoryRegion
from ..sensors.base import SensorSample


class BatchBuffer:
    """Accumulates one app's window of samples in MCU RAM."""

    def __init__(self, ram: MemoryRegion, label: str):
        self.ram = ram
        self.label = label
        self._samples: List[SensorSample] = []
        self._bytes = 0
        self.high_water_bytes = 0

    @property
    def sample_count(self) -> int:
        """Samples currently buffered."""
        return len(self._samples)

    @property
    def buffered_bytes(self) -> int:
        """Bytes currently held in MCU RAM for this batch."""
        return self._bytes

    def add(self, sample: SensorSample, nbytes: int) -> None:
        """Buffer one sample, reserving its bytes in MCU RAM.

        Raises :class:`CapacityError` when the MCU RAM cannot hold it —
        the batching scheme surfaces that as a QoS/capacity failure.
        """
        try:
            self.ram.allocate(self.label, nbytes)
        except CapacityError as exc:
            raise CapacityError(
                f"batch {self.label!r}: MCU RAM exhausted after "
                f"{self.sample_count} samples ({exc})"
            ) from exc
        self._samples.append(sample)
        self._bytes += nbytes
        self.high_water_bytes = max(self.high_water_bytes, self._bytes)

    def flush(self) -> List[SensorSample]:
        """Release the RAM and hand back the batched samples."""
        samples, self._samples = self._samples, []
        self.ram.free(self.label)
        self._bytes = 0
        return samples
