"""MCU-board firmware: sensor drivers, batching buffers, offload runtime.

This is the software that runs *on the MCU* in the paper's prototype:
the three-task sensor read pipeline (§II-B), the Batching buffer manager
(§III-A) and the offloaded-app runtime with its capability checks
(§III-B).
"""

from .batching import BatchBuffer
from .capability import OffloadReport, check_offloadable
from .driver import read_and_decode
from .runtime import run_offloaded_compute

__all__ = [
    "BatchBuffer",
    "OffloadReport",
    "check_offloadable",
    "read_and_decode",
    "run_offloaded_compute",
]
