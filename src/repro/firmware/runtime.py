"""The COM offload runtime: app-specific computation on the MCU core.

The same ``compute()`` implementation the CPU would run executes here —
functionality is preserved; only the timing (the per-app slowdown factor)
and the power rail differ.
"""

from __future__ import annotations

from typing import Generator

from ..apps.base import AppResult, IoTApp, SampleWindow
from ..hw.board import IoTHub
from ..hw.mcu import McuState
from ..hw.power import Routine


def run_offloaded_compute(
    hub: IoTHub,
    app: IoTApp,
    window: SampleWindow,
    idle_routine: str = Routine.IDLE,
) -> Generator:
    """Generator: execute one window computation on the MCU.

    Returns the :class:`AppResult`.  The MCU core is busy for the app's
    slowed-down compute time and the result is produced by the app's real
    implementation.
    """
    duration = app.profile.mcu_compute_time_s(hub.calibration)
    yield from hub.mcu.core.acquire()
    result: AppResult = app.compute(window)
    yield from hub.mcu.execute(
        duration,
        Routine.APP_COMPUTE,
        instructions=app.profile.instructions,
        after_state=McuState.IDLE,
        after_routine=idle_routine,
    )
    hub.mcu.core.release()
    return result
