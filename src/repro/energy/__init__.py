"""Energy metering: trace integration and routine-level accounting.

This package replaces the paper's Monsoon power monitor.  The
:class:`PowerMonitor` integrates the piecewise-constant power trace of every
component and attributes every joule to one of the paper's four routines
(plus ``idle``).
"""

from .export import (
    power_csv_string,
    power_sparkline,
    sparkline,
    write_power_csv,
    write_state_csv,
)
from .meter import EnergyReport, PowerMonitor
from .report import format_breakdown_table, format_energy_mj, normalized_stack

__all__ = [
    "EnergyReport",
    "PowerMonitor",
    "format_breakdown_table",
    "format_energy_mj",
    "normalized_stack",
    "power_csv_string",
    "power_sparkline",
    "sparkline",
    "write_power_csv",
    "write_state_csv",
]
