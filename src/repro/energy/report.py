"""Plain-text rendering of energy reports for the benchmark harness."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from ..errors import WorkloadError
from ..hw.power import Routine
from ..units import to_mj
from .meter import EnergyReport

#: Human names used in tables, matching the paper's legend.
ROUTINE_LABELS: Dict[str, str] = {
    Routine.DATA_COLLECTION: "Data Collection",
    Routine.INTERRUPT: "Interrupt",
    Routine.DATA_TRANSFER: "Data Transfer",
    Routine.APP_COMPUTE: "App-specific Computing",
    Routine.IDLE: "Idle",
}


def format_energy_mj(joules: float) -> str:
    """Render joules as a millijoule string (the paper's unit)."""
    return f"{to_mj(joules):.1f} mJ"


def normalized_stack(
    report: EnergyReport, baseline: EnergyReport
) -> Dict[str, float]:
    """Per-routine bar segments normalized to the baseline (paper style)."""
    bars = report.scaled_routine_bars(baseline)
    return {routine: bars.get(routine, 0.0) for routine in Routine.ORDER}


def format_breakdown_table(
    rows: Mapping[str, EnergyReport],
    baseline_key: str,
    title: str = "",
) -> str:
    """Render scheme-vs-routine normalized percentages as a text table.

    ``rows`` maps scheme names to reports; every bar is normalized to the
    scheme named by ``baseline_key`` — exactly how the paper's stacked bar
    charts are scaled.
    """
    if baseline_key not in rows:
        raise WorkloadError(f"baseline {baseline_key!r} not among rows")
    baseline = rows[baseline_key]
    routines = [routine for routine in Routine.ORDER if routine != Routine.IDLE]
    header = ["Scheme"] + [ROUTINE_LABELS[routine] for routine in routines]
    header += ["Total %", "Savings %"]
    lines: List[str] = []
    if title:
        lines.append(title)
    widths = [max(14, len(column) + 2) for column in header]
    lines.append("".join(col.ljust(width) for col, width in zip(header, widths)))
    for name, report in rows.items():
        stack = normalized_stack(report, baseline)
        total = report.normalized_to(baseline)
        savings = report.savings_vs(baseline)
        cells = [name]
        cells += [f"{stack.get(routine, 0.0) * 100:6.1f}%" for routine in routines]
        cells += [f"{total * 100:6.1f}%", f"{savings * 100:6.1f}%"]
        lines.append(
            "".join(cell.ljust(width) for cell, width in zip(cells, widths))
        )
    return "\n".join(lines)


def format_series(
    labels: Sequence[str], values: Iterable[float], unit: str = ""
) -> str:
    """One-line-per-point rendering for figure series."""
    lines: List[Tuple[str, float]] = list(zip(labels, values))
    return "\n".join(f"{label:<16} {value:10.3f} {unit}" for label, value in lines)
