"""Power-trace integration and per-routine energy reports."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..hw.power import Routine
from ..sim.trace import TimelineRecorder


@dataclass
class EnergyReport:
    """Integrated energy of one scenario run.

    All energies are joules.  ``by_component_routine`` is the finest grain;
    everything else is derived from it.  ``idle_floor_power_w`` is the
    whole-hub draw when everything sleeps; *marginal* figures subtract that
    floor, which is how the paper normalizes its savings bars (the floor
    exists whether or not any app runs).
    """

    duration_s: float
    idle_floor_power_w: float
    by_component_routine: Dict[Tuple[str, str], float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    @property
    def total_j(self) -> float:
        """Total hub energy over the run."""
        return sum(self.by_component_routine.values())

    @property
    def by_routine(self) -> Dict[str, float]:
        """Energy per routine, summed over components."""
        result: Dict[str, float] = {}
        for (_, routine), joules in self.by_component_routine.items():
            result[routine] = result.get(routine, 0.0) + joules
        return result

    @property
    def by_component(self) -> Dict[str, float]:
        """Energy per component, summed over routines."""
        result: Dict[str, float] = {}
        for (component, _), joules in self.by_component_routine.items():
            result[component] = result.get(component, 0.0) + joules
        return result

    def routine_j(self, routine: str) -> float:
        """Energy attributed to one routine."""
        return self.by_routine.get(routine, 0.0)

    def component_j(self, component: str) -> float:
        """Energy drawn by one component."""
        return self.by_component.get(component, 0.0)

    # ------------------------------------------------------------------
    # marginal (above idle-floor) accounting
    # ------------------------------------------------------------------
    @property
    def idle_floor_j(self) -> float:
        """Energy the hub would have used asleep for the same duration."""
        return self.idle_floor_power_w * self.duration_s

    @property
    def marginal_j(self) -> float:
        """App-attributable energy: total minus the always-there floor."""
        return max(0.0, self.total_j - self.idle_floor_j)

    def savings_vs(self, baseline: "EnergyReport") -> float:
        """Fractional marginal-energy saving relative to ``baseline``.

        This is the quantity behind the paper's "52% / 85% / 29%" numbers:
        1 - E_marginal(self) / E_marginal(baseline).
        """
        base = baseline.marginal_j
        if base <= 0:
            return 0.0
        return 1.0 - self.marginal_j / base

    def normalized_to(self, baseline: "EnergyReport") -> float:
        """Marginal energy as a fraction of the baseline's (bar height)."""
        base = baseline.marginal_j
        if base <= 0:
            return 0.0
        return self.marginal_j / base

    # ------------------------------------------------------------------
    # breakdowns
    # ------------------------------------------------------------------
    def routine_fractions(self, include_idle: bool = False) -> Dict[str, float]:
        """Share of total energy per routine (the stacked-bar splits)."""
        per_routine = self.by_routine
        if not include_idle:
            per_routine = {
                routine: joules
                for routine, joules in per_routine.items()
                if routine != Routine.IDLE
            }
        total = sum(per_routine.values())
        if total <= 0:
            return {routine: 0.0 for routine in per_routine}
        return {routine: joules / total for routine, joules in per_routine.items()}

    def marginal_by_routine(self) -> Dict[str, float]:
        """Marginal energy split by routine.

        The idle floor is removed proportionally from each component's
        ``idle``-tagged draw first; any floor remainder is removed from the
        other routines proportionally to their size.
        """
        per_routine = dict(self.by_routine)
        floor = self.idle_floor_j
        idle = per_routine.pop(Routine.IDLE, 0.0)
        floor_left = max(0.0, floor - idle)
        remainder = max(0.0, idle - floor)
        if remainder > 0:
            # Idle-tagged energy above the floor: spread over real routines.
            per_routine[Routine.IDLE] = remainder
        active_total = sum(per_routine.values())
        if floor_left > 0 and active_total > 0:
            scale = max(0.0, 1.0 - floor_left / active_total)
            per_routine = {
                routine: joules * scale for routine, joules in per_routine.items()
            }
        return per_routine

    def scaled_routine_bars(self, baseline: "EnergyReport") -> Dict[str, float]:
        """Per-routine marginal energy as fractions of the baseline total.

        This reproduces the paper's normalized stacked bars (Figures 7, 9,
        10, 11, 12): each routine's share is relative to the *baseline*
        scheme's marginal total, so the bar heights sum to
        :meth:`normalized_to`.
        """
        base = baseline.marginal_j
        if base <= 0:
            return {}
        return {
            routine: joules / base
            for routine, joules in self.marginal_by_routine().items()
        }


class PowerMonitor:
    """Integrates a finished run's timeline into an :class:`EnergyReport`.

    Stands in for the paper's Monsoon monitor (§III-B).  ``sample_trace``
    additionally produces evenly spaced instantaneous-power samples like the
    monitor's 100 ns dumps, which the timeline figures use.
    """

    def __init__(self, recorder: TimelineRecorder, idle_floor_power_w: float):
        self.recorder = recorder
        self.idle_floor_power_w = idle_floor_power_w

    def measure(self, end_time: float) -> EnergyReport:
        """Integrate all components' power up to ``end_time``."""
        report = EnergyReport(
            duration_s=end_time, idle_floor_power_w=self.idle_floor_power_w
        )
        accum = report.by_component_routine
        for component in self.recorder.components:
            for change, duration in self.recorder.intervals(component, end_time):
                key = (component, change.routine)
                accum[key] = accum.get(key, 0.0) + change.power_w * duration
        return report

    def sample_trace(
        self, end_time: float, sample_interval_s: float
    ) -> List[Tuple[float, float]]:
        """Evenly spaced ``(time, hub_power_w)`` samples (Monsoon style)."""
        samples: List[Tuple[float, float]] = []
        steps = int(end_time / sample_interval_s)
        for index in range(steps + 1):
            time = index * sample_interval_s
            power = 0.0
            for component in self.recorder.components:
                change = self.recorder.state_at(component, time)
                if change is not None:
                    power += change.power_w
            samples.append((time, power))
        return samples
