"""Export measured traces: CSV dumps and terminal sparklines.

The Monsoon workflow the paper used produces raw power dumps that get
post-processed externally; these helpers provide the same escape hatch —
CSV for notebooks/spreadsheets, sparklines for a quick terminal look.
"""

from __future__ import annotations

import io
from typing import List, Sequence, TextIO, Tuple

from ..sim.trace import TimelineRecorder
from .meter import PowerMonitor

#: Unicode block characters for sparklines, lowest to highest.
_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def write_power_csv(
    monitor: PowerMonitor,
    end_time: float,
    sample_interval_s: float,
    out: TextIO,
) -> int:
    """Write ``time_s,power_w`` samples; returns the row count."""
    samples = monitor.sample_trace(end_time, sample_interval_s)
    out.write("time_s,power_w\n")
    for time, power in samples:
        out.write(f"{time:.9f},{power:.6f}\n")
    return len(samples)


def write_state_csv(
    recorder: TimelineRecorder, end_time: float, out: TextIO
) -> int:
    """Write every component's state intervals; returns the row count."""
    out.write("component,state,routine,start_s,duration_s,power_w\n")
    rows = 0
    for component in recorder.components:
        for change, duration in recorder.intervals(component, end_time):
            out.write(
                f"{component},{change.state},{change.routine},"
                f"{change.time:.9f},{duration:.9f},{change.power_w:.6f}\n"
            )
            rows += 1
    return rows


def power_csv_string(
    monitor: PowerMonitor, end_time: float, sample_interval_s: float
) -> str:
    """CSV power trace as a string (convenience for tests/notebooks)."""
    buffer = io.StringIO()
    write_power_csv(monitor, end_time, sample_interval_s, buffer)
    return buffer.getvalue()


def sparkline(values: Sequence[float], width: int = 64) -> str:
    """Render a numeric series as a fixed-width unicode sparkline."""
    if not values:
        return ""
    data: List[float] = list(values)
    # Downsample by bucket means to the requested width.
    if len(data) > width:
        bucket = len(data) / width
        buckets = [
            data[int(i * bucket) : max(int(i * bucket) + 1, int((i + 1) * bucket))]
            for i in range(width)
        ]
        data = [sum(chunk) / max(1, len(chunk)) for chunk in buckets]
    low, high = min(data), max(data)
    span = high - low
    if span <= 0:
        return _SPARK_LEVELS[0] * len(data)
    return "".join(
        _SPARK_LEVELS[
            min(
                len(_SPARK_LEVELS) - 1,
                int((value - low) / span * len(_SPARK_LEVELS)),
            )
        ]
        for value in data
    )


def power_sparkline(
    monitor: PowerMonitor,
    end_time: float,
    width: int = 64,
) -> Tuple[str, float, float]:
    """Sparkline of hub power plus its (min, max) in watts."""
    samples = monitor.sample_trace(end_time, end_time / max(1, width * 4))
    values = [power for _, power in samples]
    return sparkline(values, width=width), min(values), max(values)
