"""repro — a reproduction of *Understanding Energy Efficiency in IoT App
Executions* (ICDCS 2019).

The library simulates a commodity IoT hub (Raspberry Pi 3B class CPU +
ESP8266 class MCU + Table I sensors), runs real implementations of the
paper's eleven workloads on it, and evaluates the paper's energy
optimizations — Batching, COM, BEAM and BCOM.

Quickstart::

    from repro import run_apps

    baseline = run_apps(["A2"], "baseline")   # the step counter
    batching = run_apps(["A2"], "batching")
    com = run_apps(["A2"], "com")
    print(batching.energy.savings_vs(baseline.energy))   # ~0.55
    print(com.energy.savings_vs(baseline.energy))        # ~0.88
"""

from .apps import all_ids, create_app, light_weight_ids
from .calibration import Calibration, default_calibration
from .core import (
    RunResult,
    Scenario,
    ScenarioEngine,
    ScenarioRunner,
    Scheme,
    SchemeExecutor,
    check_offloadable,
    compare_schemes,
    register_scheme,
    run_apps,
    run_scenario,
    savings_table,
)
from .energy import EnergyReport, PowerMonitor
from .hw import IoTHub, Routine

__version__ = "1.0.0"

__all__ = [
    "Calibration",
    "EnergyReport",
    "IoTHub",
    "PowerMonitor",
    "Routine",
    "RunResult",
    "Scenario",
    "ScenarioEngine",
    "ScenarioRunner",
    "Scheme",
    "SchemeExecutor",
    "__version__",
    "all_ids",
    "check_offloadable",
    "compare_schemes",
    "create_app",
    "default_calibration",
    "light_weight_ids",
    "register_scheme",
    "run_apps",
    "run_scenario",
    "savings_table",
]
