"""Observability: span/counter instrumentation for the simulator itself.

The paper's method is a visibility argument — oprofile plus a 100 ns
Monsoon monitor showing *who is awake and why*.  This package gives the
reproduction the same visibility into its own machinery: the kernel, the
scheme executors and the :class:`~repro.core.engine.ScenarioEngine` emit
spans and counters through a :class:`Recorder`, and the exporters render
them as a text summary, JSONL, or a Chrome ``trace_event`` file that
``chrome://tracing`` / Perfetto can open.

Two invariants hold (see ``docs/observability.md``):

* **Zero-cost when off** — the default :data:`NULL_RECORDER` is a no-op
  whose methods allocate nothing; every hot-path call site guards on
  ``recorder.enabled`` so an uninstrumented run does no extra work and
  golden energy results are bit-identical either way.
* **Deterministic content** — simulation-side spans carry *virtual*
  timestamps only; wall-clock measurements (engine throughput, worker
  times) live on a separate ``wall`` track and in
  :class:`EngineMetrics`, so exports of the ``sim`` track are
  reproducible byte for byte.
"""

from .export import (
    TRACE_SCHEMA_VERSION,
    chrome_trace_events,
    read_jsonl,
    render_summary,
    write_chrome_trace,
    write_jsonl,
)
from .metrics import EngineMetrics, Metrics, SpanStat
from .recorder import NULL_RECORDER, NullRecorder, Span, TraceRecorder
from .stream import SNAPSHOT_SCHEMA_VERSION, SnapshotStreamer, ndjson_line

__all__ = [
    "EngineMetrics",
    "Metrics",
    "NULL_RECORDER",
    "NullRecorder",
    "SNAPSHOT_SCHEMA_VERSION",
    "SnapshotStreamer",
    "Span",
    "SpanStat",
    "TRACE_SCHEMA_VERSION",
    "TraceRecorder",
    "chrome_trace_events",
    "ndjson_line",
    "read_jsonl",
    "render_summary",
    "write_chrome_trace",
    "write_jsonl",
]
