"""Aggregate views: span statistics and the engine's throughput metrics.

:class:`Metrics` condenses a :class:`~repro.obs.recorder.TraceRecorder`
into per-category span statistics plus the raw counters and gauges —
the snapshot the benchmarks commit as ``BENCH_sim_throughput.json``.
:class:`EngineMetrics` is the :class:`~repro.core.engine.ScenarioEngine`
side: cache traffic, fingerprint cost and scenarios/second.  Everything
wall-clock lives here (or on the ``wall`` span track), never in the
deterministic simulation spans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from ..units import to_ms
from .recorder import SIM_TRACK, TraceRecorder


@dataclass(frozen=True)
class SpanStat:
    """Count and accumulated duration of one span group."""

    count: int
    total_s: float

    @property
    def mean_s(self) -> float:
        """Average span duration in seconds."""
        return self.total_s / self.count if self.count else 0.0


class Metrics:
    """Immutable aggregate of one recorder's spans, counters and gauges."""

    def __init__(
        self,
        counters: Dict[str, int],
        gauges: Dict[str, float],
        by_cat: Dict[str, SpanStat],
        by_name: Dict[Tuple[str, str], SpanStat],
    ) -> None:
        self.counters = dict(counters)
        self.gauges = dict(gauges)
        self.by_cat = dict(by_cat)
        self.by_name = dict(by_name)

    @classmethod
    def from_recorder(
        cls, recorder: TraceRecorder, track: str = SIM_TRACK
    ) -> "Metrics":
        """Aggregate one track of a recorder into span statistics."""
        counts: Dict[Tuple[str, str], int] = {}
        totals: Dict[Tuple[str, str], float] = {}
        for span in recorder.spans:
            if span.track != track:
                continue
            key = (span.cat, span.name)
            counts[key] = counts.get(key, 0) + 1
            totals[key] = totals.get(key, 0.0) + span.duration_s
        by_name = {
            key: SpanStat(counts[key], totals[key]) for key in counts
        }
        cat_counts: Dict[str, int] = {}
        cat_totals: Dict[str, float] = {}
        for (cat, _name), stat in by_name.items():
            cat_counts[cat] = cat_counts.get(cat, 0) + stat.count
            cat_totals[cat] = cat_totals.get(cat, 0.0) + stat.total_s
        by_cat = {
            cat: SpanStat(cat_counts[cat], cat_totals[cat])
            for cat in cat_counts
        }
        return cls(recorder.counters, recorder.gauges, by_cat, by_name)

    def snapshot(self) -> Dict[str, Any]:
        """Plain, JSON-able, deterministically ordered dict of everything."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "spans": {
                cat: {
                    "count": stat.count,
                    "total_s": stat.total_s,
                    "by_name": {
                        name: {
                            "count": inner.count,
                            "total_s": inner.total_s,
                        }
                        for (span_cat, name), inner in sorted(
                            self.by_name.items()
                        )
                        if span_cat == cat
                    },
                }
                for cat, stat in sorted(self.by_cat.items())
            },
        }


@dataclass
class EngineMetrics:
    """Wall-clock-side instrumentation of one :class:`ScenarioEngine`.

    All fields measure *host* behavior (how fast the engine chews
    through scenarios), never simulated quantities — keep them out of
    anything that must be deterministic.
    """

    cache_hits: int = 0
    cache_misses: int = 0
    #: Of ``cache_hits``, how many the in-memory LRU tier served.
    cache_memory_hits: int = 0
    #: Of ``cache_hits``, how many came off disk (then got promoted).
    cache_disk_hits: int = 0
    #: Grid points served by fanning out another point's simulation
    #: (permutation-equivalent scenarios deduplicated pre-execution).
    dedup_hits: int = 0
    #: Name of the execution backend the engine dispatched through.
    backend_name: str = ""
    #: Workers/processes/connections the backend brought up
    #: (1 == perfect reuse for the process pool).
    backend_spawns: int = 0
    #: Chunks dispatched to the backend (each one round-trip).
    backend_dispatches: int = 0
    #: Individual scenarios shipped inside those chunks.
    backend_tasks: int = 0
    #: Chunks re-dispatched after a lost worker or timed-out reply
    #: (only multi-host backends can make this non-zero).
    backend_retries: int = 0
    #: Legacy alias of ``backend_spawns`` (pre-backend dashboards).
    pool_spawns: int = 0
    #: Legacy alias of ``backend_dispatches``.
    pool_dispatches: int = 0
    #: Legacy alias of ``backend_tasks``.
    pool_tasks: int = 0
    #: Scenarios actually simulated (cache and dedup hits excluded).
    scenarios_run: int = 0
    #: Closed-form evaluations by the analytic tier (cache hits excluded).
    analytic_evals: int = 0
    #: Grid points ``fidelity="auto"`` selected as the frontier (per-app-set
    #: scheme winners plus within-band near-ties).
    frontier_points: int = 0
    #: Grid points ``fidelity="auto"`` sent to the DES: the frontier plus
    #: every point outside the analytic tier's envelope.
    des_confirmations: int = 0
    #: Host seconds spent evaluating closed-form models.
    analytic_wall_s: float = 0.0
    #: Host seconds spent computing scenario fingerprints.
    fingerprint_wall_s: float = 0.0
    #: Host seconds spent inside run()/run_batch() (includes cache I/O).
    run_wall_s: float = 0.0
    #: Host seconds of simulation per pool worker, in first-seen order
    #: (``w0``, ``w1``, ...); serial runs accumulate under ``w0``.
    worker_wall_s: Dict[str, float] = field(default_factory=dict)

    def note_worker(self, worker: str, elapsed_s: float) -> None:
        """Accumulate one scenario's wall time under a worker label."""
        self.worker_wall_s[worker] = (
            self.worker_wall_s.get(worker, 0.0) + elapsed_s
        )

    @property
    def scenarios_per_sec(self) -> float:
        """Simulated scenarios per host second of engine time."""
        if self.run_wall_s <= 0.0:
            return 0.0
        return self.scenarios_run / self.run_wall_s

    def snapshot(self) -> Dict[str, Any]:
        """Plain JSON-able dict (all values wall-clock, informational)."""
        return {
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_memory_hits": self.cache_memory_hits,
            "cache_disk_hits": self.cache_disk_hits,
            "dedup_hits": self.dedup_hits,
            "backend_name": self.backend_name,
            "backend_spawns": self.backend_spawns,
            "backend_dispatches": self.backend_dispatches,
            "backend_tasks": self.backend_tasks,
            "backend_retries": self.backend_retries,
            "pool_spawns": self.pool_spawns,
            "pool_dispatches": self.pool_dispatches,
            "pool_tasks": self.pool_tasks,
            "scenarios_run": self.scenarios_run,
            "analytic_evals": self.analytic_evals,
            "frontier_points": self.frontier_points,
            "des_confirmations": self.des_confirmations,
            "analytic_wall_s": self.analytic_wall_s,
            "fingerprint_wall_s": self.fingerprint_wall_s,
            "run_wall_s": self.run_wall_s,
            "scenarios_per_sec": self.scenarios_per_sec,
            "worker_wall_s": dict(sorted(self.worker_wall_s.items())),
        }

    def summary_lines(self) -> List[str]:
        """Human-readable rows for the text reporters."""
        lines = [
            f"cache: {self.cache_hits} hit(s), "
            f"{self.cache_misses} miss(es)"
            + (
                f" [memory {self.cache_memory_hits}, "
                f"disk {self.cache_disk_hits}]"
                if self.cache_hits
                else ""
            ),
            f"simulated {self.scenarios_run} scenario(s) in "
            f"{self.run_wall_s:.3f} s wall "
            f"({self.scenarios_per_sec:.2f}/s), fingerprinting "
            f"{to_ms(self.fingerprint_wall_s):.2f} ms",
        ]
        if self.dedup_hits:
            lines.append(
                f"dedup: {self.dedup_hits} point(s) fanned out from "
                "equivalent simulations"
            )
        if self.analytic_evals:
            line = (
                f"analytic: {self.analytic_evals} closed-form eval(s) in "
                f"{to_ms(self.analytic_wall_s):.2f} ms"
            )
            if self.des_confirmations:
                line += (
                    f"; auto confirmed {self.des_confirmations} point(s) "
                    f"via DES ({self.frontier_points} frontier)"
                )
            lines.append(line)
        if self.backend_dispatches:
            name = self.backend_name or "?"
            line = (
                f"backend[{name}]: {self.backend_spawns} spawn(s), "
                f"{self.backend_dispatches} dispatch(es), "
                f"{self.backend_tasks} task(s)"
            )
            if self.backend_retries:
                line += f", {self.backend_retries} retried chunk(s)"
            lines.append(line)
        if self.worker_wall_s:
            shares = "  ".join(
                f"{worker}={seconds:.3f}s"
                for worker, seconds in sorted(self.worker_wall_s.items())
            )
            lines.append(f"worker wall time: {shares}")
        return lines
