"""Streaming snapshot export: incremental NDJSON of live counters.

The file exporters in :mod:`repro.obs.export` render a *finished*
recorder; a long-running service needs the opposite — periodic
snapshots of counters and span statistics **while** work is in flight,
cheap enough to poll every few hundred milliseconds and quiet when
nothing changed.  :class:`SnapshotStreamer` wraps any zero-argument
snapshot source (an :meth:`~repro.obs.metrics.EngineMetrics.snapshot`,
a :meth:`~repro.obs.metrics.Metrics.snapshot`, or any JSON-able dict
factory) and emits a versioned record only when the snapshot differs
from the previous poll.  ``repro serve`` streams these records to
clients as NDJSON (``GET /jobs/{id}/events``).
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, Optional

#: Bump when the streamed record envelope changes shape.
SNAPSHOT_SCHEMA_VERSION = 1


def ndjson_line(record: Dict[str, Any]) -> str:
    """One NDJSON line (sorted keys, no trailing newline) for a record."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class SnapshotStreamer:
    """Change-detecting poller over a snapshot source.

    ``source`` is called on every :meth:`poll`; when its (JSON-canonical)
    value differs from the previous poll, a record envelope is returned::

        {"record": "snapshot", "schema": 1, "seq": 3,
         "kind": "engine", "data": {...}}

    Unchanged snapshots return ``None`` so callers can poll on a timer
    without flooding their stream.  ``seq`` increases by one per emitted
    record; the first poll always emits (sequence 0 establishes the
    baseline for followers).
    """

    def __init__(
        self,
        source: Callable[[], Dict[str, Any]],
        kind: str = "engine",
    ) -> None:
        self._source = source
        self.kind = kind
        self.seq = 0
        self._last: Optional[str] = None

    def poll(self) -> Optional[Dict[str, Any]]:
        """The next snapshot record, or ``None`` when nothing changed."""
        data = self._source()
        canonical = json.dumps(data, sort_keys=True, separators=(",", ":"))
        if canonical == self._last:
            return None
        self._last = canonical
        record = {
            "record": "snapshot",
            "schema": SNAPSHOT_SCHEMA_VERSION,
            "seq": self.seq,
            "kind": self.kind,
            "data": json.loads(canonical),
        }
        self.seq += 1
        return record
