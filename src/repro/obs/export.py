"""Exporters: text summary, JSONL and Chrome ``trace_event`` output.

Three renderings of one :class:`~repro.obs.recorder.TraceRecorder`:

* :func:`render_summary` — the ``repro profile`` terminal view:
  counters, gauges and a per-phase span table.
* :func:`write_jsonl` / :func:`read_jsonl` — one self-describing JSON
  record per line (schema pinned by :data:`TRACE_SCHEMA_VERSION`), easy
  to grep and to post-process.
* :func:`write_chrome_trace` — the Trace Event Format understood by
  ``chrome://tracing`` and https://ui.perfetto.dev: complete (``"X"``)
  events in microseconds of *virtual* time, one lane per span category.

Only the deterministic ``sim`` track reaches the Chrome export; wall
spans appear in JSONL with ``"track": "wall"`` so consumers can filter.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, Iterable, List, Optional

from ..errors import ReproError
from ..units import to_ms, to_us, us
from .metrics import EngineMetrics, Metrics
from .recorder import SIM_TRACK, Span, TraceRecorder

#: Bump when the JSONL record layout changes.
TRACE_SCHEMA_VERSION = 1


class TraceFormatError(ReproError):
    """A trace file/stream does not match the expected schema."""


# ----------------------------------------------------------------------
# text summary
# ----------------------------------------------------------------------
def render_summary(
    recorder: TraceRecorder,
    engine_metrics: Optional[EngineMetrics] = None,
) -> str:
    """Human-readable profile: counters, gauges, per-phase span table."""
    metrics = Metrics.from_recorder(recorder)
    lines: List[str] = ["instrumentation summary"]
    for name, value in sorted(metrics.counters.items()):
        lines.append(f"  counter {name:<28}{value:>12}")
    for name, value in sorted(metrics.gauges.items()):
        lines.append(f"  gauge   {name:<28}{value:>12g}")
    if metrics.by_name:
        lines.append(
            f"  {'span':<30}{'count':>8}{'total ms':>12}{'mean ms':>10}"
        )
        rows = sorted(
            metrics.by_name.items(),
            key=lambda item: (-item[1].total_s, item[0]),
        )
        for (cat, name), stat in rows:
            lines.append(
                f"  {cat + ':' + name:<30}{stat.count:>8}"
                f"{to_ms(stat.total_s):>12.3f}"
                f"{to_ms(stat.mean_s):>10.4f}"
            )
    wall_spans = [
        span for span in recorder.spans if span.track != SIM_TRACK
    ]
    if wall_spans:
        lines.append(f"  ({len(wall_spans)} wall-clock span(s) not shown)")
    if engine_metrics is not None:
        lines.append("engine")
        lines.extend(f"  {row}" for row in engine_metrics.summary_lines())
    return "\n".join(lines)


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def write_jsonl(recorder: TraceRecorder, handle: IO[str]) -> int:
    """Write every span/counter/gauge as one JSON record per line.

    Returns the number of records written (including the header).  The
    record order is deterministic: header, spans in recording order,
    then counters and gauges sorted by name.
    """
    records: List[Dict[str, Any]] = [
        {"type": "header", "version": TRACE_SCHEMA_VERSION}
    ]
    for span in recorder.spans:
        records.append(
            {
                "type": "span",
                "cat": span.cat,
                "name": span.name,
                "track": span.track,
                "t0_us": to_us(span.t0_s),
                "t1_us": to_us(span.t1_s),
            }
        )
    for name, count in sorted(recorder.counters.items()):
        records.append({"type": "counter", "name": name, "value": count})
    for name, value in sorted(recorder.gauges.items()):
        records.append({"type": "gauge", "name": name, "value": value})
    for record in records:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    return len(records)


def read_jsonl(lines: Iterable[str]) -> TraceRecorder:
    """Rebuild a :class:`TraceRecorder` from :func:`write_jsonl` output.

    Raises :class:`TraceFormatError` on a missing/mismatched header or a
    malformed record — schema drift should fail loudly, not decode into
    garbage.
    """
    recorder = TraceRecorder()
    saw_header = False
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(
                f"line {lineno}: not JSON ({exc.msg})"
            ) from exc
        kind = record.get("type")
        if not saw_header:
            if kind != "header" or record.get("version") != (
                TRACE_SCHEMA_VERSION
            ):
                raise TraceFormatError(
                    f"line {lineno}: expected header with version "
                    f"{TRACE_SCHEMA_VERSION}, got {record!r}"
                )
            saw_header = True
            continue
        try:
            if kind == "span":
                recorder.span(
                    record["cat"],
                    record["name"],
                    us_field(record, "t0_us"),
                    us_field(record, "t1_us"),
                    track=record["track"],
                )
            elif kind == "counter":
                recorder.count(record["name"], record["value"])
            elif kind == "gauge":
                recorder.gauge_max(record["name"], record["value"])
            else:
                raise TraceFormatError(
                    f"line {lineno}: unknown record type {kind!r}"
                )
        except KeyError as exc:
            raise TraceFormatError(
                f"line {lineno}: record missing field {exc}"
            ) from exc
    if not saw_header:
        raise TraceFormatError("empty trace: no header record")
    return recorder


def us_field(record: Dict[str, Any], key: str) -> float:
    """Read a microsecond field back into base seconds."""
    return us(float(record[key]))


# ----------------------------------------------------------------------
# Chrome trace_event
# ----------------------------------------------------------------------
def chrome_trace_events(recorder: TraceRecorder) -> List[Dict[str, Any]]:
    """Trace Event Format dicts for the deterministic ``sim`` track.

    One ``tid`` lane per span category (named via ``thread_name``
    metadata) so a batching window reads as parallel sense/transfer/
    compute tracks in the viewer.  Timestamps are virtual microseconds.
    """
    spans = recorder.sim_spans()
    cats = sorted({span.cat for span in spans})
    tids = {cat: index for index, cat in enumerate(cats)}
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": "repro simulation (virtual time)"},
        }
    ]
    for cat in cats:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tids[cat],
                "args": {"name": cat},
            }
        )
    timed = [
        {
            "name": span.name,
            "cat": span.cat,
            "ph": "X",
            "ts": to_us(span.t0_s),
            "dur": to_us(span.duration_s),
            "pid": 0,
            "tid": tids[span.cat],
        }
        for span in spans
    ]
    timed.sort(key=lambda event: (event["ts"], event["tid"], event["name"]))
    events.extend(timed)
    return events


def write_chrome_trace(recorder: TraceRecorder, handle: IO[str]) -> int:
    """Write a ``chrome://tracing`` / Perfetto-loadable JSON document.

    Returns the number of trace events written (metadata included).
    """
    events = chrome_trace_events(recorder)
    document = {"traceEvents": events, "displayTimeUnit": "ms"}
    json.dump(document, handle, sort_keys=True)
    handle.write("\n")
    return len(events)
