"""Recorders: the no-op default and the collecting trace recorder.

Instrumented code never branches on recorder *type*; it checks the
``enabled`` flag and only then pays for timestamps, f-string labels and
the recording call::

    obs = self.obs
    if obs.enabled:
        t0 = sim.now
    value = yield from do_work()
    if obs.enabled:
        obs.span("sense", key, t0, sim.now)

With the default :data:`NULL_RECORDER` that is one attribute read and a
branch — no allocation, no call.  The no-op methods still exist (and
allocate nothing) so un-guarded cold-path calls are also safe.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple

#: Track for spans stamped with the kernel's virtual clock (deterministic).
SIM_TRACK = "sim"
#: Track for spans stamped with the host wall clock (informational only).
WALL_TRACK = "wall"


class Span(NamedTuple):
    """One completed operation: category, label and a closed time range.

    ``track`` says which clock stamped the range: :data:`SIM_TRACK`
    spans use virtual seconds and are deterministic; :data:`WALL_TRACK`
    spans use host seconds and are excluded from deterministic exports.
    (A NamedTuple, not a dataclass: thousands are created per run and
    tuple construction is measurably cheaper.)
    """

    cat: str
    name: str
    t0_s: float
    t1_s: float
    track: str = SIM_TRACK

    @property
    def duration_s(self) -> float:
        """Span length in seconds (of whichever clock stamped it)."""
        return self.t1_s - self.t0_s


class NullRecorder:
    """The do-nothing recorder: default everywhere, zero-cost on hot paths.

    Also serves as the recorder interface: :class:`TraceRecorder`
    subclasses it and overrides every hook.  ``enabled`` is a class
    attribute so the hot-path guard is a plain attribute load.
    """

    __slots__ = ()

    #: Hot paths check this before building labels or reading clocks.
    enabled = False

    def span(
        self,
        cat: str,
        name: str,
        t0_s: float,
        t1_s: float,
        track: str = SIM_TRACK,
    ) -> None:
        """Record a completed span (no-op)."""

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to a named counter (no-op)."""

    def gauge_max(self, name: str, value: float) -> None:
        """Raise a named high-water-mark gauge to ``value`` (no-op)."""


#: Shared no-op instance; the default for every instrumented component.
NULL_RECORDER = NullRecorder()


class TraceRecorder(NullRecorder):
    """Collects spans, counters and high-water gauges in memory.

    Append-only and single-threaded by construction (the simulator is
    single-threaded); aggregate views come from
    :meth:`repro.obs.metrics.Metrics.from_recorder`.

    Spans are stored as plain tuples and wrapped into :class:`Span`
    only when read: ``Span.__new__`` costs ~7x a bare tuple append, and
    the hot path runs once per sensor sample while :attr:`spans` is
    read a handful of times per run, after the simulation finishes.
    """

    __slots__ = ("_spans", "counters", "gauges")

    enabled = True

    def __init__(self) -> None:
        self._spans: List[tuple] = []
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}

    def span(
        self,
        cat: str,
        name: str,
        t0_s: float,
        t1_s: float,
        track: str = SIM_TRACK,
    ) -> None:
        """Append one completed span."""
        self._spans.append((cat, name, t0_s, t1_s, track))

    @property
    def spans(self) -> List[Span]:
        """Recorded spans in append order (materialized on each read)."""
        return [Span._make(raw) for raw in self._spans]

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the named counter (created at zero)."""
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge_max(self, name: str, value: float) -> None:
        """Keep the maximum ever reported for the named gauge."""
        current = self.gauges.get(name)
        if current is None or value > current:
            self.gauges[name] = value

    def sim_spans(self) -> List[Span]:
        """Only the deterministic virtual-time spans."""
        return [span for span in self.spans if span.track == SIM_TRACK]
