"""Timeline recording: power-state changes and annotations.

The :class:`TimelineRecorder` is the substrate for the paper's Figure 5
(power states of the MCU and CPU over time) and for the energy integration in
:mod:`repro.energy.meter`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..units import to_ms


@dataclass(frozen=True)
class StateChange:
    """One component's power-state change at an instant."""

    time: float
    component: str
    state: str
    power_w: float
    routine: str

    def __str__(self) -> str:
        return (
            f"t={to_ms(self.time):10.3f}ms {self.component:<10} "
            f"{self.state:<12} {self.power_w:6.3f}W [{self.routine}]"
        )


class TimelineRecorder:
    """Append-only log of state changes, queryable per component.

    Changes must be appended in non-decreasing time order per component (the
    kernel guarantees this because callbacks run in time order).
    """

    def __init__(self) -> None:
        self._changes: Dict[str, List[StateChange]] = {}

    def record(self, change: StateChange) -> None:
        """Append a state change for its component."""
        history = self._changes.setdefault(change.component, [])
        if history and change.time < history[-1].time:
            raise ValueError(
                f"out-of-order state change for {change.component}: "
                f"{change.time} < {history[-1].time}"
            )
        history.append(change)

    @property
    def components(self) -> Tuple[str, ...]:
        """Names of all components that have recorded changes."""
        return tuple(sorted(self._changes))

    def changes(self, component: str) -> Tuple[StateChange, ...]:
        """All recorded changes for one component, in time order."""
        return tuple(self._changes.get(component, ()))

    def last_change(self, component: str) -> Optional[StateChange]:
        """The most recent change for ``component`` in O(1) (or None).

        Snapshot-style callers (the steady-state detector) read this at
        cycle boundaries instead of paying the O(n) copy of
        :meth:`changes`.
        """
        history = self._changes.get(component)
        return history[-1] if history else None

    def change_count(self, component: str) -> int:
        """How many changes ``component`` has recorded (an O(1) read)."""
        return len(self._changes.get(component, ()))

    def intervals(
        self, component: str, end_time: float
    ) -> Iterator[Tuple[StateChange, float]]:
        """Yield ``(change, duration)`` pairs for one component.

        The final interval is closed at ``end_time``.  Zero-length intervals
        (two changes at the same instant) are skipped.
        """
        history = self._changes.get(component, [])
        for current, following in zip(history, history[1:]):
            duration = following.time - current.time
            if duration > 0:
                yield current, duration
        if history:
            last = history[-1]
            tail = end_time - last.time
            if tail > 0:
                yield last, tail

    def state_at(self, component: str, time: float) -> Optional[StateChange]:
        """The change in effect at ``time`` for ``component`` (or None)."""
        latest = None
        for change in self._changes.get(component, []):
            if change.time <= time:
                latest = change
            else:
                break
        return latest

    def time_in_state(self, component: str, state: str, end_time: float) -> float:
        """Total time the component spent in ``state`` up to ``end_time``."""
        return sum(
            duration
            for change, duration in self.intervals(component, end_time)
            if change.state == state
        )

    def render_ascii(
        self,
        component: str,
        end_time: float,
        width: int = 80,
        state_chars: Optional[Dict[str, str]] = None,
    ) -> str:
        """ASCII strip chart of one component's states (Figure 5 style)."""
        chars = state_chars or {}
        cells = []
        for column in range(width):
            time = end_time * (column + 0.5) / width
            change = self.state_at(component, time)
            if change is None:
                cells.append(" ")
            else:
                cells.append(chars.get(change.state, change.state[0].upper()))
        return "".join(cells)
