"""Discrete-event simulation kernel.

A small, dependency-free DES: a :class:`~repro.sim.kernel.Simulator` owns a
virtual clock and an event heap; generator-based
:class:`~repro.sim.process.Process` coroutines ``yield`` :class:`Delay` /
:class:`Wait` commands to advance time or block on :class:`Signal` objects.

The hardware models in :mod:`repro.hw` are plain objects driven by these
processes; the kernel knows nothing about power or energy.
:mod:`~repro.sim.steadystate` adds cycle-boundary fingerprinting for the
fast-forward engine layered on top in :mod:`repro.core.fastforward`.
"""

from .events import Event, EventQueue
from .kernel import Simulator
from .process import Delay, Join, Process, Signal, Wait
from .steadystate import BoundarySnapshot, capture_snapshot, hyperperiod
from .trace import StateChange, TimelineRecorder

__all__ = [
    "BoundarySnapshot",
    "Delay",
    "Event",
    "EventQueue",
    "Join",
    "Process",
    "Signal",
    "Simulator",
    "StateChange",
    "TimelineRecorder",
    "Wait",
    "capture_snapshot",
    "hyperperiod",
]
