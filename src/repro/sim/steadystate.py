"""Steady-state detection primitives for periodic workloads.

Strictly periodic scenarios (fixed sensor rates, fixed window sizes)
repeat one *hyperperiod* of behavior forever after a short warm-up.
This module holds the kernel-level machinery the fast-forward engine in
:mod:`repro.core.fastforward` is built on:

* :func:`hyperperiod` — exact LCM of a set of float periods,
* :class:`BoundarySnapshot` / :func:`capture_snapshot` — a normalized
  fingerprint of the simulator's live state at a cycle boundary
  (component power states, pending events relative to the boundary,
  blocked processes), comparable across boundaries,
* :func:`dicts_close` — tolerant comparison of per-key float deltas.

Everything here is core-agnostic: it sees only the simulator, the
timeline recorder and plain names.  Scheme-aware name normalization
(window-indexed signals and the like) is injected by the caller.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Callable, Dict, List, NamedTuple, Optional, Sequence, Tuple

from .kernel import Simulator
from .trace import TimelineRecorder

#: Decimal places kept when relativizing event times to a boundary.
#: Coarse enough to absorb float noise from re-based window starts
#: (~1e-13 relative), fine enough that genuine scheduling drift — the
#: signature of an aperiodic combo — still breaks the match.
REL_TIME_DECIMALS = 12


def hyperperiod(periods: Sequence[float]) -> Optional[float]:
    """Least common multiple of the given periods, as a float.

    Periods are converted to exact rationals first so e.g. ``lcm(1.0,
    5.0) == 5.0`` and ``lcm(0.5, 0.75) == 1.5`` come out exact instead
    of accumulating float error.  Returns ``None`` for an empty set or
    any non-positive period (no meaningful cycle exists).
    """
    fractions: List[Fraction] = []
    for period in periods:
        if not period > 0:
            return None
        fractions.append(Fraction(period).limit_denominator(10**9))
    if not fractions:
        return None
    numerator = fractions[0].numerator
    denominator = fractions[0].denominator
    for fraction in fractions[1:]:
        numerator = (
            numerator * fraction.numerator
            // gcd(numerator, fraction.numerator)
        )
        denominator = gcd(denominator, fraction.denominator)
    return numerator / denominator


#: Maps a raw name (process, signal, component) to its cycle-relative
#: form; the identity function when names carry no absolute indices.
Normalizer = Callable[[str], str]


def _identity(name: str) -> str:
    return name


def describe_callback(callback: Callable, normalize: Normalizer) -> str:
    """Deterministic, address-free label for a scheduled callback.

    Bound methods are labeled by their owner's ``name`` (or type) plus
    the method name.  Closures — the kernel schedules process resumes as
    lambdas closing over the :class:`~repro.sim.process.Process` — are
    labeled by their qualname plus the normalized ``name`` of every
    named object in their cells, so two boundaries one cycle apart
    produce identical labels for equivalent pending work.
    """
    bound = getattr(callback, "__self__", None)
    if bound is not None:
        owner = getattr(bound, "name", None)
        if not isinstance(owner, str):
            owner = type(bound).__name__
        return f"{normalize(owner)}.{callback.__name__}"
    parts: List[str] = []
    for cell in getattr(callback, "__closure__", None) or ():
        try:
            content = cell.cell_contents
        except ValueError:  # pragma: no cover - empty cell
            continue
        name = getattr(content, "name", None)
        if isinstance(name, str):
            parts.append(normalize(name))
        elif isinstance(content, (bool, int, float, str, type(None))):
            parts.append(repr(content))
        else:
            parts.append(type(content).__name__)
    label = getattr(callback, "__qualname__", type(callback).__name__)
    return f"{label}({','.join(sorted(parts))})"


class BoundarySnapshot(NamedTuple):
    """Normalized system state at one cycle boundary.

    Two snapshots taken one hyperperiod apart compare equal exactly when
    the simulation's live state repeats: same component power states and
    routine tags, same pending events at the same boundary-relative
    offsets with equivalent callbacks, same set of blocked processes on
    equivalent signals.
    """

    boundary_s: float
    components: Tuple[Tuple[str, str, str], ...]
    queue: Tuple[Tuple[float, str], ...]
    waiting: Tuple[Tuple[str, str], ...]

    def matches(self, other: "BoundarySnapshot") -> bool:
        """Whether the boundary-relative state equals ``other``'s."""
        return (
            self.components == other.components
            and self.queue == other.queue
            and self.waiting == other.waiting
        )


def capture_snapshot(
    sim: Simulator,
    recorder: TimelineRecorder,
    boundary_s: float,
    normalize: Optional[Normalizer] = None,
) -> BoundarySnapshot:
    """Fingerprint the simulator's live state at ``boundary_s``.

    Must be called between :meth:`~repro.sim.kernel.Simulator.run`
    segments (the kernel is not running); it only reads state, so
    segmented execution stays bit-identical to an uninterrupted run.
    """
    normalize = normalize or _identity
    components = tuple(
        (component, change.state, change.routine)
        for component in recorder.components
        for change in (recorder.last_change(component),)
        if change is not None
    )
    queue = tuple(
        (
            round(event.time - boundary_s, REL_TIME_DECIMALS),
            describe_callback(event.callback, normalize),
        )
        for event in sim.iter_pending()
    )
    waiting = tuple(
        sorted(
            (
                normalize(process.name),
                normalize(process.waiting_on.name)
                if process.waiting_on is not None
                else "",
            )
            for process in sim.processes
            if not process.finished
        )
    )
    return BoundarySnapshot(boundary_s, components, queue, waiting)


def dicts_close(
    left: Dict,
    right: Dict,
    rtol: float = 1e-12,
    atol: float = 1e-15,
) -> bool:
    """Whether two per-key float dicts agree within tolerance.

    Key sets must match exactly; values compare with the usual
    ``|a - b| <= atol + rtol * max(|a|, |b|)`` criterion.
    """
    if left.keys() != right.keys():
        return False
    for key, value in left.items():
        other = right[key]
        if abs(value - other) > atol + rtol * max(abs(value), abs(other)):
            return False
    return True
