"""Generator-based processes and their synchronization primitives.

A process is a generator that yields *commands*:

* ``yield Delay(dt)``      — resume after ``dt`` seconds of virtual time.
* ``yield Wait(signal)``   — block until ``signal.fire(payload)``; the
  ``yield`` expression evaluates to the payload.
* ``yield Join(process)``  — block until another process finishes; evaluates
  to that process's return value.

Processes may also ``return`` a value, retrievable via :attr:`Process.result`
once :attr:`Process.finished` is true.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, List, Optional, Tuple

from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Simulator


class Delay:
    """Command: suspend the process for ``duration`` seconds."""

    __slots__ = ("duration",)

    def __init__(self, duration: float):
        if duration < 0:
            raise SimulationError(f"negative delay: {duration!r}")
        self.duration = duration


class Signal:
    """A broadcast wake-up channel.

    Processes block on it with ``yield Wait(signal)``; ``fire(payload)``
    wakes every current waiter and hands each the payload.  Waiters that
    subscribe after a fire do not see past payloads (it is a pure event, not
    a mailbox — see :class:`repro.hw.interrupt.InterruptController` for a
    queued flavour built on top).
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._waiters: List["Process"] = []
        self.fire_count = 0

    def add_waiter(self, process: "Process") -> None:
        """Enqueue a process to be woken by the next :meth:`fire`."""
        self._waiters.append(process)

    def remove_waiter(self, process: "Process") -> None:
        """Forget a queued waiter (no-op if it is not waiting here)."""
        if process in self._waiters:
            self._waiters.remove(process)

    def fire(self, payload: Any = None) -> int:
        """Wake all waiters; returns how many processes were woken."""
        self.fire_count += 1
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            process.wake(payload)
        return len(waiters)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Signal {self.name!r} waiters={len(self._waiters)}>"


class Wait:
    """Command: block until the given :class:`Signal` fires."""

    __slots__ = ("signal",)

    def __init__(self, signal: Signal):
        self.signal = signal


class Join:
    """Command: block until ``process`` finishes; evaluates to its result."""

    __slots__ = ("process",)

    def __init__(self, process: "Process"):
        self.process = process


class Process:
    """Driver for one generator coroutine inside a :class:`Simulator`."""

    _ids = 0

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator[Any, Any, Any],
        name: Optional[str] = None,
    ):
        Process._ids += 1
        self.sim = sim
        self.generator = generator
        self.name = name or f"process-{Process._ids}"
        self.finished = False
        self.result: Any = None
        self.finish_time: Optional[float] = None
        self._completion = Signal(f"{self.name}.done")
        self._waiting_on: Optional[Signal] = None
        #: Counter label cached so waits don't rebuild the f-string.
        self._wait_label: Optional[str] = None

    @property
    def waiting_on(self) -> Optional[Signal]:
        """The signal this process is blocked on, if any."""
        return self._waiting_on

    def start(self) -> None:
        """Schedule the first step of the generator at the current time."""
        self.sim.schedule(0.0, lambda: self._advance(None))

    def wake(self, payload: Any = None) -> None:
        """Resume a process blocked on a signal, delivering ``payload``."""
        self._waiting_on = None
        self._advance(payload)

    def _advance(self, value: Any) -> None:
        if self.finished:
            raise SimulationError(f"{self.name} resumed after finishing")
        try:
            command = self.generator.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        self._dispatch(command)

    def _dispatch(self, command: Any) -> None:
        if isinstance(command, Delay):
            self.sim.schedule(command.duration, lambda: self._advance(None))
        elif isinstance(command, Wait):
            obs = self.sim.obs
            if obs.enabled:
                label = self._wait_label
                if label is None:
                    label = self._wait_label = f"sim.wait.{self.name}"
                obs.count(label)
            self._waiting_on = command.signal
            command.signal.add_waiter(self)
        elif isinstance(command, Join):
            target = command.process
            if target.finished:
                self.sim.schedule(0.0, lambda: self._advance(target.result))
            else:
                target._completion.add_waiter(self)
        else:
            raise SimulationError(
                f"{self.name} yielded unsupported command {command!r}"
            )

    def _finish(self, result: Any) -> None:
        self.finished = True
        self.result = result
        self.finish_time = self.sim.now
        self._completion.fire(result)

    def interrupt(self) -> None:
        """Abandon the process (used by failure-injection tests)."""
        if self.finished:
            return
        if self._waiting_on is not None:
            self._waiting_on.remove_waiter(self)
            self._waiting_on = None
        self.generator.close()
        self._finish(None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self.finished else "running"
        return f"<Process {self.name} {state}>"


def all_finished(processes: Tuple[Process, ...]) -> bool:
    """True when every process in the tuple has completed."""
    return all(process.finished for process in processes)
