"""The simulation kernel: virtual clock + event loop + process spawning."""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from ..errors import SchedulingError, SimulationError
from ..obs.recorder import NULL_RECORDER, NullRecorder
from .events import Event, EventQueue
from .process import Process


class Simulator:
    """Owns virtual time and executes events in order.

    Typical use::

        sim = Simulator()

        def blinker():
            while True:
                yield Delay(0.5)
                toggle_led()

        sim.spawn(blinker())
        sim.run(until=10.0)

    Pass ``obs=TraceRecorder()`` to collect kernel metrics (events
    dispatched, heap depth, per-process signal waits); the default
    :data:`~repro.obs.recorder.NULL_RECORDER` makes every hook a no-op.
    """

    def __init__(self, obs: Optional[NullRecorder] = None) -> None:
        self._now = 0.0
        self._queue = EventQueue()
        self._running = False
        self._processes: list[Process] = []
        #: Total events executed over the simulator's lifetime, across
        #: all :meth:`run` calls (segmented runs accumulate).
        self.events_executed = 0
        #: Instrumentation sink shared by the kernel and its processes.
        self.obs = obs if obs is not None else NULL_RECORDER

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of scheduled, non-cancelled events."""
        return len(self._queue)

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise SchedulingError(f"cannot schedule {delay:g}s in the past")
        return self._queue.push(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` at absolute virtual ``time``."""
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule at t={time:g} before now={self._now:g}"
            )
        return self._queue.push(time, callback)

    def spawn(
        self,
        generator: Generator[Any, Any, Any],
        name: Optional[str] = None,
    ) -> Process:
        """Start a generator-based process at the current time."""
        process = Process(self, generator, name=name)
        self._processes.append(process)
        process.start()
        return process

    def next_event_time(self) -> Optional[float]:
        """Time of the next scheduled event (used by sleep governors)."""
        return self._queue.peek_time()

    @property
    def processes(self) -> tuple:
        """Every process ever spawned, finished ones included."""
        return tuple(self._processes)

    def iter_pending(self) -> list:
        """Live (non-cancelled) events, soonest first, for inspection.

        O(n log n); meant for boundary snapshots and debugging, never the
        per-event hot path.
        """
        return sorted(
            (
                event
                for event in self._queue.raw_heap()
                if not event.cancelled
            ),
            key=lambda event: (event.time, event.seq),
        )

    def step(self) -> bool:
        """Execute the next event; return ``False`` if the queue was empty."""
        if not self._queue:
            return False
        event = self._queue.pop()
        if event.time < self._now:
            raise SimulationError("event queue returned an event in the past")
        self._now = event.time
        event.callback()
        return True

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> float:
        """Run until the queue drains or virtual time reaches ``until``.

        Returns the final virtual time.  ``max_events`` is a runaway guard; a
        well-formed scenario never approaches it.
        """
        if self._running:
            raise SimulationError("run() called re-entrantly")
        self._running = True
        obs = self.obs
        observing = obs.enabled
        started_at = self._now
        max_depth = 0
        heap = self._queue.raw_heap()
        try:
            executed = 0
            # One queue access per event: pop_due prunes cancelled
            # entries and pops the next live event in a single descent
            # (peek_time() followed by step()->pop() would walk the same
            # cancelled run twice).
            while True:
                event = self._queue.pop_due(until)
                if event is None:
                    if until is not None and self._queue:
                        # Live events remain beyond the horizon: park the
                        # clock at ``until`` exactly, as before.
                        self._now = until
                    break
                if observing:
                    # +1: the popped event itself, so the gauge matches
                    # the historical sample taken before each pop.
                    depth = len(heap) + 1
                    if depth > max_depth:
                        max_depth = depth
                if event.time < self._now:
                    raise SimulationError(
                        "event queue returned an event in the past"
                    )
                self._now = event.time
                event.callback()
                executed += 1
                if executed > max_events:
                    raise SimulationError(
                        f"exceeded {max_events} events; runaway simulation?"
                    )
        finally:
            self._running = False
            self.events_executed += executed
            if observing:
                obs.count("sim.events", executed)
                obs.gauge_max("sim.heap_depth", max_depth)
                obs.span("kernel", "run", started_at, self._now)
        return self._now
