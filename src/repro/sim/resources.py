"""FIFO resource locks for mutually-exclusive hardware (CPU core, MCU core).

Processes acquire a resource with ``yield from resource.acquire()`` and must
release it afterwards.  Ownership is handed over in FIFO order, which keeps
multi-app scenarios deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generator, Optional

from ..errors import SimulationError
from .process import Signal, Wait


class Resource:
    """A single-owner lock with FIFO hand-off."""

    def __init__(self, name: str = "resource") -> None:
        self.name = name
        self._owner: Optional[object] = None
        self._waiters: Deque[Signal] = deque()
        self.contention_count = 0

    @property
    def busy(self) -> bool:
        """Whether some process currently owns the resource."""
        return self._owner is not None

    @property
    def queue_length(self) -> int:
        """Number of processes waiting for the resource."""
        return len(self._waiters)

    def acquire(self, owner: object = None) -> Generator:
        """Generator: blocks until the caller owns the resource."""
        token = owner if owner is not None else object()
        if self._owner is None:
            self._owner = token
            return
        self.contention_count += 1
        gate = Signal(f"{self.name}.gate")
        self._waiters.append(gate)
        yield Wait(gate)
        # fire() below set _owner to this gate; claim it for the token.
        if self._owner is not gate:
            raise SimulationError(f"{self.name}: hand-off raced")
        self._owner = token

    def release(self) -> None:
        """Release the resource, handing it to the next waiter if any."""
        if self._owner is None:
            raise SimulationError(f"release of idle resource {self.name}")
        if self._waiters:
            gate = self._waiters.popleft()
            self._owner = gate
            gate.fire()
        else:
            self._owner = None
