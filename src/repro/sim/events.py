"""Event objects and the time-ordered event queue."""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional

from ..errors import SchedulingError

#: Below this raw heap size compaction is never worth the rebuild cost.
_COMPACT_MIN_HEAP = 64


class Event:
    """A callback scheduled at a point in virtual time.

    Events are ordered by ``(time, seq)``: the sequence number makes ordering
    of same-time events deterministic (FIFO in scheduling order), which keeps
    simulations reproducible.
    """

    __slots__ = ("time", "seq", "callback", "cancelled", "_queue")

    def __init__(self, time: float, seq: int, callback: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        #: Owning queue while the event sits in its heap; ``None`` once
        #: popped or discarded, so late cancels don't corrupt the counts.
        self._queue: Optional["EventQueue"] = None

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        queue = self._queue
        if queue is not None:
            queue._note_cancel()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.9f} seq={self.seq}{flag}>"


class EventQueue:
    """Min-heap of :class:`Event` objects keyed on ``(time, seq)``.

    Live and cancelled entries are counted incrementally so ``len()`` and
    truth-testing — which the kernel performs once per executed event —
    are O(1) instead of scanning the heap.  When cancelled entries come
    to dominate (more than half of a non-trivial heap), the heap is
    compacted in one O(n) pass so long runs with many cancelled timeouts
    don't grow memory without bound.
    """

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()
        self._live = 0
        self._cancelled = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute ``time`` and return its event."""
        if time != time:  # NaN guard
            raise SchedulingError("event time is NaN")
        event = Event(time, next(self._counter), callback)
        event._queue = self
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event."""
        while self._heap:
            event = heapq.heappop(self._heap)
            event._queue = None
            if not event.cancelled:
                self._live -= 1
                return event
            self._cancelled -= 1
        raise SchedulingError("pop from an empty event queue")

    def peek_time(self) -> Optional[float]:
        """Time of the earliest pending event, or ``None`` if empty."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)._queue = None
            self._cancelled -= 1
        return heap[0].time if heap else None

    def pop_due(self, until: Optional[float]) -> Optional[Event]:
        """Pop the earliest live event unless it lies beyond ``until``.

        The kernel's hot path: one heap access per executed event
        (``peek_time()`` + ``pop()`` would prune the same cancelled run
        twice).  Cancelled entries are discarded on the way down; an
        event after ``until`` stays queued and ``None`` is returned, so
        the caller can distinguish "drained" (queue now empty) from
        "parked" (live events remain beyond the horizon).
        """
        heap = self._heap
        while heap:
            event = heap[0]
            if event.cancelled:
                heapq.heappop(heap)._queue = None
                self._cancelled -= 1
                continue
            if until is not None and event.time > until:
                return None
            heapq.heappop(heap)
            event._queue = None
            self._live -= 1
            return event
        return None

    def _note_cancel(self) -> None:
        """Account for an in-heap cancellation; compact when dominated."""
        self._live -= 1
        self._cancelled += 1
        heap = self._heap
        if len(heap) >= _COMPACT_MIN_HEAP and self._cancelled * 2 > len(heap):
            survivors = []
            for event in heap:
                if event.cancelled:
                    event._queue = None
                else:
                    survivors.append(event)
            # In-place so instrumentation holding raw_heap() stays valid.
            heap[:] = survivors
            heapq.heapify(heap)
            self._cancelled = 0

    @property
    def depth(self) -> int:
        """Raw heap size, cancelled entries included (an O(1) read).

        This is the instrumentation view — the memory the queue actually
        holds — as opposed to ``len()``, which counts only live events.
        """
        return len(self._heap)

    def raw_heap(self) -> List[Event]:
        """The live heap list, for read-only instrumentation.

        The kernel's run loop samples ``len()`` of this on every event;
        handing out the list once avoids a property call per event.
        Compaction rewrites the list in place, so the reference stays
        valid across events.
        """
        return self._heap
