"""Event objects and the time-ordered event queue."""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional

from ..errors import SchedulingError


class Event:
    """A callback scheduled at a point in virtual time.

    Events are ordered by ``(time, seq)``: the sequence number makes ordering
    of same-time events deterministic (FIFO in scheduling order), which keeps
    simulations reproducible.
    """

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when popped."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.9f} seq={self.seq}{flag}>"


class EventQueue:
    """Min-heap of :class:`Event` objects keyed on ``(time, seq)``."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def __bool__(self) -> bool:
        return any(not event.cancelled for event in self._heap)

    def push(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute ``time`` and return its event."""
        if time != time:  # NaN guard
            raise SchedulingError("event time is NaN")
        event = Event(time, next(self._counter), callback)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        raise SchedulingError("pop from an empty event queue")

    def peek_time(self) -> Optional[float]:
        """Time of the earliest pending event, or ``None`` if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    @property
    def depth(self) -> int:
        """Raw heap size, cancelled entries included (an O(1) read).

        This is the instrumentation view — the memory the queue actually
        holds — as opposed to ``len()``, which counts live events in
        O(n).
        """
        return len(self._heap)

    def raw_heap(self) -> List[Event]:
        """The live heap list, for read-only instrumentation.

        The kernel's run loop samples ``len()`` of this on every event;
        handing out the list once avoids a property call per event.
        """
        return self._heap
