"""Per-client concurrency quotas for the simulation service.

A shared service needs fairness at the front door: one client with a
for-loop must not be able to queue a thousand grids and starve everyone
else.  :class:`ClientQuota` bounds the number of *active* (pending or
running, including coalesced-waiter) jobs each client label may hold at
once; submissions beyond the bound are rejected with
:class:`~repro.errors.QuotaError`, which the HTTP layer maps to ``429``.
"""

from __future__ import annotations

from typing import Dict

from ..errors import QuotaError


class ClientQuota:
    """Bounded count of active jobs per client label.

    Single-threaded by construction: the job manager mutates quotas only
    from the service's event loop, so no locking is needed.
    """

    def __init__(self, max_active: int = 8) -> None:
        if max_active < 1:
            raise ValueError(
                f"need at least one active job per client, got {max_active}"
            )
        self.max_active = int(max_active)
        self._active: Dict[str, int] = {}
        #: Submissions rejected over quota since construction.
        self.rejections = 0

    def active(self, client: str) -> int:
        """Currently-held slots of one client."""
        return self._active.get(client, 0)

    def acquire(self, client: str) -> None:
        """Take one slot for ``client`` or raise :class:`QuotaError`."""
        held = self._active.get(client, 0)
        if held >= self.max_active:
            self.rejections += 1
            raise QuotaError(
                f"client {client!r} already has {held} active job(s); "
                f"the per-client limit is {self.max_active}"
            )
        self._active[client] = held + 1

    def release(self, client: str) -> None:
        """Return one slot; unknown/empty clients are a no-op."""
        held = self._active.get(client, 0)
        if held <= 1:
            self._active.pop(client, None)
        else:
            self._active[client] = held - 1

    def snapshot(self) -> Dict[str, object]:
        """JSON-able view: limit, rejections, per-client active counts."""
        return {
            "max_active_per_client": self.max_active,
            "rejections": self.rejections,
            "active": dict(sorted(self._active.items())),
        }
