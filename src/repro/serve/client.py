"""A small blocking client for the simulation service.

:class:`ServeClient` wraps the service's JSON API in plain method calls
on :mod:`urllib` — no extra dependencies, usable from scripts, tests and
the ``repro client`` CLI.  HTTP error statuses are mapped back onto the
same exception types the server raised (429 →
:class:`~repro.errors.QuotaError`, 404 →
:class:`~repro.errors.UnknownJobError`, 503 →
:class:`~repro.errors.ServiceClosedError`, other 4xx/5xx →
:class:`~repro.errors.ServeError`), so client code handles a remote
service exactly like an in-process :class:`~repro.serve.jobs.JobManager`.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Iterator, List, Optional, Sequence

from ..errors import (
    JobSpecError,
    QuotaError,
    ServeError,
    ServiceClosedError,
    UnknownJobError,
)

#: Terminal job states, mirrored from :class:`~repro.serve.jobs.JobState`
#: so the client module stays importable without the server stack.
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})


def _error_from_status(status: int, message: str) -> ServeError:
    """Rebuild the service-side exception type from an HTTP status."""
    if status == 429:
        return QuotaError(message)
    if status == 404:
        return UnknownJobError(message)
    if status == 503:
        return ServiceClosedError(message)
    if status == 400:
        return JobSpecError(message)
    return ServeError(f"HTTP {status}: {message}")


class ServeClient:
    """Blocking JSON client for one ``repro serve`` endpoint URL."""

    def __init__(self, url: str, timeout_s: float = 60.0) -> None:
        self.url = url.rstrip("/")
        self.timeout_s = timeout_s

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
    ) -> Any:
        """One JSON round trip; raises mapped ServeError subclasses."""
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_s
            ) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode("utf-8", "replace")
            try:
                message = json.loads(detail)["error"]["message"]
            except (json.JSONDecodeError, KeyError, TypeError):
                message = detail.strip() or exc.reason
            raise _error_from_status(exc.code, message) from exc
        except urllib.error.URLError as exc:
            raise ServeError(
                f"cannot reach service at {self.url}: {exc.reason}"
            ) from exc

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        """``GET /healthz``."""
        return self._request("GET", "/healthz")

    def index(self) -> Dict[str, Any]:
        """``GET /``: service descriptor."""
        return self._request("GET", "/")

    def stats(self) -> Dict[str, Any]:
        """``GET /stats``: engine/cache/quota/coalescer counters."""
        return self._request("GET", "/stats")

    def submit(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        """``POST /jobs``: submit a raw job spec, return its summary."""
        return self._request("POST", "/jobs", spec)

    def run(
        self,
        apps: Sequence[str],
        scheme: str = "baseline",
        windows: int = 1,
        client: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Submit a single-point ``run`` job."""
        spec: Dict[str, Any] = {
            "kind": "run",
            "apps": list(apps),
            "scheme": scheme,
            "windows": windows,
        }
        if client is not None:
            spec["client"] = client
        return self.submit(spec)

    def grid(
        self,
        app_sets: Sequence[Sequence[str]],
        schemes: Sequence[str],
        windows: int = 1,
        client: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Submit a ``grid`` job (``compare_grid`` order)."""
        spec: Dict[str, Any] = {
            "kind": "grid",
            "app_sets": [list(apps) for apps in app_sets],
            "schemes": list(schemes),
            "windows": windows,
        }
        if client is not None:
            spec["client"] = client
        return self.submit(spec)

    def jobs(self, client: Optional[str] = None) -> Dict[str, Any]:
        """``GET /jobs`` (optionally filtered by client label)."""
        suffix = f"?client={client}" if client else ""
        return self._request("GET", f"/jobs{suffix}")

    def job(self, job_id: str) -> Dict[str, Any]:
        """``GET /jobs/{id}``: one job summary."""
        return self._request("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """``POST /jobs/{id}/cancel``."""
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def result(self, job_id: str) -> Dict[str, Any]:
        """``GET /jobs/{id}/result``: artifacts of a terminal job."""
        return self._request("GET", f"/jobs/{job_id}/result")

    def wait(
        self,
        job_id: str,
        timeout_s: float = 300.0,
        poll_s: float = 0.05,
    ) -> Dict[str, Any]:
        """Poll until the job is terminal; returns its final summary."""
        deadline = time.monotonic() + timeout_s
        while True:
            summary = self.job(job_id)
            if summary["state"] in TERMINAL_STATES:
                return summary
            if time.monotonic() > deadline:
                raise ServeError(
                    f"timed out after {timeout_s:.0f}s waiting for "
                    f"job {job_id}"
                )
            time.sleep(poll_s)

    def events(
        self, job_id: str, follow: bool = True
    ) -> Iterator[Dict[str, Any]]:
        """Stream ``GET /jobs/{id}/events`` records as parsed dicts."""
        suffix = "" if follow else "?follow=0"
        request = urllib.request.Request(
            f"{self.url}/jobs/{job_id}/events{suffix}",
            headers={"Accept": "application/x-ndjson"},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_s
            ) as response:
                for raw in response:
                    line = raw.decode("utf-8").strip()
                    if line:
                        yield json.loads(line)
        except urllib.error.HTTPError as exc:
            raise _error_from_status(
                exc.code, exc.read().decode("utf-8", "replace")
            ) from exc
        except urllib.error.URLError as exc:
            raise ServeError(
                f"cannot reach service at {self.url}: {exc.reason}"
            ) from exc

    def run_and_wait(
        self,
        spec: Dict[str, Any],
        timeout_s: float = 300.0,
    ) -> Dict[str, Any]:
        """Submit a spec, wait for it, and return the result payload."""
        job = self.submit(spec)
        self.wait(job["id"], timeout_s=timeout_s)
        return self.result(job["id"])


def collect_events(
    client: ServeClient, job_id: str, follow: bool = True
) -> List[Dict[str, Any]]:
    """Drain an event stream into a list (convenience for scripts)."""
    return list(client.events(job_id, follow=follow))
