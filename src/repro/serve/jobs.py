"""The job manager: queue, states, quotas, coalescing, cancellation.

``repro serve`` accepts jobs from many concurrent clients but owns a
single :class:`~repro.core.engine.ScenarioEngine` (and its persistent
execution backend).  The :class:`JobManager` bridges the two worlds:

* **Submission** (event loop) — a JSON spec is parsed into scenarios,
  checked against the client's quota, keyed with the engine's
  :meth:`~repro.core.engine.ScenarioEngine.batch_key`, and either
  enqueued or *coalesced* onto an identical in-flight job.
* **Execution** (one engine thread) — a scheduler task drains the queue
  and runs each job's scenarios through ``engine.run_batch`` in chunks,
  so a cancel request takes effect at the next chunk boundary and
  progress/metric snapshots stream between chunks.  The engine is not
  thread-safe, so a single-worker executor serializes all access; the
  engine's own backend (process pool, socket workers) provides the
  parallelism *within* each chunk.
* **Completion** (event loop) — results are published to the job, its
  waiters receive copies (coalescing fan-out), quotas are released and
  followers of ``GET /jobs/{id}/events`` observe the terminal state.

Job lifecycle::

    pending ──▶ running ──▶ done
        │           │  └──▶ failed
        └───────────┴─────▶ cancelled

Cancelling a pending job dequeues it; cancelling a running job stops it
at the next chunk boundary (partial results are kept).  Cancelling a
primary with coalesced waiters promotes the first live waiter to a
fresh primary so the other clients still get their results.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core.engine import FIDELITIES, Outcome, ScenarioEngine
from ..core.scenario import Scenario
from ..errors import (
    JobSpecError,
    QuotaError,
    ReproError,
    ServeError,
    ServiceClosedError,
    UnknownJobError,
)
from ..obs.stream import SnapshotStreamer
from .artifacts import error_artifact, result_artifact, scenario_descriptor
from .coalesce import RequestCoalescer
from .quota import ClientQuota

#: Client label applied when a submission names none.
DEFAULT_CLIENT = "anonymous"

#: Job kinds accepted by :func:`scenarios_from_spec`.
JOB_KINDS = ("run", "grid", "sweep")


class JobState:
    """The five job states and the terminal subset."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    #: States a job can never leave.
    TERMINAL = frozenset({DONE, FAILED, CANCELLED})
    #: Every state, in lifecycle order (for displays).
    ORDER = (PENDING, RUNNING, DONE, FAILED, CANCELLED)


def _point_scenario(point: Dict[str, Any]) -> Scenario:
    """One scenario from a point spec (``apps`` + knobs)."""
    apps = point.get("apps")
    if not isinstance(apps, list) or not all(
        isinstance(app, str) for app in apps
    ) or not apps:
        raise JobSpecError(
            f"point needs a non-empty 'apps' list of Table II ids, "
            f"got {apps!r}"
        )
    return Scenario.of(
        apps,
        scheme=point.get("scheme", "baseline"),
        windows=int(point.get("windows", 1)),
        batch_size=point.get("batch_size"),
    )


def scenarios_from_spec(
    spec: Dict[str, Any],
) -> Tuple[str, List[Scenario], Optional[Dict[str, Any]]]:
    """Parse a job spec into ``(kind, scenarios, grid_descriptor)``.

    ``run`` is a single point, ``sweep`` an explicit point list, and
    ``grid`` the cross product of ``app_sets`` × ``schemes`` in the same
    order :func:`~repro.core.compare.compare_grid` uses, so a grid job's
    points map back onto the grid positionally.  Malformed specs raise
    :class:`~repro.errors.JobSpecError`; invalid scenario contents
    (unknown app/scheme) surface as the library's usual
    :class:`~repro.errors.WorkloadError`.
    """
    if not isinstance(spec, dict):
        raise JobSpecError(f"job spec must be a JSON object, got {spec!r}")
    kind = spec.get("kind", "run")
    if kind not in JOB_KINDS:
        raise JobSpecError(
            f"unknown job kind {kind!r}; expected one of {JOB_KINDS}"
        )
    if kind == "run":
        return kind, [_point_scenario(spec)], None
    if kind == "sweep":
        points = spec.get("points")
        if not isinstance(points, list) or not points:
            raise JobSpecError("sweep spec needs a non-empty 'points' list")
        return kind, [_point_scenario(point) for point in points], None
    app_sets = spec.get("app_sets")
    schemes = spec.get("schemes")
    if not isinstance(app_sets, list) or not app_sets:
        raise JobSpecError("grid spec needs a non-empty 'app_sets' list")
    if not isinstance(schemes, list) or not schemes:
        raise JobSpecError("grid spec needs a non-empty 'schemes' list")
    windows = int(spec.get("windows", 1))
    scenarios = [
        _point_scenario(
            {"apps": list(apps), "scheme": scheme, "windows": windows}
        )
        for apps in app_sets
        for scheme in schemes
    ]
    grid = {"app_sets": [list(apps) for apps in app_sets],
            "schemes": list(schemes), "windows": windows}
    return kind, scenarios, grid


def spec_fidelity(spec: Dict[str, Any]) -> Optional[str]:
    """A job spec's validated ``fidelity``, or None for the service default.

    Any job kind may carry ``"fidelity": "des" | "analytic" | "auto"``;
    unknown tiers raise :class:`~repro.errors.JobSpecError` at submission
    time (not mid-execution).
    """
    fidelity = spec.get("fidelity") if isinstance(spec, dict) else None
    if fidelity is None:
        return None
    if fidelity not in FIDELITIES:
        raise JobSpecError(
            f"unknown fidelity {fidelity!r}; expected one of {FIDELITIES}"
        )
    return fidelity


@dataclass
class Job:
    """One submitted unit of work and everything observed about it."""

    id: str
    client: str
    kind: str
    scenarios: List[Scenario]
    fingerprints: List[str]
    key: str
    grid: Optional[Dict[str, Any]] = None
    #: Execution tier the spec requested (None = the service engine's).
    fidelity: Optional[str] = None
    state: str = JobState.PENDING
    created_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    points_done: int = 0
    outcomes: List[Outcome] = field(default_factory=list)
    error: Optional[str] = None
    #: Primary job this one coalesced onto (waiters only).
    coalesced_into: Optional[str] = None
    #: Waiter job ids attached to this primary over its lifetime.
    waiters: List[str] = field(default_factory=list)
    cancel_requested: bool = False
    events: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def points_total(self) -> int:
        """How many scenario points this job covers."""
        return len(self.scenarios)

    @property
    def terminal(self) -> bool:
        """Whether the job reached a terminal state."""
        return self.state in JobState.TERMINAL

    def describe(self) -> Dict[str, Any]:
        """Summary JSON (``GET /jobs/{id}`` without the results)."""
        return {
            "id": self.id,
            "client": self.client,
            "kind": self.kind,
            "state": self.state,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "points_total": self.points_total,
            "points_done": self.points_done,
            "fidelity": self.fidelity,
            "coalesced_into": self.coalesced_into,
            "waiters": list(self.waiters),
            "cancel_requested": self.cancel_requested,
            "error": self.error,
            "events": len(self.events),
            "scenarios": [scenario_descriptor(s) for s in self.scenarios],
            "grid": self.grid,
        }

    def result_payload(self) -> Dict[str, Any]:
        """Result JSON: one artifact per completed point, in order."""
        points: List[Dict[str, Any]] = []
        for index, outcome in enumerate(self.outcomes):
            if isinstance(outcome, ReproError):
                points.append(error_artifact(outcome))
            else:
                points.append(
                    result_artifact(outcome, self.fingerprints[index])
                )
        return {
            "job": self.id,
            "kind": self.kind,
            "state": self.state,
            "points_total": self.points_total,
            "points_done": self.points_done,
            "grid": self.grid,
            "points": points,
        }


class JobManager:
    """Schedules submitted jobs onto one shared scenario engine.

    Construct it, then :meth:`start` it from inside a running event
    loop.  All public methods except :meth:`wait`/:meth:`drain`/
    :meth:`close` are synchronous and must be called from the loop
    thread (the HTTP handlers do).  ``executor_hook`` is a testing seam:
    it runs in the engine thread before every chunk, letting tests hold
    the engine mid-job deterministically.
    """

    def __init__(
        self,
        engine: ScenarioEngine,
        max_jobs_per_client: int = 8,
        chunk_points: Optional[int] = None,
        snapshot_interval_s: float = 0.25,
        executor_hook: Optional[Callable[["Job"], None]] = None,
        close_engine: bool = True,
    ) -> None:
        if chunk_points is not None and chunk_points < 1:
            raise ValueError(
                f"chunk_points must be >= 1, got {chunk_points}"
            )
        self.engine = engine
        self.chunk_points = chunk_points
        self.snapshot_interval_s = snapshot_interval_s
        self.quota = ClientQuota(max_jobs_per_client)
        self.coalescer = RequestCoalescer()
        self._hook = executor_hook
        self._close_engine = close_engine
        self._jobs: Dict[str, Job] = {}
        self._next_id = 1
        self._closing = False
        self._queue: "asyncio.Queue[Optional[str]]" = asyncio.Queue()
        self._scheduler_task: Optional["asyncio.Task[None]"] = None
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-engine"
        )
        #: Jobs that reached a terminal state since construction.
        self.jobs_finished = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "JobManager":
        """Spawn the scheduler task on the running event loop."""
        if self._scheduler_task is None:
            self._scheduler_task = asyncio.get_running_loop().create_task(
                self._scheduler()
            )
        return self

    @property
    def closing(self) -> bool:
        """Whether the manager stopped accepting new jobs."""
        return self._closing

    async def drain(self) -> None:
        """Refuse new jobs and wait for every job to reach a terminal state."""
        self._closing = True
        while any(not job.terminal for job in self._jobs.values()):
            await asyncio.sleep(0.02)

    async def close(self, drain: bool = True) -> None:
        """Shut down: optionally drain, stop the scheduler, close the engine.

        With ``drain=False`` pending jobs are cancelled and the running
        one is asked to stop at its next chunk boundary; either way the
        engine's backend is only closed after the engine thread is idle.
        """
        self._closing = True
        if not drain:
            for job in list(self._jobs.values()):
                if not job.terminal:
                    self.cancel(job.id)
        await self.drain()
        if self._scheduler_task is not None:
            await self._queue.put(None)
            await self._scheduler_task
            self._scheduler_task = None
        self._executor.shutdown(wait=True)
        if self._close_engine:
            self.engine.close()

    # ------------------------------------------------------------------
    # submission / lookup / cancellation (event-loop thread)
    # ------------------------------------------------------------------
    def submit(self, spec: Dict[str, Any]) -> Job:
        """Accept one job spec; returns the (possibly coalesced) job.

        Raises :class:`~repro.errors.ServiceClosedError` while draining,
        :class:`~repro.errors.QuotaError` when the client is at its
        concurrency limit, and :class:`~repro.errors.JobSpecError` (or
        :class:`~repro.errors.WorkloadError`) for malformed specs.
        """
        if self._closing:
            raise ServiceClosedError(
                "the service is draining and accepts no new jobs"
            )
        kind, scenarios, grid = scenarios_from_spec(spec)
        fidelity = spec_fidelity(spec)
        client = str(spec.get("client") or DEFAULT_CLIENT)
        self.quota.acquire(client)
        try:
            fingerprints = self.engine.fingerprints(
                scenarios, fidelity=fidelity
            )
            key = self.engine.batch_key(scenarios, fidelity=fidelity)
            job = Job(
                id=f"j{self._next_id}",
                client=client,
                kind=kind,
                scenarios=scenarios,
                fingerprints=fingerprints,
                key=key,
                grid=grid,
                fidelity=fidelity,
            )
            self._next_id += 1
            self._jobs[job.id] = job
            primary_id = self.coalescer.lookup(key)
            if primary_id is not None:
                primary = self._jobs[primary_id]
                job.coalesced_into = primary.id
                primary.waiters.append(job.id)
                self.coalescer.note_coalesced()
                self._record(
                    job,
                    {
                        "record": "state",
                        "state": JobState.PENDING,
                        "coalesced_into": primary.id,
                    },
                )
            else:
                self.coalescer.register(key, job.id)
                self._record(
                    job, {"record": "state", "state": JobState.PENDING}
                )
                self._queue.put_nowait(job.id)
        except BaseException:
            self.quota.release(client)
            raise
        return job

    def get(self, job_id: str) -> Job:
        """The job with that id, or :class:`UnknownJobError`."""
        job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJobError(f"no such job: {job_id!r}")
        return job

    def jobs(self, client: Optional[str] = None) -> List[Job]:
        """Jobs in submission order, optionally filtered by client."""
        return [
            job
            for job in self._jobs.values()
            if client is None or job.client == client
        ]

    def counts(self) -> Dict[str, int]:
        """Job count per state, every state present."""
        counts = {state: 0 for state in JobState.ORDER}
        for job in self._jobs.values():
            counts[job.state] += 1
        return counts

    def cancel(self, job_id: str) -> Job:
        """Cancel a job; idempotent, terminal jobs are left untouched.

        Pending jobs go straight to ``cancelled``; running jobs get a
        cancel flag honored at the next chunk boundary.  Cancelling a
        primary promotes its first live waiter so coalesced clients
        still get results.
        """
        job = self.get(job_id)
        if job.terminal:
            return job
        if job.state == JobState.RUNNING:
            if not job.cancel_requested:
                job.cancel_requested = True
                self._record(job, {"record": "cancel_requested"})
            return job
        job.state = JobState.CANCELLED
        job.finished_at = time.time()
        self._record(job, {"record": "state", "state": JobState.CANCELLED})
        self.quota.release(job.client)
        self.jobs_finished += 1
        if job.coalesced_into is None:
            self.coalescer.clear(job.key, job.id)
            self._promote_waiters(job)
        return job

    # ------------------------------------------------------------------
    # waiting / events (async helpers)
    # ------------------------------------------------------------------
    async def wait(self, job_id: str, timeout_s: float = 120.0) -> Job:
        """Block until the job is terminal (poll loop); returns it."""
        deadline = time.monotonic() + timeout_s
        job = self.get(job_id)
        while not job.terminal:
            if time.monotonic() > deadline:
                raise ServeError(
                    f"timed out after {timeout_s:.0f}s waiting for "
                    f"job {job_id}"
                )
            await asyncio.sleep(0.02)
        return job

    async def follow_events(
        self, job_id: str, follow: bool = True
    ):
        """Yield the job's event records; with ``follow``, until terminal.

        An async generator: already-recorded events replay first, then
        (when following) new ones stream as they are recorded.  The
        stream ends once the job is terminal and fully replayed.
        """
        job = self.get(job_id)
        cursor = 0
        while True:
            while cursor < len(job.events):
                yield job.events[cursor]
                cursor += 1
            if not follow or job.terminal:
                return
            await asyncio.sleep(0.02)

    # ------------------------------------------------------------------
    # execution (scheduler task + engine thread)
    # ------------------------------------------------------------------
    def _record(self, job: Job, record: Dict[str, Any]) -> None:
        """Append one event to a job's stream, stamping seq + wall time."""
        record = dict(record)
        record["job"] = job.id
        record["seq"] = len(job.events)
        record["t"] = time.time()
        job.events.append(record)

    def _run_chunk(
        self, job: Job, chunk: Sequence[Scenario]
    ) -> List[Outcome]:
        """Engine-thread body: the test hook, then one engine batch."""
        if self._hook is not None:
            self._hook(job)
        return self.engine.run_batch(
            chunk, client=job.client, fidelity=job.fidelity
        )

    async def _scheduler(self) -> None:
        """Drain the queue forever; ``None`` is the shutdown sentinel."""
        while True:
            job_id = await self._queue.get()
            if job_id is None:
                return
            job = self._jobs[job_id]
            if job.state != JobState.PENDING:
                continue  # cancelled while queued
            await self._execute(job)

    async def _execute(self, job: Job) -> None:
        """Run one job chunk by chunk, streaming snapshots between waits."""
        loop = asyncio.get_running_loop()
        job.state = JobState.RUNNING
        job.started_at = time.time()
        self._record(job, {"record": "state", "state": JobState.RUNNING})
        streamer = SnapshotStreamer(self.engine.metrics.snapshot)
        total = job.points_total
        size = self.chunk_points or total
        error: Optional[ReproError] = None
        try:
            for start in range(0, total, size):
                if job.cancel_requested:
                    break
                chunk = job.scenarios[start:start + size]
                future = loop.run_in_executor(
                    self._executor, self._run_chunk, job, chunk
                )
                while True:
                    done, _pending = await asyncio.wait(
                        {future}, timeout=self.snapshot_interval_s
                    )
                    record = streamer.poll()
                    if record is not None:
                        self._record(job, record)
                    if done:
                        break
                job.outcomes.extend(future.result())
                job.points_done += len(chunk)
                self._record(
                    job,
                    {
                        "record": "progress",
                        "points_done": job.points_done,
                        "points_total": total,
                    },
                )
        except ReproError as exc:
            error = exc
        record = streamer.poll()
        if record is not None:
            self._record(job, record)
        if error is not None:
            job.error = str(error)
            job.state = JobState.FAILED
        elif job.cancel_requested and job.points_done < total:
            job.state = JobState.CANCELLED
        else:
            failures = [
                outcome
                for outcome in job.outcomes
                if isinstance(outcome, ReproError)
            ]
            if failures:
                job.error = str(failures[0])
                job.state = JobState.FAILED
            else:
                job.state = JobState.DONE
        self._finish(job)

    def _finish(self, job: Job) -> None:
        """Terminal bookkeeping: quotas, coalescer, waiter fan-out."""
        job.finished_at = time.time()
        self._record(job, {"record": "state", "state": job.state})
        self.quota.release(job.client)
        self.jobs_finished += 1
        self.coalescer.clear(job.key, job.id)
        if job.state == JobState.CANCELLED:
            self._promote_waiters(job)
        else:
            self._fan_out(job)

    def _fan_out(self, primary: Job) -> None:
        """Deliver a finished primary's outcome to its live waiters."""
        for waiter_id in primary.waiters:
            waiter = self._jobs[waiter_id]
            if waiter.state != JobState.PENDING:
                continue
            waiter.started_at = primary.started_at
            waiter.outcomes = list(primary.outcomes)
            waiter.points_done = primary.points_done
            waiter.error = primary.error
            waiter.state = primary.state
            waiter.finished_at = time.time()
            self._record(
                waiter,
                {
                    "record": "state",
                    "state": waiter.state,
                    "fanned_out_from": primary.id,
                },
            )
            self.quota.release(waiter.client)
            self.jobs_finished += 1

    def _promote_waiters(self, cancelled: Job) -> None:
        """Re-dispatch a cancelled primary's waiters under a new primary."""
        alive = [
            self._jobs[waiter_id]
            for waiter_id in cancelled.waiters
            if self._jobs[waiter_id].state == JobState.PENDING
        ]
        if not alive:
            return
        primary = alive[0]
        primary.coalesced_into = None
        primary.waiters = [job.id for job in alive[1:]]
        for waiter in alive[1:]:
            waiter.coalesced_into = primary.id
        self.coalescer.register(cancelled.key, primary.id)
        self._record(
            primary,
            {"record": "promoted", "from_primary": cancelled.id},
        )
        self._queue.put_nowait(primary.id)

    # ------------------------------------------------------------------
    # service stats
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """JSON-able service snapshot: jobs, quotas, coalescer, engine."""
        return {
            "jobs": self.counts(),
            "jobs_finished": self.jobs_finished,
            "closing": self._closing,
            "quota": self.quota.snapshot(),
            "coalescer": self.coalescer.snapshot(),
            "engine": self.engine.metrics.snapshot(),
            "cache_clients": self.engine.cache_accounting,
        }
