"""Versioned run artifacts: the JSON the service hands back to clients.

A service response must outlive the process that computed it, so the
artifact layout is explicit and versioned (``ARTIFACT_VERSION``) rather
than a pickled :class:`~repro.core.results.RunResult`.  Each *point*
artifact pins the scenario identity (fingerprint + descriptor), every
scalar the paper's figures are built from (duration, per-routine and
per-component energy, busy times, interrupt/wake/bus counters) and the
apps' functional payloads — enough for a client to rebuild any table or
figure without re-running the simulation.

Bit-identity matters: the same :class:`RunResult` always serializes to
the same artifact (sorted keys, ``repr``-round-trip floats), so the CI
``serve`` job can diff a service response against a direct
:func:`~repro.core.compare.compare_grid` call byte for byte.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from ..core.results import RunResult
from ..core.scenario import Scenario
from ..errors import ReproError

#: Bump when the artifact payload layout changes shape.
#: v2: point artifacts carry the ``fidelity`` tier that produced them
#: (``"des"`` or ``"analytic"``).
ARTIFACT_VERSION = 2


def json_safe(value: Any) -> Any:
    """Recursively convert a payload to plain JSON-able Python types.

    App payloads may carry numpy scalars or arrays (``.item()`` /
    ``.tolist()`` duck-typed here), tuples, or nested dicts; everything
    else must already be JSON-representable.
    """
    if isinstance(value, dict):
        return {str(key): json_safe(inner) for key, inner in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(inner) for inner in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    tolist = getattr(value, "tolist", None)
    if callable(tolist):  # ndarray-like
        return json_safe(tolist())
    item = getattr(value, "item", None)
    if callable(item):  # numpy scalar
        return item()
    return repr(value)


def scenario_descriptor(scenario: Scenario) -> Dict[str, Any]:
    """The JSON identity of one scenario (what the client asked for)."""
    return {
        "name": scenario.name,
        "scheme": scenario.scheme,
        "apps": [app.table2_id for app in scenario.apps],
        "windows": scenario.windows,
        "batch_size": scenario.batch_size,
    }


def result_artifact(
    result: RunResult, fingerprint: Optional[str] = None
) -> Dict[str, Any]:
    """One point's versioned artifact: scenario, fingerprint, metrics.

    The layout is stable for a given ``ARTIFACT_VERSION``; floats keep
    their full ``repr`` precision through JSON, so equal results produce
    byte-identical artifacts.
    """
    energy = result.energy
    return {
        "artifact_version": ARTIFACT_VERSION,
        "fingerprint": fingerprint,
        "fidelity": result.fidelity,
        "scenario": {
            "name": result.scenario_name,
            "scheme": result.scheme,
            "apps": list(result.app_ids),
            "windows": result.windows,
        },
        "metrics": {
            "duration_s": result.duration_s,
            "energy": {
                "total_j": energy.total_j,
                "marginal_j": energy.marginal_j,
                "idle_floor_j": energy.idle_floor_j,
                "by_routine": dict(sorted(energy.by_routine.items())),
                "by_component": dict(sorted(energy.by_component.items())),
            },
            "busy_times": dict(sorted(result.busy_times.items())),
            "total_busy_s": result.total_busy_s,
            "interrupts": result.interrupt_count,
            "cpu_wakes": result.cpu_wake_count,
            "bus_bytes": result.bus_bytes,
            "qos_violations": list(result.qos_violations),
            "results_ok": result.results_ok,
        },
        "results": {
            app: json_safe([r.payload for r in results])
            for app, results in sorted(result.app_results.items())
        },
        "result_times": {
            app: list(times)
            for app, times in sorted(result.result_times.items())
        },
    }


def error_artifact(error: ReproError) -> Dict[str, Any]:
    """One failed point's artifact: error type and message."""
    return {
        "artifact_version": ARTIFACT_VERSION,
        "error": {
            "type": type(error).__name__,
            "message": str(error),
        },
    }


def canonical_json(payload: Any) -> str:
    """Deterministic JSON text (sorted keys) for byte-level comparison."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))
