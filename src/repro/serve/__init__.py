"""Simulation-as-a-service: the ``repro serve`` HTTP layer.

This package turns the library's :class:`~repro.core.engine.ScenarioEngine`
into a long-running, multi-client service:

* :mod:`repro.serve.jobs` — the :class:`JobManager`: queue, lifecycle
  states, per-client quotas, request coalescing, chunked execution with
  cancellation and progress events.
* :mod:`repro.serve.app` — :class:`ReproServer`, the stdlib asyncio
  HTTP/JSON front end (``repro serve``).
* :mod:`repro.serve.client` — :class:`ServeClient`, the blocking
  :mod:`urllib` client behind ``repro client``.
* :mod:`repro.serve.artifacts` — versioned, bit-stable JSON run
  artifacts shared by server and clients.
* :mod:`repro.serve.quota` / :mod:`repro.serve.coalesce` /
  :mod:`repro.serve.router` — the supporting pieces.

See ``docs/serve.md`` for the full API reference.
"""

from .app import ReproServer
from .artifacts import (
    ARTIFACT_VERSION,
    canonical_json,
    error_artifact,
    json_safe,
    result_artifact,
    scenario_descriptor,
)
from .client import ServeClient, collect_events
from .coalesce import RequestCoalescer
from .jobs import Job, JobManager, JobState, scenarios_from_spec, spec_fidelity
from .quota import ClientQuota
from .router import Route, Router

__all__ = [
    "ARTIFACT_VERSION",
    "ClientQuota",
    "Job",
    "JobManager",
    "JobState",
    "ReproServer",
    "RequestCoalescer",
    "Route",
    "Router",
    "ServeClient",
    "canonical_json",
    "collect_events",
    "error_artifact",
    "json_safe",
    "result_artifact",
    "scenario_descriptor",
    "scenarios_from_spec",
    "spec_fidelity",
]
