"""Request coalescing: identical in-flight batches execute once.

Many clients asking "what does this app mix cost under scheme X" at the
same moment would each burn a full simulation without coordination.
The engine's :meth:`~repro.core.engine.ScenarioEngine.batch_key` gives
every job a deterministic identity; :class:`RequestCoalescer` maps keys
of *in-flight* (pending or running) jobs to the job executing them, so
an identical submission attaches as a waiter instead of enqueueing a
second execution.  Completed batches are not tracked here — the
engine's :class:`~repro.core.cache.TieredResultCache` already serves
those, fingerprint by fingerprint.
"""

from __future__ import annotations

from typing import Dict, Optional


class RequestCoalescer:
    """In-flight batch-key → primary-job-id index with counters.

    Single-threaded by construction (event-loop only), like the rest of
    the job manager's bookkeeping.
    """

    def __init__(self) -> None:
        self._inflight: Dict[str, str] = {}
        #: Jobs that attached to an in-flight primary instead of running.
        self.coalesced = 0
        #: Keys registered as primaries (one per executed batch).
        self.registered = 0

    def __len__(self) -> int:
        return len(self._inflight)

    def lookup(self, key: str) -> Optional[str]:
        """Primary job id currently executing ``key``, if any."""
        return self._inflight.get(key)

    def register(self, key: str, job_id: str) -> None:
        """Record ``job_id`` as the primary for ``key``."""
        self._inflight[key] = job_id
        self.registered += 1

    def note_coalesced(self) -> None:
        """Count one submission that attached to an in-flight primary."""
        self.coalesced += 1

    def clear(self, key: str, job_id: Optional[str] = None) -> None:
        """Drop ``key`` from the in-flight index.

        With ``job_id`` given, the entry is only dropped when it still
        points at that job — a promoted waiter that re-registered the
        key must not be unregistered by its predecessor's cleanup.
        """
        if job_id is not None and self._inflight.get(key) != job_id:
            return
        self._inflight.pop(key, None)

    def snapshot(self) -> Dict[str, int]:
        """JSON-able counters: in-flight keys, primaries, coalesced jobs."""
        return {
            "inflight": len(self._inflight),
            "registered": self.registered,
            "coalesced": self.coalesced,
        }
