"""A tiny method+path router for the stdlib HTTP front end.

``repro serve`` deliberately avoids web frameworks (the container ships
only the standard library), so routing is a list of
(method, pattern, handler) triples.  Patterns are literal paths whose
``{name}`` segments capture one path component; the first match wins.
The router distinguishes *no such path* (404) from *path exists but not
with that method* (405) so clients get accurate errors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Route:
    """One routable endpoint: method, ``{param}`` pattern, handler."""

    method: str
    pattern: str
    handler: Callable

    @property
    def segments(self) -> Tuple[str, ...]:
        """The pattern split into path components (no empty leading one)."""
        return tuple(part for part in self.pattern.split("/") if part)

    def match(self, path: str) -> Optional[Dict[str, str]]:
        """Captured params when ``path`` matches this pattern, else None."""
        parts = tuple(part for part in path.split("/") if part)
        if len(parts) != len(self.segments):
            return None
        params: Dict[str, str] = {}
        for want, got in zip(self.segments, parts):
            if want.startswith("{") and want.endswith("}"):
                params[want[1:-1]] = got
            elif want != got:
                return None
        return params


@dataclass
class Match:
    """Routing outcome: a handler + params, or a 404/405 status."""

    status: int
    handler: Optional[Callable] = None
    params: Optional[Dict[str, str]] = None
    allowed: Sequence[str] = ()


class Router:
    """First-match route table over :class:`Route` entries."""

    def __init__(self) -> None:
        self._routes: List[Route] = []

    def add(self, method: str, pattern: str, handler: Callable) -> None:
        """Register a handler for ``method pattern``."""
        self._routes.append(Route(method.upper(), pattern, handler))

    @property
    def routes(self) -> List[Route]:
        """The registered routes, in registration order."""
        return list(self._routes)

    def resolve(self, method: str, path: str) -> Match:
        """Find the handler for a request line.

        Returns a :class:`Match` with status 200 and the handler on
        success, 405 (with the allowed methods) when only the method is
        wrong, and 404 when nothing matches the path at all.
        """
        method = method.upper()
        allowed: List[str] = []
        for route in self._routes:
            params = route.match(path)
            if params is None:
                continue
            if route.method == method:
                return Match(200, route.handler, params)
            allowed.append(route.method)
        if allowed:
            return Match(405, allowed=sorted(set(allowed)))
        return Match(404)
