"""The asyncio HTTP front end: ``repro serve`` as a process.

A deliberately small HTTP/1.1 server on :func:`asyncio.start_server` —
no web framework, stdlib only, one connection per request
(``Connection: close``).  JSON in, JSON out, except
``GET /jobs/{id}/events`` which streams newline-delimited JSON records
until the job is terminal.

Error contract (exception → HTTP status):

* :class:`~repro.errors.QuotaError` → 429
* :class:`~repro.errors.UnknownJobError` → 404
* :class:`~repro.errors.ServiceClosedError` → 503
* any other :class:`~repro.errors.ReproError` (malformed spec, unknown
  app or scheme, …) → 400

The server runs in the foreground (:meth:`ReproServer.run`, with
``SIGINT``/``SIGTERM`` triggering a graceful drain) or on a background
thread (:meth:`start_background` / :meth:`stop_background`) for tests
and embedding.  Shutdown always drains: running jobs finish their
current chunk, results are published, then the engine backend closes.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
from dataclasses import dataclass, field
from typing import Any, AsyncIterator, Callable, Dict, List, Optional
from urllib.parse import parse_qs, urlsplit

from ..errors import (
    QuotaError,
    ReproError,
    ServeError,
    ServiceClosedError,
    UnknownJobError,
)
from ..obs.stream import ndjson_line
from .artifacts import ARTIFACT_VERSION
from .jobs import JobManager
from .router import Router

#: Largest accepted request body; protects the loop from hostile posts.
MAX_BODY_BYTES = 1 << 20

#: Reason phrases for the statuses this server emits.
REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class Request:
    """One parsed HTTP request as the handlers see it."""

    method: str
    path: str
    params: Dict[str, str] = field(default_factory=dict)
    query: Dict[str, List[str]] = field(default_factory=dict)
    body: Optional[Any] = None

    def flag(self, name: str, default: bool = False) -> bool:
        """A boolean query parameter (``0``/``false``/``no`` are false)."""
        values = self.query.get(name)
        if not values:
            return default
        return values[-1].lower() not in ("0", "false", "no")


@dataclass
class Response:
    """What a handler produces: JSON payload or an NDJSON line stream."""

    status: int = 200
    payload: Optional[Any] = None
    stream: Optional[AsyncIterator[str]] = None


def error_payload(status: int, message: str, kind: str = "") -> Dict[str, Any]:
    """The uniform error body every non-2xx JSON response carries."""
    return {
        "error": {
            "status": status,
            "type": kind or REASONS.get(status, "Error"),
            "message": message,
        }
    }


def status_for(error: ReproError) -> int:
    """Map a repro exception onto the HTTP status contract."""
    if isinstance(error, QuotaError):
        return 429
    if isinstance(error, UnknownJobError):
        return 404
    if isinstance(error, ServiceClosedError):
        return 503
    return 400


class ReproServer:
    """The ``repro serve`` process: router + connection loop + lifecycle."""

    def __init__(
        self,
        manager: JobManager,
        host: str = "127.0.0.1",
        port: int = 0,
        max_jobs: Optional[int] = None,
    ) -> None:
        self.manager = manager
        self.host = host
        self.port = port
        self.max_jobs = max_jobs
        #: ``http://host:port`` once the socket is bound.
        self.url: Optional[str] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._done: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._inflight_requests = 0
        self._last_activity = 0.0
        self.router = Router()
        self._install_routes()

    # ------------------------------------------------------------------
    # routes
    # ------------------------------------------------------------------
    def _install_routes(self) -> None:
        """Register every endpoint on the router."""
        add = self.router.add
        add("GET", "/", self._h_index)
        add("GET", "/healthz", self._h_health)
        add("POST", "/jobs", self._h_submit)
        add("GET", "/jobs", self._h_jobs)
        add("GET", "/jobs/{id}", self._h_job)
        add("POST", "/jobs/{id}/cancel", self._h_cancel)
        add("GET", "/jobs/{id}/result", self._h_result)
        add("GET", "/jobs/{id}/events", self._h_events)
        add("GET", "/stats", self._h_stats)

    async def _h_index(self, request: Request) -> Response:
        """``GET /``: service descriptor and endpoint list."""
        return Response(
            payload={
                "service": "repro serve",
                "artifact_version": ARTIFACT_VERSION,
                "endpoints": [
                    f"{route.method} /{'/'.join(route.segments)}"
                    if route.segments
                    else f"{route.method} /"
                    for route in self.router.routes
                ],
            }
        )

    async def _h_health(self, request: Request) -> Response:
        """``GET /healthz``: liveness plus drain status."""
        return Response(
            payload={"ok": True, "closing": self.manager.closing}
        )

    async def _h_submit(self, request: Request) -> Response:
        """``POST /jobs``: accept a job spec, return the job summary."""
        if not isinstance(request.body, dict):
            return Response(
                400,
                error_payload(
                    400, "request body must be a JSON job spec object"
                ),
            )
        job = self.manager.submit(request.body)
        return Response(202, job.describe())

    async def _h_jobs(self, request: Request) -> Response:
        """``GET /jobs``: list jobs, optionally ``?client=`` filtered."""
        client = (request.query.get("client") or [None])[-1]
        return Response(
            payload={
                "jobs": [
                    job.describe() for job in self.manager.jobs(client)
                ],
                "counts": self.manager.counts(),
            }
        )

    async def _h_job(self, request: Request) -> Response:
        """``GET /jobs/{id}``: one job's summary."""
        return Response(
            payload=self.manager.get(request.params["id"]).describe()
        )

    async def _h_cancel(self, request: Request) -> Response:
        """``POST /jobs/{id}/cancel``: idempotent cancellation."""
        return Response(
            payload=self.manager.cancel(request.params["id"]).describe()
        )

    async def _h_result(self, request: Request) -> Response:
        """``GET /jobs/{id}/result``: artifacts once terminal, else 409."""
        job = self.manager.get(request.params["id"])
        if not job.terminal:
            return Response(
                409,
                error_payload(
                    409,
                    f"job {job.id} is {job.state}; results are available "
                    f"once it is terminal",
                ),
            )
        return Response(payload=job.result_payload())

    async def _h_events(self, request: Request) -> Response:
        """``GET /jobs/{id}/events``: NDJSON event stream (``?follow=0``
        replays only what is already recorded)."""
        job_id = request.params["id"]
        self.manager.get(job_id)  # 404 before committing to a stream
        follow = request.flag("follow", default=True)

        async def lines() -> AsyncIterator[str]:
            async for record in self.manager.follow_events(job_id, follow):
                yield ndjson_line(record)

        return Response(stream=lines())

    async def _h_stats(self, request: Request) -> Response:
        """``GET /stats``: engine, cache, quota and coalescer counters."""
        return Response(payload=self.manager.stats())

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_client(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Serve exactly one request on a fresh connection, then close."""
        self._inflight_requests += 1
        try:
            response = await self._one_request(reader)
            if response.stream is not None:
                await self._write_stream(writer, response)
            else:
                self._write_json(writer, response)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to salvage
        finally:
            self._inflight_requests -= 1
            if self._loop is not None:
                self._last_activity = self._loop.time()
            writer.close()

    async def _one_request(self, reader: asyncio.StreamReader) -> Response:
        """Parse one request and dispatch it; never raises ReproError."""
        try:
            request_line = await reader.readline()
            if not request_line:
                return Response(400, error_payload(400, "empty request"))
            parts = request_line.decode("latin-1").split()
            if len(parts) != 3:
                return Response(
                    400, error_payload(400, "malformed request line")
                )
            method, target, _version = parts
            headers: Dict[str, str] = {}
            while True:
                raw = await reader.readline()
                if raw in (b"\r\n", b"\n", b""):
                    break
                name, _, value = raw.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0") or "0")
            if length > MAX_BODY_BYTES:
                return Response(
                    413,
                    error_payload(
                        413,
                        f"request body of {length} bytes exceeds the "
                        f"{MAX_BODY_BYTES}-byte limit",
                    ),
                )
            body_bytes = await reader.readexactly(length) if length else b""
        except ValueError:
            return Response(
                400, error_payload(400, "unparseable request header")
            )
        split = urlsplit(target)
        body: Optional[Any] = None
        if body_bytes:
            try:
                body = json.loads(body_bytes)
            except json.JSONDecodeError as exc:
                return Response(
                    400,
                    error_payload(400, f"request body is not JSON: {exc}"),
                )
        match = self.router.resolve(method, split.path)
        if match.status == 404:
            return Response(
                404, error_payload(404, f"no such path: {split.path}")
            )
        if match.status == 405:
            return Response(
                405,
                error_payload(
                    405,
                    f"{method} not allowed on {split.path}; "
                    f"allowed: {', '.join(match.allowed)}",
                ),
            )
        request = Request(
            method=method,
            path=split.path,
            params=match.params or {},
            query=parse_qs(split.query),
            body=body,
        )
        assert match.handler is not None
        try:
            return await match.handler(request)
        except ReproError as exc:
            status = status_for(exc)
            return Response(
                status,
                error_payload(status, str(exc), type(exc).__name__),
            )

    def _write_json(
        self, writer: asyncio.StreamWriter, response: Response
    ) -> None:
        """Emit a complete JSON response with Content-Length."""
        payload = response.payload if response.payload is not None else {}
        body = (
            json.dumps(payload, sort_keys=True, indent=2) + "\n"
        ).encode("utf-8")
        writer.write(
            self._head(
                response.status,
                "application/json",
                content_length=len(body),
            )
        )
        writer.write(body)

    async def _write_stream(
        self, writer: asyncio.StreamWriter, response: Response
    ) -> None:
        """Emit an NDJSON stream delimited by connection close."""
        writer.write(self._head(response.status, "application/x-ndjson"))
        await writer.drain()
        assert response.stream is not None
        async for line in response.stream:
            writer.write((line + "\n").encode("utf-8"))
            await writer.drain()

    @staticmethod
    def _head(
        status: int,
        content_type: str,
        content_length: Optional[int] = None,
    ) -> bytes:
        """Status line + headers; omitted length means close-delimited."""
        lines = [
            f"HTTP/1.1 {status} {REASONS.get(status, 'OK')}",
            f"Content-Type: {content_type}",
            "Connection: close",
        ]
        if content_length is not None:
            lines.append(f"Content-Length: {content_length}")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> str:
        """Bind the socket, start the manager; returns the service URL."""
        self._loop = asyncio.get_running_loop()
        self._done = asyncio.Event()
        self.manager.start()
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]
        self.url = f"http://{self.host}:{self.port}"
        if self.max_jobs is not None:
            self._loop.create_task(self._watch_max_jobs())
        self._ready.set()
        return self.url

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain jobs, close engine."""
        if self._server is not None:
            self._server.close()
        await self.manager.close(drain=True)
        if self._server is not None:
            await self._server.wait_closed()
            self._server = None

    def request_shutdown(self) -> None:
        """Flip the done flag; safe to call from signal handlers."""
        if self._done is not None:
            self._done.set()

    async def _watch_max_jobs(self) -> None:
        """Self-terminate after ``max_jobs`` finished jobs (test aid).

        Waits for quiescence first — no in-flight request and a short
        idle window — so a scripted client still gets to download the
        final job's results before the socket goes away.
        """
        assert self.max_jobs is not None
        assert self._done is not None and self._loop is not None
        while not self._done.is_set():
            quiescent = (
                self._inflight_requests == 0
                and self._loop.time() - self._last_activity > 1.0
            )
            if self.manager.jobs_finished >= self.max_jobs and quiescent:
                self._done.set()
                return
            await asyncio.sleep(0.05)

    async def run(
        self, ready: Optional[Callable[[str], None]] = None
    ) -> None:
        """Foreground mode: serve until a signal or ``max_jobs`` fires."""
        url = await self.start()
        assert self._done is not None and self._loop is not None
        if threading.current_thread() is threading.main_thread():
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    self._loop.add_signal_handler(signum, self._done.set)
                except NotImplementedError:  # platform without loop signals
                    pass
        if ready is not None:
            ready(url)
        try:
            await self._done.wait()
        finally:
            await self.stop()

    # ------------------------------------------------------------------
    # background-thread mode (tests, embedding)
    # ------------------------------------------------------------------
    def start_background(self, timeout_s: float = 10.0) -> str:
        """Run the server on a daemon thread; returns the bound URL."""
        if self._thread is not None:
            raise ServeError("server already running in the background")
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self.run()),
            name="repro-serve",
            daemon=True,
        )
        self._thread.start()
        if not self._ready.wait(timeout_s):
            raise ServeError(
                f"service did not come up within {timeout_s:.0f}s"
            )
        assert self.url is not None
        return self.url

    def stop_background(self, timeout_s: float = 30.0) -> None:
        """Drain and stop a background server, joining its thread."""
        if self._thread is None:
            return
        if self._loop is not None and self._done is not None:
            self._loop.call_soon_threadsafe(self._done.set)
        self._thread.join(timeout_s)
        self._thread = None
