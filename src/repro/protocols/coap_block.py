"""CoAP blockwise transfer (RFC 7959 Block2 subset).

Constrained responses bigger than one datagram are split into blocks:
the Block2 option value packs ``(block number, more-flag, size
exponent)``; the client walks the blocks with sequential GETs.
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import ProtocolError
from .coap import (
    CoapCode,
    CoapMessage,
    CoapServer,
    decode_message,
    encode_message,
)

#: Block2 option number (RFC 7959).
OPTION_BLOCK2 = 23
#: Valid block sizes: 2^(szx+4) for szx in 0..6.
VALID_BLOCK_SIZES = tuple(2 ** (szx + 4) for szx in range(7))


def encode_block_option(number: int, more: bool, size: int) -> bytes:
    """Pack a Block2 value into its minimal byte form."""
    if size not in VALID_BLOCK_SIZES:
        raise ProtocolError(f"invalid block size {size}")
    if number < 0 or number >= 1 << 20:
        raise ProtocolError(f"block number out of range: {number}")
    szx = VALID_BLOCK_SIZES.index(size)
    value = (number << 4) | (0x8 if more else 0x0) | szx
    if value == 0:
        return b""
    length = (value.bit_length() + 7) // 8
    return value.to_bytes(length, "big")


def decode_block_option(data: bytes) -> Tuple[int, bool, int]:
    """Unpack a Block2 value; returns (number, more, size)."""
    if len(data) > 3:
        raise ProtocolError(f"block option too long: {len(data)} bytes")
    value = int.from_bytes(data, "big")
    szx = value & 0x7
    if szx == 7:
        raise ProtocolError("reserved SZX value 7")
    return value >> 4, bool(value & 0x8), VALID_BLOCK_SIZES[szx]


class BlockwiseServer(CoapServer):
    """A CoAP server that serves large resources block by block."""

    def __init__(self, block_size: int = 64):
        super().__init__()
        if block_size not in VALID_BLOCK_SIZES:
            raise ProtocolError(f"invalid block size {block_size}")
        self.block_size = block_size

    def handle(self, request_bytes: bytes) -> bytes:
        """Serve one GET, slicing the resource per the Block2 option."""
        request = decode_message(request_bytes)
        self.request_count += 1
        if request.code != CoapCode.GET:
            return encode_message(request.reply(CoapCode.BAD_REQUEST, b""))
        payload = self._resources.get(request.uri_path())
        if payload is None:
            return encode_message(request.reply(CoapCode.NOT_FOUND, b""))
        number = 0
        for option_number, value in request.options:
            if option_number == OPTION_BLOCK2:
                number, _, _ = decode_block_option(value)
        start = number * self.block_size
        if start >= len(payload) and len(payload) > 0:
            return encode_message(request.reply(CoapCode.BAD_REQUEST, b""))
        chunk = payload[start : start + self.block_size]
        more = start + self.block_size < len(payload)
        response = request.reply(CoapCode.CONTENT, chunk)
        response.options.append(
            (OPTION_BLOCK2, encode_block_option(number, more, self.block_size))
        )
        return encode_message(response)


def fetch_blockwise(
    server: BlockwiseServer, path: str, first_message_id: int = 1
) -> Tuple[bytes, int]:
    """Client side: GET a resource block by block.

    Returns ``(payload, request_count)``.
    """
    collected: List[bytes] = []
    number = 0
    message_id = first_message_id
    while True:
        request = CoapMessage.get(path, message_id=message_id)
        request.options.append(
            (
                OPTION_BLOCK2,
                encode_block_option(number, False, server.block_size),
            )
        )
        response = decode_message(server.handle(encode_message(request)))
        if response.code != CoapCode.CONTENT:
            raise ProtocolError(
                f"blockwise GET failed with {CoapCode.dotted(response.code)}"
            )
        collected.append(response.payload)
        more = False
        for option_number, value in response.options:
            if option_number == OPTION_BLOCK2:
                _, more, _ = decode_block_option(value)
        if not more:
            return b"".join(collected), number + 1
        number += 1
        message_id = (message_id + 1) % 0x10000
