"""Blynk binary framing for the smartphone-interaction app (A5).

Blynk frames are ``(command, message_id, length)`` headers followed by a
NUL-separated ('\\0') body — e.g. a virtual-pin write is
``vw\\0<pin>\\0<value>``.  This module implements the framing plus the
virtual-pin write/read commands the app uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..errors import ProtocolError

#: Frame header size: 1-byte command, 2-byte id, 2-byte length.
HEADER_BYTES = 5


class BlynkError(ProtocolError):
    """Malformed Blynk frame."""


class BlynkCommand:
    """Command codes (subset of the Blynk wire protocol)."""

    RESPONSE = 0
    LOGIN = 2
    PING = 6
    HARDWARE = 20

    #: Status code for OK responses.
    STATUS_OK = 200


@dataclass(frozen=True)
class BlynkFrame:
    """One framed Blynk message."""

    command: int
    message_id: int
    body: bytes = b""

    def parts(self) -> List[str]:
        """Split the body on NUL separators."""
        if not self.body:
            return []
        return self.body.decode("utf-8").split("\x00")


def encode_frame(frame: BlynkFrame) -> bytes:
    """Serialize a frame to wire bytes."""
    if not 0 <= frame.command <= 255:
        raise BlynkError(f"bad command {frame.command}")
    if not 0 <= frame.message_id <= 0xFFFF:
        raise BlynkError(f"bad message id {frame.message_id}")
    if len(frame.body) > 0xFFFF:
        raise BlynkError(f"body too long: {len(frame.body)}")
    return (
        bytes([frame.command])
        + frame.message_id.to_bytes(2, "big")
        + len(frame.body).to_bytes(2, "big")
        + frame.body
    )


def decode_frame(data: bytes) -> Tuple[BlynkFrame, bytes]:
    """Parse one frame off the front of ``data``; returns (frame, rest)."""
    if len(data) < HEADER_BYTES:
        raise BlynkError("truncated header")
    command = data[0]
    message_id = int.from_bytes(data[1:3], "big")
    length = int.from_bytes(data[3:5], "big")
    end = HEADER_BYTES + length
    if len(data) < end:
        raise BlynkError("truncated body")
    frame = BlynkFrame(command, message_id, data[HEADER_BYTES:end])
    return frame, data[end:]


def decode_stream(data: bytes) -> List[BlynkFrame]:
    """Parse a back-to-back sequence of frames."""
    frames: List[BlynkFrame] = []
    rest = data
    while rest:
        frame, rest = decode_frame(rest)
        frames.append(frame)
    return frames


def virtual_write(message_id: int, pin: int, value: str) -> BlynkFrame:
    """A ``vw`` hardware frame updating virtual pin ``pin``."""
    if pin < 0:
        raise BlynkError(f"bad virtual pin {pin}")
    body = f"vw\x00{pin}\x00{value}".encode("utf-8")
    return BlynkFrame(BlynkCommand.HARDWARE, message_id, body)


def parse_virtual_write(frame: BlynkFrame) -> Tuple[int, str]:
    """Extract (pin, value) from a ``vw`` frame."""
    parts = frame.parts()
    if len(parts) != 3 or parts[0] != "vw":
        raise BlynkError(f"not a virtual write: {parts}")
    try:
        return int(parts[1]), parts[2]
    except ValueError:
        raise BlynkError(f"bad pin {parts[1]!r}") from None


def ok_response(message_id: int) -> BlynkFrame:
    """Server OK acknowledgement for ``message_id``."""
    return BlynkFrame(
        BlynkCommand.RESPONSE,
        message_id,
        str(BlynkCommand.STATUS_OK).encode("utf-8"),
    )
