"""Wire-protocol codecs used by the IoT-protocol apps (Table II group 1).

Every codec here is a real, round-trippable implementation built from
scratch: a JSON subset (arduinoJSON / M2X), a CoAP subset (RFC 7252
headers + options), the Blynk binary framing, the M2X payload format, and
the chunk/rolling-hash sync used by the Dropbox-manager app.
"""

from .blynk import (
    BlynkCommand,
    BlynkError,
    BlynkFrame,
    decode_frame,
    decode_stream,
    encode_frame,
    ok_response,
    parse_virtual_write,
    virtual_write,
)
from .coap import (
    CoapCode,
    CoapError,
    CoapMessage,
    CoapServer,
    CoapType,
    decode_message,
    encode_message,
)
from .m2x import M2XBatch, build_update_payload, parse_update_payload
from .minijson import JsonError, dumps, loads
from .sync import (
    DEFAULT_CHUNK_BYTES,
    ChunkSignature,
    ChunkStore,
    FileDelta,
    chunk_bytes,
    compute_delta,
    rolling_checksum,
    strong_digest,
)

__all__ = [
    "BlynkCommand",
    "BlynkError",
    "BlynkFrame",
    "ChunkSignature",
    "ChunkStore",
    "CoapCode",
    "CoapError",
    "CoapMessage",
    "CoapServer",
    "CoapType",
    "DEFAULT_CHUNK_BYTES",
    "FileDelta",
    "JsonError",
    "M2XBatch",
    "build_update_payload",
    "chunk_bytes",
    "compute_delta",
    "decode_frame",
    "decode_message",
    "decode_stream",
    "dumps",
    "encode_frame",
    "encode_message",
    "loads",
    "ok_response",
    "parse_update_payload",
    "parse_virtual_write",
    "rolling_checksum",
    "strong_digest",
    "virtual_write",
]
