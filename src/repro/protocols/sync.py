"""Chunked file sync with rolling checksums (the Dropbox-manager app).

A file is split into fixed-size chunks; each chunk is identified by a fast
Adler-32-style rolling checksum plus a strong SHA-1 digest.  Computing a
delta against the previously synced version yields exactly the chunks that
must be uploaded — rsync's core idea, scaled to MCU-sized logs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List

#: Modulus for the Adler-style checksum.
_ADLER_MOD = 65521
#: Default chunk size for the app's sensor logs.
DEFAULT_CHUNK_BYTES = 512


def rolling_checksum(chunk: bytes) -> int:
    """Adler-32-style weak checksum of a chunk."""
    low, high = 1, 0
    for byte in chunk:
        low = (low + byte) % _ADLER_MOD
        high = (high + low) % _ADLER_MOD
    return (high << 16) | low


def strong_digest(chunk: bytes) -> str:
    """Strong chunk identity (SHA-1, as rsync uses MD4/MD5-class hashes)."""
    return hashlib.sha1(chunk).hexdigest()


def chunk_bytes(data: bytes, chunk_size: int = DEFAULT_CHUNK_BYTES) -> List[bytes]:
    """Split data into fixed-size chunks (last one may be short)."""
    if chunk_size <= 0:
        raise ValueError(f"chunk size must be positive, got {chunk_size}")
    return [data[pos : pos + chunk_size] for pos in range(0, len(data), chunk_size)]


@dataclass(frozen=True)
class ChunkSignature:
    """Identity of one chunk: (weak, strong) pair."""

    weak: int
    strong: str


@dataclass
class FileDelta:
    """Result of a delta computation: what must be uploaded."""

    total_chunks: int
    changed_indices: List[int] = field(default_factory=list)
    upload_bytes: int = 0

    @property
    def unchanged_chunks(self) -> int:
        """Chunks the server already has."""
        return self.total_chunks - len(self.changed_indices)


class ChunkStore:
    """Server-side view: chunk signatures of the last synced version."""

    def __init__(self, chunk_size: int = DEFAULT_CHUNK_BYTES):
        self.chunk_size = chunk_size
        self._signatures: Dict[int, ChunkSignature] = {}
        self.synced_bytes = 0
        self.sync_count = 0

    def signatures(self) -> Dict[int, ChunkSignature]:
        """Current signature table by chunk index."""
        return dict(self._signatures)

    def accept(self, data: bytes) -> None:
        """Record ``data`` as the new synced version."""
        self._signatures = {
            index: ChunkSignature(rolling_checksum(chunk), strong_digest(chunk))
            for index, chunk in enumerate(chunk_bytes(data, self.chunk_size))
        }
        self.synced_bytes = len(data)
        self.sync_count += 1


def compute_delta(
    data: bytes,
    previous: Dict[int, ChunkSignature],
    chunk_size: int = DEFAULT_CHUNK_BYTES,
) -> FileDelta:
    """Chunks of ``data`` that differ from the ``previous`` signatures.

    The weak checksum screens first; the strong digest confirms — the weak
    check is cheap for the common unchanged case, the strong one prevents
    checksum-collision corruption.
    """
    chunks = chunk_bytes(data, chunk_size)
    delta = FileDelta(total_chunks=len(chunks))
    for index, chunk in enumerate(chunks):
        signature = previous.get(index)
        if signature is not None and signature.weak == rolling_checksum(chunk):
            if signature.strong == strong_digest(chunk):
                continue
        delta.changed_indices.append(index)
        delta.upload_bytes += len(chunk)
    return delta
