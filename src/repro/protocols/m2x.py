"""AT&T M2X-style cloud payloads for the M2X app (A4).

M2X devices push batched stream values as a JSON document:

    {"values": {"<stream>": [{"timestamp": ..., "value": ...}, ...]}}

wrapped in an HTTP-like PUT with an API-key header.  This module builds
and parses those payloads using the in-house JSON codec.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..errors import ProtocolError
from .minijson import dumps, loads


@dataclass
class M2XBatch:
    """Accumulates (timestamp, value) points per named stream."""

    device_id: str
    streams: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)

    def add(self, stream: str, timestamp: float, value: float) -> None:
        """Append one data point to a stream."""
        self.streams.setdefault(stream, []).append((timestamp, value))

    @property
    def point_count(self) -> int:
        """Total number of points across streams."""
        return sum(len(points) for points in self.streams.values())


def _format_timestamp(timestamp: float) -> str:
    """Seconds-since-start rendered as a fixed-width pseudo-ISO stamp."""
    whole = int(timestamp)
    millis = int(round((timestamp - whole) * 1000))
    if millis == 1000:
        whole, millis = whole + 1, 0
    hours, rem = divmod(whole, 3600)
    minutes, seconds = divmod(rem, 60)
    return f"2019-01-01T{hours:02d}:{minutes:02d}:{seconds:02d}.{millis:03d}Z"


def build_update_payload(batch: M2XBatch, api_key: str) -> bytes:
    """Render the batch as an HTTP PUT with a JSON body."""
    if not batch.device_id:
        raise ProtocolError("batch has no device id")
    body = dumps(
        {
            "values": {
                stream: [
                    {"timestamp": _format_timestamp(ts), "value": value}
                    for ts, value in points
                ]
                for stream, points in sorted(batch.streams.items())
            }
        }
    )
    request = (
        f"PUT /v2/devices/{batch.device_id}/updates HTTP/1.1\r\n"
        f"Host: api-m2x.att.com\r\n"
        f"X-M2X-KEY: {api_key}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"\r\n"
        f"{body}"
    )
    return request.encode("utf-8")


def parse_update_payload(payload: bytes) -> M2XBatch:
    """Parse a PUT produced by :func:`build_update_payload` (server side)."""
    text = payload.decode("utf-8")
    try:
        headers, body = text.split("\r\n\r\n", 1)
    except ValueError:
        raise ProtocolError("missing header/body separator") from None
    request_line = headers.split("\r\n")[0]
    parts = request_line.split(" ")
    if len(parts) != 3 or parts[0] != "PUT":
        raise ProtocolError(f"bad request line {request_line!r}")
    path_parts = parts[1].split("/")
    if len(path_parts) < 4 or path_parts[2] != "devices":
        raise ProtocolError(f"bad path {parts[1]!r}")
    device_id = path_parts[3]
    declared = None
    for line in headers.split("\r\n")[1:]:
        name, _, value = line.partition(":")
        if name.strip().lower() == "content-length":
            declared = int(value.strip())
    if declared is not None and declared != len(body):
        raise ProtocolError(
            f"content-length mismatch: {declared} != {len(body)}"
        )
    document = loads(body)
    batch = M2XBatch(device_id=device_id)
    for stream, points in document["values"].items():
        for point in points:
            batch.add(stream, _parse_timestamp(point["timestamp"]), point["value"])
    return batch


def _parse_timestamp(stamp: str) -> float:
    time_part = stamp.split("T")[1].rstrip("Z")
    clock, _, millis = time_part.partition(".")
    hours, minutes, seconds = (int(part) for part in clock.split(":"))
    return hours * 3600 + minutes * 60 + seconds + int(millis) / 1000.0
