"""A from-scratch JSON subset: the arduinoJSON app's formatting library.

Supports objects, arrays, strings (with escapes), numbers, booleans and
null — the subset embedded JSON libraries implement.  The app's work is
string-to-double conversion, buffer writing and parsing, so this module
deliberately does everything manually instead of importing :mod:`json`.
"""

from __future__ import annotations

from typing import Any, List

from ..errors import ProtocolError


class JsonError(ProtocolError):
    """Malformed JSON document or unserializable value."""


_ESCAPES = {
    '"': '\\"',
    "\\": "\\\\",
    "\n": "\\n",
    "\r": "\\r",
    "\t": "\\t",
    "\b": "\\b",
    "\f": "\\f",
}

_UNESCAPES = {
    '"': '"',
    "\\": "\\",
    "n": "\n",
    "r": "\r",
    "t": "\t",
    "b": "\b",
    "f": "\f",
    "/": "/",
}


def _encode_string(text: str) -> str:
    pieces = ['"']
    for char in text:
        if char in _ESCAPES:
            pieces.append(_ESCAPES[char])
        elif ord(char) < 0x20:
            pieces.append(f"\\u{ord(char):04x}")
        else:
            pieces.append(char)
    pieces.append('"')
    return "".join(pieces)


def _encode_number(value: float) -> str:
    if isinstance(value, bool):  # guard: bool is an int subclass
        raise JsonError("bool reached number encoder")
    if isinstance(value, int):
        return str(value)
    if value != value or value in (float("inf"), float("-inf")):
        raise JsonError(f"non-finite number {value!r}")
    text = repr(float(value))
    return text


def dumps(value: Any) -> str:
    """Serialize ``value`` to a JSON document string."""
    if value is None:
        return "null"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, str):
        return _encode_string(value)
    if isinstance(value, (int, float)):
        return _encode_number(value)
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(dumps(item) for item in value) + "]"
    if isinstance(value, dict):
        pieces = []
        for key, item in value.items():
            if not isinstance(key, str):
                raise JsonError(f"object keys must be strings, got {key!r}")
            pieces.append(_encode_string(key) + ":" + dumps(item))
        return "{" + ",".join(pieces) + "}"
    raise JsonError(f"cannot serialize {type(value).__name__}")


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def error(self, message: str) -> JsonError:
        return JsonError(f"{message} at offset {self.pos}")

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos] in " \t\r\n":
            self.pos += 1

    def peek(self) -> str:
        if self.pos >= len(self.text):
            raise self.error("unexpected end of document")
        return self.text[self.pos]

    def expect(self, char: str) -> None:
        if self.peek() != char:
            raise self.error(f"expected {char!r}, found {self.peek()!r}")
        self.pos += 1

    def parse_value(self) -> Any:
        self.skip_ws()
        char = self.peek()
        if char == "{":
            return self.parse_object()
        if char == "[":
            return self.parse_array()
        if char == '"':
            return self.parse_string()
        if char in "-0123456789":
            return self.parse_number()
        for literal, value in (("true", True), ("false", False), ("null", None)):
            if self.text.startswith(literal, self.pos):
                self.pos += len(literal)
                return value
        raise self.error(f"unexpected character {char!r}")

    def parse_object(self) -> dict:
        self.expect("{")
        result: dict = {}
        self.skip_ws()
        if self.peek() == "}":
            self.pos += 1
            return result
        while True:
            self.skip_ws()
            key = self.parse_string()
            self.skip_ws()
            self.expect(":")
            result[key] = self.parse_value()
            self.skip_ws()
            if self.peek() == ",":
                self.pos += 1
                continue
            self.expect("}")
            return result

    def parse_array(self) -> list:
        self.expect("[")
        result: list = []
        self.skip_ws()
        if self.peek() == "]":
            self.pos += 1
            return result
        while True:
            result.append(self.parse_value())
            self.skip_ws()
            if self.peek() == ",":
                self.pos += 1
                continue
            self.expect("]")
            return result

    def parse_string(self) -> str:
        self.expect('"')
        pieces: List[str] = []
        while True:
            char = self.peek()
            self.pos += 1
            if char == '"':
                return "".join(pieces)
            if char == "\\":
                escape = self.peek()
                self.pos += 1
                if escape == "u":
                    code = self.text[self.pos : self.pos + 4]
                    if len(code) < 4:
                        raise self.error("truncated unicode escape")
                    try:
                        pieces.append(chr(int(code, 16)))
                    except ValueError:
                        raise self.error(f"bad unicode escape {code!r}")
                    self.pos += 4
                elif escape in _UNESCAPES:
                    pieces.append(_UNESCAPES[escape])
                else:
                    raise self.error(f"bad escape \\{escape}")
            elif ord(char) < 0x20:
                raise self.error("raw control character in string")
            else:
                pieces.append(char)

    def parse_number(self) -> float:
        start = self.pos
        if self.peek() == "-":
            self.pos += 1
        while self.pos < len(self.text) and self.text[self.pos] in "0123456789":
            self.pos += 1
        is_float = False
        if self.pos < len(self.text) and self.text[self.pos] == ".":
            is_float = True
            self.pos += 1
            while (
                self.pos < len(self.text) and self.text[self.pos] in "0123456789"
            ):
                self.pos += 1
        if self.pos < len(self.text) and self.text[self.pos] in "eE":
            is_float = True
            self.pos += 1
            if self.pos < len(self.text) and self.text[self.pos] in "+-":
                self.pos += 1
            while (
                self.pos < len(self.text) and self.text[self.pos] in "0123456789"
            ):
                self.pos += 1
        literal = self.text[start : self.pos]
        if literal in ("", "-"):
            raise self.error("malformed number")
        try:
            return float(literal) if is_float else int(literal)
        except ValueError:
            raise self.error(f"malformed number {literal!r}")


def loads(text: str) -> Any:
    """Parse a JSON document string."""
    parser = _Parser(text)
    value = parser.parse_value()
    parser.skip_ws()
    if parser.pos != len(text):
        raise parser.error("trailing data after document")
    return value
