"""A CoAP (RFC 7252) subset codec for the CoAP-server app (A1).

Implements the fixed 4-byte header, tokens, delta-encoded options with
extended deltas/lengths, and the 0xFF payload marker — enough to encode
and decode real GET/2.05-Content exchanges byte-exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..errors import ProtocolError

#: Protocol version (the only one defined).
COAP_VERSION = 1
#: Payload marker byte.
PAYLOAD_MARKER = 0xFF


class CoapError(ProtocolError):
    """Malformed CoAP message."""


class CoapType:
    """Message types (RFC 7252 §3)."""

    CONFIRMABLE = 0
    NON_CONFIRMABLE = 1
    ACKNOWLEDGEMENT = 2
    RESET = 3


class CoapCode:
    """Request/response codes as (class, detail) packed into one byte."""

    EMPTY = 0x00
    GET = 0x01
    POST = 0x02
    PUT = 0x03
    DELETE = 0x04
    CONTENT = 0x45  # 2.05
    CHANGED = 0x44  # 2.04
    NOT_FOUND = 0x84  # 4.04
    BAD_REQUEST = 0x80  # 4.00

    @staticmethod
    def dotted(code: int) -> str:
        """Render a code in the RFC's c.dd form (e.g. 2.05)."""
        return f"{code >> 5}.{code & 0x1F:02d}"


#: Option numbers used by the app.
OPTION_URI_PATH = 11
OPTION_CONTENT_FORMAT = 12
OPTION_URI_QUERY = 15
OPTION_OBSERVE = 6


@dataclass
class CoapMessage:
    """One CoAP message: header fields, options, payload."""

    mtype: int
    code: int
    message_id: int
    token: bytes = b""
    options: List[Tuple[int, bytes]] = field(default_factory=list)
    payload: bytes = b""

    def uri_path(self) -> str:
        """Join the Uri-Path options into a path string."""
        segments = [
            value.decode("utf-8")
            for number, value in self.options
            if number == OPTION_URI_PATH
        ]
        return "/" + "/".join(segments)

    @classmethod
    def get(cls, path: str, message_id: int, token: bytes = b"\x01") -> "CoapMessage":
        """Build a confirmable GET for ``path``."""
        options = [
            (OPTION_URI_PATH, segment.encode("utf-8"))
            for segment in path.strip("/").split("/")
            if segment
        ]
        return cls(
            mtype=CoapType.CONFIRMABLE,
            code=CoapCode.GET,
            message_id=message_id,
            token=token,
            options=options,
        )

    def reply(self, code: int, payload: bytes) -> "CoapMessage":
        """Build the piggybacked ACK response to this request."""
        return CoapMessage(
            mtype=CoapType.ACKNOWLEDGEMENT,
            code=code,
            message_id=self.message_id,
            token=self.token,
            options=[(OPTION_CONTENT_FORMAT, b"\x00")],
            payload=payload,
        )


def _encode_option_part(value: int) -> Tuple[int, bytes]:
    """Encode an option delta/length nibble with its extended bytes."""
    if value < 0:
        raise CoapError(f"negative option field {value}")
    if value < 13:
        return value, b""
    if value < 269:
        return 13, bytes([value - 13])
    if value < 65805:
        extended = value - 269
        return 14, bytes([extended >> 8, extended & 0xFF])
    raise CoapError(f"option field too large: {value}")


def encode_message(message: CoapMessage) -> bytes:
    """Serialize a :class:`CoapMessage` to wire bytes."""
    if not 0 <= message.message_id <= 0xFFFF:
        raise CoapError(f"message id out of range: {message.message_id}")
    if len(message.token) > 8:
        raise CoapError(f"token longer than 8 bytes: {len(message.token)}")
    if not 0 <= message.mtype <= 3:
        raise CoapError(f"bad message type {message.mtype}")
    header = bytearray()
    header.append((COAP_VERSION << 6) | (message.mtype << 4) | len(message.token))
    header.append(message.code)
    header += message.message_id.to_bytes(2, "big")
    header += message.token

    previous_number = 0
    for number, value in sorted(message.options, key=lambda opt: opt[0]):
        delta = number - previous_number
        delta_nibble, delta_ext = _encode_option_part(delta)
        length_nibble, length_ext = _encode_option_part(len(value))
        header.append((delta_nibble << 4) | length_nibble)
        header += delta_ext + length_ext + value
        previous_number = number

    if message.payload:
        header.append(PAYLOAD_MARKER)
        header += message.payload
    return bytes(header)


class _Reader:
    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def take(self, count: int) -> bytes:
        if self.pos + count > len(self.data):
            raise CoapError("truncated message")
        chunk = self.data[self.pos : self.pos + count]
        self.pos += count
        return chunk

    @property
    def remaining(self) -> int:
        return len(self.data) - self.pos


def _decode_option_part(nibble: int, reader: _Reader) -> int:
    if nibble < 13:
        return nibble
    if nibble == 13:
        return reader.take(1)[0] + 13
    if nibble == 14:
        high, low = reader.take(2)
        return (high << 8 | low) + 269
    raise CoapError("reserved option nibble 15")


def decode_message(data: bytes) -> CoapMessage:
    """Parse wire bytes into a :class:`CoapMessage`."""
    reader = _Reader(data)
    first, code = reader.take(2)
    version = first >> 6
    if version != COAP_VERSION:
        raise CoapError(f"unsupported version {version}")
    mtype = (first >> 4) & 0x3
    token_length = first & 0xF
    if token_length > 8:
        raise CoapError(f"bad token length {token_length}")
    message_id = int.from_bytes(reader.take(2), "big")
    token = reader.take(token_length)

    options: List[Tuple[int, bytes]] = []
    payload = b""
    number = 0
    while reader.remaining:
        byte = reader.take(1)[0]
        if byte == PAYLOAD_MARKER:
            if reader.remaining == 0:
                raise CoapError("payload marker with empty payload")
            payload = reader.take(reader.remaining)
            break
        delta = _decode_option_part(byte >> 4, reader)
        length = _decode_option_part(byte & 0xF, reader)
        number += delta
        options.append((number, reader.take(length)))
    return CoapMessage(
        mtype=mtype,
        code=code,
        message_id=message_id,
        token=token,
        options=options,
        payload=payload,
    )


class CoapServer:
    """A tiny observe-style resource server keyed by URI path."""

    def __init__(self) -> None:
        self._resources: Dict[str, bytes] = {}
        self.request_count = 0

    def publish(self, path: str, payload: bytes) -> None:
        """Create or update a resource."""
        self._resources[self._normalize(path)] = payload

    @staticmethod
    def _normalize(path: str) -> str:
        return "/" + path.strip("/")

    def handle(self, request_bytes: bytes) -> bytes:
        """Process one encoded request; returns the encoded response."""
        request = decode_message(request_bytes)
        self.request_count += 1
        if request.code != CoapCode.GET:
            return encode_message(request.reply(CoapCode.BAD_REQUEST, b""))
        payload = self._resources.get(request.uri_path())
        if payload is None:
            return encode_message(request.reply(CoapCode.NOT_FOUND, b""))
        return encode_message(request.reply(CoapCode.CONTENT, payload))
