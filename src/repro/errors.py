"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """The discrete-event kernel was used incorrectly or reached a bad state."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or a process misbehaved."""


class HardwareError(ReproError):
    """A hardware model was configured or driven incorrectly."""


class PowerStateError(HardwareError):
    """An illegal power-state transition was requested."""


class BusError(HardwareError):
    """A PIO bus transfer was malformed (unknown device, bad size, ...)."""


class CapacityError(HardwareError):
    """A buffer or memory capacity was exceeded (e.g. MCU batching buffer)."""


class SensorError(ReproError):
    """A sensor read failed its availability checks or was misconfigured."""


class OffloadError(ReproError):
    """An app cannot be offloaded to the MCU (capacity or QoS violation)."""


class QoSViolation(ReproError):
    """A scheme violated an app's sampling-rate or deadline requirement."""


class WorkloadError(ReproError):
    """A workload/scenario definition is inconsistent."""


class ProtocolError(ReproError):
    """A protocol codec (CoAP, Blynk, M2X, JSON) rejected a message."""
