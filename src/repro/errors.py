"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """The discrete-event kernel was used incorrectly or reached a bad state."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or a process misbehaved."""


class HardwareError(ReproError):
    """A hardware model was configured or driven incorrectly."""


class PowerStateError(HardwareError):
    """An illegal power-state transition was requested."""


class BusError(HardwareError):
    """A PIO bus transfer was malformed (unknown device, bad size, ...)."""


class CapacityError(HardwareError):
    """A buffer or memory capacity was exceeded (e.g. MCU batching buffer)."""


class SensorError(ReproError):
    """A sensor read failed its availability checks or was misconfigured."""


class OffloadError(ReproError):
    """An app cannot be offloaded to the MCU (capacity or QoS violation)."""


class QoSViolation(ReproError):
    """A scheme violated an app's sampling-rate or deadline requirement."""


class WorkloadError(ReproError):
    """A workload/scenario definition is inconsistent."""


class AnalyticUnsupported(ReproError):
    """A scenario falls outside the analytic tier's validated envelope."""


class BackendError(ReproError):
    """An execution backend was misconfigured or lost its workers."""


class ChunkTaskError(BackendError):
    """A task inside a dispatched chunk raised a non-library exception.

    Raised worker-side by the chunked-dispatch loop so the parent learns
    *which* item failed: ``index`` is the batch-global item position and
    ``label`` the caller-supplied description of that item (the engine
    passes the scenario's scheme/apps).  The original exception is the
    ``__cause__`` where the process boundary preserves it; its ``repr``
    is always embedded in the message.
    """

    def __init__(
        self, message: str, index: int = -1, label: str = ""
    ) -> None:
        super().__init__(message)
        self.index = index
        self.label = label

    def __reduce__(self):
        # Exceptions pickle through their constructor args; carry the
        # attribution attributes across process/socket boundaries too.
        return (type(self), (self.args[0], self.index, self.label))


class ProtocolError(ReproError):
    """A protocol codec (CoAP, Blynk, M2X, JSON) rejected a message."""


class ServeError(ReproError):
    """The simulation service (``repro serve``) rejected a request."""


class JobSpecError(ServeError):
    """A submitted job specification is malformed (HTTP 400)."""


class UnknownJobError(ServeError):
    """A job id does not exist on this service (HTTP 404)."""


class QuotaError(ServeError):
    """A client exceeded its concurrent-job quota (HTTP 429)."""


class ServiceClosedError(ServeError):
    """The service is draining or closed and accepts no new jobs (HTTP 503)."""
