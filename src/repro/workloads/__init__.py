"""Workload definitions: Table II rendering and Figure 11's combinations."""

from .combos import FIG11_COMBOS, HEAVY_SCENARIOS, shared_sensors
from .generator import SyntheticApp, make_synthetic_app
from .table2 import table1_rows, table2_rows

__all__ = [
    "FIG11_COMBOS",
    "HEAVY_SCENARIOS",
    "SyntheticApp",
    "make_synthetic_app",
    "shared_sensors",
    "table1_rows",
    "table2_rows",
]
