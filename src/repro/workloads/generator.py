"""Synthetic workload generator for parameter sweeps.

Real apps pin their rates and compute to Table II; sweeps over sampling
rate, instruction count or sensor mix need a configurable app.  A
:class:`SyntheticApp` computes honest per-sensor aggregates so every
scheme still produces verifiable results.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..apps.base import AppProfile, AppResult, IoTApp, SampleWindow
from ..errors import WorkloadError
from ..units import kib


class SyntheticApp(IoTApp):
    """A parameterized aggregation workload."""

    def __init__(self, profile: AppProfile):
        super().__init__(profile)
        self.windows_computed = 0

    def compute(self, window: SampleWindow) -> AppResult:
        """Reduce every subscribed stream to min/mean/max statistics."""
        stats: Dict[str, Dict[str, float]] = {}
        for sensor_id in self.profile.sensor_ids:
            series = window.scalar_series(sensor_id)
            if series.size == 0:
                raise WorkloadError(
                    f"{self.name}: no samples for {sensor_id} in window "
                    f"{window.window_index}"
                )
            stats[sensor_id] = {
                "n": int(series.size),
                "mean": float(np.mean(series)),
                "min": float(np.min(series)),
                "max": float(np.max(series)),
            }
        self.windows_computed += 1
        return self.make_result(
            window,
            {"stats": stats, "windows_computed": self.windows_computed},
        )


def make_synthetic_app(
    name: str,
    sensor_ids: Sequence[str] = ("S4",),
    rate_hz: Optional[float] = None,
    mips: float = 10.0,
    window_s: float = 1.0,
    heap_kb: float = 20.0,
    output_bytes: int = 64,
    heavy: bool = False,
) -> SyntheticApp:
    """Build a synthetic app; ``rate_hz`` overrides every sensor's QoS."""
    rate_overrides = (
        {sensor_id: rate_hz for sensor_id in sensor_ids} if rate_hz else {}
    )
    profile = AppProfile(
        table2_id="SYN",
        name=name,
        title=f"Synthetic {name}",
        category="Synthetic",
        user_task="Per-sensor aggregation",
        sensor_ids=tuple(sensor_ids),
        window_s=window_s,
        mips=mips,
        heap_bytes=kib(heap_kb),
        stack_bytes=kib(0.4),
        output_bytes=output_bytes,
        heavy=heavy,
        rate_overrides=rate_overrides,
    )
    return SyntheticApp(profile)
