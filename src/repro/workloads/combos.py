"""Multi-app combinations: Figure 11's 14 sensor-sharing scenarios and
Figure 12's heavy-weight scenarios."""

from __future__ import annotations

from typing import List, Set, Tuple

from ..apps.registry import create_app

#: The 14 combinations on Figure 11's x axis, in the paper's order.
#: Every combination shares at least one sensor between its apps (the
#: precondition for BEAM to help at all).
FIG11_COMBOS: Tuple[Tuple[str, ...], ...] = (
    ("A2", "A5"),
    ("A5", "A7"),
    ("A4", "A5"),
    ("A3", "A5"),
    ("A2", "A7"),
    ("A2", "A4"),
    ("A4", "A7"),
    ("A3", "A4"),
    ("A2", "A5", "A7"),
    ("A2", "A4", "A5"),
    ("A5", "A7", "A4"),
    ("A3", "A4", "A5"),
    ("A2", "A4", "A7"),
    ("A2", "A4", "A5", "A7"),
)

#: Figure 12's scenarios: the heavy-weight app alone and with light apps.
HEAVY_SCENARIOS: Tuple[Tuple[str, ...], ...] = (
    ("A11",),
    ("A11", "A6"),
    ("A11", "A6", "A1"),
)


def shared_sensors(app_ids: Tuple[str, ...]) -> Set[str]:
    """Sensors used by two or more of the apps (what BEAM can dedup)."""
    usage: dict = {}
    for app_id in app_ids:
        for sensor_id in create_app(app_id).profile.sensor_ids:
            usage[sensor_id] = usage.get(sensor_id, 0) + 1
    return {sensor_id for sensor_id, count in usage.items() if count > 1}


def combo_label(app_ids: Tuple[str, ...]) -> str:
    """Figure 11 x-axis label (e.g. ``A2+A4+A7``)."""
    return "+".join(app_ids)


def validate_combos() -> List[str]:
    """Sanity-check the combo table; returns problem descriptions."""
    problems = []
    for combo in FIG11_COMBOS:
        if not shared_sensors(combo):
            problems.append(f"{combo_label(combo)} shares no sensor")
        if len(set(combo)) != len(combo):
            problems.append(f"{combo_label(combo)} repeats an app")
    return problems
