"""Textual rendering of Table I (sensors) and Table II (workloads)."""

from __future__ import annotations

from typing import List

from ..apps.registry import APP_FACTORIES
from ..sensors.specs import TABLE_I
from ..units import to_kib, to_ms, to_mw


def table1_rows() -> List[str]:
    """Render the sensor specification table (Table I)."""
    header = (
        f"{'No.':<5}{'Sensor':<14}{'Bus':<14}{'Read(ms)':>10}"
        f"{'Typ(mW)':>10}{'Size(B)':>9}{'MaxHz':>10}{'QoSHz':>8}  MCU-friendly"
    )
    rows = [header]
    for spec in TABLE_I.values():
        max_rate = f"{spec.max_rate_hz:.0f}" if spec.max_rate_hz else "-"
        qos = f"{spec.qos_rate_hz:.0f}" if spec.qos_rate_hz else "-"
        rows.append(
            f"{spec.sensor_id:<5}{spec.name:<14}{spec.bus:<14}"
            f"{to_ms(spec.read_time_s):>10.2f}"
            f"{to_mw(spec.typical_power_w):>10.2f}"
            f"{spec.sample_bytes:>9}"
            f"{max_rate:>10}{qos:>8}  {'yes' if spec.mcu_friendly else 'NO'}"
        )
    return rows


def table2_rows() -> List[str]:
    """Render the workload table (Table II) with derived columns."""
    header = (
        f"{'No.':<5}{'Benchmark':<34}{'Category':<26}{'Sensors':<22}"
        f"{'Data(KB)':>9}{'#IRQs':>7}  Heavy"
    )
    rows = [header]
    for table2_id, factory in APP_FACTORIES.items():
        profile = factory().profile
        rows.append(
            f"{table2_id:<5}{profile.title:<34}{profile.category:<26}"
            f"{', '.join(profile.sensor_ids):<22}"
            f"{to_kib(profile.sensor_data_bytes):>9.2f}"
            f"{profile.interrupts_per_window:>7}"
            f"  {'yes' if profile.heavy else 'no'}"
        )
    return rows
