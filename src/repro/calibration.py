"""Calibration constants, each traced back to the paper.

Every timing/power constant the simulator needs is collected here, with the
section / figure of the ICDCS'19 paper that it was read from.  Nothing else in
the library hard-codes a physical constant; experiments that want to run
what-if sweeps construct a modified :class:`Calibration` and pass it down.

Where the paper publishes a number we use it directly; where it only implies
one (e.g. the idle hub draw behind Figure 1's "9.5x"), the derivation is
written next to the constant.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from .units import ms, mw, us


@dataclass(frozen=True)
class CpuCalibration:
    """Raspberry Pi 3B main-board CPU constants (paper §III-A, §IV-A)."""

    #: Active-mode power draw. Paper §III-A: "1.5 Watts vs. 5 Watts".
    active_power_w: float = 5.0
    #: Shallow (idle) sleep power. Paper §III-A.
    sleep_power_w: float = 1.5
    #: Awake-but-not-executing draw.  Between 1 kHz interrupts the governor
    #: cannot enter any C-state, so the core spins near active power —
    #: Fig. 5a's "the CPU is in active mode all the time".  The resulting
    #: break-even (4 mJ / (4.5 - 1.5) W = 1.33 ms) matches the paper's
    #: 1.14 ms to within the active-power difference.
    idle_power_w: float = 4.5
    #: Deep-sleep draw when the CPU has no registered upcoming work at all
    #: (idle hub; COM).  Derived: Figure 1 reports the baseline app average is
    #: 9.5x the *idle hub*; with baseline ~ 4.9 W that puts the whole idle hub
    #: near 0.5 W, of which the CPU contributes the bulk.
    deep_sleep_power_w: float = 0.35
    #: Sleep<->active transition latency. Paper §III-A: "around 1.6 ms" [34,35].
    transition_time_s: float = ms(1.6)
    #: Average power while transitioning. Paper §III-A: "as high as 2.5 Watts".
    transition_power_w: float = 2.5
    #: Peak instruction throughput. Paper §III-B1: "24,000 MIPS".
    mips: float = 24_000.0
    #: Effective single-thread throughput on app code (cache misses, branch
    #: stalls).  Derived so Fig. 6 and Fig. 8 agree: the step counter's 3.94
    #: MIPS-worth of work takes 2.21 ms => ~1783 MIPS effective.
    app_mips: float = 3.94e6 / 2.21e-3 / 1e6
    #: Per-sample CPU busy time during a *bulk* (batched) transfer; the
    #: per-interrupt setup is amortized, leaving the copy loop.  §III-A's
    #: example moves 1000 samples in ~100 ms including wire time.
    bulk_transfer_time_per_sample_s: float = us(60.0)
    #: Wake latency out of *deep* sleep (power-gated).  Deep sleep is only
    #: entered when no prompt interrupt response is required (idle hub, COM),
    #: so the longer latency is acceptable there.
    deep_transition_time_s: float = ms(10.0)
    #: Per-interrupt handling time on the CPU.  Fig. 8 charges 48 ms of
    #: bare IRQ-entry time to 1000 interrupts (48 us each); the energy
    #: figures (16% of the step counter's energy, Fig. 7) also include the
    #: priority check, acknowledgement and context switch the paper lists
    #: in §II-B, which lands the full path at ~110 us.
    interrupt_handling_time_s: float = us(110.0)
    #: Per-sample data-transfer driver overhead on the CPU (interrupt-mode
    #: load from PIO, store to DRAM).  Together with the ~60 us wire time of
    #: a 12 B sample this reproduces Fig. 8's 192 ms of transfer time for
    #: 1000 step-counter samples (§II-B quotes "around 0.1 ms" for the copy
    #: alone).
    transfer_time_per_sample_s: float = us(130.0)

    @property
    def wake_energy_j(self) -> float:
        """Energy of one sleep->active transition (4 mJ in the paper)."""
        return self.transition_power_w * self.transition_time_s

    @property
    def break_even_time_s(self) -> float:
        """Minimum idle gap for which sleeping saves energy.

        Paper §III-A: 4 mJ / (5 W - 1.5 W) = 1.14 ms.
        """
        return self.wake_energy_j / (self.active_power_w - self.sleep_power_w)


@dataclass(frozen=True)
class McuCalibration:
    """ESP8266 MCU-board constants (paper §III-B, §IV-A)."""

    #: Power while executing app code on the MCU core (ESP8266 @80 MHz draws
    #: ~70-80 mA at 3.3 V in CPU-bound operation plus board overheads).
    active_power_w: float = 0.35
    #: Power during a sensor read burst (MCU + I/O controller + sensor rail).
    #: Paper §III-A: "reading an accelerometer sensor consumes 1 W x 0.3 ms".
    sensor_read_power_w: float = 1.0
    #: Deep-sleep draw of the MCU board.
    sleep_power_w: float = mw(10.0)
    #: Effective instruction throughput.  Paper §III-B4: ESP8266 is "around
    #: 19x slower" than the Pi 3B => 24000 / 19.
    mips: float = 24_000.0 / 19.0
    #: User-data RAM available for batching buffers and offloaded apps.
    #: Paper §IV-A: "80 KB user-data RAM".
    ram_bytes: int = 80 * 1024
    #: Busy time the MCU spends on its side of transferring one sample to the
    #: CPU (putting the value on the PIO bus, handshake).  Fig. 4 charges 13%
    #: of transfer energy to the MCU vs 77% to the CPU.
    transfer_time_per_sample_s: float = us(30.0)
    #: Time to raise one interrupt line toward the main board.
    interrupt_raise_time_s: float = us(5.0)
    #: MCU-core time to run the sensor driver's decode/format step for one
    #: sample (Task III of §II-B).  The raw acquisition happens on the
    #: sensor/IO-controller rail in parallel; only decoding serializes on
    #: the MCU core.
    decode_time_per_sample_s: float = us(50.0)
    #: Awake-but-idle draw of the MCU core between polls.
    idle_power_w: float = 0.05
    #: Minimum gap for which the MCU light-sleeps between polls (the
    #: ESP8266's light sleep wakes in well under a millisecond, so the
    #: threshold is just a guard against thrashing at kHz rates).
    sleep_threshold_s: float = ms(5.0)


@dataclass(frozen=True)
class BusCalibration:
    """PIO interconnect between the MCU board and the main board."""

    #: Physical throughput of the UART link used between ESP8266 and the Pi.
    bandwidth_bytes_per_s: float = 230_400.0 / 8.0 * 10.0  # 230.4 kbaud, 8N1
    #: Per-transfer setup latency.
    setup_time_s: float = us(20.0)
    #: Power drawn while a transfer is in flight: the line drivers plus
    #: both ends' PIO controllers.  Fig. 4: the physical transfer is the
    #: cheap ~10% of data-transfer energy.
    active_power_w: float = 1.0


@dataclass(frozen=True)
class BoardCalibration:
    """Everything on the hub that is neither CPU, MCU, bus nor sensor."""

    #: Constant draw of regulators, DRAM refresh, PHYs... on the main board.
    overhead_power_w: float = 0.12
    #: Constant draw of the MCU carrier board.
    mcu_overhead_power_w: float = 0.02
    #: WiFi/Ethernet NIC power while transmitting app output upstream.
    nic_tx_power_w: float = 0.7
    #: NIC throughput for result upload.
    nic_bandwidth_bytes_per_s: float = 2e6


@dataclass(frozen=True)
class Calibration:
    """Bundle of all platform constants used by the simulator."""

    cpu: CpuCalibration = field(default_factory=CpuCalibration)
    mcu: McuCalibration = field(default_factory=McuCalibration)
    bus: BusCalibration = field(default_factory=BusCalibration)
    board: BoardCalibration = field(default_factory=BoardCalibration)

    #: Per-app slowdown of MCU execution relative to the CPU.  Defaults to the
    #: paper's 19x; apps whose inner loops suit the MCU poorly are worse
    #: (paper §IV-F: arduinoJSON needs 0.45 ms on the CPU but 7 ms on the MCU,
    #: i.e. ~15.6x, yet ends up slower overall because it moves so little
    #: data; heartbeat's filter kernels are float-heavy and blow past 19x).
    mcu_slowdown_overrides: Dict[str, float] = field(default_factory=dict)

    def mcu_slowdown(self, app_name: str) -> float:
        """MCU-vs-CPU slowdown factor for ``app_name``."""
        default = self.cpu.mips / self.mcu.mips
        return self.mcu_slowdown_overrides.get(app_name, default)

    @property
    def idle_hub_power_w(self) -> float:
        """Whole-hub draw with CPU and MCU asleep (Figure 1's 'Idle' bar)."""
        return (
            self.cpu.deep_sleep_power_w
            + self.mcu.sleep_power_w
            + self.board.overhead_power_w
            + self.board.mcu_overhead_power_w
        )

    def with_cpu(self, **changes: float) -> "Calibration":
        """Return a copy with CPU constants replaced (for sweeps)."""
        return replace(self, cpu=replace(self.cpu, **changes))

    def with_mcu(self, **changes: float) -> "Calibration":
        """Return a copy with MCU constants replaced (for sweeps)."""
        return replace(self, mcu=replace(self.mcu, **changes))

    def with_uniform_mcu_slowdown(self, factor: float) -> "Calibration":
        """Copy with one MCU-vs-CPU slowdown for *all* apps (for sweeps)."""
        if factor <= 0:
            raise ValueError(f"slowdown factor must be positive, got {factor}")
        return replace(
            self,
            mcu=replace(self.mcu, mips=self.cpu.mips / factor),
            mcu_slowdown_overrides={},
        )


#: Library-wide default calibration; matches the paper's platform.
DEFAULT_CALIBRATION = Calibration(
    mcu_slowdown_overrides={
        # Paper §IV-F: A3 (arduinoJSON) 0.45 ms CPU vs 7 ms MCU.
        "arduinojson": 15.6,
        # Paper §IV-F: A8 (heartbeat) regresses under COM (0.8x); its
        # integer-friendly inner loops keep the slowdown below the 19x
        # default, but the saved transfer cost is smaller still.
        "heartbeat": 8.0,
        # Paper Fig. 8: step-counter 2.21 ms CPU vs 21.7 ms MCU (~9.8x): the
        # step detector is integer threshold logic, which suits the MCU.
        "stepcounter": 9.8,
        # STA/LTA is running-sum integer arithmetic; at the default 19x the
        # offloaded computation would just miss the 1 s window, and the
        # paper both offloads the earthquake app successfully (§IV-E1) and
        # reports a COM speedup for it (Fig. 13).
        "earthquake": 6.0,
        # The MCU builds of the JPEG and fingerprint libraries are
        # fixed-point Xtensa-optimized, unlike the generic C builds the Pi
        # runs; chosen so Fig. 13's per-app direction (speedup for A9/A10)
        # is reproduced.
        "jpeg": 2.0,
        "fingerprint": 1.5,
    }
)


def default_calibration() -> Calibration:
    """Return the library-wide default :class:`Calibration`."""
    return DEFAULT_CALIBRATION
