"""Command-line interface: ``repro-iot`` / ``python -m repro``.

Subcommands:

* ``run A2 A4 --scheme batching --windows 2`` — simulate a scenario and
  print the result summary plus the energy breakdown.
* ``compare A2 --schemes baseline batching com`` — run the same apps
  under several schemes and print the normalized table (``--workers``
  fans the schemes out in parallel, ``--cache-dir`` memoizes results).
* ``schemes`` — list the registered execution schemes.
* ``tables`` — print Table I and Table II.
* ``apps`` — list the workloads with their offload verdicts.
* ``profile A2 A4 --scheme bcom --format chrome --out trace.json`` —
  run a scenario with instrumentation attached and export the
  simulator's own spans/counters (text summary, JSONL, or a Chrome
  ``trace_event`` file for Perfetto); see ``docs/observability.md``.
* ``cache stats --cache-dir .cache`` — inspect, garbage-collect
  (``gc --max-bytes N``, oldest entries evicted first) or ``clear`` a
  result-cache directory; see ``docs/performance.md``.
* ``worker --port 9000`` — serve scenario chunks to remote engines: the
  agent side of the multi-host ``socket`` execution backend.  ``run``
  and ``compare`` pick a backend with ``--backend serial|process|socket``
  (``--backend-hosts host:port,host:port`` points at worker agents);
  see ``docs/performance.md``.
* ``serve --port 8080`` — run the simulation service: a long-lived
  HTTP/JSON API accepting run/grid/sweep jobs from many clients, with
  per-client quotas, request coalescing and streamed progress events;
  see ``docs/serve.md``.
* ``client --url http://127.0.0.1:8080 grid --apps A1 --apps A2 A4
  --schemes baseline com`` — talk to a running service: submit jobs,
  poll status, stream events, fetch results, cancel.
* ``lint src/`` — run the repo's own static analysis (units discipline,
  determinism, error surface, scheme contracts, docstrings); see
  ``docs/static-analysis.md``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .apps import all_ids, create_app
from .core import Scheme, compare_schemes, run_apps, scheme_names
from .energy.report import ROUTINE_LABELS, format_breakdown_table
from .firmware.capability import check_offloadable
from .hw.power import Routine
from .units import to_mj, to_ms, us
from .workloads import table1_rows, table2_rows


def _add_run_parser(subparsers) -> None:
    parser = subparsers.add_parser("run", help="simulate one scenario")
    parser.add_argument("apps", nargs="+", help="Table II ids (A1..A11)")
    parser.add_argument(
        "--scheme", default=Scheme.BASELINE, choices=scheme_names()
    )
    parser.add_argument("--windows", type=int, default=1)
    parser.add_argument(
        "--batch-size", type=int, default=None, help="partial batch size"
    )
    _add_backend_flags(parser)
    _add_cache_flags(parser)
    _add_fast_forward_flag(parser)
    _add_fidelity_flag(parser)


def _add_backend_flags(parser) -> None:
    from .core import backend_names

    parser.add_argument(
        "--backend",
        default=None,
        choices=backend_names(),
        help="execution backend (default: $REPRO_BACKEND, else process "
        "when --workers > 1, else serial)",
    )
    parser.add_argument(
        "--backend-hosts",
        default=None,
        metavar="HOST:PORT[,HOST:PORT...]",
        help="worker agents for the socket backend "
        "(default: $REPRO_BACKEND_HOSTS)",
    )


def _add_cache_flags(parser) -> None:
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="memoize results on disk by scenario fingerprint",
    )
    parser.add_argument(
        "--cache-max-bytes",
        type=int,
        default=None,
        help="cap the disk cache; oldest entries are evicted after runs",
    )


def _add_fast_forward_flag(parser) -> None:
    parser.add_argument(
        "--fast-forward",
        action="store_true",
        help="skip steady-state cycles analytically (energy/duration "
        "match full simulation at rtol 1e-9, counters exactly; "
        "aperiodic scenarios transparently run in full)",
    )


def _add_fidelity_flag(parser) -> None:
    from .core import FIDELITIES

    parser.add_argument(
        "--fidelity",
        default="des",
        choices=FIDELITIES,
        help="des = discrete-event simulation (authoritative); "
        "analytic = closed-form models (validated rtol vs the DES, "
        "falls back to the DES outside their envelope); auto = answer "
        "analytically, then DES-confirm only the per-app-set scheme "
        "winners and within-band near-ties.",
    )


def _add_compare_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "compare", help="run apps under several schemes"
    )
    parser.add_argument("apps", nargs="+", help="Table II ids (A1..A11)")
    parser.add_argument(
        "--schemes",
        nargs="+",
        default=[Scheme.BASELINE, Scheme.BATCHING, Scheme.COM],
        choices=scheme_names(),
    )
    parser.add_argument("--windows", type=int, default=1)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for parallel scheme runs",
    )
    _add_backend_flags(parser)
    _add_cache_flags(parser)
    _add_fast_forward_flag(parser)
    _add_fidelity_flag(parser)


def _add_cache_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "cache",
        help="inspect or prune a result-cache directory",
    )
    parser.add_argument(
        "action",
        choices=["stats", "gc", "clear"],
        help="stats = entry count/bytes/shards; gc = evict oldest "
        "entries down to --max-bytes; clear = delete every entry",
    )
    parser.add_argument(
        "--cache-dir",
        required=True,
        help="the cache directory to operate on",
    )
    parser.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="byte cap for gc (required by the gc action)",
    )


def _add_profile_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "profile",
        help="run a scenario with sim instrumentation and export the trace",
    )
    parser.add_argument("apps", nargs="+", help="Table II ids (A1..A11)")
    parser.add_argument(
        "--scheme", default=Scheme.BASELINE, choices=scheme_names()
    )
    parser.add_argument("--windows", type=int, default=1)
    parser.add_argument(
        "--batch-size", type=int, default=None, help="partial batch size"
    )
    parser.add_argument(
        "--format",
        dest="format",
        default="summary",
        choices=["summary", "jsonl", "chrome"],
        help="summary = terminal table; jsonl = one record per line; "
        "chrome = trace_event JSON for chrome://tracing / Perfetto",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="write the export here instead of stdout",
    )
    _add_backend_flags(parser)
    _add_fast_forward_flag(parser)


def _add_worker_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "worker",
        help="serve scenario chunks to remote engines (socket backend)",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (default: 127.0.0.1; use 0.0.0.0 to "
        "accept engines from other machines)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port to listen on (default: 0 = pick a free port, "
        "printed at startup)",
    )
    parser.add_argument(
        "--max-requests",
        type=int,
        default=None,
        help="exit abruptly after serving this many chunks (testing aid "
        "for the engine's retry path)",
    )


def _add_serve_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "serve",
        help="run the simulation service (HTTP/JSON jobs API)",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (default: 127.0.0.1; use 0.0.0.0 to "
        "accept clients from other machines)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port to listen on (default: 0 = pick a free port, "
        "printed at startup)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="engine worker processes fanning out within each job",
    )
    parser.add_argument(
        "--max-jobs-per-client",
        type=int,
        default=8,
        help="active (pending+running) jobs each client label may hold; "
        "submissions beyond it get HTTP 429",
    )
    parser.add_argument(
        "--chunk-points",
        type=int,
        default=None,
        help="scenario points per engine batch; smaller chunks give "
        "finer-grained cancellation and progress events (default: the "
        "whole job as one batch)",
    )
    parser.add_argument(
        "--max-jobs",
        type=int,
        default=None,
        help="drain and exit after this many finished jobs (testing aid)",
    )
    _add_backend_flags(parser)
    _add_cache_flags(parser)
    _add_fast_forward_flag(parser)
    _add_fidelity_flag(parser)


def _add_client_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "client",
        help="talk to a running simulation service (see 'serve')",
    )
    parser.add_argument(
        "--url",
        required=True,
        help="service base URL, e.g. http://127.0.0.1:8080",
    )
    parser.add_argument(
        "--timeout-s",
        type=float,
        default=60.0,
        help="per-request timeout in seconds",
    )
    parser.add_argument(
        "--client",
        dest="client_label",
        default=None,
        help="client label for quota accounting (default: anonymous)",
    )
    actions = parser.add_subparsers(dest="action", required=True)
    actions.add_parser("health", help="check service liveness")
    actions.add_parser(
        "stats", help="engine/cache/quota/coalescer counters"
    )
    jobs = actions.add_parser("jobs", help="list jobs on the service")
    jobs.add_argument(
        "--of", default=None, metavar="CLIENT",
        help="only jobs submitted under this client label",
    )
    run = actions.add_parser("run", help="submit a single-scenario job")
    run.add_argument("apps", nargs="+", help="Table II ids (A1..A11)")
    run.add_argument(
        "--scheme", default=Scheme.BASELINE, choices=scheme_names()
    )
    run.add_argument("--windows", type=int, default=1)
    run.add_argument(
        "--fidelity",
        default=None,
        choices=["des", "analytic", "auto"],
        help="execution tier for the job (default: the service's)",
    )
    run.add_argument(
        "--wait", action="store_true",
        help="block until terminal and print the result payload",
    )
    grid = actions.add_parser(
        "grid", help="submit a compare-grid job (app sets x schemes)"
    )
    grid.add_argument(
        "--apps",
        dest="app_sets",
        nargs="+",
        action="append",
        required=True,
        metavar="APP",
        help="one app set per --apps flag (repeat the flag per set)",
    )
    grid.add_argument(
        "--schemes", nargs="+", required=True, choices=scheme_names()
    )
    grid.add_argument("--windows", type=int, default=1)
    grid.add_argument(
        "--fidelity",
        default=None,
        choices=["des", "analytic", "auto"],
        help="execution tier for the job (default: the service's)",
    )
    grid.add_argument(
        "--wait", action="store_true",
        help="block until terminal and print the result payload",
    )
    submit = actions.add_parser(
        "submit", help="submit a raw JSON job spec"
    )
    submit.add_argument(
        "spec", help="path to a JSON job-spec file, or '-' for stdin"
    )
    submit.add_argument(
        "--wait", action="store_true",
        help="block until terminal and print the result payload",
    )
    status = actions.add_parser("status", help="one job's summary")
    status.add_argument("job", help="job id (e.g. j1)")
    result = actions.add_parser(
        "result", help="a terminal job's result artifacts"
    )
    result.add_argument("job", help="job id (e.g. j1)")
    cancel = actions.add_parser("cancel", help="cancel a job")
    cancel.add_argument("job", help="job id (e.g. j1)")
    events = actions.add_parser(
        "events", help="stream a job's NDJSON event records"
    )
    events.add_argument("job", help="job id (e.g. j1)")
    events.add_argument(
        "--no-follow",
        action="store_true",
        help="replay recorded events and exit instead of following",
    )
    wait = actions.add_parser(
        "wait", help="block until a job is terminal"
    )
    wait.add_argument("job", help="job id (e.g. j1)")
    wait.add_argument(
        "--for-s",
        type=float,
        default=300.0,
        help="give up after this many seconds",
    )


def _add_lint_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "lint",
        help="statically check invariants (units, determinism, errors, "
        "scheme contracts)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        dest="format",
        default="text",
        choices=["text", "json", "sarif"],
        help="report format (sarif = SARIF 2.1.0 for code scanning)",
    )
    parser.add_argument(
        "--select",
        nargs="+",
        default=None,
        metavar="RULE",
        help="run only these rule ids or families",
    )
    parser.add_argument(
        "--ignore",
        nargs="+",
        default=None,
        metavar="RULE",
        help="skip these rule ids or families",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--no-program",
        action="store_true",
        help="skip the whole-program passes (program-* rule families)",
    )
    parser.add_argument(
        "--cache",
        nargs="?",
        const=".repro-lint-cache",
        default=None,
        metavar="DIR",
        help="incremental cache directory (default when the flag is "
        "given: .repro-lint-cache); warm runs re-parse only changed "
        "files",
    )
    parser.add_argument(
        "--changed",
        nargs="?",
        const="HEAD",
        default=None,
        metavar="BASE",
        help="report only files changed vs BASE (default HEAD) plus "
        "everything that transitively imports them",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="write the report here instead of stdout",
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-iot",
        description=(
            "Energy simulation of IoT app executions "
            "(ICDCS'19 reproduction)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_run_parser(subparsers)
    _add_compare_parser(subparsers)
    subparsers.add_parser("tables", help="print Table I and Table II")
    subparsers.add_parser("apps", help="list workloads and offload verdicts")
    subparsers.add_parser(
        "schemes", help="list registered execution schemes"
    )
    trace = subparsers.add_parser(
        "trace", help="dump a Monsoon-style power trace to CSV"
    )
    trace.add_argument("apps", nargs="+", help="Table II ids (A1..A11)")
    trace.add_argument(
        "--scheme", default=Scheme.BASELINE, choices=scheme_names()
    )
    trace.add_argument("--windows", type=int, default=1)
    trace.add_argument(
        "--out", default=None, help="CSV output path (default: stdout sparkline only)"
    )
    trace.add_argument(
        "--interval-us",
        type=float,
        default=1000.0,
        help="sampling interval in microseconds (default 1000)",
    )
    _add_profile_parser(subparsers)
    _add_cache_parser(subparsers)
    _add_worker_parser(subparsers)
    _add_serve_parser(subparsers)
    _add_client_parser(subparsers)
    _add_lint_parser(subparsers)
    return parser


def _cmd_run(args) -> int:
    from .core import Scenario, ScenarioEngine

    scenario = Scenario.of(
        args.apps,
        scheme=args.scheme,
        windows=args.windows,
        batch_size=args.batch_size,
    )
    engine = ScenarioEngine(
        cache_dir=args.cache_dir,
        fast_forward=args.fast_forward,
        cache_max_bytes=args.cache_max_bytes,
        backend=args.backend,
        backend_hosts=args.backend_hosts,
        fidelity=args.fidelity,
    )
    try:
        result = engine.run(scenario)
    finally:
        engine.close()
    print(result.summary())
    print("\nEnergy by routine:")
    for routine, share in sorted(
        result.energy.routine_fractions().items(), key=lambda kv: -kv[1]
    ):
        if routine == Routine.IDLE:
            continue
        joules = result.energy.routine_j(routine)
        print(
            f"  {ROUTINE_LABELS[routine]:<24}{share * 100:>6.1f}%"
            f"{to_mj(joules):>10.1f} mJ"
        )
    return 0


def _cmd_compare(args) -> int:
    from .core import ScenarioEngine

    with ScenarioEngine(
        workers=args.workers,
        cache_dir=args.cache_dir,
        fast_forward=args.fast_forward,
        cache_max_bytes=args.cache_max_bytes,
        backend=args.backend,
        backend_hosts=args.backend_hosts,
        fidelity=args.fidelity,
    ) as engine:
        results = compare_schemes(
            args.apps,
            args.schemes,
            windows=args.windows,
            engine=engine,
        )
    baseline_key = args.schemes[0]
    print(
        format_breakdown_table(
            {name: result.energy for name, result in results.items()},
            baseline_key=baseline_key,
            title=f"apps={'+'.join(args.apps)} windows={args.windows} "
            f"(normalized to {baseline_key})",
        )
    )
    return 0


def _cmd_tables() -> int:
    print("Table I — sensors\n")
    print("\n".join(table1_rows()))
    print("\nTable II — workloads\n")
    print("\n".join(table2_rows()))
    return 0


def _cmd_apps() -> int:
    print(f"{'Id':<5}{'Name':<14}{'Category':<26}{'Offloadable':<12}Notes")
    for app_id in all_ids():
        app = create_app(app_id)
        report = check_offloadable(app)
        note = "" if report else report.reasons[0]
        print(
            f"{app_id:<5}{app.name:<14}{app.profile.category:<26}"
            f"{'yes' if report else 'no':<12}{note}"
        )
    return 0


def _cmd_schemes() -> int:
    from .core import iter_schemes

    print(f"{'Scheme':<12}Description")
    for name, cls in iter_schemes():
        doc = (cls.__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else ""
        print(f"{name:<12}{summary}")
    return 0


def _cmd_trace(args) -> int:
    from .energy import PowerMonitor, power_sparkline, write_power_csv

    result = run_apps(args.apps, args.scheme, windows=args.windows)
    monitor = PowerMonitor(
        result.hub.recorder, result.energy.idle_floor_power_w
    )
    strip, low, high = power_sparkline(monitor, result.duration_s)
    print(f"hub power over {to_ms(result.duration_s):.0f} ms "
          f"({low:.2f}..{high:.2f} W):")
    print(strip)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            rows = write_power_csv(
                monitor, result.duration_s, us(args.interval_us), handle
            )
        print(f"wrote {rows} samples to {args.out}")
    return 0


def _cmd_profile(args) -> int:
    from .core import Scenario
    from .core.schemes.base import execute_scenario
    from .obs import (
        TraceRecorder,
        render_summary,
        write_chrome_trace,
        write_jsonl,
    )

    # Instrumentation attaches a live recorder to the run; spans cannot
    # cross a process/host boundary, so only inline execution profiles.
    if args.backend not in (None, "serial"):
        print(
            f"repro profile: --backend {args.backend} cannot carry the "
            "trace recorder across a process boundary; use "
            "--backend serial (or omit the flag)",
            file=sys.stderr,
        )
        return 2
    scenario = Scenario.of(
        args.apps,
        scheme=args.scheme,
        windows=args.windows,
        batch_size=args.batch_size,
    )
    recorder = TraceRecorder()
    result = execute_scenario(
        scenario, obs=recorder, fast_forward=args.fast_forward
    )
    if args.format == "summary":
        text = result.summary() + "\n\n" + render_summary(recorder) + "\n"
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(text)
        else:
            sys.stdout.write(text)
        return 0
    writer = write_jsonl if args.format == "jsonl" else write_chrome_trace
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            records = writer(recorder, handle)
        noun = "record(s)" if args.format == "jsonl" else "trace event(s)"
        print(f"wrote {records} {noun} to {args.out}")
    else:
        writer(recorder, sys.stdout)
    return 0


def _cmd_cache(args) -> int:
    from .core.cache import DiskResultCache

    cache = DiskResultCache(args.cache_dir)
    if args.action == "stats":
        stats = cache.stats()
        print(f"cache: {stats.root}")
        print(f"  entries:     {stats.entries}")
        print(f"  total bytes: {stats.total_bytes}")
        print(f"  shard dirs:  {stats.shard_dirs}")
        for fidelity, count in cache.fidelity_counts().items():
            print(f"  {fidelity + ':':<13}{count}")
        return 0
    if args.action == "clear":
        removed = cache.clear()
        print(f"cleared {removed} entr{'y' if removed == 1 else 'ies'}")
        return 0
    if args.max_bytes is None:
        print("repro cache gc: --max-bytes is required", file=sys.stderr)
        return 2
    outcome = cache.gc(max_bytes=args.max_bytes)
    print(
        f"evicted {outcome.evicted} entr"
        f"{'y' if outcome.evicted == 1 else 'ies'} "
        f"({outcome.freed_bytes} bytes); "
        f"{outcome.remaining_entries} left "
        f"({outcome.remaining_bytes} bytes)"
    )
    return 0


def _cmd_worker(args) -> int:
    from .core.backends import WorkerAgent

    agent = WorkerAgent(
        host=args.host, port=args.port, max_requests=args.max_requests
    ).bind()
    # The resolved address line is machine-readable on purpose: scripts
    # (and the CI smoke test) parse it to learn an ephemeral port.
    print(f"repro worker listening on {agent.address}", flush=True)
    try:
        agent.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        agent.stop()
    print(f"repro worker stopped after {agent.served} chunk(s)")
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from .core import ScenarioEngine
    from .core.engine import DEFAULT_MEMORY_CACHE_ENTRIES
    from .serve import JobManager, ReproServer

    # A service without cache_dir still wants the memory tier: repeat
    # submissions after the in-flight window should hit cache, not
    # resimulate (the engine's default only arms it alongside a disk
    # tier).
    engine = ScenarioEngine(
        workers=args.workers,
        memory_cache=DEFAULT_MEMORY_CACHE_ENTRIES,
        cache_dir=args.cache_dir,
        cache_max_bytes=args.cache_max_bytes,
        fast_forward=args.fast_forward,
        backend=args.backend,
        backend_hosts=args.backend_hosts,
        fidelity=args.fidelity,
    )
    manager = JobManager(
        engine,
        max_jobs_per_client=args.max_jobs_per_client,
        chunk_points=args.chunk_points,
    )
    server = ReproServer(
        manager, host=args.host, port=args.port, max_jobs=args.max_jobs
    )

    def ready(url: str) -> None:
        # Machine-readable on purpose: scripts (and the CI smoke test)
        # parse this line to learn an ephemeral port.
        print(f"repro serve listening on {url}", flush=True)

    try:
        asyncio.run(server.run(ready))
    except KeyboardInterrupt:
        pass
    print(f"repro serve stopped after {manager.jobs_finished} job(s)")
    return 0


def _cmd_client(args) -> int:
    import json

    from .serve import ServeClient

    client = ServeClient(args.url, timeout_s=args.timeout_s)

    def show(payload) -> None:
        print(json.dumps(payload, indent=2, sort_keys=True))

    if args.action == "health":
        show(client.health())
        return 0
    if args.action == "stats":
        show(client.stats())
        return 0
    if args.action == "jobs":
        show(client.jobs(args.of))
        return 0
    if args.action in ("run", "grid", "submit"):
        if args.action == "run":
            spec = {
                "kind": "run",
                "apps": args.apps,
                "scheme": args.scheme,
                "windows": args.windows,
            }
            if args.fidelity is not None:
                spec["fidelity"] = args.fidelity
        elif args.action == "grid":
            spec = {
                "kind": "grid",
                "app_sets": args.app_sets,
                "schemes": args.schemes,
                "windows": args.windows,
            }
            if args.fidelity is not None:
                spec["fidelity"] = args.fidelity
        else:
            if args.spec == "-":
                spec = json.load(sys.stdin)
            else:
                with open(args.spec, "r", encoding="utf-8") as handle:
                    spec = json.load(handle)
        if args.client_label is not None and isinstance(spec, dict):
            spec.setdefault("client", args.client_label)
        job = client.submit(spec)
        if not args.wait:
            show(job)
            return 0
        client.wait(job["id"])
        show(client.result(job["id"]))
        return 0
    if args.action == "status":
        show(client.job(args.job))
        return 0
    if args.action == "result":
        show(client.result(args.job))
        return 0
    if args.action == "cancel":
        show(client.cancel(args.job))
        return 0
    if args.action == "wait":
        show(client.wait(args.job, timeout_s=args.for_s))
        return 0
    if args.action == "events":
        for record in client.events(args.job, follow=not args.no_follow):
            print(json.dumps(record, sort_keys=True), flush=True)
        return 0
    raise AssertionError(f"unhandled client action {args.action!r}")


def _cmd_lint(args) -> int:
    from .analysis import (
        LintCache,
        LintConfigError,
        exit_code,
        iter_python_files,
        lint_paths,
        list_rules,
        render_json,
        render_sarif,
        render_text,
    )
    from .analysis.changed import ChangedFilesError, changed_report_paths

    if args.list_rules:
        print("\n".join(list_rules()))
        return 0
    cache = LintCache(args.cache) if args.cache else None
    report_paths = None
    try:
        if args.changed is not None:
            report_paths = changed_report_paths(
                args.changed, args.paths, cache=cache
            )
        files_checked = sum(1 for _ in iter_python_files(args.paths))
        findings = lint_paths(
            args.paths,
            select=args.select,
            ignore=args.ignore,
            program=not args.no_program,
            cache=cache,
            report_paths=report_paths,
        )
    except (LintConfigError, ChangedFilesError) as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    stats = cache.stats() if cache is not None else None
    if args.format == "sarif":
        report = render_sarif(findings, files_checked)
    elif args.format == "json":
        report = render_json(findings, files_checked, cache_stats=stats)
    else:
        report = render_text(findings, files_checked, cache_stats=stats)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    else:
        print(report)
    return exit_code(findings)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "tables":
        return _cmd_tables()
    if args.command == "apps":
        return _cmd_apps()
    if args.command == "schemes":
        return _cmd_schemes()
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "worker":
        return _cmd_worker(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "client":
        return _cmd_client(args)
    if args.command == "lint":
        return _cmd_lint(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
