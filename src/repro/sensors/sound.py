"""Sound waveforms (S8): ambient audio and synthetic spoken words.

The speech-to-text app (A11) matches MFCC features against word templates;
this module synthesizes distinguishable 'words' as formant chirp patterns.
Each word has a distinct (start, end) frequency trajectory pair, so the
MFCC+DTW pipeline can genuinely tell them apart.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .synthetic import Waveform, pseudo_noise

#: Formant trajectories per vocabulary word: two chirps (Hz start -> end).
#: All frequencies sit below 460 Hz so the words survive the sound sensor's
#: 1 kHz sampling rate (Table I QoS for S8) without aliasing.
VOCABULARY: Dict[str, Tuple[Tuple[float, float], Tuple[float, float]]] = {
    "on": ((120.0, 90.0), (420.0, 330.0)),
    "off": ((90.0, 160.0), (280.0, 440.0)),
    "open": ((150.0, 75.0), (440.0, 200.0)),
    "close": ((75.0, 210.0), (200.0, 460.0)),
    "stop": ((200.0, 200.0), (350.0, 350.0)),
    "start": ((60.0, 180.0), (460.0, 240.0)),
}


class AmbientSoundWaveform(Waveform):
    """Background noise with occasional level bumps (doors, traffic)."""

    def __init__(self, level: float = 0.1, bump_period_s: float = 7.0, seed: int = 0):
        self.level = level
        self.bump_period_s = bump_period_s
        self.seed = seed

    def sample(self, time: float) -> np.ndarray:
        """Sound level: scaled noise with a periodic short bump."""
        noise = self.level * pseudo_noise(time, self.seed)
        bump_phase = (time % self.bump_period_s) / self.bump_period_s
        bump = 0.5 * self.level if bump_phase < 0.05 else 0.0
        return np.array([noise + bump])


class SpokenWordWaveform(Waveform):
    """A sequence of vocabulary words, one per second, then silence.

    ``words`` is the ground truth the recognizer must recover.
    """

    def __init__(
        self,
        words: List[str],
        word_duration_s: float = 0.6,
        gap_s: float = 0.4,
        amplitude: float = 1.0,
        noise_amplitude: float = 0.02,
        seed: int = 0,
    ):
        unknown = [word for word in words if word not in VOCABULARY]
        if unknown:
            raise ValueError(f"words not in vocabulary: {unknown}")
        self.words = list(words)
        self.word_duration_s = word_duration_s
        self.gap_s = gap_s
        self.amplitude = amplitude
        self.noise_amplitude = noise_amplitude
        self.seed = seed

    @property
    def slot_s(self) -> float:
        """Length of one word slot (utterance plus trailing gap)."""
        return self.word_duration_s + self.gap_s

    def word_at(self, time: float) -> Optional[Tuple[str, float]]:
        """The (word, progress in [0,1]) being uttered at ``time``."""
        slot = int(time / self.slot_s)
        if slot < 0 or slot >= len(self.words):
            return None
        offset = time - slot * self.slot_s
        if offset >= self.word_duration_s:
            return None
        return self.words[slot], offset / self.word_duration_s

    def sample(self, time: float) -> np.ndarray:
        """Audio amplitude: formant sweep of the current word, or noise."""
        noise = self.noise_amplitude * pseudo_noise(time, self.seed)
        uttered = self.word_at(time)
        if uttered is None:
            return np.array([noise])
        word, progress = uttered
        (f1_start, f1_end), (f2_start, f2_end) = VOCABULARY[word]
        f1 = f1_start + (f1_end - f1_start) * progress
        f2 = f2_start + (f2_end - f2_start) * progress
        local = time - int(time / self.slot_s) * self.slot_s
        envelope = np.sin(np.pi * progress)  # fade in/out
        value = (
            0.7 * np.sin(2 * np.pi * f1 * local)
            + 0.3 * np.sin(2 * np.pi * f2 * local)
        )
        return np.array([self.amplitude * envelope * value + noise])


def synthesize_word(
    word: str, sample_rate_hz: float, duration_s: float = 0.6, seed: int = 0
) -> np.ndarray:
    """Standalone PCM rendering of one vocabulary word (template source)."""
    waveform = SpokenWordWaveform([word], word_duration_s=duration_s, seed=seed)
    count = int(sample_rate_hz * duration_s)
    return waveform.window(0.0, sample_rate_hz, count)[:, 0]
