"""Pulse (photoplethysmogram) waveform for the heartbeat app (S6)."""

from __future__ import annotations

import numpy as np

from .synthetic import Waveform, pseudo_noise


class EcgWaveform(Waveform):
    """Periodic heartbeat pulses with optional rhythm irregularity.

    Beats are narrow Gaussian pulses.  With ``irregular=True`` every third
    beat is displaced by ``irregularity`` of the beat period — enough to
    push the RMSSD metric over the heartbeat app's arrhythmia threshold.
    """

    def __init__(
        self,
        heart_rate_bpm: float = 72.0,
        pulse_width_s: float = 0.04,
        amplitude: float = 1.0,
        irregular: bool = False,
        irregularity: float = 0.35,
        noise_amplitude: float = 0.03,
        seed: int = 0,
    ):
        if heart_rate_bpm <= 0:
            raise ValueError("heart rate must be positive")
        if not 0 <= irregularity < 0.5:
            raise ValueError("irregularity must be in [0, 0.5)")
        self.heart_rate_bpm = heart_rate_bpm
        self.period_s = 60.0 / heart_rate_bpm
        self.pulse_width_s = pulse_width_s
        self.amplitude = amplitude
        self.irregular = irregular
        self.irregularity = irregularity
        self.noise_amplitude = noise_amplitude
        self.seed = seed

    def beat_times(self, duration_s: float) -> np.ndarray:
        """Ground-truth beat instants within ``[0, duration_s)``."""
        count = int(duration_s / self.period_s) + 2
        times = np.arange(count) * self.period_s
        if self.irregular:
            shifts = np.where(
                np.arange(count) % 3 == 2, self.irregularity * self.period_s, 0.0
            )
            times = times + shifts
        return times[times < duration_s]

    def sample(self, time: float) -> np.ndarray:
        """ECG amplitude: Gaussian QRS pulses centered on each beat."""
        # Find the nearest beats around `time` (at most two can contribute).
        base_index = int(time / self.period_s)
        value = 0.0
        for index in (base_index - 1, base_index, base_index + 1):
            if index < 0:
                continue
            beat = index * self.period_s
            if self.irregular and index % 3 == 2:
                beat += self.irregularity * self.period_s
            offset = time - beat
            value += self.amplitude * np.exp(
                -0.5 * (offset / self.pulse_width_s) ** 2
            )
        value += self.noise_amplitude * pseudo_noise(time, self.seed)
        return np.array([value])
