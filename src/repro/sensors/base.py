"""Sensor device model: the hardware side of Table I rows.

A :class:`SensorDevice` is a Table I spec bound to a hub and a waveform.
Reading it is the paper's §II-B Task I-II (availability check + register
read): the device's rail goes to its read-burst power for ``read_time``;
the driver's decode step (Task III) runs afterwards on the MCU core and is
modelled by the firmware layer, not here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, Optional

from ..errors import SensorError
from ..hw.board import IoTHub
from ..hw.power import Routine
from ..sim.process import Delay
from ..sim.resources import Resource
from .accelerometer import WalkingWaveform
from .camera import CameraWaveform, HIGHRES_SHAPE
from .environment import (
    air_quality_waveform,
    barometer_waveform,
    distance_waveform,
    light_waveform,
    temperature_waveform,
)
from .fingerprint import FingerprintWaveform
from .pulse import EcgWaveform
from .sound import AmbientSoundWaveform
from .specs import SensorSpec, get_spec
from .synthetic import Waveform, pseudo_noise


@dataclass(frozen=True)
class SensorSample:
    """One acquired sensor reading.

    ``ok`` is False when the availability checks kept failing and the
    driver fell back to the last good value (a stale reading).
    """

    time: float
    sensor_id: str
    value: Any
    nbytes: int
    seq: int
    ok: bool = True


#: Default waveform per Table I sensor, used when a scenario does not
#: inject its own.
DEFAULT_WAVEFORMS: Dict[str, Callable[[], Waveform]] = {
    "S1": barometer_waveform,
    "S2": temperature_waveform,
    "S3": FingerprintWaveform,
    "S4": WalkingWaveform,
    "S5": air_quality_waveform,
    "S6": EcgWaveform,
    "S7": light_waveform,
    "S8": AmbientSoundWaveform,
    "S9": distance_waveform,
    "S10": CameraWaveform,
    "S10H": lambda: CameraWaveform(shape=HIGHRES_SHAPE),
}


def default_waveform(sensor_id: str) -> Waveform:
    """Construct the default waveform for a Table I sensor."""
    try:
        factory = DEFAULT_WAVEFORMS[sensor_id]
    except KeyError:
        raise SensorError(f"no default waveform for {sensor_id!r}") from None
    return factory()


class SensorDevice:
    """A physical sensor attached to the MCU board of a hub.

    ``failure_rate`` injects §II-B Task-I availability-check failures: a
    deterministic pseudo-random fraction of reads fails its checks, costs
    a check-length burst, and is retried up to :attr:`MAX_RETRIES` times
    before the driver falls back to the last good value.
    """

    STANDBY = "standby"
    READ = "read"
    #: Driver retry budget per acquisition.
    MAX_RETRIES = 3
    #: An availability check costs this fraction of a full read.
    CHECK_TIME_FRACTION = 0.1

    def __init__(
        self,
        hub: IoTHub,
        spec: SensorSpec,
        waveform: Optional[Waveform] = None,
        failure_rate: float = 0.0,
    ):
        if not 0.0 <= failure_rate < 1.0:
            raise SensorError(f"failure rate must be in [0, 1), got {failure_rate}")
        self.hub = hub
        self.spec = spec
        self.waveform = waveform or default_waveform(spec.sensor_id)
        self.failure_rate = failure_rate
        self.rail = Resource(f"sensor:{spec.sensor_id}.rail")
        read_power = (
            spec.typical_power_w + hub.calibration.mcu.sensor_read_power_w
        )
        self.psm = hub.add_component(
            f"sensor:{spec.sensor_id}",
            states={self.STANDBY: spec.min_power_w, self.READ: read_power},
            initial_state=self.STANDBY,
        )
        self.read_count = 0
        self.failed_checks = 0
        self.stale_samples = 0
        self._last_good_value: Any = None

    @classmethod
    def attach(
        cls,
        hub: IoTHub,
        sensor_id: str,
        waveform: Optional[Waveform] = None,
        failure_rate: float = 0.0,
    ) -> "SensorDevice":
        """Attach a Table I sensor to ``hub`` by id."""
        return cls(hub, get_spec(sensor_id), waveform, failure_rate)

    def _check_fails(self, attempt: int) -> bool:
        """Deterministic pseudo-random availability-check outcome."""
        if self.failure_rate <= 0.0:
            return False
        noise = pseudo_noise(
            self.read_count + attempt * 0.137, seed=hash(self.spec.sensor_id) % 997
        )
        return (noise + 1.0) / 2.0 < self.failure_rate

    def acquire(self, routine: str = Routine.DATA_COLLECTION) -> Generator:
        """Generator: availability checks + one register read.

        Occupies the sensor rail; concurrent readers (two apps polling the
        same sensor without BEAM) serialize here.  Failed availability
        checks cost a check-length burst each and are retried; after the
        retry budget the driver returns the last good value marked stale.
        Returns a :class:`SensorSample`.
        """
        yield from self.rail.acquire()
        ok = True
        for attempt in range(self.MAX_RETRIES + 1):
            if not self._check_fails(attempt):
                break
            self.failed_checks += 1
            self.psm.set_state(self.READ, routine)
            yield Delay(self.spec.read_time_s * self.CHECK_TIME_FRACTION)
            self.psm.set_state(self.STANDBY, Routine.IDLE)
        else:
            ok = False
        self.psm.set_state(self.READ, routine)
        yield Delay(self.spec.read_time_s)
        now = self.hub.sim.now
        self.read_count += 1
        if ok:
            value = self.waveform.sample(now)
            self._last_good_value = value
        else:
            self.stale_samples += 1
            value = (
                self._last_good_value
                if self._last_good_value is not None
                else self.waveform.sample(now)
            )
        sample = SensorSample(
            time=now,
            sensor_id=self.spec.sensor_id,
            value=value,
            nbytes=self.spec.sample_bytes,
            seq=self.read_count,
            ok=ok,
        )
        self.psm.set_state(self.STANDBY, Routine.IDLE)
        self.rail.release()
        return sample

    @property
    def duty_cycle_limit_hz(self) -> float:
        """Highest poll rate the read time physically allows."""
        return 1.0 / self.spec.read_time_s
