"""Environmental waveform presets: S1, S2, S5, S7, S9.

All of these are slow signals relative to their sampling rates, so they
share :class:`~repro.sensors.synthetic.SlowDriftWaveform` with per-sensor
physical ranges.
"""

from __future__ import annotations

from .synthetic import SlowDriftWaveform


def barometer_waveform(seed: int = 1) -> SlowDriftWaveform:
    """Atmospheric pressure in hPa (S1, BMP280 class)."""
    return SlowDriftWaveform(
        base=1013.25,
        drift_amplitude=4.0,
        drift_period_s=6 * 3600.0,
        noise_amplitude=0.08,
        seed=seed,
    )


def temperature_waveform(seed: int = 2) -> SlowDriftWaveform:
    """Ambient temperature in Celsius (S2, BMP180 class)."""
    return SlowDriftWaveform(
        base=22.5,
        drift_amplitude=3.0,
        drift_period_s=24 * 3600.0,
        noise_amplitude=0.05,
        seed=seed,
    )


def air_quality_waveform(seed: int = 5) -> SlowDriftWaveform:
    """CO2-equivalent in ppm (S5, CCS811 class)."""
    return SlowDriftWaveform(
        base=600.0,
        drift_amplitude=150.0,
        drift_period_s=1800.0,
        noise_amplitude=8.0,
        seed=seed,
    )


def light_waveform(seed: int = 7) -> SlowDriftWaveform:
    """Illuminance in lux (S7, BH1750 class)."""
    return SlowDriftWaveform(
        base=320.0,
        drift_amplitude=250.0,
        drift_period_s=12 * 3600.0,
        noise_amplitude=4.0,
        seed=seed,
    )


def distance_waveform(seed: int = 9) -> SlowDriftWaveform:
    """Ultrasonic range in cm (S9, PING class)."""
    return SlowDriftWaveform(
        base=120.0,
        drift_amplitude=40.0,
        drift_period_s=60.0,
        noise_amplitude=1.5,
        seed=seed,
    )
