"""Fingerprint sensor (S3) waveform: 512-byte signature templates.

The fingerprint-register app (A10) enrolls and matches signatures.  A
signature here is a deterministic 512-byte feature vector per person, with
per-scan jitter small enough that the matcher's similarity threshold
separates same-person from different-person scans.
"""

from __future__ import annotations

import numpy as np

from .synthetic import Waveform

#: Signature size from Table I.
SIGNATURE_BYTES = 512


def person_template(person_id: int) -> np.ndarray:
    """The canonical 512-byte signature of ``person_id``."""
    rng = np.random.default_rng(1000 + person_id)
    return rng.integers(0, 256, size=SIGNATURE_BYTES, dtype=np.uint8)


def scan_of(person_id: int, scan_seed: int = 0, jitter: int = 6) -> np.ndarray:
    """One noisy scan of a person's finger.

    ``jitter`` bytes are perturbed per scan — well under the matcher's
    Hamming-style threshold, but nonzero so exact-equality matching would
    fail (as it would in reality).
    """
    template = person_template(person_id).copy()
    rng = np.random.default_rng(7000 + person_id * 131 + scan_seed)
    positions = rng.choice(SIGNATURE_BYTES, size=jitter, replace=False)
    template[positions] = rng.integers(0, 256, size=jitter, dtype=np.uint8)
    return template


class FingerprintWaveform(Waveform):
    """Scans of a rotating set of people, one per acquisition window."""

    def __init__(self, person_ids=(0, 1, 2), scans_per_person: int = 1):
        if not person_ids:
            raise ValueError("need at least one person")
        self.person_ids = tuple(person_ids)
        self.scans_per_person = scans_per_person

    def person_at(self, time: float) -> int:
        """Which person's finger is on the sensor at ``time``."""
        slot = int(time) // max(1, self.scans_per_person)
        return self.person_ids[slot % len(self.person_ids)]

    def scan_at(self, time: float) -> np.ndarray:
        """The 512-byte scan captured at ``time``."""
        return scan_of(self.person_at(time), scan_seed=int(time))

    def sample(self, time: float) -> np.ndarray:
        """Scalar view for the sampling pipeline: the current person id."""
        return np.array([float(self.person_at(time))])
