"""Sensor models: Table I specifications, devices, synthetic waveforms."""

from .base import DEFAULT_WAVEFORMS, SensorDevice, SensorSample, default_waveform
from .specs import A11_SOUND_SAMPLE_BYTES, TABLE_I, SensorSpec, get_spec
from .synthetic import (
    ConstantWaveform,
    SlowDriftWaveform,
    Waveform,
    pseudo_noise,
    pseudo_noise_array,
)

__all__ = [
    "A11_SOUND_SAMPLE_BYTES",
    "ConstantWaveform",
    "DEFAULT_WAVEFORMS",
    "SensorDevice",
    "SensorSample",
    "SensorSpec",
    "SlowDriftWaveform",
    "TABLE_I",
    "Waveform",
    "default_waveform",
    "get_spec",
    "pseudo_noise",
    "pseudo_noise_array",
]
