"""Accelerometer waveforms: walking (step counter) and seismic (earthquake).

The accelerometer (S4, ADXL335 class) outputs three int-scaled axes.  The
paper's step-counter and earthquake apps both consume it at 1 kHz.
"""

from __future__ import annotations

import numpy as np

from .synthetic import Waveform, pseudo_noise

#: Standard gravity in m/s^2, present on the z axis at rest.
GRAVITY = 9.80665


class WalkingWaveform(Waveform):
    """3-axis acceleration of a person walking at a fixed cadence.

    Each step produces a vertical impact spike plus a lateral sway; the
    step-detection algorithm should recover ``cadence_hz * duration``
    steps from it.
    """

    def __init__(
        self,
        cadence_hz: float = 1.8,
        impact_amplitude: float = 4.0,
        sway_amplitude: float = 0.8,
        noise_amplitude: float = 0.25,
        walking: bool = True,
        seed: int = 0,
    ):
        if cadence_hz <= 0:
            raise ValueError("cadence must be positive")
        self.cadence_hz = cadence_hz
        self.impact_amplitude = impact_amplitude
        self.sway_amplitude = sway_amplitude
        self.noise_amplitude = noise_amplitude
        self.walking = walking
        self.seed = seed

    def expected_steps(self, duration_s: float) -> int:
        """Ground truth for tests: steps contained in ``duration_s``."""
        if not self.walking:
            return 0
        return int(self.cadence_hz * duration_s)

    def sample(self, time: float) -> np.ndarray:
        """3-axis acceleration: gravity plus gait impacts and sway."""
        noise = self.noise_amplitude * pseudo_noise(time, self.seed)
        if not self.walking:
            return np.array([noise, noise * 0.5, GRAVITY + noise])
        phase = 2 * np.pi * self.cadence_hz * time
        # Sharpened sinusoid: impacts are spiky, not sinusoidal.
        vertical = self.impact_amplitude * max(0.0, np.sin(phase)) ** 3
        sway = self.sway_amplitude * np.sin(phase / 2.0)
        forward = 0.3 * self.sway_amplitude * np.cos(phase)
        return np.array(
            [forward + noise, sway + noise * 0.5, GRAVITY + vertical + noise]
        )


class SeismicWaveform(Waveform):
    """Ground acceleration with an optional earthquake burst.

    Quiet background microtremor; between ``quake_start`` and
    ``quake_start + quake_duration`` a strong oscillation with an
    exponentially decaying envelope is superimposed — the STA/LTA trigger
    in the earthquake app must fire inside that interval and nowhere else.
    """

    def __init__(
        self,
        quake_start_s: float = None,
        quake_duration_s: float = 2.0,
        quake_amplitude: float = 3.0,
        background_amplitude: float = 0.02,
        seed: int = 0,
    ):
        self.quake_start_s = quake_start_s
        self.quake_duration_s = quake_duration_s
        self.quake_amplitude = quake_amplitude
        self.background_amplitude = background_amplitude
        self.seed = seed

    @property
    def has_quake(self) -> bool:
        """Whether this trace contains an earthquake at all."""
        return self.quake_start_s is not None

    def sample(self, time: float) -> np.ndarray:
        """3-axis acceleration: background noise plus the quake ramp."""
        noise = self.background_amplitude * pseudo_noise(time, self.seed)
        shake = 0.0
        if self.has_quake:
            elapsed = time - self.quake_start_s
            if 0.0 <= elapsed <= self.quake_duration_s:
                envelope = np.exp(-elapsed / max(self.quake_duration_s, 1e-9))
                shake = (
                    self.quake_amplitude
                    * envelope
                    * np.sin(2 * np.pi * 8.0 * elapsed)
                )
        lateral = 0.6 * shake + noise
        return np.array([shake + noise, lateral, GRAVITY + 0.8 * shake + noise])
