"""Sensor specifications from Table I of the paper.

Every number here is read straight from Table I: bus type, read time,
min/typical/max power, output type and size, maximum sampling rate and the
app-required QoS sampling rate.  ``S10`` exists in a low-resolution
(MCU-friendly) and a high-resolution (MCU-unfriendly) variant, as in the
paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import SensorError
from ..units import mw, ms


@dataclass(frozen=True)
class SensorSpec:
    """Static description of one sensor (a row of Table I)."""

    sensor_id: str
    name: str
    bus: str
    read_time_s: float
    min_power_w: float
    typical_power_w: float
    max_power_w: float
    output_type: str
    sample_bytes: int
    max_rate_hz: Optional[float]
    qos_rate_hz: Optional[float]
    #: Whether the sensor's driver fits the MCU (Table I: only the
    #: high-resolution image sensor does not).
    mcu_friendly: bool = True

    def __post_init__(self) -> None:
        if self.read_time_s <= 0:
            raise SensorError(f"{self.sensor_id}: non-positive read time")
        if not (
            0 <= self.min_power_w <= self.typical_power_w <= self.max_power_w
        ):
            raise SensorError(f"{self.sensor_id}: power ordering violated")
        if self.sample_bytes <= 0:
            raise SensorError(f"{self.sensor_id}: non-positive sample size")
        if self.qos_rate_hz is not None and self.max_rate_hz is not None:
            if self.qos_rate_hz > self.max_rate_hz:
                raise SensorError(
                    f"{self.sensor_id}: QoS rate exceeds the max rate"
                )

    @property
    def effective_qos_hz(self) -> float:
        """QoS rate used by workloads; on-demand sensors count as 1 Hz
        (one acquisition per user-level computation window)."""
        return self.qos_rate_hz if self.qos_rate_hz is not None else 1.0

    def samples_per_window(self, window_s: float) -> int:
        """Number of acquisitions an app needs over one window."""
        return max(1, int(round(self.effective_qos_hz * window_s)))


def _spec(
    sensor_id: str,
    name: str,
    bus: str,
    read_ms: float,
    powers_mw: Tuple[float, float, float],
    output_type: str,
    sample_bytes: int,
    max_rate_hz: Optional[float],
    qos_rate_hz: Optional[float],
    mcu_friendly: bool = True,
) -> SensorSpec:
    low, typical, high = powers_mw
    return SensorSpec(
        sensor_id=sensor_id,
        name=name,
        bus=bus,
        read_time_s=ms(read_ms),
        min_power_w=mw(low),
        typical_power_w=mw(typical),
        max_power_w=mw(high),
        output_type=output_type,
        sample_bytes=sample_bytes,
        max_rate_hz=max_rate_hz,
        qos_rate_hz=qos_rate_hz,
        mcu_friendly=mcu_friendly,
    )


#: Table I, row by row.  S10 low-res sized so that one frame is the paper's
#: 23.81 KB (A9's "Sensor Data" column): 24384 B = a 127x64 8-bit frame
#: plus a 2-byte header -> we use 24384 B and a 96x254 layout elsewhere.
TABLE_I: Dict[str, SensorSpec] = {
    spec.sensor_id: spec
    for spec in (
        _spec("S1", "Barometer", "SPI", 37.5, (2.12, 19.47, 28.93), "double", 8, 157.0, 10.0),  # noqa: E501
        _spec("S2", "Temperature", "I2C", 18.75, (1.0, 13.5, 20.0), "double", 8, 120.0, 10.0),  # noqa: E501
        _spec("S3", "Fingerprint", "TTL-serial", 850.0, (432.0, 600.0, 900.0), "signature", 512, None, None),  # noqa: E501
        _spec("S4", "Accelerometer", "Analog", 0.5, (0.63, 1.3, 1.75), "int3", 12, 1e6, 1000.0),  # noqa: E501
        _spec("S5", "AirQuality", "I2C", 0.96, (1.2, 30.0, 46.0), "int", 4, 400.0, 200.0),  # noqa: E501
        _spec("S6", "Pulse", "Analog", 0.1, (9.9, 15.0, 22.0), "int", 4, 1e6, 1000.0),
        _spec("S7", "Light", "I2C", 0.1, (16.8, 21.0, 25.2), "double", 8, 4e5, 1000.0),
        _spec("S8", "Sound", "Analog", 0.1, (16.0, 40.0, 96.0), "int", 4, 1e6, 1000.0),
        _spec("S9", "Distance", "Analog", 0.2, (120.0, 150.0, 175.0), "double", 8, 5000.0, 1000.0),  # noqa: E501
        _spec("S10", "LowResImage", "TTL-serial", 183.64, (30.0, 125.0, 140.0), "rgb", 24_384, None, None),  # noqa: E501
        _spec(
            "S10H",
            "HighResImage",
            "Camera-serial",
            500.0,
            (382.0, 425.0, 700.0),
            "rgb",
            619_000,
            None,
            None,
            mcu_friendly=False,
        ),
    )
}


def get_spec(sensor_id: str) -> SensorSpec:
    """Look up a Table I sensor by id (``S1`` ... ``S10``, ``S10H``)."""
    try:
        return TABLE_I[sensor_id]
    except KeyError:
        raise SensorError(f"unknown sensor id {sensor_id!r}") from None


#: Audio sample size used by the heavy-weight A11 app (16-bit PCM plus a
#: 4-byte timestamp -> 6 B/sample, matching Table II's 5.86 KB for 1000
#: samples).
A11_SOUND_SAMPLE_BYTES = 6
