"""Image sensor (S10) waveform: synthetic DCT-coded frames.

The JPEG-decoder app (A9) runs IDCT on camera frames.  This module is the
matching *encoder* side: it renders a deterministic grayscale scene,
forward-DCTs and quantizes it, and hands the quantized coefficient planes
to the app — which must reconstruct the scene with small error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dsp.dct import JPEG_LUMA_QTABLE, blockwise_dct, quantize
from .synthetic import Waveform

#: Frame geometry for the low-res sensor: 96 x 254 x 8bit = 24384 B, the
#: paper's 23.81 KB per frame.
LOWRES_SHAPE = (96, 254)
#: Geometry for the MCU-unfriendly high-res sensor (~619 kB per frame).
HIGHRES_SHAPE = (704, 880)


@dataclass(frozen=True)
class EncodedFrame:
    """A quantized-DCT frame as produced by the camera pipeline."""

    levels: np.ndarray  # int32, multiple-of-8 dimensions
    qtable: np.ndarray
    frame_id: int

    @property
    def shape(self):
        """Pixel dimensions of the decoded image."""
        return self.levels.shape

    @property
    def nbytes(self) -> int:
        """Transfer size modelled for this frame (8-bit plane)."""
        return int(self.levels.shape[0] * self.levels.shape[1])

    def to_bytes(self) -> bytes:
        """Entropy-coded bitstream (zigzag + RLE) of the frame."""
        from ..dsp.rle import encode_plane

        return encode_plane(self.levels)


def render_scene(shape, frame_id: int = 0) -> np.ndarray:
    """A deterministic grayscale test scene: gradient + bars + a disc."""
    rows, cols = shape
    y = np.linspace(0.0, 1.0, rows).reshape(-1, 1)
    x = np.linspace(0.0, 1.0, cols).reshape(1, -1)
    image = 96.0 + 64.0 * x + 32.0 * y
    # Vertical bars whose phase moves with the frame id.
    image += 24.0 * np.sin(2 * np.pi * (8 * x + 0.1 * frame_id))
    # A bright disc.
    cy, cx = 0.5 + 0.1 * np.sin(frame_id), 0.5 + 0.1 * np.cos(frame_id)
    disc = ((y - cy) ** 2 + (x - cx) ** 2) < 0.04
    image = np.where(disc, image + 48.0, image)
    return np.clip(image, 0.0, 255.0)


def _pad_to_blocks(image: np.ndarray, size: int = 8) -> np.ndarray:
    rows, cols = image.shape
    pad_rows = (-rows) % size
    pad_cols = (-cols) % size
    if pad_rows or pad_cols:
        image = np.pad(image, ((0, pad_rows), (0, pad_cols)), mode="edge")
    return image


def encode_frame(image: np.ndarray, frame_id: int = 0) -> EncodedFrame:
    """Forward DCT + quantization of a grayscale image."""
    padded = _pad_to_blocks(np.asarray(image, dtype=np.float64) - 128.0)
    coeffs = blockwise_dct(padded)
    levels = quantize(coeffs, JPEG_LUMA_QTABLE)
    return EncodedFrame(levels=levels, qtable=JPEG_LUMA_QTABLE, frame_id=frame_id)


class CameraWaveform(Waveform):
    """Produces one encoded frame per acquisition.

    ``sample(t)`` returns the frame id (scalar) for timeline purposes;
    :meth:`frame_at` returns the full :class:`EncodedFrame` for the app.
    """

    def __init__(self, shape=LOWRES_SHAPE, frame_rate_hz: float = 1.0):
        if frame_rate_hz <= 0:
            raise ValueError("frame rate must be positive")
        self.shape = shape
        self.frame_rate_hz = frame_rate_hz

    def frame_id_at(self, time: float) -> int:
        """Monotone frame counter at ``time``."""
        return int(time * self.frame_rate_hz)

    def frame_at(self, time: float) -> EncodedFrame:
        """The encoded frame captured at ``time``."""
        frame_id = self.frame_id_at(time)
        scene = render_scene(self.shape, frame_id)
        return encode_frame(scene, frame_id)

    def sample(self, time: float) -> np.ndarray:
        """Scalar view for the sampling pipeline: the current frame id."""
        return np.array([float(self.frame_id_at(time))])
