"""Deterministic synthetic waveforms standing in for physical phenomena.

Each waveform is a pure function of time (plus its constructor parameters),
so a sensor read at time ``t`` returns the same value no matter how many
apps sample it or in which order — exactly like a physical signal, and
essential for BEAM's shared-sensor semantics.
"""

from __future__ import annotations

import numpy as np


def pseudo_noise(time: float, seed: int = 0) -> float:
    """Deterministic noise in [-1, 1] as a pure function of time.

    A hash-folded sine — the classic shader trick — so no RNG state is
    carried between calls.
    """
    raw = np.sin(time * 127.1 + seed * 311.7) * 43758.5453123
    return float(2.0 * (raw - np.floor(raw)) - 1.0)


def pseudo_noise_array(times: np.ndarray, seed: int = 0) -> np.ndarray:
    """Vectorized :func:`pseudo_noise`."""
    raw = np.sin(np.asarray(times) * 127.1 + seed * 311.7) * 43758.5453123
    return 2.0 * (raw - np.floor(raw)) - 1.0


class Waveform:
    """Base class: a deterministic, continuous-time signal."""

    def sample(self, time: float) -> np.ndarray:
        """Instantaneous value at ``time`` (shape depends on the signal)."""
        raise NotImplementedError

    def window(self, start: float, rate_hz: float, count: int) -> np.ndarray:
        """``count`` samples from ``start`` at ``rate_hz`` (rows = samples)."""
        if rate_hz <= 0:
            raise ValueError(f"rate must be positive, got {rate_hz}")
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        times = start + np.arange(count) / rate_hz
        return np.array([self.sample(float(t)) for t in times])


class ConstantWaveform(Waveform):
    """A fixed value — useful as a test double."""

    def __init__(self, value: float):
        self.value = value

    def sample(self, time: float) -> np.ndarray:
        """The same fixed value, whatever the time."""
        return np.array([self.value])


class SlowDriftWaveform(Waveform):
    """Slowly varying scalar: diurnal-style drift plus small noise.

    Models temperature, pressure, ambient light, air quality, distance —
    anything whose dynamics are far below the sampling rate.
    """

    def __init__(
        self,
        base: float,
        drift_amplitude: float = 1.0,
        drift_period_s: float = 3600.0,
        noise_amplitude: float = 0.05,
        seed: int = 0,
    ):
        if drift_period_s <= 0:
            raise ValueError("drift period must be positive")
        self.base = base
        self.drift_amplitude = drift_amplitude
        self.drift_period_s = drift_period_s
        self.noise_amplitude = noise_amplitude
        self.seed = seed

    def sample(self, time: float) -> np.ndarray:
        """Base value plus sinusoidal drift plus small noise."""
        drift = self.drift_amplitude * np.sin(
            2 * np.pi * time / self.drift_period_s
        )
        noise = self.noise_amplitude * pseudo_noise(time, self.seed)
        return np.array([self.base + drift + noise])
