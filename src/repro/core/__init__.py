"""The paper's contribution: Batching, COM, BEAM and BCOM executors.

Schemes are plugins (:mod:`repro.core.schemes`); the
:class:`ScenarioEngine` adds fingerprint caching and parallel sweep
fan-out on top of them.
"""

from ..firmware.capability import OffloadReport, check_offloadable
from .backends import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    SocketBackend,
    WorkerAgent,
    backend_names,
    create_backend,
    register_backend,
)
from .cache import (
    CacheStats,
    DiskResultCache,
    GcResult,
    LRUResultCache,
    TieredResultCache,
)
from .analytic import (
    ANALYTIC_RTOL,
    AUTO_CONFIRM_BAND,
    analytic_scenario_result,
    supports_analytic,
)
from .compare import average_savings, compare_grid, compare_schemes, savings_table
from .engine import (
    FIDELITIES,
    ScenarioEngine,
    canonicalize_scenario,
    scenario_fingerprint,
    scenario_group_key,
)
from .executor import ScenarioRunner, run_apps, run_scenario
from .fastforward import try_fast_forward
from .results import RunResult, routine_busy_times
from .scenario import Scenario, Scheme
from .schemes import (
    SchemeContext,
    SchemeExecutor,
    iter_schemes,
    register_scheme,
    scheme_names,
)
from .pool import WorkerPool, adaptive_chunk_size
from .sweeps import Sweep, SweepPoint, grid_of, run_sweep

__all__ = [
    "ANALYTIC_RTOL",
    "AUTO_CONFIRM_BAND",
    "CacheStats",
    "DiskResultCache",
    "ExecutionBackend",
    "FIDELITIES",
    "GcResult",
    "LRUResultCache",
    "OffloadReport",
    "ProcessPoolBackend",
    "RunResult",
    "Scenario",
    "ScenarioEngine",
    "ScenarioRunner",
    "Scheme",
    "SchemeContext",
    "SchemeExecutor",
    "SerialBackend",
    "SocketBackend",
    "Sweep",
    "SweepPoint",
    "TieredResultCache",
    "WorkerAgent",
    "WorkerPool",
    "adaptive_chunk_size",
    "analytic_scenario_result",
    "average_savings",
    "backend_names",
    "canonicalize_scenario",
    "check_offloadable",
    "create_backend",
    "compare_grid",
    "compare_schemes",
    "grid_of",
    "iter_schemes",
    "register_backend",
    "register_scheme",
    "routine_busy_times",
    "run_apps",
    "run_scenario",
    "run_sweep",
    "savings_table",
    "scenario_fingerprint",
    "scenario_group_key",
    "scheme_names",
    "supports_analytic",
    "try_fast_forward",
]
