"""The paper's contribution: Batching, COM, BEAM and BCOM executors."""

from ..firmware.capability import OffloadReport, check_offloadable
from .compare import average_savings, compare_schemes, savings_table
from .executor import ScenarioRunner, run_apps, run_scenario
from .results import RunResult, routine_busy_times
from .scenario import Scenario, Scheme
from .sweeps import Sweep, SweepPoint, grid_of, run_sweep

__all__ = [
    "OffloadReport",
    "RunResult",
    "Scenario",
    "ScenarioRunner",
    "Scheme",
    "Sweep",
    "SweepPoint",
    "average_savings",
    "check_offloadable",
    "compare_schemes",
    "grid_of",
    "routine_busy_times",
    "run_apps",
    "run_scenario",
    "run_sweep",
    "savings_table",
]
