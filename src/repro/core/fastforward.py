"""Steady-state fast-forward: truncated simulation + analytic extrapolation.

Every workload in the paper is strictly periodic — fixed sensor rates,
fixed window sizes, fixed per-window compute — so after a short warm-up
the simulation repeats one identical hyperperiod forever.  Simulating
millions of per-sample events is then pure waste: one cycle's energy and
timing can be measured once and extrapolated.

The engine here:

1. **Detects the hyperperiod** ``H`` — the LCM of the active stream
   window periods from the built :class:`~repro.core.schemes.base
   .SchemeContext` (:func:`repro.sim.steadystate.hyperperiod`).
2. **Runs a truncated scenario** of :data:`TRUNCATED_WINDOWS` windows,
   pausing the kernel at every cycle boundary ``b_i = i * H`` to capture
   a :class:`~repro.sim.steadystate.BoundarySnapshot` plus monotone
   activity counters and exact state levels.
3. **Verifies consecutive cycles match**: equal boundary snapshots,
   equal counter deltas, equal levels, per-cycle energy/busy-time
   deltas within 1e-12, and identical result-delivery phases across
   *three* consecutive cycles (delivery phase lives in process-local
   state that boundary snapshots cannot reach, and short transients can
   repeat a wrong phase once — see :meth:`SchemeContext.result_phases`).
   Warm-up cycles are excluded; candidate boundaries are tried in order
   until one verifies.
4. **Skips K = windows - TRUNCATED_WINDOWS cycles analytically**:
   virtual time advances by ``K * H``, per-routine busy times and
   per-cycle energy are multiplied out, interrupt/sample counters are
   bumped, and per-window app results are replicated/shifted so the
   result is indistinguishable (within float-summation rounding) from
   simulating every event.
5. **Falls back transparently** whenever any gate or verification
   fails — aperiodic combos, failure injection, mixed window lengths,
   too-short scenarios — returning ``None`` so the caller runs the full
   simulation.

Fidelity contract: energy and duration match full simulation within
rtol 1e-9 (float summation order differs); all integer counters —
interrupts, CPU wakes, bus bytes, per-window result counts — match
exactly.  Replicated :class:`~repro.apps.base.AppResult` payloads reuse
the template cycle's payload (skipped cycles are never simulated, so
waveform-dependent payload *values* are not re-derived); timing, energy
and counts are unaffected.
"""

from __future__ import annotations

import dataclasses
from bisect import bisect_right
from typing import Dict, List, Optional

from ..energy.meter import EnergyReport, PowerMonitor
from ..hw.power import busy_between, energy_between
from ..obs.recorder import NULL_RECORDER, NullRecorder
from ..sim.steadystate import BoundarySnapshot, dicts_close, hyperperiod
from .results import RunResult, routine_busy_times
from .scenario import Scenario
from .schemes.base import SchemeContext, build_context

#: Cycles always simulated before the first verification candidate.
WARMUP_CYCLES = 2
#: Candidate insertion boundaries, tried in order.  Candidate ``v``
#: verifies cycle ``(b_{v-1}, b_v]`` against ``(b_{v-2}, b_{v-1}]`` (and
#: the phase history one cycle further back), so the earliest candidate
#: leaves :data:`WARMUP_CYCLES` of warm-up.  The range extends to 7 so
#: combos whose transient lasts a few windows (e.g. two apps settling
#: their bus interleaving) still find a verified steady cycle.
CANDIDATE_BOUNDARIES = (3, 4, 5, 6, 7)
#: Cycles simulated after the last candidate so end-of-scenario behavior
#: (final hand-offs, queue drain) is always event-driven, never guessed.
TAIL_CYCLES = 2
#: Window count of the truncated prefix simulation.
TRUNCATED_WINDOWS = CANDIDATE_BOUNDARIES[-1] + TAIL_CYCLES
#: Scenarios shorter than this have no cycles left to skip.
MIN_WINDOWS = TRUNCATED_WINDOWS + 1

#: Per-cycle energy/busy deltas must agree this tightly between the two
#: verification cycles (float integration noise only; real drift is
#: orders of magnitude larger).
_DELTA_RTOL = 1e-12
_DELTA_ATOL = 1e-15


@dataclasses.dataclass
class _Boundary:
    """Everything captured when the kernel pauses at one cycle boundary."""

    snapshot: BoundarySnapshot
    counters: Dict[str, int]
    levels: Dict[str, int]
    #: Result-delivery phases of the cycle *ending* at this boundary.
    phases: tuple


def _fallback(obs: NullRecorder, reason: str) -> None:
    """Record a fallback (full simulation will run) and return ``None``."""
    obs.count("sim.ff.fallbacks", 1)
    obs.count(f"sim.ff.fallback.{reason}", 1)
    return None


def _gate(scenario: Scenario) -> Optional[str]:
    """Cheap pre-simulation checks; a reason string means fall back."""
    if scenario.windows < MIN_WINDOWS:
        return "too_short"
    if any(rate > 0 for rate in scenario.sensor_failure_rates.values()):
        # Failure draws are keyed to the device's absolute read count,
        # so retries land aperiodically by design.
        return "failure_injection"
    window_lengths = {app.profile.window_s for app in scenario.apps}
    if len(window_lengths) != 1:
        # ``windows`` is a shared per-app count: truncating removes a
        # different wall-time span per app when lengths differ, so no
        # uniform K*H skip exists.
        return "mixed_windows"
    return None


def _detect_hyperperiod(ctx: SchemeContext) -> Optional[float]:
    """Hyperperiod of the built scheme's streams, or ``None``.

    For fast-forward the LCM must also *be* the common window length:
    cycles are window-aligned because process loop state (window
    indices, governor schedules) rolls over per window.
    """
    periods = [stream.window_s for stream in ctx.streams.values()]
    periods.extend(app.profile.window_s for app in ctx.scenario.apps)
    period = hyperperiod(periods)
    if period is None:
        return None
    if any(
        abs(app.profile.window_s - period) > 1e-12 * period
        for app in ctx.scenario.apps
    ):
        return None
    return period


def _verified_boundary(
    ctx: SchemeContext, boundaries: Dict[int, _Boundary], period: float
) -> Optional[int]:
    """First candidate boundary whose cycle repeats the previous one."""
    recorder = ctx.hub.recorder
    for candidate in CANDIDATE_BOUNDARIES:
        current = boundaries[candidate]
        previous = boundaries[candidate - 1]
        oldest = boundaries[candidate - 2]
        if not current.snapshot.matches(previous.snapshot):
            continue
        # Three consecutive cycles must deliver results at identical
        # in-cycle offsets.  Two are not enough: a short transient can
        # repeat its (wrong) phase once while every boundary state and
        # per-cycle delta already looks settled.
        if not current.phases or not (
            current.phases == previous.phases == oldest.phases
        ):
            continue
        if current.levels != previous.levels:
            continue
        new_deltas = {
            key: current.counters[key] - previous.counters[key]
            for key in current.counters
        }
        old_deltas = {
            key: previous.counters[key] - oldest.counters[key]
            for key in previous.counters
        }
        if new_deltas != old_deltas:
            continue
        b_oldest = (candidate - 2) * period
        b_previous = (candidate - 1) * period
        b_current = candidate * period
        if not dicts_close(
            energy_between(recorder, b_previous, b_current),
            energy_between(recorder, b_oldest, b_previous),
            rtol=_DELTA_RTOL,
            atol=_DELTA_ATOL,
        ):
            continue
        if not dicts_close(
            busy_between(recorder, b_previous, b_current),
            busy_between(recorder, b_oldest, b_previous),
            rtol=_DELTA_RTOL,
            atol=_DELTA_ATOL,
        ):
            continue
        return candidate
    return None


def _extrapolated_results(
    ctx: SchemeContext,
    boundary: int,
    period: float,
    skipped: int,
):
    """Replicate/shift per-app results across the skipped cycles.

    The truncated run's results split at the insertion boundary ``b_v``:
    the head stays as-is, the template cycle's single result is
    replicated once per skipped cycle, and the tail shifts by
    ``skipped`` windows and ``skipped * period`` seconds.  Returns
    ``None`` when the split is not clean (which means the scenario is
    not as periodic as the boundary checks suggested — fall back).
    """
    b_current = boundary * period
    b_previous = (boundary - 1) * period
    shift_s = skipped * period
    app_results: Dict[str, List] = {}
    result_times: Dict[str, List[float]] = {}
    for app in ctx.scenario.apps:
        results = ctx._app_results[app.name]
        times = ctx._result_times[app.name]
        if len(results) != ctx.scenario.windows or any(
            entry.window_index != index
            for index, entry in enumerate(results)
        ):
            return None
        head = bisect_right(times, b_current)
        if head == 0 or times[head - 1] <= b_previous:
            return None  # no result landed inside the template cycle
        if head >= 2 and times[head - 2] > b_previous:
            return None  # more than one result per cycle: not steady
        template = results[head - 1]
        template_time = times[head - 1]
        app_results[app.name] = (
            results[:head]
            + [
                dataclasses.replace(
                    template, window_index=template.window_index + extra
                )
                for extra in range(1, skipped + 1)
            ]
            + [
                dataclasses.replace(
                    entry, window_index=entry.window_index + skipped
                )
                for entry in results[head:]
            ]
        )
        result_times[app.name] = (
            times[:head]
            + [template_time + extra * period for extra in range(1, skipped + 1)]
            + [time + shift_s for time in times[head:]]
        )
    return app_results, result_times


def try_fast_forward(
    scenario: Scenario, obs: Optional[NullRecorder] = None
) -> Optional[RunResult]:
    """Fast-forward one scenario, or ``None`` if it must run in full.

    On success the returned :class:`RunResult` covers all
    ``scenario.windows`` windows but only :data:`TRUNCATED_WINDOWS` of
    them were event-driven; ``sim.ff.cycles_skipped`` and
    ``sim.ff.events_saved`` are counted on ``obs``.  On any gate or
    verification failure ``sim.ff.fallbacks`` (and a per-reason
    ``sim.ff.fallback.<reason>``) is counted and ``None`` returned; the
    caller then runs the full simulation with identical semantics.
    """
    recorder = obs if obs is not None else NULL_RECORDER
    reason = _gate(scenario)
    if reason is not None:
        return _fallback(recorder, reason)

    truncated = dataclasses.replace(scenario, windows=TRUNCATED_WINDOWS)
    ctx = build_context(truncated, obs=obs)
    period = _detect_hyperperiod(ctx)
    if period is None:
        return _fallback(recorder, "no_hyperperiod")

    # Segmented execution: pause at each cycle boundary to fingerprint.
    # run(until=b) executes every event with time <= b and parks the
    # clock exactly at b, so the segmented run is bit-identical to an
    # uninterrupted one; the captures only read state.
    boundaries: Dict[int, _Boundary] = {}
    for index in range(1, CANDIDATE_BOUNDARIES[-1] + 1):
        ctx.hub.run(until=index * period)
        boundaries[index] = _Boundary(
            snapshot=ctx.boundary_snapshot(index, index * period),
            counters=ctx.steady_counters(),
            levels=ctx.steady_levels(),
            phases=ctx.result_phases((index - 1) * period, index * period),
        )
    ctx.hub.run()
    end_truncated = max(ctx.hub.sim.now, truncated.horizon_s)
    if ctx.qos_violations:
        return _fallback(recorder, "qos_violation")

    boundary = _verified_boundary(ctx, boundaries, period)
    if boundary is None:
        return _fallback(recorder, "no_steady_state")

    skipped = scenario.windows - TRUNCATED_WINDOWS
    extrapolated = _extrapolated_results(ctx, boundary, period, skipped)
    if extrapolated is None:
        return _fallback(recorder, "unaligned_results")
    app_results, result_times = extrapolated

    b_current = boundary * period
    b_previous = (boundary - 1) * period
    duration_s = end_truncated + skipped * period
    deltas = {
        key: boundaries[boundary].counters[key]
        - boundaries[boundary - 1].counters[key]
        for key in boundaries[boundary].counters
    }

    monitor = PowerMonitor(ctx.hub.recorder, ctx.cal.idle_hub_power_w)
    base_energy = monitor.measure(end_truncated)
    merged = dict(base_energy.by_component_routine)
    for key, joules in energy_between(
        ctx.hub.recorder, b_previous, b_current
    ).items():
        merged[key] = merged.get(key, 0.0) + skipped * joules
    energy = EnergyReport(
        duration_s=duration_s,
        idle_floor_power_w=ctx.cal.idle_hub_power_w,
        by_component_routine=merged,
    )

    busy_times = routine_busy_times(ctx.hub, end_truncated)
    for routine, seconds in busy_between(
        ctx.hub.recorder, b_previous, b_current
    ).items():
        busy_times[routine] = busy_times.get(routine, 0.0) + skipped * seconds

    recorder.count("sim.ff.cycles_skipped", skipped)
    recorder.count("sim.ff.events_saved", skipped * deltas["sim.events"])

    return RunResult(
        scenario_name=scenario.name,
        scheme=scenario.scheme,
        app_ids=[app.table2_id for app in scenario.apps],
        windows=scenario.windows,
        duration_s=duration_s,
        energy=energy,
        busy_times=busy_times,
        app_results=app_results,
        result_times=result_times,
        qos_violations=[],
        interrupt_count=ctx.hub.irq.raised_count
        + skipped * deltas["irq.raised"],
        cpu_wake_count=ctx.hub.cpu.wake_count + skipped * deltas["cpu.wakes"],
        bus_bytes=ctx.hub.bus.bytes_transferred + skipped * deltas["bus.bytes"],
        offload_reports=dict(ctx.offload_reports),
        # The attached hub holds the *truncated* run's timeline: traces
        # rendered from a fast-forwarded result show the simulated
        # prefix, not the skipped cycles.
        hub=ctx.hub,
    )
