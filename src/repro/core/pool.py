"""Persistent worker-pool plumbing for the scenario engine.

``concurrent.futures.ProcessPoolExecutor`` is the right fan-out
primitive, but the seed engine paid for it badly: every
``run_batch`` call forked a fresh pool (worker startup dominating short
sweeps) and shipped one pickled scenario per task (one IPC round-trip
per grid point).  :class:`WorkerPool` fixes both:

* **Persistence** — the executor is spawned lazily on the first
  parallel batch and reused for every later one, across
  ``run_sweep``/``compare_schemes``/CLI calls on the same engine.
  ``spawns`` counts executor creations, so tests can assert the pool
  was built exactly once.
* **Chunked dispatch** — tasks are grouped into chunks sized by
  :func:`adaptive_chunk_size` (a few chunks per worker: large enough to
  amortize IPC, small enough to load-balance), and each chunk is one
  ``submit`` call.

The pool is deliberately dumb about *what* it runs: the engine hands it
a picklable per-item function.  Results come back in item order.
"""

from __future__ import annotations

import math
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Any, Callable, List, Optional, Sequence, TypeVar

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")

#: Target number of chunks each worker should receive: >1 so a slow
#: chunk cannot serialize the whole batch behind one worker, small so
#: thousands of tiny scenarios still travel in few IPC round-trips.
CHUNKS_PER_WORKER = 4


def adaptive_chunk_size(
    task_count: int, workers: int, chunks_per_worker: int = CHUNKS_PER_WORKER
) -> int:
    """Chunk size giving each worker about ``chunks_per_worker`` chunks.

    Grows with the batch (1000 tasks on 4 workers -> 63-task chunks, 16
    IPC dispatches instead of 1000) and degrades gracefully for small
    batches (fewer tasks than workers -> one task per chunk).
    """
    if task_count <= 0:
        return 1
    if workers < 1:
        raise ValueError(f"need at least one worker, got {workers}")
    return max(1, math.ceil(task_count / (workers * chunks_per_worker)))


def chunked(items: Sequence[ItemT], size: int) -> List[Sequence[ItemT]]:
    """Split a sequence into consecutive chunks of at most ``size``."""
    if size < 1:
        raise ValueError(f"chunk size must be >= 1, got {size}")
    return [items[start : start + size] for start in range(0, len(items), size)]


def _run_chunk(
    fn: Callable[[Any], Any], chunk: Sequence[Any]
) -> List[Any]:
    """Worker-side loop: apply ``fn`` to every item of one chunk.

    Exceptions propagate through ``Future.result()`` so a real bug in
    one item aborts the batch in the parent instead of disappearing.
    """
    return [fn(item) for item in chunk]


class WorkerPool:
    """A lazily-spawned, reusable process pool with chunked dispatch.

    Use as a context manager, or call :meth:`close` explicitly; a closed
    pool respawns transparently on the next :meth:`map` (counted in
    ``spawns``).
    """

    def __init__(self, max_workers: int) -> None:
        if max_workers < 1:
            raise ValueError(f"need at least one worker, got {max_workers}")
        self.max_workers = int(max_workers)
        self._executor: Optional[ProcessPoolExecutor] = None
        #: Times an executor was created (1 == perfect reuse).
        self.spawns = 0
        #: Chunks submitted (each one IPC round-trip).
        self.dispatches = 0
        #: Individual tasks shipped inside those chunks.
        self.tasks = 0

    @property
    def alive(self) -> bool:
        """Whether an executor is currently running."""
        return self._executor is not None

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.max_workers
            )
            self.spawns += 1
        return self._executor

    def map(
        self,
        fn: Callable[[ItemT], ResultT],
        items: Sequence[ItemT],
        chunk_size: Optional[int] = None,
    ) -> List[ResultT]:
        """Run ``fn`` over ``items`` on the pool; results in item order.

        ``fn`` and every item must be picklable.  ``chunk_size`` defaults
        to :func:`adaptive_chunk_size` for the batch.
        """
        if not items:
            return []
        executor = self._ensure_executor()
        size = chunk_size or adaptive_chunk_size(
            len(items), self.max_workers
        )
        futures: List["Future[List[ResultT]]"] = []
        for chunk in chunked(items, size):
            futures.append(executor.submit(_run_chunk, fn, chunk))
            self.dispatches += 1
            self.tasks += len(chunk)
        results: List[ResultT] = []
        for future in futures:
            results.extend(future.result())
        return results

    def close(self) -> None:
        """Shut the executor down (idempotent); workers exit cleanly."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *_exc_info: object) -> None:
        self.close()
