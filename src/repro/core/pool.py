"""Backward-compatibility shim for the pre-backend pool module.

The persistent process pool grew into a pluggable execution-backend
layer (:mod:`repro.core.backends`): the pool itself moved, behavior
unchanged, to :class:`repro.core.backends.process.ProcessPoolBackend`,
and the chunking helpers to :mod:`repro.core.backends.base`.  This
module keeps the old import surface alive — ``WorkerPool`` is now an
alias of the process backend (whose :meth:`map` preserves the old
entry point) — so external callers and older scripts keep working.
New code should import from :mod:`repro.core.backends` directly.
"""

from __future__ import annotations

from .backends.base import (
    CHUNKS_PER_WORKER,
    adaptive_chunk_size,
    chunked,
)
from .backends.base import run_chunk as _run_chunk
from .backends.process import ProcessPoolBackend as WorkerPool

__all__ = [
    "CHUNKS_PER_WORKER",
    "WorkerPool",
    "adaptive_chunk_size",
    "chunked",
    "_run_chunk",
]
