"""The scheme registry: execution-scheme name -> executor class.

Schemes self-register at import time via :func:`register_scheme`; the
package ``__init__`` imports every built-in scheme module, so importing
anything from ``repro.core.schemes`` guarantees the six paper schemes
are present.  Third-party schemes register the same way — one module,
one decorator — and immediately work everywhere a scheme name is
accepted (:class:`~repro.core.scenario.Scenario`, the CLI, sweeps).
"""

from __future__ import annotations

from typing import Dict, Tuple, Type

from ...errors import WorkloadError

#: Registration-ordered mapping of scheme name -> executor class.
_REGISTRY: Dict[str, type] = {}


def register_scheme(name: str):
    """Class decorator registering a :class:`SchemeExecutor` under ``name``.

    The decorated class gains a ``name`` attribute.  Re-registering a
    different class under an existing name is an error (re-importing the
    same class is idempotent, so module reloads stay harmless).
    """

    def decorator(cls: type) -> type:
        existing = _REGISTRY.get(name)
        if existing is not None and existing is not cls:
            raise WorkloadError(
                f"scheme {name!r} already registered by {existing.__name__}"
            )
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorator


def get_scheme(name: str) -> type:
    """Look up a scheme class by name; raises for unknown names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(_REGISTRY) or "none"
        raise WorkloadError(
            f"unknown scheme {name!r} (registered: {known})"
        ) from None


def scheme_names() -> Tuple[str, ...]:
    """Registered scheme names, in registration order."""
    return tuple(_REGISTRY)


def iter_schemes() -> Tuple[Tuple[str, type], ...]:
    """(name, class) pairs in registration order."""
    return tuple(_REGISTRY.items())


def unregister_scheme(name: str) -> None:
    """Remove a scheme (test hygiene for dynamically registered ones)."""
    _REGISTRY.pop(name, None)
