"""Pluggable execution schemes (one module per §III subsection).

Importing this package registers the paper's six schemes; add your own
by subclassing :class:`SchemeExecutor` in a new module and decorating it
with ``@register_scheme("<name>")`` — see ``docs/extending.md``.
"""

from .base import (
    SchemeContext,
    SchemeExecutor,
    Stream,
    WindowState,
    execute_scenario,
)
from .registry import (
    get_scheme,
    iter_schemes,
    register_scheme,
    scheme_names,
    unregister_scheme,
)

# Import order defines listing order: mirror Scheme.ALL / the paper's §III.
from . import polling as _polling  # noqa: E402,F401
from . import baseline as _baseline  # noqa: E402,F401
from . import batching as _batching  # noqa: E402,F401
from . import com as _com  # noqa: E402,F401
from . import beam as _beam  # noqa: E402,F401
from . import bcom as _bcom  # noqa: E402,F401

__all__ = [
    "SchemeContext",
    "SchemeExecutor",
    "Stream",
    "WindowState",
    "execute_scenario",
    "get_scheme",
    "iter_schemes",
    "register_scheme",
    "scheme_names",
    "unregister_scheme",
]
