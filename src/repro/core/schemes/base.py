"""Scheme-plugin protocol and the shared execution plumbing.

A scheme is a small class: a :class:`SchemeExecutor` subclass whose
``build`` wires MCU-side and CPU-side processes onto a
:class:`SchemeContext`.  The context owns everything every scheme needs
— the hub, the sensor devices, polling-stream construction, window
bookkeeping, the interrupt dispatcher, the CPU compute loop and the
sleep governor — so a new scheme is one new file that composes these
primitives, not an edit to a god-module.

:func:`execute_scenario` is the single entry point: look the scheme up
in the registry, build a fresh context, run the discrete-event
simulation to completion and integrate the energy.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import ClassVar, Dict, List, Optional, Sequence, Tuple

from ...apps.base import AppResult, IoTApp, SampleWindow
from ...errors import CapacityError, WorkloadError
from ...firmware.batching import BatchBuffer
from ...firmware.driver import (
    mcu_transfer_busy,
    raise_interrupt,
    read_and_decode,
)
from ...firmware.runtime import run_offloaded_compute
from ...hubos.governor import CpuRestPolicy, SleepGovernor
from ...hubos.interrupts import service_interrupt
from ...hubos.polling import cpu_blocking_read
from ...hubos.transfer import cpu_transfer
from ...hw.board import IoTHub
from ...hw.cpu import CpuState
from ...hw.mcu import McuState
from ...hw.power import Routine
from ...obs.recorder import NullRecorder
from ...sensors.base import SensorDevice
from ...sim.process import Delay, Signal, Wait
from ...sim.steadystate import (
    REL_TIME_DECIMALS,
    BoundarySnapshot,
    capture_snapshot,
)
from ...units import to_ms
from ..results import RunResult, routine_busy_times
from .registry import get_scheme

#: Window-indexed name tag (``A2.w5``) rebased by the cycle normalizer.
_WINDOW_TAG = re.compile(r"\.w(\d+)")
#: Auto-numbered process names (``process-37``): transient helpers whose
#: global sequence number differs between otherwise identical cycles.
_AUTO_PROCESS_NAME = re.compile(r"^process-\d+$")


@dataclass
class Stream:
    """One MCU polling stream: a sensor feeding one or more apps.

    Under BEAM, subscribers with slower QoS rates receive a decimated
    view of the shared stream: ``strides[app]`` is how many raw samples
    separate two deliveries to that app.
    """

    sensor_id: str
    subscribers: List[IoTApp]
    rate_hz: float
    window_s: float
    samples_per_window: int
    sample_bytes: int
    strides: Dict[str, int] = field(default_factory=dict)

    def stride(self, app: IoTApp) -> int:
        """Delivery stride for one subscriber (1 = every sample)."""
        return self.strides.get(app.name, 1)

    @property
    def key(self) -> str:
        """Stable stream label: ``<sensor>@<app>[+<app>...]``."""
        apps = "+".join(app.name for app in self.subscribers)
        return f"{self.sensor_id}@{apps}"


@dataclass
class WindowState:
    """Collection progress of one (app, window).

    ``complete`` means every expected sample has been *collected*;
    ``delivered`` means the CPU has received the data (post-transfer) and
    the window computation may start.
    """

    window: SampleWindow
    expected: Dict[str, int]
    signal: Signal
    complete: bool = False
    delivered: bool = False
    deadline_s: float = 0.0

    def register(self, sample) -> bool:
        """Add a sample; returns True when the window just completed."""
        self.window.add(sample)
        if self.complete:
            return False
        for sensor_id, needed in self.expected.items():
            if self.window.count(sensor_id) < needed:
                return False
        self.complete = True
        return True

    def deliver(self) -> None:
        """Mark the window CPU-visible and wake its compute process."""
        self.delivered = True
        self.signal.fire(self.window.window_index)


def build_streams(apps: Sequence[IoTApp], shared: bool) -> List[Stream]:
    """Build polling streams for ``apps``: per-app or shared-per-sensor.

    Pure function of the app profiles — no hub, no simulator — so the
    DES (via :meth:`SchemeContext.streams_for`) and the closed-form
    analytic tier (:mod:`repro.core.analytic`) derive their schedules
    from the exact same stream set.  Raises
    :class:`~repro.errors.WorkloadError` for BEAM-unshareable sensors
    (mixed window lengths, non-dividing rates).
    """
    if not shared:
        return [
            Stream(
                sensor_id=sensor_id,
                subscribers=[app],
                rate_hz=app.profile.rate_hz(sensor_id),
                window_s=app.profile.window_s,
                samples_per_window=app.profile.samples_per_window(sensor_id),
                sample_bytes=app.profile.sample_bytes(sensor_id),
            )
            for app in apps
            for sensor_id in app.profile.sensor_ids
        ]
    by_sensor: Dict[str, List[IoTApp]] = {}
    for app in apps:
        for sensor_id in app.profile.sensor_ids:
            by_sensor.setdefault(sensor_id, []).append(app)
    streams = []
    for sensor_id, subscribers in by_sensor.items():
        windows = {app.profile.window_s for app in subscribers}
        if len(windows) > 1:
            raise WorkloadError(
                f"BEAM cannot share {sensor_id}: subscribers disagree "
                f"on window length"
            )
        # Poll at the fastest subscriber's rate; slower subscribers
        # get a decimated view (their rate must divide the fastest).
        fastest = max(app.profile.rate_hz(sensor_id) for app in subscribers)
        strides: Dict[str, int] = {}
        for app in subscribers:
            ratio = fastest / app.profile.rate_hz(sensor_id)
            stride = int(round(ratio))
            if abs(ratio - stride) > 1e-9 or stride < 1:
                raise WorkloadError(
                    f"BEAM cannot share {sensor_id}: {app.name}'s rate "
                    f"does not divide the fastest subscriber's"
                )
            strides[app.name] = stride
        reference = max(
            subscribers, key=lambda app: app.profile.rate_hz(sensor_id)
        )
        streams.append(
            Stream(
                sensor_id=sensor_id,
                subscribers=list(subscribers),
                rate_hz=fastest,
                window_s=reference.profile.window_s,
                samples_per_window=reference.profile.samples_per_window(
                    sensor_id
                ),
                sample_bytes=max(
                    app.profile.sample_bytes(sensor_id) for app in subscribers
                ),
                strides=strides,
            )
        )
    return streams


class SchemeContext:
    """Shared stream/window/governor plumbing handed to a scheme's build.

    Holds the fresh :class:`~repro.hw.board.IoTHub`, the attached sensor
    devices and all scheme-agnostic process generators.  A scheme's
    ``build`` spawns processes and sets the governor knobs (``policy``,
    ``allow_deep``, ``use_governor``, ``rest_routine``).
    """

    def __init__(
        self,
        scenario,
        cpu_starts_awake: bool = False,
        obs: Optional[NullRecorder] = None,
    ):
        self.scenario = scenario
        self.cal = scenario.calibration
        # Governor-less schemes keep the CPU online from the start.
        initial_cpu = CpuState.IDLE if cpu_starts_awake else CpuState.DEEP_SLEEP
        self.hub = IoTHub(self.cal, cpu_initial_state=initial_cpu, obs=obs)
        #: Instrumentation sink (shared with the kernel; no-op by default).
        self.obs = self.hub.obs
        self.governor = SleepGovernor(self.hub.cpu)
        self.devices: Dict[str, SensorDevice] = {}
        for sensor_id in scenario.sensor_ids:
            waveform = scenario.waveforms.get(sensor_id)
            self.devices[sensor_id] = SensorDevice.attach(
                self.hub,
                sensor_id,
                waveform,
                failure_rate=scenario.sensor_failure_rates.get(sensor_id, 0.0),
            )
        self._windows: Dict[Tuple[str, int], WindowState] = {}
        self._app_results: Dict[str, List[AppResult]] = {
            app.name: [] for app in scenario.apps
        }
        self._result_times: Dict[str, List[float]] = {
            app.name: [] for app in scenario.apps
        }
        self.qos_violations: List[str] = []
        self.offload_reports = {}
        #: Governor knobs, set by the scheme's ``build``.
        self.policy = CpuRestPolicy([])
        self.allow_deep = False
        self.rest_routine = Routine.DATA_TRANSFER
        # The paper's baseline never sleeps (Fig. 5a: "the CPU is in
        # active mode all the time"); race-to-sleep is part of the
        # optimized schemes, so only those enable the governor.
        self.use_governor = True
        self.total_irqs = 0
        #: Next scheduled poll per stream key — the MCU's own nap governor.
        self._mcu_next_polls: Dict[str, float] = {}
        #: Every stream built through :meth:`streams_for`, keyed by
        #: :attr:`Stream.key`.  The fast-forward engine reads this to
        #: compute the scheme's hyperperiod after ``build``.
        self.streams: Dict[str, Stream] = {}

    # ------------------------------------------------------------------
    # governor plumbing
    # ------------------------------------------------------------------
    def rest(self) -> None:
        """Apply the governor with the scheme's schedule knowledge."""
        if not self.use_governor:
            if self.hub.cpu.psm.state != "busy" and not self.hub.cpu.asleep:
                self.hub.cpu.set_idle(self.rest_routine)
            return
        expected = self.policy.expected_idle(self.hub.sim.now)
        self.governor.rest(
            expected,
            wait_routine=self.rest_routine,
            allow_deep=self.allow_deep,
        )

    def mcu_rest(self, stream_key: str, next_poll: float) -> None:
        """Let the MCU light-sleep if every stream's next poll is far off."""
        self._mcu_next_polls[stream_key] = next_poll
        if self.hub.mcu.psm.state != McuState.IDLE:
            return
        now = self.hub.sim.now
        upcoming = min(self._mcu_next_polls.values(), default=now)
        if upcoming - now > self.cal.mcu.sleep_threshold_s:
            self.hub.mcu.enter_sleep(Routine.DATA_COLLECTION)

    def mcu_wake(self) -> None:
        """Bring the MCU back online for a poll."""
        if self.hub.mcu.psm.state == McuState.SLEEP:
            self.hub.mcu.set_idle(Routine.DATA_COLLECTION)

    # ------------------------------------------------------------------
    # window bookkeeping
    # ------------------------------------------------------------------
    def window_state(self, app: IoTApp, index: int) -> WindowState:
        """The (lazily created) collection state of one app window."""
        key = (app.name, index)
        if key not in self._windows:
            start = index * app.profile.window_s
            sources = {
                sensor_id: self.devices[sensor_id].waveform
                for sensor_id in app.profile.sensor_ids
            }
            # Heavy apps are soft real-time (converting 1 s of audio takes
            # longer than 1 s); light apps must deliver within one extra
            # window.
            deadline = (
                float("inf")
                if app.profile.heavy
                else start + 2.0 * app.profile.window_s
            )
            state = WindowState(
                window=app.build_window(index, start, sources=sources),
                expected={
                    sensor_id: app.profile.samples_per_window(sensor_id)
                    for sensor_id in app.profile.sensor_ids
                },
                signal=Signal(f"{app.name}.w{index}"),
                deadline_s=deadline,
            )
            self._windows[key] = state
        return self._windows[key]

    def record_result(self, app: IoTApp, result: AppResult) -> None:
        """Log one delivered window result and check its QoS deadline."""
        now = self.hub.sim.now
        self._app_results[app.name].append(result)
        self._result_times[app.name].append(now)
        state = self.window_state(app, result.window_index)
        if now > state.deadline_s + 1e-9:
            self.qos_violations.append(
                f"{app.name} window {result.window_index}: result at "
                f"{to_ms(now):.1f} ms, deadline "
                f"{to_ms(state.deadline_s):.1f} ms"
            )

    # ------------------------------------------------------------------
    # stream construction
    # ------------------------------------------------------------------
    def streams_for(
        self, apps: Sequence[IoTApp], shared: bool
    ) -> List[Stream]:
        """Build polling streams: per-app or shared-per-sensor (BEAM)."""
        return self._record_streams(build_streams(apps, shared))

    def _record_streams(self, streams) -> List[Stream]:
        """Remember built streams (idempotent: re-builds overwrite by key)."""
        materialized = list(streams)
        for stream in materialized:
            self.streams[stream.key] = stream
        return materialized

    def sample_times(self, streams: Sequence[Stream]) -> List[float]:
        """Every scheduled poll instant across the given streams."""
        times: List[float] = []
        for stream in streams:
            for window_index in range(self.scenario.windows):
                start = window_index * stream.window_s
                times.extend(
                    start + k / stream.rate_hz
                    for k in range(stream.samples_per_window)
                )
        return times

    def window_boundaries(self, apps: Sequence[IoTApp]) -> List[float]:
        """Window-close instants for every (app, window) pair."""
        return [
            (window_index + 1) * app.profile.window_s
            for app in apps
            for window_index in range(self.scenario.windows)
        ]

    # ------------------------------------------------------------------
    # MCU-side processes
    # ------------------------------------------------------------------
    def poll_stream_interrupting(self, stream: Stream):
        """Baseline/BEAM: poll and interrupt the CPU per sample."""
        device = self.devices[stream.sensor_id]
        # Hoisted out of the per-sample loop: stream.key builds a string
        # per call, sim.now is a property read, and the enabled flag and
        # span method are attribute lookups the loop repeats thousands of
        # times.  The recorder never changes mid-run, so this is safe.
        obs = self.obs
        observing = obs.enabled
        span = obs.span
        sim = self.hub.sim
        key = stream.key
        for window_index in range(self.scenario.windows):
            window_start = window_index * stream.window_s
            for k in range(stream.samples_per_window):
                target = window_start + k / stream.rate_hz
                now = sim.now
                if target > now:
                    self.mcu_rest(key, target)
                    yield Delay(target - now)
                self.mcu_wake()
                if observing:
                    t0 = sim.now
                sample = yield from read_and_decode(self.hub, device)
                if observing:
                    t1 = sim.now
                    span("sense", key, t0, t1)
                yield from raise_interrupt(
                    self.hub, "sample", (stream, window_index, k, sample)
                )
                if observing:
                    t2 = sim.now
                    span("irq", "sample", t1, t2)
                yield from mcu_transfer_busy(self.hub, 1, bulk=False)
                if observing:
                    span("transfer", "mcu:sample", t2, sim.now)
        self._mcu_next_polls.pop(key, None)

    def poll_stream_buffering(
        self,
        stream: Stream,
        app: IoTApp,
        coordinator: Dict[int, int],
        buffer: BatchBuffer,
        on_window_full,
    ):
        """Batching/COM: poll into MCU RAM; last stream triggers hand-off.

        ``buffer`` is shared among the app's streams; ``coordinator``
        counts completed streams per window, and whichever stream finishes
        an app window last invokes the ``on_window_full(window_index,
        buffer)`` generator.
        """
        device = self.devices[stream.sensor_id]
        stream_count = len(app.profile.sensor_ids)
        # Hoisted out of the per-sample loop: stream.key builds a string
        # per call, sim.now is a property read, and the enabled flag and
        # span method are attribute lookups the loop repeats thousands of
        # times.  The recorder never changes mid-run, so this is safe.
        obs = self.obs
        observing = obs.enabled
        span = obs.span
        sim = self.hub.sim
        key = stream.key
        for window_index in range(self.scenario.windows):
            window_start = window_index * stream.window_s
            for k in range(stream.samples_per_window):
                target = window_start + k / stream.rate_hz
                now = sim.now
                if target > now:
                    self.mcu_rest(key, target)
                    yield Delay(target - now)
                self.mcu_wake()
                if observing:
                    t0 = sim.now
                sample = yield from read_and_decode(self.hub, device)
                if observing:
                    span("sense", key, t0, sim.now)
                if buffer is not None:
                    try:
                        buffer.add(sample, stream.sample_bytes)
                    except CapacityError as exc:
                        self.qos_violations.append(str(exc))
                state = self.window_state(app, window_index)
                state.register(sample)
                if (
                    buffer is not None
                    and self.scenario.batch_size is not None
                    and buffer.sample_count >= self.scenario.batch_size
                    and not state.complete
                ):
                    # Partial flush: ship the accumulated batch early.
                    yield from self.ship_batch(
                        app, window_index, buffer, final=False
                    )
            coordinator[window_index] = coordinator.get(window_index, 0) + 1
            if coordinator[window_index] == stream_count:
                yield from on_window_full(window_index, buffer)
        self._mcu_next_polls.pop(key, None)

    def ship_batch(
        self, app: IoTApp, window_index: int, buffer: BatchBuffer, final: bool
    ):
        """MCU side of one batch hand-off (interrupt + bulk put).

        The buffer is drained synchronously here so concurrently polling
        streams start filling a fresh batch; its RAM is released once the
        payload is on the bus.
        """
        nbytes = max(1, buffer.buffered_bytes)
        samples = buffer.flush()
        count = len(samples)
        obs = self.obs
        if obs.enabled:
            t0 = self.hub.sim.now
        yield from raise_interrupt(
            self.hub, "batch", (app, window_index, count, nbytes, final)
        )
        if obs.enabled:
            t1 = self.hub.sim.now
            obs.span("irq", "batch", t0, t1)
        yield from mcu_transfer_busy(self.hub, max(1, count), bulk=True)
        if obs.enabled:
            obs.span("transfer", "mcu:batch", t1, self.hub.sim.now)

    def batch_handoff(self, app: IoTApp):
        """Make the batching hand-off generator for one app."""

        def handoff(window_index: int, buffer: BatchBuffer):
            yield from self.ship_batch(app, window_index, buffer, final=True)

        return handoff

    def com_handoff(self, app: IoTApp):
        """Make the COM hand-off: compute on MCU, ship only the result."""

        def handoff(window_index: int, buffer):
            obs = self.obs
            state = self.window_state(app, window_index)
            if obs.enabled:
                t0 = self.hub.sim.now
            result = yield from run_offloaded_compute(
                self.hub, app, state.window
            )
            if obs.enabled:
                t1 = self.hub.sim.now
                obs.span("compute", f"mcu:{app.name}", t0, t1)
            yield from raise_interrupt(
                self.hub, "result", (app, window_index, result)
            )
            if obs.enabled:
                t2 = self.hub.sim.now
                obs.span("irq", "result", t1, t2)
            yield from mcu_transfer_busy(self.hub, 1, bulk=False)
            if obs.enabled:
                obs.span("transfer", "mcu:result", t2, self.hub.sim.now)

        return handoff

    def poll_stream_cpu(self, stream: Stream):
        """§II-A main-board polling: the CPU blocks on each read."""
        device = self.devices[stream.sensor_id]
        # Hoisted out of the per-sample loop: stream.key builds a string
        # per call, sim.now is a property read, and the enabled flag and
        # span method are attribute lookups the loop repeats thousands of
        # times.  The recorder never changes mid-run, so this is safe.
        obs = self.obs
        observing = obs.enabled
        span = obs.span
        sim = self.hub.sim
        key = stream.key
        for window_index in range(self.scenario.windows):
            window_start = window_index * stream.window_s
            for k in range(stream.samples_per_window):
                target = window_start + k / stream.rate_hz
                now = sim.now
                if target > now:
                    yield Delay(target - now)
                if observing:
                    t0 = sim.now
                sample = yield from cpu_blocking_read(self.hub, device)
                if observing:
                    span("sense", key, t0, sim.now)
                for app in stream.subscribers:
                    state = self.window_state(app, window_index)
                    if state.register(sample):
                        state.deliver()

    # ------------------------------------------------------------------
    # CPU-side processes
    # ------------------------------------------------------------------
    def dispatcher(self):
        """The CPU's interrupt service loop (one process for the hub).

        Runs until the simulation drains: blocking on the interrupt signal
        schedules no events, so the kernel terminates naturally once all
        device activity is over.
        """
        obs = self.obs
        while True:
            request = yield from self.hub.irq.wait()
            if obs.enabled:
                t0 = self.hub.sim.now
            yield from service_interrupt(self.hub)
            if obs.enabled:
                t1 = self.hub.sim.now
                obs.span("irq", f"service:{request.vector}", t0, t1)
            if request.vector == "sample":
                stream, window_index, k, sample = request.payload
                yield from cpu_transfer(
                    self.hub, stream.sample_bytes, 1, bulk=False
                )
                if obs.enabled:
                    obs.span("transfer", "cpu:sample", t1, self.hub.sim.now)
                for app in stream.subscribers:
                    if k % stream.stride(app) != 0:
                        continue  # decimated subscriber skips this sample
                    state = self.window_state(app, window_index)
                    if state.register(sample):
                        state.deliver()
            elif request.vector == "batch":
                app, window_index, count, nbytes, final = request.payload
                yield from cpu_transfer(
                    self.hub, nbytes, max(1, count), bulk=True
                )
                if obs.enabled:
                    obs.span("transfer", "cpu:batch", t1, self.hub.sim.now)
                if final:
                    state = self.window_state(app, window_index)
                    if not state.complete:
                        raise WorkloadError(
                            f"{app.name} batch window {window_index} incomplete"
                        )
                    state.deliver()
            elif request.vector == "result":
                app, window_index, result = request.payload
                yield from cpu_transfer(
                    self.hub, app.profile.output_bytes, 1, bulk=False
                )
                if obs.enabled:
                    obs.span("transfer", "cpu:result", t1, self.hub.sim.now)
                self.record_result(app, result)
                yield from self.hub.nic.send(
                    app.profile.output_bytes, Routine.APP_COMPUTE
                )
            else:  # pragma: no cover - defensive
                raise WorkloadError(f"unknown vector {request.vector!r}")
            if self.hub.irq.pending_count == 0:
                self.rest()

    def cpu_compute_process(self, app: IoTApp):
        """Window computation on the CPU (baseline/batching/beam)."""
        obs = self.obs
        for window_index in range(self.scenario.windows):
            state = self.window_state(app, window_index)
            if not state.delivered:
                yield Wait(state.signal)
            if self.hub.cpu.asleep:
                yield from self.hub.cpu.wake(Routine.APP_COMPUTE)
            yield from self.hub.cpu.core.acquire()
            if obs.enabled:
                t0 = self.hub.sim.now
            result = app.compute(state.window)
            yield from self.hub.cpu.execute(
                app.profile.cpu_compute_time_s(self.cal),
                Routine.APP_COMPUTE,
                instructions=app.profile.instructions,
            )
            self.hub.cpu.core.release()
            if obs.enabled:
                obs.span("compute", f"cpu:{app.name}", t0, self.hub.sim.now)
            self.record_result(app, result)
            yield from self.hub.nic.send(
                app.profile.output_bytes, Routine.APP_COMPUTE
            )
            self.rest()

    # ------------------------------------------------------------------
    # steady-state fingerprinting (fast-forward support)
    # ------------------------------------------------------------------
    def _cycle_normalizer(self, boundary_index: int):
        """Name normalizer making window-indexed labels cycle-relative.

        Window signals are named ``<app>.w<index>``; two boundaries one
        hyperperiod apart reference different absolute indices for the
        same relative position, so indices are rebased to the boundary
        (``A2.w5`` at boundary 5 and ``A2.w6`` at boundary 6 both become
        ``A2.w+0``).  Auto-numbered transient processes collapse to a
        stable label for the same reason.
        """

        def normalize(name: str) -> str:
            name = _AUTO_PROCESS_NAME.sub("process", name)
            return _WINDOW_TAG.sub(
                lambda match: f".w{int(match.group(1)) - boundary_index:+d}",
                name,
            )

        return normalize

    def boundary_snapshot(
        self, boundary_index: int, boundary_s: float
    ) -> BoundarySnapshot:
        """Cycle-relative fingerprint of the live state at a boundary.

        Called between kernel run segments by the fast-forward engine;
        read-only, so segmented execution stays bit-identical to an
        uninterrupted run.
        """
        return capture_snapshot(
            self.hub.sim,
            self.hub.recorder,
            boundary_s,
            self._cycle_normalizer(boundary_index),
        )

    def steady_counters(self) -> Dict[str, int]:
        """Monotone activity counters for per-cycle delta verification.

        Every counter here only ever grows; a steady cycle advances each
        by a constant delta, which is also exactly what the fast-forward
        extrapolation multiplies.
        """
        counters: Dict[str, int] = {
            "irq.raised": self.hub.irq.raised_count,
            "cpu.wakes": self.hub.cpu.wake_count,
            "bus.bytes": self.hub.bus.bytes_transferred,
            "nic.bytes": self.hub.nic.bytes_sent,
            "sim.events": self.hub.sim.events_executed,
        }
        for sensor_id in sorted(self.devices):
            device = self.devices[sensor_id]
            counters[f"sensor.{sensor_id}.reads"] = device.read_count
            counters[f"sensor.{sensor_id}.failed"] = device.failed_checks
            counters[f"sensor.{sensor_id}.stale"] = device.stale_samples
        for app in self.scenario.apps:
            counters[f"app.{app.name}.results"] = len(
                self._app_results[app.name]
            )
        recorder = self.hub.recorder
        for component in recorder.components:
            counters[f"trace.{component}.changes"] = recorder.change_count(
                component
            )
        return counters

    def result_phases(
        self, t0_s: float, t1_s: float
    ) -> Tuple[Tuple[str, float], ...]:
        """Result-delivery phases inside the cycle ``(t0_s, t1_s]``.

        Boundary snapshots see the state *at* each boundary; two
        transient cycles can drain to identical boundary states while
        delivering their results at different offsets inside the cycle
        (the delivery phase lives in process-local variables no snapshot
        can reach).  Verification therefore also requires the phases to
        repeat, since the extrapolated result times replicate them.
        """
        phases = [
            (name, round(time - t0_s, REL_TIME_DECIMALS))
            for name, times in self._result_times.items()
            for time in times
            if t0_s < time <= t1_s
        ]
        return tuple(sorted(phases))

    def steady_levels(self) -> Dict[str, int]:
        """State levels that must repeat *exactly* at matching boundaries.

        Unlike :meth:`steady_counters` these can go up and down; a
        linear drift (e.g. MCU RAM filling a little more every cycle)
        would pass a delta check but must still block fast-forward.
        """
        return {
            "irq.pending": self.hub.irq.pending_count,
            "mcu.ram_used": self.hub.mcu.ram.used_bytes,
            "qos.violations": len(self.qos_violations),
        }

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------
    def collect(self, end_time: float) -> RunResult:
        """Integrate energy and assemble the scenario's :class:`RunResult`."""
        from ...energy.meter import PowerMonitor

        monitor = PowerMonitor(self.hub.recorder, self.cal.idle_hub_power_w)
        energy = monitor.measure(end_time)
        missing = [
            app.name
            for app in self.scenario.apps
            if len(self._app_results[app.name]) != self.scenario.windows
        ]
        if missing:
            raise WorkloadError(
                f"scenario {self.scenario.name}: apps without complete "
                f"results: {missing}"
            )
        return RunResult(
            scenario_name=self.scenario.name,
            scheme=self.scenario.scheme,
            app_ids=[app.table2_id for app in self.scenario.apps],
            windows=self.scenario.windows,
            duration_s=end_time,
            energy=energy,
            busy_times=routine_busy_times(self.hub, end_time),
            app_results=dict(self._app_results),
            result_times=dict(self._result_times),
            qos_violations=list(self.qos_violations),
            interrupt_count=self.hub.irq.raised_count,
            cpu_wake_count=self.hub.cpu.wake_count,
            bus_bytes=self.hub.bus.bytes_transferred,
            offload_reports=dict(self.offload_reports),
            hub=self.hub,
        )


@dataclass
class AnalyticPlan:
    """A scheme's declaration of how the analytic tier should model it.

    Schemes return one of three *families* from
    :meth:`SchemeExecutor.analytic_plan`; the closed-form models in
    :mod:`repro.core.analytic` derive schedules and energy from the
    family plus the scenario, using the same :func:`build_streams`
    output as the DES:

    * ``"interrupting"`` — per-sample MCU poll, interrupt, transfer
      (baseline; BEAM sets ``shared``).
    * ``"cpu_polling"`` — the CPU blocks on every read (§II-A polling).
    * ``"buffered"`` — MCU-buffered sensing with per-window hand-off:
      ``batch_apps`` ship their buffer, ``com_apps`` compute on the MCU
      and ship only the result (batching / COM / BCOM mixes).
    """

    family: str
    shared: bool = False
    com_apps: List[IoTApp] = field(default_factory=list)
    batch_apps: List[IoTApp] = field(default_factory=list)
    offload_reports: Dict[str, "OffloadReport"] = field(default_factory=dict)

    FAMILIES: ClassVar[Tuple[str, ...]] = (
        "interrupting",
        "cpu_polling",
        "buffered",
    )


class SchemeExecutor:
    """Base class for scheme plugins.

    Subclass, decorate with ``@register_scheme("<name>")``, implement
    ``build`` and set the two class knobs; the registry makes the scheme
    addressable by name everywhere a scheme string is accepted.
    """

    #: Registry name; filled in by :func:`register_scheme`.
    name: ClassVar[str] = ""
    #: Whether the CPU starts awake (governor-less schemes) or deep-asleep.
    cpu_starts_awake: ClassVar[bool] = False
    #: Whether the MCU board owns the sensing (False = main-board polling,
    #: where the MCU never leaves sleep).
    mcu_owns_sensing: ClassVar[bool] = True

    def build(self, ctx: SchemeContext) -> None:
        """Spawn the scheme's processes and set the governor knobs."""
        raise NotImplementedError

    def analytic_plan(self, scenario) -> Optional[AnalyticPlan]:
        """Inputs for the closed-form tier, or ``None`` (DES-only scheme).

        Must make the same feasibility decisions as :meth:`build` — a
        scheme that raises (e.g. COM's :class:`~repro.errors.OffloadError`)
        during ``build`` must raise identically here, so the analytic
        tier reports the same errors as the DES.  Plugin schemes that do
        not implement a closed-form model inherit the ``None`` default
        and always execute through the DES.
        """
        return None


def build_context(
    scenario, obs: Optional[NullRecorder] = None
) -> SchemeContext:
    """Construct and wire a fresh context for one scenario (not yet run).

    Shared by :func:`execute_scenario` and the fast-forward engine so
    both drive byte-for-byte identical setups.
    """
    executor = get_scheme(scenario.scheme)()
    ctx = SchemeContext(
        scenario, cpu_starts_awake=executor.cpu_starts_awake, obs=obs
    )
    executor.build(ctx)
    if executor.mcu_owns_sensing:
        # The MCU board is awake whenever it owns the sensing; under
        # main-board polling it never leaves sleep.
        ctx.hub.mcu.set_idle(Routine.DATA_COLLECTION)
    ctx.rest()
    return ctx


def execute_scenario(
    scenario,
    obs: Optional[NullRecorder] = None,
    fast_forward: bool = False,
) -> RunResult:
    """Run one scenario under its registered scheme; returns the result.

    ``obs`` attaches an instrumentation recorder (``repro profile`` passes
    a :class:`~repro.obs.recorder.TraceRecorder`); it observes the run but
    never alters it — results are bit-identical with or without it.

    ``fast_forward=True`` lets the steady-state engine skip repeated
    hyperperiods analytically (see :mod:`repro.core.fastforward`):
    energy and duration then match full simulation within rtol 1e-9 and
    all integer counters exactly, but are no longer guaranteed
    bit-identical, which is why the flag defaults to off.  When no
    steady state is detected the full simulation runs transparently.
    """
    if fast_forward:
        from ..fastforward import try_fast_forward

        result = try_fast_forward(scenario, obs=obs)
        if result is not None:
            return result
    ctx = build_context(scenario, obs=obs)
    ctx.hub.run()
    end_time = max(ctx.hub.sim.now, scenario.horizon_s)
    return ctx.collect(end_time)
