"""BCOM (§III-C): COM for the apps that fit the MCU, Batching for the rest."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ...apps.base import IoTApp
from ...calibration import Calibration
from ...firmware.capability import OffloadReport, check_offloadable
from .base import AnalyticPlan, SchemeContext, SchemeExecutor
from .batching import spawn_buffered
from .registry import register_scheme


def partition_offloadable(
    apps: List[IoTApp], cal: Calibration, capacity: int
) -> Tuple[List[IoTApp], List[IoTApp], Dict[str, OffloadReport]]:
    """Split ``apps`` into (com_apps, batch_apps) under a RAM ``capacity``.

    Pure decision logic shared by the DES build (capacity = the live MCU
    allocator's free bytes) and the analytic tier (capacity = the
    calibration's total MCU RAM) so both pick identical partitions.
    """
    com_apps: List[IoTApp] = []
    batch_apps: List[IoTApp] = []
    candidates: List[IoTApp] = []
    reports: Dict[str, OffloadReport] = {}
    for app in apps:
        report = check_offloadable(app, cal)
        reports[app.name] = report
        (candidates if report else batch_apps).append(app)
    # Greedy pack: smallest footprints first maximizes the number of
    # apps that escape the CPU; the rest fall back to Batching.
    budget = capacity
    for app in sorted(
        candidates, key=lambda a: a.profile.mcu_footprint_bytes
    ):
        footprint = app.profile.mcu_footprint_bytes
        if footprint <= budget:
            budget -= footprint
            com_apps.append(app)
        else:
            batch_apps.append(app)
            reports[app.name] = OffloadReport(
                app_name=app.name,
                offloadable=False,
                reasons=[
                    "MCU RAM contention: other offloaded apps already "
                    "occupy the remaining capacity"
                ],
                mcu_compute_time_s=app.profile.mcu_compute_time_s(cal),
                required_ram_bytes=footprint,
            )
    return com_apps, batch_apps, reports


@register_scheme("bcom")
class BcomScheme(SchemeExecutor):
    """Offload what fits the MCU under COM; batch the heavy remainder."""

    def build(self, ctx: SchemeContext) -> None:
        """Partition apps: offloadable ones to COM, the rest to batching."""
        com_apps, batch_apps, reports = partition_offloadable(
            list(ctx.scenario.apps), ctx.cal, ctx.hub.mcu.ram.free_bytes
        )
        ctx.offload_reports.update(reports)
        spawn_buffered(ctx, com_apps=com_apps, batch_apps=batch_apps)

    def analytic_plan(self, scenario) -> Optional[AnalyticPlan]:
        """Closed-form model: same greedy partition against total MCU RAM."""
        com_apps, batch_apps, reports = partition_offloadable(
            list(scenario.apps),
            scenario.calibration,
            scenario.calibration.mcu.ram_bytes,
        )
        return AnalyticPlan(
            family="buffered",
            com_apps=com_apps,
            batch_apps=batch_apps,
            offload_reports=reports,
        )
