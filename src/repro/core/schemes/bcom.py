"""BCOM (§III-C): COM for the apps that fit the MCU, Batching for the rest."""

from __future__ import annotations

from typing import List

from ...apps.base import IoTApp
from ...firmware.capability import OffloadReport, check_offloadable
from .base import SchemeContext, SchemeExecutor
from .batching import spawn_buffered
from .registry import register_scheme


@register_scheme("bcom")
class BcomScheme(SchemeExecutor):
    """Offload what fits the MCU under COM; batch the heavy remainder."""

    def build(self, ctx: SchemeContext) -> None:
        """Partition apps: offloadable ones to COM, the rest to batching."""
        com_apps: List[IoTApp] = []
        batch_apps: List[IoTApp] = []
        candidates: List[IoTApp] = []
        for app in ctx.scenario.apps:
            report = check_offloadable(app, ctx.cal)
            ctx.offload_reports[app.name] = report
            (candidates if report else batch_apps).append(app)
        # Greedy pack: smallest footprints first maximizes the number of
        # apps that escape the CPU; the rest fall back to Batching.
        budget = ctx.hub.mcu.ram.free_bytes
        for app in sorted(
            candidates, key=lambda a: a.profile.mcu_footprint_bytes
        ):
            footprint = app.profile.mcu_footprint_bytes
            if footprint <= budget:
                budget -= footprint
                com_apps.append(app)
            else:
                batch_apps.append(app)
                ctx.offload_reports[app.name] = OffloadReport(
                    app_name=app.name,
                    offloadable=False,
                    reasons=[
                        "MCU RAM contention: other offloaded apps already "
                        "occupy the remaining capacity"
                    ],
                    mcu_compute_time_s=app.profile.mcu_compute_time_s(ctx.cal),
                    required_ram_bytes=footprint,
                )
        spawn_buffered(ctx, com_apps=com_apps, batch_apps=batch_apps)
