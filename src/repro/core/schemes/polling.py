"""Main-board polling (§II-A): the pre-baseline the MCU board replaces."""

from __future__ import annotations

from typing import Optional

from ...hubos.governor import CpuRestPolicy
from .base import AnalyticPlan, SchemeContext, SchemeExecutor
from .registry import register_scheme


@register_scheme("polling")
class PollingScheme(SchemeExecutor):
    """Sensors on the main board: the CPU blocks on every read; MCU asleep."""

    cpu_starts_awake = True
    mcu_owns_sensing = False

    def build(self, ctx: SchemeContext) -> None:
        """CPU-driven polling with a rest governor between samples."""
        apps = ctx.scenario.apps
        streams = ctx.streams_for(apps, shared=False)
        ctx.policy = CpuRestPolicy(
            ctx.sample_times(streams) + ctx.window_boundaries(apps)
        )
        ctx.allow_deep = False
        ctx.use_governor = False
        for stream in streams:
            ctx.hub.sim.spawn(
                ctx.poll_stream_cpu(stream), name=f"cpupoll:{stream.key}"
            )
        for app in apps:
            ctx.hub.sim.spawn(
                ctx.cpu_compute_process(app), name=f"compute:{app.name}"
            )

    def analytic_plan(self, scenario) -> Optional[AnalyticPlan]:
        """Closed-form model: CPU-blocking reads, MCU asleep throughout."""
        return AnalyticPlan(family="cpu_polling")
