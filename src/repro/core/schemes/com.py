"""COM (§III-B): compute on the MCU; only results cross to the CPU."""

from __future__ import annotations

from typing import Optional

from ...errors import OffloadError
from ...firmware.capability import check_offloadable
from .base import AnalyticPlan, SchemeContext, SchemeExecutor
from .batching import spawn_buffered
from .registry import register_scheme


@register_scheme("com")
class ComScheme(SchemeExecutor):
    """Run every app's computation on the MCU; ship only the result."""

    def build(self, ctx: SchemeContext) -> None:
        """Offload every app that passes the capability check."""
        for app in ctx.scenario.apps:
            report = check_offloadable(app, ctx.cal)
            ctx.offload_reports[app.name] = report
            if not report:
                raise OffloadError(
                    f"{app.name} cannot be offloaded: "
                    f"{'; '.join(report.reasons)}"
                )
        spawn_buffered(ctx, com_apps=list(ctx.scenario.apps), batch_apps=[])

    def analytic_plan(self, scenario) -> Optional[AnalyticPlan]:
        """Closed-form model: all apps offloaded; same feasibility gate."""
        reports = {}
        for app in scenario.apps:
            report = check_offloadable(app, scenario.calibration)
            reports[app.name] = report
            if not report:
                raise OffloadError(
                    f"{app.name} cannot be offloaded: "
                    f"{'; '.join(report.reasons)}"
                )
        return AnalyticPlan(
            family="buffered",
            com_apps=list(scenario.apps),
            offload_reports=reports,
        )
