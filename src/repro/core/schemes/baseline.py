"""Baseline (§II-B): MCU polls, one interrupt + transfer per sample."""

from __future__ import annotations

from typing import Optional

from ...hubos.governor import CpuRestPolicy
from .base import AnalyticPlan, SchemeContext, SchemeExecutor
from .registry import register_scheme


def spawn_interrupting(ctx: SchemeContext, shared: bool) -> None:
    """Shared wiring for the per-sample interrupting schemes (baseline/BEAM)."""
    apps = ctx.scenario.apps
    streams = ctx.streams_for(apps, shared=shared)
    total = sum(
        stream.samples_per_window * ctx.scenario.windows
        for stream in streams
    )
    ctx.total_irqs = total
    ctx.policy = CpuRestPolicy(
        ctx.sample_times(streams) + ctx.window_boundaries(apps)
    )
    ctx.allow_deep = False
    ctx.use_governor = False
    for stream in streams:
        ctx.hub.sim.spawn(
            ctx.poll_stream_interrupting(stream),
            name=f"poll:{stream.key}",
        )
    ctx.hub.sim.spawn(ctx.dispatcher(), name="dispatcher")
    for app in apps:
        ctx.hub.sim.spawn(
            ctx.cpu_compute_process(app), name=f"compute:{app.name}"
        )


@register_scheme("baseline")
class BaselineScheme(SchemeExecutor):
    """Per-(app, sensor) MCU streams; one interrupt and transfer per sample."""

    cpu_starts_awake = True

    def build(self, ctx: SchemeContext) -> None:
        """One interrupting stream per (app, sensor) pair — no sharing."""
        spawn_interrupting(ctx, shared=False)

    def analytic_plan(self, scenario) -> Optional[AnalyticPlan]:
        """Closed-form model: per-sample interrupting, unshared streams."""
        return AnalyticPlan(family="interrupting", shared=False)
