"""Batching (§III-A): buffer a window in MCU RAM, one bulk hand-off."""

from __future__ import annotations

from typing import Dict, List, Optional

from ...apps.base import IoTApp
from ...firmware.batching import BatchBuffer
from ...hubos.governor import CpuRestPolicy
from ...hw.power import Routine
from .base import AnalyticPlan, SchemeContext, SchemeExecutor
from .registry import register_scheme


def spawn_buffered(
    ctx: SchemeContext, com_apps: List[IoTApp], batch_apps: List[IoTApp]
) -> None:
    """Shared wiring for the MCU-buffered schemes (batching / COM / BCOM)."""
    events = 0
    work_times: List[float] = []
    for app in com_apps:
        # Reserve the offloaded build (code/heap + stream ring) on the
        # MCU for the whole run; samples stream through the ring, so no
        # per-sample batch allocation happens for COM apps.
        ctx.hub.mcu.ram.allocate(
            f"app:{app.name}", app.profile.mcu_footprint_bytes
        )
        coordinator: Dict[int, int] = {}
        handoff = ctx.com_handoff(app)
        for stream in ctx.streams_for([app], shared=False):
            ctx.hub.sim.spawn(
                ctx.poll_stream_buffering(
                    stream, app, coordinator, None, handoff
                ),
                name=f"com:{stream.key}",
            )
        events += ctx.scenario.windows
        work_times.extend(
            (w + 1) * app.profile.window_s
            + app.profile.mcu_compute_time_s(ctx.cal)
            for w in range(ctx.scenario.windows)
        )
    for app in batch_apps:
        coordinator = {}
        buffer = BatchBuffer(ctx.hub.mcu.ram, f"batch:{app.name}")
        handoff = ctx.batch_handoff(app)
        for stream in ctx.streams_for([app], shared=False):
            ctx.hub.sim.spawn(
                ctx.poll_stream_buffering(
                    stream, app, coordinator, buffer, handoff
                ),
                name=f"batch:{stream.key}",
            )
        events += ctx.scenario.windows
        work_times.extend(ctx.window_boundaries([app]))
        if ctx.scenario.batch_size is not None:
            # Partial batches arrive roughly every batch_size samples.
            sample_times = sorted(
                ctx.sample_times(ctx.streams_for([app], shared=False))
            )
            work_times.extend(
                sample_times[:: ctx.scenario.batch_size]
            )
        ctx.hub.sim.spawn(
            ctx.cpu_compute_process(app), name=f"compute:{app.name}"
        )
    ctx.total_irqs = events
    ctx.policy = CpuRestPolicy(work_times)
    # Deep sleep is only safe when no batch needs prompt ingestion;
    # and with the CPU fully relieved (pure COM) its rest time is the
    # hub's idle floor, not app wait time.
    ctx.allow_deep = not batch_apps
    if not batch_apps:
        ctx.rest_routine = Routine.IDLE
    ctx.hub.sim.spawn(ctx.dispatcher(), name="dispatcher")


@register_scheme("batching")
class BatchingScheme(SchemeExecutor):
    """Buffer samples in MCU RAM; one interrupt and bulk transfer per window."""

    def build(self, ctx: SchemeContext) -> None:
        """Every app gets MCU-buffered sensing; none are offloaded."""
        spawn_buffered(ctx, com_apps=[], batch_apps=list(ctx.scenario.apps))

    def analytic_plan(self, scenario) -> Optional[AnalyticPlan]:
        """Closed-form model: every app MCU-buffered, none offloaded."""
        return AnalyticPlan(family="buffered", batch_apps=list(scenario.apps))
