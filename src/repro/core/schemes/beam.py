"""BEAM (Shen et al., ATC'16): apps sharing a sensor share one stream."""

from __future__ import annotations

from typing import Optional

from .base import AnalyticPlan, SchemeContext, SchemeExecutor
from .baseline import spawn_interrupting
from .registry import register_scheme


@register_scheme("beam")
class BeamScheme(SchemeExecutor):
    """Baseline with shared per-sensor streams: one transfer per raw sample."""

    cpu_starts_awake = True

    def build(self, ctx: SchemeContext) -> None:
        """Like baseline, but apps share one stream per sensor."""
        spawn_interrupting(ctx, shared=True)

    def analytic_plan(self, scenario) -> Optional[AnalyticPlan]:
        """Closed-form model: per-sample interrupting, shared streams."""
        return AnalyticPlan(family="interrupting", shared=True)
