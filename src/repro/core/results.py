"""Run results: energy, timing and functional outputs of one scenario."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..apps.base import AppResult
from ..energy.meter import EnergyReport
from ..firmware.capability import OffloadReport
from ..hw.board import IoTHub
from ..hw.power import BUSY_STATES, Routine
from ..units import to_mj, to_ms

#: Backwards-compatible alias; the canonical set lives next to the
#: power-state machinery in :mod:`repro.hw.power`.
_BUSY_STATES = BUSY_STATES


def routine_busy_times(hub: IoTHub, end_time: float) -> Dict[str, float]:
    """Busy seconds per routine, summed over all components.

    This is the paper's Figure 8 'time consumed by each routine' metric:
    idle/wait time is excluded; only actual work (CPU/MCU execution,
    sensor reads, bus/NIC activity, wake transitions) counts.
    """
    totals: Dict[str, float] = {routine: 0.0 for routine in Routine.ORDER}
    for component in hub.recorder.components:
        for change, duration in hub.recorder.intervals(component, end_time):
            if change.state in _BUSY_STATES:
                totals[change.routine] = totals.get(change.routine, 0.0) + duration
    return totals


@dataclass
class RunResult:
    """Everything measured from one scenario execution."""

    scenario_name: str
    scheme: str
    app_ids: List[str]
    windows: int
    duration_s: float
    energy: EnergyReport
    busy_times: Dict[str, float]
    app_results: Dict[str, List[AppResult]]
    result_times: Dict[str, List[float]]
    qos_violations: List[str] = field(default_factory=list)
    interrupt_count: int = 0
    cpu_wake_count: int = 0
    bus_bytes: int = 0
    offload_reports: Dict[str, OffloadReport] = field(default_factory=dict)
    hub: Optional[IoTHub] = None
    #: Which tier produced this result: ``"des"`` (event simulation) or
    #: ``"analytic"`` (closed-form model).  ``fidelity="auto"`` runs tag
    #: each merged point with the tier that actually answered it.
    fidelity: str = "des"

    @property
    def total_busy_s(self) -> float:
        """Work time across all routines (the Fig. 13 'performance')."""
        return sum(
            seconds
            for routine, seconds in self.busy_times.items()
            if routine != Routine.IDLE
        )

    def speedup_vs(self, baseline: "RunResult") -> float:
        """Throughput speedup relative to a baseline run (Figure 13)."""
        if self.total_busy_s <= 0:
            return float("inf")
        return baseline.total_busy_s / self.total_busy_s

    def result_latencies_s(self, app_name: str, window_s: float) -> List[float]:
        """Per-window result latency: delivery time minus window end.

        A latency of 0 means the result landed the instant the sensing
        window closed; heavy apps show multi-second latencies (they are
        slower than real time).
        """
        return [
            finish - (index + 1) * window_s
            for index, finish in enumerate(self.result_times.get(app_name, []))
        ]

    @property
    def results_ok(self) -> bool:
        """Every app produced a result for every window."""
        return all(
            len(results) == self.windows
            for results in self.app_results.values()
        ) and len(self.app_results) == len(self.app_ids)

    def result_payloads(self, app_name: str) -> List[dict]:
        """Payload dicts of one app across windows."""
        return [result.payload for result in self.app_results.get(app_name, [])]

    def summary(self) -> str:
        """One-paragraph human summary."""
        lines = [
            f"{self.scenario_name}: scheme={self.scheme} "
            f"apps={','.join(self.app_ids)} windows={self.windows}",
            f"  duration={to_ms(self.duration_s):.1f} ms  "
            f"energy={to_mj(self.energy.total_j):.1f} mJ "
            f"(marginal {to_mj(self.energy.marginal_j):.1f} mJ)",
            f"  interrupts={self.interrupt_count} wakes={self.cpu_wake_count} "
            f"bus={self.bus_bytes} B busy={to_ms(self.total_busy_s):.1f} ms",
        ]
        if self.qos_violations:
            lines.append(f"  QoS violations: {self.qos_violations}")
        return "\n".join(lines)
