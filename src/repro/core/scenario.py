"""Scenario definitions: which apps, which scheme, how many windows."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..apps.base import IoTApp
from ..apps.registry import create_app
from ..calibration import Calibration, default_calibration
from ..errors import WorkloadError
from ..sensors.synthetic import Waveform


class Scheme:
    """The execution schemes under study.

    ``POLLING`` is §II-A's main-board-attached configuration: most sensors
    have no interrupt logic, so the CPU blocks on every read.  It is the
    setup whose inefficiency motivates the MCU board, and serves as the
    pre-baseline in the ablations.
    """

    POLLING = "polling"
    BASELINE = "baseline"
    BATCHING = "batching"
    COM = "com"
    BEAM = "beam"
    BCOM = "bcom"

    #: The paper's six schemes.  The authoritative set of *runnable*
    #: schemes is the registry (``repro.core.schemes.scheme_names()``),
    #: which also includes any plugin schemes registered at import time.
    ALL: Tuple[str, ...] = (POLLING, BASELINE, BATCHING, COM, BEAM, BCOM)


@dataclass
class Scenario:
    """One run: a set of apps executed under one scheme.

    ``waveforms`` injects signals per sensor id (e.g. a quake trace);
    sensors without an override use their Table I defaults.
    """

    apps: List[IoTApp]
    scheme: str = Scheme.BASELINE
    windows: int = 1
    calibration: Calibration = field(default_factory=default_calibration)
    waveforms: Dict[str, Waveform] = field(default_factory=dict)
    name: str = ""
    #: Batching granularity: flush the MCU buffer to the CPU after this
    #: many samples instead of once per window (None = whole window).
    #: Used by the batch-size ablation.
    batch_size: Optional[int] = None
    #: Availability-check failure rate per sensor id (failure injection;
    #: see :class:`repro.sensors.base.SensorDevice`).
    sensor_failure_rates: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.apps:
            raise WorkloadError("scenario has no apps")
        # Late import so schemes registered after this module loaded
        # (plugins) are honored at validation time.
        from .schemes.registry import scheme_names

        if self.scheme not in scheme_names():
            raise WorkloadError(f"unknown scheme {self.scheme!r}")
        if self.windows < 1:
            raise WorkloadError(f"need at least one window, got {self.windows}")
        if self.batch_size is not None and self.batch_size < 1:
            raise WorkloadError(f"batch size must be >= 1, got {self.batch_size}")
        names = [app.name for app in self.apps]
        if len(set(names)) != len(names):
            raise WorkloadError(f"duplicate apps in scenario: {names}")
        if not self.name:
            ids = "+".join(app.table2_id for app in self.apps)
            self.name = f"{ids}:{self.scheme}"

    @classmethod
    def of(
        cls,
        app_ids: Sequence[str],
        scheme: str = Scheme.BASELINE,
        windows: int = 1,
        calibration: Optional[Calibration] = None,
        waveforms: Optional[Dict[str, Waveform]] = None,
        batch_size: Optional[int] = None,
        sensor_failure_rates: Optional[Dict[str, float]] = None,
    ) -> "Scenario":
        """Build a scenario from Table II ids (``["A2", "A4"]``)."""
        return cls(
            apps=[create_app(app_id) for app_id in app_ids],
            scheme=scheme,
            windows=windows,
            calibration=calibration or default_calibration(),
            waveforms=dict(waveforms or {}),
            batch_size=batch_size,
            sensor_failure_rates=dict(sensor_failure_rates or {}),
        )

    @property
    def sensor_ids(self) -> List[str]:
        """Union of sensors across apps, in first-use order."""
        seen: List[str] = []
        for app in self.apps:
            for sensor_id in app.profile.sensor_ids:
                if sensor_id not in seen:
                    seen.append(sensor_id)
        return seen

    @property
    def horizon_s(self) -> float:
        """Nominal sensing horizon: the longest app window times windows."""
        return self.windows * max(app.profile.window_s for app in self.apps)
