"""The scenario engine: fingerprinted, cached, parallel execution.

Sweep grids and scheme comparisons re-simulate the same scenarios over
and over; the :class:`ScenarioEngine` makes that cheap in two orthogonal
ways:

* **Memoization** — every scenario has a deterministic *fingerprint*
  (scheme + apps + windows + calibration constants + waveforms + failure
  injection).  Because the simulator itself is deterministic (no wall
  clock, no RNG), a fingerprint fully determines the
  :class:`~repro.core.results.RunResult`, so results can be cached on
  disk and reused across runs and processes.
* **Fan-out** — independent scenarios run concurrently on a
  ``concurrent.futures`` process pool (``workers=N``).

Both paths strip the live :class:`~repro.hw.board.IoTHub` from the
result (it holds running generators and is neither picklable nor
meaningful outside the run); in-process serial runs keep it attached,
preserving the historical behavior of ``run_scenario``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ReproError
from ..obs.metrics import EngineMetrics
from .results import RunResult
from .scenario import Scenario
from .schemes.base import execute_scenario

#: Bump when the fingerprint payload layout changes, so stale cache
#: entries from older library versions can never be returned.
#: v2: payload gained the ``fast_forward`` flag (extrapolated results
#: match full simulation at rtol 1e-9, not bit-identically, so the two
#: modes must never share cache entries).
FINGERPRINT_VERSION = 2


def _waveform_payload(waveform: Any) -> Any:
    """Stable description of a waveform for fingerprinting.

    Waveforms are pure functions of time plus their constructor
    parameters, so class identity + instance attributes pin them down.
    Custom waveforms with unhashable internals can override this by
    providing a ``cache_key()`` method.
    """
    cache_key = getattr(waveform, "cache_key", None)
    if callable(cache_key):
        return cache_key()
    state = {key: repr(value) for key, value in sorted(vars(waveform).items())}
    return [
        f"{type(waveform).__module__}.{type(waveform).__qualname__}",
        state,
    ]


def scenario_fingerprint(
    scenario: Scenario, fast_forward: bool = False
) -> str:
    """Deterministic hex digest identifying a scenario's full behavior.

    Two scenarios with equal fingerprints produce bit-identical
    :class:`RunResult` metrics; anything that can change the simulation
    (scheme, apps, windows, batch size, calibration constants, waveform
    overrides, failure injection) feeds the digest — as does the
    execution mode (``fast_forward``), whose results are equivalent but
    not bit-identical.
    """
    payload = {
        "version": FINGERPRINT_VERSION,
        "fast_forward": bool(fast_forward),
        "name": scenario.name,
        "scheme": scenario.scheme,
        "apps": [app.table2_id for app in scenario.apps],
        "windows": scenario.windows,
        "batch_size": scenario.batch_size,
        "failure_rates": sorted(scenario.sensor_failure_rates.items()),
        "calibration": dataclasses.asdict(scenario.calibration),
        "waveforms": {
            sensor_id: _waveform_payload(waveform)
            for sensor_id, waveform in sorted(scenario.waveforms.items())
        },
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def strip_hub(result: RunResult) -> RunResult:
    """Copy of a result without the live hub (picklable, cacheable)."""
    if result.hub is None:
        return result
    return dataclasses.replace(result, hub=None)


def _run_remote(
    item: Tuple[int, Scenario, bool]
) -> Tuple[int, Optional[RunResult], Optional[ReproError], Tuple[int, float]]:
    """Pool worker: run one scenario, capturing only library errors.

    Unexpected exceptions propagate through ``future.result()`` so real
    bugs surface in the parent instead of hiding in sweep output.  The
    trailing ``(pid, wall_seconds)`` pair feeds the engine's per-worker
    accounting.
    """
    index, scenario, fast_forward = item
    started = time.perf_counter()
    try:
        result: Optional[RunResult] = strip_hub(
            execute_scenario(scenario, fast_forward=fast_forward)
        )
        error: Optional[ReproError] = None
    except ReproError as exc:
        result, error = None, exc
    elapsed = time.perf_counter() - started
    return index, result, error, (os.getpid(), elapsed)


#: One batch outcome: a result, or the ReproError that stopped the point.
Outcome = Union[RunResult, ReproError]


class ScenarioEngine:
    """Runs scenarios through the fingerprint cache and a worker pool.

    ``workers=1`` executes in-process (results keep their hub attached);
    ``workers>1`` fans independent scenarios out over a process pool.
    ``cache_dir`` enables the on-disk result cache; cache hits return
    hub-stripped results.  ``fast_forward=True`` lets periodic scenarios
    skip steady-state cycles analytically (rtol 1e-9 on energy/duration,
    exact counters; aperiodic scenarios transparently run in full) —
    fast-forwarded results are fingerprinted separately, so the cache
    never mixes the two modes.
    """

    def __init__(
        self,
        workers: int = 1,
        cache_dir: Optional[Union[str, "os.PathLike[str]"]] = None,
        fast_forward: bool = False,
    ) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        self.workers = int(workers)
        self.fast_forward = bool(fast_forward)
        self.cache_dir = os.fspath(cache_dir) if cache_dir is not None else None
        #: Wall-clock instrumentation: cache traffic, fingerprint cost,
        #: per-worker time and scenarios/second.
        self.metrics = EngineMetrics()
        #: Maps a pool worker's pid to its stable ``w<N>`` label.
        self._worker_labels: Dict[int, str] = {}

    @property
    def cache_hits(self) -> int:
        """Results served from the fingerprint cache so far."""
        return self.metrics.cache_hits

    @property
    def cache_misses(self) -> int:
        """Scenarios that had to be simulated (and then cached)."""
        return self.metrics.cache_misses

    def _fingerprint(self, scenario: Scenario) -> str:
        """Fingerprint one scenario, charging the time to the metrics."""
        started = time.perf_counter()
        fingerprint = scenario_fingerprint(
            scenario, fast_forward=self.fast_forward
        )
        self.metrics.fingerprint_wall_s += time.perf_counter() - started
        return fingerprint

    def _worker_label(self, pid: int) -> str:
        """Stable ``w<N>`` label for a worker pid, in first-seen order."""
        if pid not in self._worker_labels:
            self._worker_labels[pid] = f"w{len(self._worker_labels)}"
        return self._worker_labels[pid]

    # ------------------------------------------------------------------
    # cache
    # ------------------------------------------------------------------
    def _cache_path(self, fingerprint: str) -> str:
        assert self.cache_dir is not None
        return os.path.join(self.cache_dir, f"{fingerprint}.pkl")

    def _cache_load(self, fingerprint: str) -> Optional[RunResult]:
        if self.cache_dir is None:
            return None
        try:
            with open(self._cache_path(fingerprint), "rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            # A corrupt or stale entry is a miss, never an error.
            return None

    def _cache_store(self, fingerprint: str, result: RunResult) -> None:
        if self.cache_dir is None:
            return
        os.makedirs(self.cache_dir, exist_ok=True)
        # Atomic publish: never leave a half-written pickle behind.
        fd, tmp_path = tempfile.mkstemp(
            dir=self.cache_dir, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(
                    strip_hub(result), handle, pickle.HIGHEST_PROTOCOL
                )
            os.replace(tmp_path, self._cache_path(fingerprint))
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, scenario: Scenario) -> RunResult:
        """Run one scenario: cache hit, or simulate (and populate cache)."""
        started = time.perf_counter()
        fingerprint = None
        if self.cache_dir is not None:
            fingerprint = self._fingerprint(scenario)
            cached = self._cache_load(fingerprint)
            if cached is not None:
                self.metrics.cache_hits += 1
                self.metrics.run_wall_s += time.perf_counter() - started
                return cached
        sim_started = time.perf_counter()
        result = execute_scenario(scenario, fast_forward=self.fast_forward)
        self.metrics.note_worker(
            self._worker_label(os.getpid()),
            time.perf_counter() - sim_started,
        )
        self.metrics.scenarios_run += 1
        if fingerprint is not None:
            self.metrics.cache_misses += 1
            self._cache_store(fingerprint, result)
        self.metrics.run_wall_s += time.perf_counter() - started
        return result

    def run_batch(self, scenarios: Sequence[Scenario]) -> List[Outcome]:
        """Run many scenarios; per-point outcomes in input order.

        Each outcome is either a :class:`RunResult` or the
        :class:`ReproError` that stopped that point.  Non-library
        exceptions always propagate — a real bug in one point aborts the
        whole batch instead of disappearing into per-point errors.
        """
        started = time.perf_counter()
        outcomes: List[Optional[Outcome]] = [None] * len(scenarios)
        pending: List[Tuple[int, Scenario]] = []
        fingerprints: Dict[int, str] = {}
        for index, scenario in enumerate(scenarios):
            if self.cache_dir is not None:
                fingerprint = self._fingerprint(scenario)
                fingerprints[index] = fingerprint
                cached = self._cache_load(fingerprint)
                if cached is not None:
                    self.metrics.cache_hits += 1
                    outcomes[index] = cached
                    continue
            pending.append((index, scenario))
        if self.workers > 1 and len(pending) > 1:
            with ProcessPoolExecutor(
                max_workers=min(self.workers, len(pending))
            ) as pool:
                for index, result, error, (pid, elapsed) in pool.map(
                    _run_remote,
                    [
                        (index, scenario, self.fast_forward)
                        for index, scenario in pending
                    ],
                ):
                    outcomes[index] = result if error is None else error
                    self.metrics.note_worker(
                        self._worker_label(pid), elapsed
                    )
        else:
            for index, scenario in pending:
                sim_started = time.perf_counter()
                try:
                    outcomes[index] = execute_scenario(
                        scenario, fast_forward=self.fast_forward
                    )
                except ReproError as exc:
                    outcomes[index] = exc
                self.metrics.note_worker(
                    self._worker_label(os.getpid()),
                    time.perf_counter() - sim_started,
                )
        self.metrics.scenarios_run += len(pending)
        for index, scenario in pending:
            outcome = outcomes[index]
            if isinstance(outcome, RunResult):
                if self.cache_dir is not None:
                    self.metrics.cache_misses += 1
                    self._cache_store(fingerprints[index], outcome)
        self.metrics.run_wall_s += time.perf_counter() - started
        return [outcome for outcome in outcomes if outcome is not None]

    def run_many(self, scenarios: Sequence[Scenario]) -> List[RunResult]:
        """Like :meth:`run_batch`, but library errors raise immediately."""
        results: List[RunResult] = []
        for outcome in self.run_batch(scenarios):
            if isinstance(outcome, ReproError):
                raise outcome
            results.append(outcome)
        return results
