"""The scenario engine: fingerprinted, cached, parallel execution.

Sweep grids and scheme comparisons re-simulate the same scenarios over
and over; the :class:`ScenarioEngine` makes that cheap in two orthogonal
ways:

* **Memoization** — every scenario has a deterministic *fingerprint*
  (scheme + apps + windows + calibration constants + waveforms + failure
  injection).  Because the simulator itself is deterministic (no wall
  clock, no RNG), a fingerprint fully determines the
  :class:`~repro.core.results.RunResult`, so results can be cached on
  disk and reused across runs and processes.
* **Fan-out** — independent scenarios run concurrently on a
  ``concurrent.futures`` process pool (``workers=N``).

Both paths strip the live :class:`~repro.hw.board.IoTHub` from the
result (it holds running generators and is neither picklable nor
meaningful outside the run); in-process serial runs keep it attached,
preserving the historical behavior of ``run_scenario``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ReproError
from .results import RunResult
from .scenario import Scenario
from .schemes.base import execute_scenario

#: Bump when the fingerprint payload layout changes, so stale cache
#: entries from older library versions can never be returned.
FINGERPRINT_VERSION = 1


def _waveform_payload(waveform: Any) -> Any:
    """Stable description of a waveform for fingerprinting.

    Waveforms are pure functions of time plus their constructor
    parameters, so class identity + instance attributes pin them down.
    Custom waveforms with unhashable internals can override this by
    providing a ``cache_key()`` method.
    """
    cache_key = getattr(waveform, "cache_key", None)
    if callable(cache_key):
        return cache_key()
    state = {key: repr(value) for key, value in sorted(vars(waveform).items())}
    return [
        f"{type(waveform).__module__}.{type(waveform).__qualname__}",
        state,
    ]


def scenario_fingerprint(scenario: Scenario) -> str:
    """Deterministic hex digest identifying a scenario's full behavior.

    Two scenarios with equal fingerprints produce bit-identical
    :class:`RunResult` metrics; anything that can change the simulation
    (scheme, apps, windows, batch size, calibration constants, waveform
    overrides, failure injection) feeds the digest.
    """
    payload = {
        "version": FINGERPRINT_VERSION,
        "name": scenario.name,
        "scheme": scenario.scheme,
        "apps": [app.table2_id for app in scenario.apps],
        "windows": scenario.windows,
        "batch_size": scenario.batch_size,
        "failure_rates": sorted(scenario.sensor_failure_rates.items()),
        "calibration": dataclasses.asdict(scenario.calibration),
        "waveforms": {
            sensor_id: _waveform_payload(waveform)
            for sensor_id, waveform in sorted(scenario.waveforms.items())
        },
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def strip_hub(result: RunResult) -> RunResult:
    """Copy of a result without the live hub (picklable, cacheable)."""
    if result.hub is None:
        return result
    return dataclasses.replace(result, hub=None)


def _run_remote(
    item: Tuple[int, Scenario]
) -> Tuple[int, Optional[RunResult], Optional[ReproError]]:
    """Pool worker: run one scenario, capturing only library errors.

    Unexpected exceptions propagate through ``future.result()`` so real
    bugs surface in the parent instead of hiding in sweep output.
    """
    index, scenario = item
    try:
        return index, strip_hub(execute_scenario(scenario)), None
    except ReproError as exc:
        return index, None, exc


#: One batch outcome: a result, or the ReproError that stopped the point.
Outcome = Union[RunResult, ReproError]


class ScenarioEngine:
    """Runs scenarios through the fingerprint cache and a worker pool.

    ``workers=1`` executes in-process (results keep their hub attached);
    ``workers>1`` fans independent scenarios out over a process pool.
    ``cache_dir`` enables the on-disk result cache; cache hits return
    hub-stripped results.
    """

    def __init__(
        self,
        workers: int = 1,
        cache_dir: Optional[Union[str, "os.PathLike[str]"]] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        self.workers = int(workers)
        self.cache_dir = os.fspath(cache_dir) if cache_dir is not None else None
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------------
    # cache
    # ------------------------------------------------------------------
    def _cache_path(self, fingerprint: str) -> str:
        assert self.cache_dir is not None
        return os.path.join(self.cache_dir, f"{fingerprint}.pkl")

    def _cache_load(self, fingerprint: str) -> Optional[RunResult]:
        if self.cache_dir is None:
            return None
        try:
            with open(self._cache_path(fingerprint), "rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            # A corrupt or stale entry is a miss, never an error.
            return None

    def _cache_store(self, fingerprint: str, result: RunResult) -> None:
        if self.cache_dir is None:
            return
        os.makedirs(self.cache_dir, exist_ok=True)
        # Atomic publish: never leave a half-written pickle behind.
        fd, tmp_path = tempfile.mkstemp(
            dir=self.cache_dir, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(
                    strip_hub(result), handle, pickle.HIGHEST_PROTOCOL
                )
            os.replace(tmp_path, self._cache_path(fingerprint))
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, scenario: Scenario) -> RunResult:
        """Run one scenario: cache hit, or simulate (and populate cache)."""
        fingerprint = None
        if self.cache_dir is not None:
            fingerprint = scenario_fingerprint(scenario)
            cached = self._cache_load(fingerprint)
            if cached is not None:
                self.cache_hits += 1
                return cached
        result = execute_scenario(scenario)
        if fingerprint is not None:
            self.cache_misses += 1
            self._cache_store(fingerprint, result)
        return result

    def run_batch(self, scenarios: Sequence[Scenario]) -> List[Outcome]:
        """Run many scenarios; per-point outcomes in input order.

        Each outcome is either a :class:`RunResult` or the
        :class:`ReproError` that stopped that point.  Non-library
        exceptions always propagate — a real bug in one point aborts the
        whole batch instead of disappearing into per-point errors.
        """
        outcomes: List[Optional[Outcome]] = [None] * len(scenarios)
        pending: List[Tuple[int, Scenario]] = []
        fingerprints: Dict[int, str] = {}
        for index, scenario in enumerate(scenarios):
            if self.cache_dir is not None:
                fingerprint = scenario_fingerprint(scenario)
                fingerprints[index] = fingerprint
                cached = self._cache_load(fingerprint)
                if cached is not None:
                    self.cache_hits += 1
                    outcomes[index] = cached
                    continue
            pending.append((index, scenario))
        if self.workers > 1 and len(pending) > 1:
            with ProcessPoolExecutor(
                max_workers=min(self.workers, len(pending))
            ) as pool:
                for index, result, error in pool.map(_run_remote, pending):
                    outcomes[index] = result if error is None else error
        else:
            for index, scenario in pending:
                try:
                    outcomes[index] = execute_scenario(scenario)
                except ReproError as exc:
                    outcomes[index] = exc
        for index, scenario in pending:
            outcome = outcomes[index]
            if isinstance(outcome, RunResult):
                if self.cache_dir is not None:
                    self.cache_misses += 1
                    self._cache_store(fingerprints[index], outcome)
        return [outcome for outcome in outcomes if outcome is not None]

    def run_many(self, scenarios: Sequence[Scenario]) -> List[RunResult]:
        """Like :meth:`run_batch`, but library errors raise immediately."""
        results: List[RunResult] = []
        for outcome in self.run_batch(scenarios):
            if isinstance(outcome, ReproError):
                raise outcome
            results.append(outcome)
        return results
