"""The scenario engine: fingerprinted, cached, deduplicated, pooled.

Sweep grids and scheme comparisons re-simulate the same scenarios over
and over; the :class:`ScenarioEngine` makes that cheap in three
orthogonal ways:

* **Memoization** — every scenario has a deterministic *fingerprint*
  (scheme + apps + windows + calibration constants + waveforms + failure
  injection).  Because the simulator itself is deterministic (no wall
  clock, no RNG), a fingerprint fully determines the
  :class:`~repro.core.results.RunResult`, so results are cached in a
  two-tier store (:mod:`repro.core.cache`): an in-memory LRU over a
  sharded on-disk layout shared across processes.
* **Dedup** — grid points that are *permutations* of each other (same
  apps listed in a different order) canonicalize to one fingerprint,
  simulate once, and fan the result back out to every requesting point.
  The engine executes the canonical ordering, so deduplicated, cached
  and serial runs of the same point are bit-identical.  Failure
  injection disables canonicalization (availability draws key off read
  order), so those scenarios always run as given.
* **Fan-out** — independent scenarios run through a pluggable
  :class:`~repro.core.backends.ExecutionBackend` chosen by name
  (``backend="serial" | "process" | "socket"``, or the
  ``REPRO_BACKEND`` environment variable; the default follows the
  historical heuristic — a persistent process pool when ``workers>1``,
  inline execution otherwise).  Backends own *where* tasks run; the
  engine keeps *what* runs (fingerprints, dedup, the two-tier cache)
  backend-independent, so grid results are bit-identical across
  backends.

Cache and remote-backend paths strip the live
:class:`~repro.hw.board.IoTHub` from the result (it holds running
generators and is neither picklable nor meaningful outside the run);
in-process serial runs keep it attached, preserving the historical
behavior of ``run_scenario``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import AnalyticUnsupported, ReproError
from ..obs.metrics import EngineMetrics
from .analytic import AUTO_CONFIRM_BAND, analytic_scenario_result
from .backends import ExecutionBackend, create_backend, run_chunk
from .cache import DiskResultCache, LRUResultCache, TieredResultCache
from .results import RunResult
from .scenario import Scenario
from .schemes.base import execute_scenario

#: Bump when the fingerprint payload layout changes, so stale cache
#: entries from older library versions can never be returned.
#: v2: payload gained the ``fast_forward`` flag.
#: v3: the presentational ``name`` left the payload (it cannot change
#: the simulation), app ids are canonicalized (sorted) for
#: dedup-eligible scenarios, and ndarray waveform attributes hash their
#: full buffer instead of a (truncating) ``repr``.
#: v4: payload gained the ``fidelity`` tier ("des" | "analytic"), so
#: closed-form and event-simulation entries can never collide in the
#: cache; analytic entries pin ``fast_forward`` to False (the closed
#: form has no steady-state skipping to toggle).
FINGERPRINT_VERSION = 4

#: Fidelity tiers an engine can run at.  ``"des"`` is the discrete-event
#: simulation (the authoritative tier), ``"analytic"`` the closed-form
#: models in :mod:`repro.core.analytic`, and ``"auto"`` the planner:
#: answer everything analytically, then re-run only the frontier
#: (per-app-set scheme winners and within-band near-ties) plus any
#: point the analytic tier cannot cover through the DES.
FIDELITIES = ("des", "analytic", "auto")

#: Default in-memory LRU capacity when disk caching is enabled.
DEFAULT_MEMORY_CACHE_ENTRIES = 256


def _waveform_payload(waveform: Any) -> Any:
    """Canonical description of a waveform for fingerprinting.

    Waveforms are pure functions of time plus their constructor
    parameters, so class identity + instance attributes pin them down.
    ndarray attributes are digested over their full buffer (``repr``
    would silently truncate long traces into colliding payloads).
    Custom waveforms with other unhashable internals can override this
    by providing a ``cache_key()`` method.
    """
    cache_key = getattr(waveform, "cache_key", None)
    if callable(cache_key):
        return cache_key()
    state = {
        key: _attribute_payload(value)
        for key, value in sorted(vars(waveform).items())
    }
    return [
        f"{type(waveform).__module__}.{type(waveform).__qualname__}",
        state,
    ]


def _attribute_payload(value: Any) -> str:
    """Stable string form of one waveform attribute."""
    tobytes = getattr(value, "tobytes", None)
    if callable(tobytes):  # ndarray-like: digest the full buffer
        digest = hashlib.sha256(tobytes()).hexdigest()
        dtype = getattr(value, "dtype", "")
        shape = getattr(value, "shape", "")
        return f"ndarray:{shape}:{dtype}:{digest}"
    return repr(value)


def dedup_eligible(scenario: Scenario) -> bool:
    """Whether a scenario may be canonicalized for dedup.

    Failure injection draws availability failures keyed off absolute
    read order, so permuting the app list can change which reads fail;
    those scenarios must simulate exactly as given.
    """
    return not scenario.sensor_failure_rates


def canonicalize_scenario(scenario: Scenario) -> Scenario:
    """The scenario with its apps in canonical (sorted-by-id) order.

    Returns the *same* object when the order is already canonical or the
    scenario is not :func:`dedup_eligible`; otherwise a copy sharing the
    app instances.  The copy keeps the scenario's (presentational) name.
    """
    if not dedup_eligible(scenario):
        return scenario
    ordered = sorted(scenario.apps, key=lambda app: app.table2_id)
    if ordered == scenario.apps:
        return scenario
    return dataclasses.replace(scenario, apps=ordered)


def _fingerprint_payload(
    scenario: Scenario,
    fast_forward: bool,
    canonical: bool,
    fidelity: str,
) -> Dict[str, Any]:
    """The JSON payload behind :func:`scenario_fingerprint`."""
    if fidelity not in ("des", "analytic"):
        raise ValueError(
            f"fingerprints carry a concrete tier ('des' | 'analytic'), "
            f"got {fidelity!r}"
        )
    app_ids = [app.table2_id for app in scenario.apps]
    if canonical and dedup_eligible(scenario):
        app_ids = sorted(app_ids)
    return {
        "version": FINGERPRINT_VERSION,
        "fidelity": fidelity,
        # The closed form has no steady-state skipping; pinning the flag
        # keeps one analytic entry per scenario whatever the engine's
        # fast_forward setting.
        "fast_forward": bool(fast_forward) and fidelity == "des",
        "scheme": scenario.scheme,
        "apps": app_ids,
        "windows": scenario.windows,
        "batch_size": scenario.batch_size,
        "failure_rates": sorted(scenario.sensor_failure_rates.items()),
        "calibration": dataclasses.asdict(scenario.calibration),
        "waveforms": {
            sensor_id: _waveform_payload(waveform)
            for sensor_id, waveform in sorted(scenario.waveforms.items())
        },
    }


def _digest(payload: Dict[str, Any]) -> str:
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def scenario_fingerprint(
    scenario: Scenario,
    fast_forward: bool = False,
    canonical: bool = True,
    fidelity: str = "des",
) -> str:
    """Deterministic hex digest identifying a scenario's full behavior.

    Two scenarios with equal fingerprints produce bit-identical
    :class:`RunResult` metrics (up to the presentational name/app-id
    order); anything that can change the simulation (scheme, apps,
    windows, batch size, calibration constants, waveform overrides,
    failure injection) feeds the digest — as do the execution mode
    (``fast_forward``), whose results are equivalent but not
    bit-identical, and the ``fidelity`` tier (``"des"`` | ``"analytic"``),
    so closed-form and event-simulation entries never collide.  With
    ``canonical=True`` (the engine's dedup mode) the app ids are sorted
    for dedup-eligible scenarios, so permutations of one app set collide
    on purpose; pass ``canonical=False`` to fingerprint the as-given
    ordering (an engine built with ``dedup=False`` executes that
    ordering, whose results can differ).
    """
    return _digest(
        _fingerprint_payload(scenario, fast_forward, canonical, fidelity)
    )


def scenario_group_key(scenario: Scenario) -> str:
    """Digest of everything about a scenario *except* its scheme.

    The ``fidelity="auto"`` planner groups grid points by this key: one
    group holds the same app set / windows / calibration / waveforms
    under every scheme, and the planner picks each group's frontier
    (scheme winner plus within-band near-ties) for DES confirmation.
    Execution-mode knobs (fidelity, fast_forward) are excluded — they
    describe *how* a point runs, not which physical grid point it is.
    """
    payload = _fingerprint_payload(
        scenario, fast_forward=False, canonical=True, fidelity="des"
    )
    del payload["scheme"]
    del payload["fidelity"]
    del payload["fast_forward"]
    return _digest(payload)


def strip_hub(result: RunResult) -> RunResult:
    """Copy of a result without the live hub (picklable, cacheable)."""
    if result.hub is None:
        return result
    return dataclasses.replace(result, hub=None)


#: One dispatched unit: (pending position, scenario, fast_forward flag).
_Task = Tuple[int, Scenario, bool]
#: One runner outcome: position, result-or-None, error-or-None, and the
#: (pid, wall_seconds) pair feeding the engine's per-worker accounting.
_TaskOutcome = Tuple[
    int, Optional[RunResult], Optional[ReproError], Tuple[int, float]
]


def _run_remote(item: _Task) -> _TaskOutcome:
    """Remote-backend task: run one scenario, capturing library errors.

    Results are stripped of their live hub (they cross a process/host
    boundary and must pickle).  Unexpected exceptions propagate — as a
    :class:`~repro.errors.ChunkTaskError` naming the failing scenario —
    so real bugs surface in the parent instead of hiding in sweep
    output.
    """
    index, scenario, fast_forward = item
    started = time.perf_counter()
    try:
        result: Optional[RunResult] = strip_hub(
            execute_scenario(scenario, fast_forward=fast_forward)
        )
        error: Optional[ReproError] = None
    except ReproError as exc:
        result, error = None, exc
    elapsed = time.perf_counter() - started
    return index, result, error, (os.getpid(), elapsed)


def _run_local(item: _Task) -> _TaskOutcome:
    """In-process task: like :func:`_run_remote`, keeping the live hub."""
    index, scenario, fast_forward = item
    started = time.perf_counter()
    try:
        result: Optional[RunResult] = execute_scenario(
            scenario, fast_forward=fast_forward
        )
        error: Optional[ReproError] = None
    except ReproError as exc:
        result, error = None, exc
    elapsed = time.perf_counter() - started
    return index, result, error, (os.getpid(), elapsed)


def _scenario_label(scenario: Scenario) -> str:
    """Human-readable task label for backend failure attribution."""
    apps = "+".join(app.table2_id for app in scenario.apps)
    base = f"{scenario.scheme}[{apps}]"
    name = getattr(scenario, "name", "")
    return f"{name}: {base}" if name else base


#: One batch outcome: a result, or the ReproError that stopped the point.
Outcome = Union[RunResult, ReproError]


class ScenarioEngine:
    """Runs scenarios through the two-tier cache, dedup and a backend.

    ``backend`` names the :class:`~repro.core.backends.ExecutionBackend`
    batches dispatch through (``"serial"``, ``"process"``, ``"socket"``,
    or any registered name; ``backend_hosts`` configures multi-host
    backends).  When omitted, ``$REPRO_BACKEND`` applies, then the
    historical heuristic: ``workers=1`` executes in-process (results
    keep their hub attached); ``workers>1`` fans independent scenarios
    out over a persistent process pool (spawned lazily, reused across
    calls — use the engine as a context manager, or call :meth:`close`,
    to shut it down).  Grid results are bit-identical whatever the
    backend; only where the simulation runs changes.
    ``cache_dir`` enables the sharded on-disk result cache with an
    in-memory LRU in front of it (``memory_cache`` overrides the LRU
    capacity; pass a capacity without ``cache_dir`` for a memory-only
    cache, or ``0`` to disable the memory tier).  ``cache_max_bytes``
    arms an oldest-first eviction pass over the disk tier after each
    run.  ``dedup=True`` (default) canonicalizes app order so permuted
    grid points simulate once; see :func:`canonicalize_scenario` for
    when a scenario opts out.  ``fast_forward=True`` lets periodic
    scenarios skip steady-state cycles analytically (rtol 1e-9 on
    energy/duration, exact counters; aperiodic scenarios transparently
    run in full) — fast-forwarded results are fingerprinted separately,
    so the cache never mixes the two modes.
    ``fidelity`` selects the default tier (any call can override it):
    ``"des"`` runs the event simulation; ``"analytic"`` answers from the
    closed-form models in :mod:`repro.core.analytic`, transparently
    falling back to the DES for points outside the validated envelope;
    ``"auto"`` answers the whole batch analytically, then re-runs only
    the frontier (per-app-set scheme winners plus within-band near-ties)
    through the DES and merges, tagging each result's ``fidelity``.
    Analytic and DES entries fingerprint — and therefore cache —
    separately.
    """

    def __init__(
        self,
        workers: int = 1,
        cache_dir: Optional[Union[str, "os.PathLike[str]"]] = None,
        fast_forward: bool = False,
        dedup: bool = True,
        memory_cache: Optional[int] = None,
        cache_max_bytes: Optional[int] = None,
        backend: Optional[str] = None,
        backend_hosts: Optional[Sequence[str]] = None,
        fidelity: str = "des",
    ) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        if fidelity not in FIDELITIES:
            raise ValueError(
                f"fidelity must be one of {FIDELITIES}, got {fidelity!r}"
            )
        #: Default fidelity tier for run()/run_batch()/run_many(); each
        #: call may override it.
        self.fidelity = fidelity
        # close() must be safe on a partially-constructed engine (a bad
        # backend name raises below), so the slot exists from the start.
        self._backend: Optional[ExecutionBackend] = None
        self.workers = int(workers)
        self.fast_forward = bool(fast_forward)
        self.dedup = bool(dedup)
        self.cache_dir = os.fspath(cache_dir) if cache_dir is not None else None
        if memory_cache is None:
            memory_cache = (
                DEFAULT_MEMORY_CACHE_ENTRIES if self.cache_dir else 0
            )
        self._cache = TieredResultCache(
            memory=LRUResultCache(memory_cache) if memory_cache else None,
            disk=(
                DiskResultCache(self.cache_dir, max_bytes=cache_max_bytes)
                if self.cache_dir is not None
                else None
            ),
        )
        #: Wall-clock instrumentation: cache traffic per tier, dedup
        #: fan-outs, backend dispatch, fingerprint cost, per-worker time.
        self.metrics = EngineMetrics()
        #: Maps a worker's pid to its stable ``w<N>`` label.
        self._worker_labels: Dict[int, str] = {}
        self._backend = create_backend(
            backend, workers=self.workers, hosts=backend_hosts
        )
        self.metrics.backend_name = self._backend.name

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def backend(self) -> ExecutionBackend:
        """The execution backend batches dispatch through."""
        assert self._backend is not None
        return self._backend

    def close(self) -> None:
        """Release the backend's workers/connections.

        Idempotent, safe on a partially-constructed engine (failed
        backend spawn), and never raises — CLI/``atexit`` paths may
        double-close.  The backend reopens transparently on the next
        batch.
        """
        backend = getattr(self, "_backend", None)
        if backend is not None:
            backend.close()

    def __enter__(self) -> "ScenarioEngine":
        return self

    def __exit__(self, *_exc_info: object) -> None:
        self.close()

    @property
    def cache_hits(self) -> int:
        """Results served from either cache tier so far."""
        return self.metrics.cache_hits

    @property
    def cache_misses(self) -> int:
        """Scenarios that had to be simulated (and were then cached)."""
        return self.metrics.cache_misses

    @property
    def dedup_hits(self) -> int:
        """Grid points served by fanning out another point's simulation."""
        return self.metrics.dedup_hits

    # ------------------------------------------------------------------
    # fingerprinting and rebinding
    # ------------------------------------------------------------------
    def _resolve_fidelity(self, fidelity: Optional[str]) -> str:
        """A call's effective tier: the override, or the engine default."""
        resolved = self.fidelity if fidelity is None else fidelity
        if resolved not in FIDELITIES:
            raise ValueError(
                f"fidelity must be one of {FIDELITIES}, got {resolved!r}"
            )
        return resolved

    def _fingerprint(self, scenario: Scenario, fidelity: str = "des") -> str:
        """Fingerprint one scenario, charging the time to the metrics."""
        started = time.perf_counter()
        fingerprint = scenario_fingerprint(
            scenario,
            fast_forward=self.fast_forward,
            canonical=self.dedup,
            fidelity=fidelity,
        )
        self.metrics.fingerprint_wall_s += time.perf_counter() - started
        return fingerprint

    def _execution_form(self, scenario: Scenario) -> Scenario:
        """What actually runs: the canonical ordering under dedup."""
        if not self.dedup:
            return scenario
        return canonicalize_scenario(scenario)

    def fingerprints(
        self,
        scenarios: Sequence[Scenario],
        fidelity: Optional[str] = None,
    ) -> List[str]:
        """Per-scenario fingerprints under this engine's configuration.

        The coalescing hook for service layers: fingerprints honor the
        engine's ``dedup`` and ``fast_forward`` settings, so two batches
        with equal fingerprints would execute identically through this
        engine.  ``fidelity="analytic"`` yields the closed-form tier's
        fingerprints; ``"des"`` and ``"auto"`` both yield the DES
        fingerprints (auto's grid identity *is* the DES grid — the tier
        split is mixed into :meth:`batch_key` instead).
        """
        tier = (
            "analytic"
            if self._resolve_fidelity(fidelity) == "analytic"
            else "des"
        )
        started = time.perf_counter()
        result = [
            scenario_fingerprint(
                scenario,
                fast_forward=self.fast_forward,
                canonical=self.dedup,
                fidelity=tier,
            )
            for scenario in scenarios
        ]
        self.metrics.fingerprint_wall_s += time.perf_counter() - started
        return result

    def batch_key(
        self,
        scenarios: Sequence[Scenario],
        fidelity: Optional[str] = None,
    ) -> str:
        """Digest identifying a whole batch of scenarios.

        Batches with equal keys run the same points in the same order at
        the same fidelity, so an in-flight batch can serve every
        identical concurrent request (request coalescing in
        ``repro serve``): the batch executes once and the key's waiters
        all receive its results.
        """
        resolved = self._resolve_fidelity(fidelity)
        joined = "\n".join(self.fingerprints(scenarios, fidelity=resolved))
        if resolved != "des":
            # Prefixed only for non-DES tiers so existing DES keys (and
            # any coalescing state keyed on them) are unchanged.
            joined = f"fidelity:{resolved}\n{joined}"
        return hashlib.sha256(joined.encode("ascii")).hexdigest()

    @property
    def cache_accounting(self) -> Dict[str, dict]:
        """Per-client cache traffic (labels passed via ``client=``)."""
        return self._cache.accounting()

    @staticmethod
    def _rebind(result: RunResult, scenario: Scenario) -> RunResult:
        """Present a result under the requesting scenario's identity.

        Cache hits and dedup fan-outs may carry another (permuted or
        renamed) requester's name/app-id order; the physics are
        identical, so only the presentational fields are rewritten.
        """
        app_ids = [app.table2_id for app in scenario.apps]
        if (
            result.scenario_name == scenario.name
            and result.app_ids == app_ids
        ):
            return result
        return dataclasses.replace(
            result, scenario_name=scenario.name, app_ids=app_ids
        )

    def _worker_label(self, pid: int) -> str:
        """Stable ``w<N>`` label for a worker pid, in first-seen order."""
        if pid not in self._worker_labels:
            self._worker_labels[pid] = f"w{len(self._worker_labels)}"
        return self._worker_labels[pid]

    def _note_cache_hit(self, tier: str, count: int = 1) -> None:
        self.metrics.cache_hits += count
        if tier == "memory":
            self.metrics.cache_memory_hits += count
        else:
            self.metrics.cache_disk_hits += count

    def _sync_backend_metrics(self) -> None:
        backend = self._backend
        if backend is None:
            return
        self.metrics.backend_name = backend.name
        self.metrics.backend_spawns = backend.spawns
        self.metrics.backend_dispatches = backend.dispatches
        self.metrics.backend_tasks = backend.tasks
        self.metrics.backend_retries = backend.retries
        # Historical pool_* aliases, kept for older dashboards/tests.
        self.metrics.pool_spawns = backend.spawns
        self.metrics.pool_dispatches = backend.dispatches
        self.metrics.pool_tasks = backend.tasks

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self,
        scenario: Scenario,
        client: Optional[str] = None,
        fidelity: Optional[str] = None,
    ) -> RunResult:
        """Run one scenario: cache hit, or simulate (and populate cache).

        ``client`` attributes the cache traffic to a per-client bucket
        (see :attr:`cache_accounting`); it never changes the result.
        ``fidelity`` overrides the engine's default tier for this call.
        """
        resolved = self._resolve_fidelity(fidelity)
        if resolved != "des":
            outcome = self.run_batch(
                [scenario], client=client, fidelity=resolved
            )[0]
            if isinstance(outcome, ReproError):
                raise outcome
            return outcome
        started = time.perf_counter()
        fingerprint = None
        if self._cache.enabled:
            fingerprint = self._fingerprint(scenario)
            hit = self._cache.get(fingerprint, client=client)
            if hit is not None:
                tier, cached = hit
                self._note_cache_hit(tier)
                self.metrics.run_wall_s += time.perf_counter() - started
                return self._rebind(cached, scenario)
        sim_started = time.perf_counter()
        result = execute_scenario(
            self._execution_form(scenario), fast_forward=self.fast_forward
        )
        self.metrics.note_worker(
            self._worker_label(os.getpid()),
            time.perf_counter() - sim_started,
        )
        self.metrics.scenarios_run += 1
        if fingerprint is not None:
            self.metrics.cache_misses += 1
            self._cache.put(fingerprint, strip_hub(result), client=client)
            self._cache.maybe_gc()
        self.metrics.run_wall_s += time.perf_counter() - started
        return self._rebind(result, scenario)

    def run_batch(
        self,
        scenarios: Sequence[Scenario],
        client: Optional[str] = None,
        fidelity: Optional[str] = None,
    ) -> List[Outcome]:
        """Run many scenarios; per-point outcomes in input order.

        Each outcome is either a :class:`RunResult` or the
        :class:`ReproError` that stopped that point.  Non-library
        exceptions always propagate — a real bug in one point aborts the
        whole batch instead of disappearing into per-point errors.

        Points sharing a (canonical) fingerprint are grouped: the first
        cache lookup serves the whole group, or one simulation of the
        canonical ordering fans out to every member (``dedup_hits``
        counts the members beyond the first).  ``client`` attributes the
        batch's cache traffic per client; it never changes results.

        ``fidelity`` overrides the engine's default tier for this call:
        ``"analytic"`` answers from the closed-form models (DES fallback
        for unsupported points); ``"auto"`` answers analytically, then
        re-runs the frontier through the DES (see :meth:`__init__`).
        Every outcome's ``fidelity`` field records the tier that
        actually produced it.
        """
        resolved = self._resolve_fidelity(fidelity)
        if resolved == "analytic":
            return self._run_batch_analytic(scenarios, client)
        if resolved == "auto":
            return self._run_batch_auto(scenarios, client)
        return self._run_batch_des(scenarios, client)

    def _run_batch_des(
        self, scenarios: Sequence[Scenario], client: Optional[str] = None
    ) -> List[Outcome]:
        """The authoritative tier: :meth:`run_batch`'s DES path."""
        started = time.perf_counter()
        outcomes: List[Optional[Outcome]] = [None] * len(scenarios)
        keyed = self._cache.enabled or self.dedup
        # Group member indices by fingerprint (or by position when
        # neither caching nor dedup needs one — each its own group).
        group_order: List[str] = []
        members: Dict[str, List[int]] = {}
        for index, scenario in enumerate(scenarios):
            key = self._fingerprint(scenario) if keyed else f"@{index}"
            if key not in members:
                members[key] = []
                group_order.append(key)
            members[key].append(index)
        # Cache pass: one lookup per group serves every member.
        pending: List[Tuple[str, Scenario]] = []
        for key in group_order:
            indices = members[key]
            if self._cache.enabled:
                hit = self._cache.get(key, client=client)
                if hit is not None:
                    tier, cached = hit
                    self._note_cache_hit(tier, count=len(indices))
                    for index in indices:
                        outcomes[index] = self._rebind(
                            cached, scenarios[index]
                        )
                    continue
            pending.append((key, self._execution_form(scenarios[indices[0]])))
        # Simulation pass: one execution per surviving group, through
        # the backend.  A parallel backend with a single surviving point
        # short-circuits inline (no dispatch is worth one task), which
        # also keeps that result's live hub attached.
        executed: Dict[str, Tuple[Optional[RunResult], Optional[ReproError]]]
        executed = {}
        backend = self.backend
        if pending:
            outcomes_iter: Sequence[_TaskOutcome]
            if backend.parallel and len(pending) == 1:
                # run_chunk keeps error attribution identical to the
                # dispatched path (task bugs surface as ChunkTaskError).
                outcomes_iter = run_chunk(
                    _run_local,
                    [(0, pending[0][1], self.fast_forward)],
                    0,
                    [_scenario_label(pending[0][1])],
                )
            else:
                runner = _run_remote if backend.remote else _run_local
                outcomes_iter = backend.submit_batch(
                    runner,
                    [
                        (position, scenario, self.fast_forward)
                        for position, (_key, scenario) in enumerate(pending)
                    ],
                    labels=[
                        _scenario_label(scenario) for _key, scenario in pending
                    ],
                )
            for position, result, error, (pid, elapsed) in outcomes_iter:
                executed[pending[position][0]] = (result, error)
                self.metrics.note_worker(self._worker_label(pid), elapsed)
            self._sync_backend_metrics()
        self.metrics.scenarios_run += len(pending)
        # Fan-out pass: publish to caches, deliver to every member.
        for key, _scenario in pending:
            result, error = executed[key]
            indices = members[key]
            if result is not None and self._cache.enabled:
                self.metrics.cache_misses += 1
                self._cache.put(key, strip_hub(result), client=client)
            self.metrics.dedup_hits += len(indices) - 1
            for position, index in enumerate(indices):
                if error is not None:
                    outcomes[index] = error
                elif position == 0:
                    # The first requester keeps the live result (with
                    # its hub when this was an in-process serial run).
                    assert result is not None
                    outcomes[index] = self._rebind(result, scenarios[index])
                else:
                    assert result is not None
                    outcomes[index] = self._rebind(
                        strip_hub(result), scenarios[index]
                    )
        self._cache.maybe_gc()
        self.metrics.run_wall_s += time.perf_counter() - started
        return [outcome for outcome in outcomes if outcome is not None]

    def _analytic_outcomes(
        self, scenarios: Sequence[Scenario], client: Optional[str]
    ) -> List[Optional[Outcome]]:
        """Closed-form pass: per-point outcome, or ``None`` for the DES.

        Mirrors the DES batch's grouping (fingerprint dedup, cache pass,
        fan-out) but evaluates inline — closed-form models are far
        cheaper than any dispatch.  A ``None`` slot marks a point the
        analytic tier cannot cover (:class:`AnalyticUnsupported`, at the
        gate or mid-evaluation); scheme feasibility errors are final —
        the analytic tier raises them identically to the DES.
        """
        started = time.perf_counter()
        outcomes: List[Optional[Outcome]] = [None] * len(scenarios)
        keyed = self._cache.enabled or self.dedup
        group_order: List[str] = []
        members: Dict[str, List[int]] = {}
        for index, scenario in enumerate(scenarios):
            key = (
                self._fingerprint(scenario, fidelity="analytic")
                if keyed
                else f"@{index}"
            )
            if key not in members:
                members[key] = []
                group_order.append(key)
            members[key].append(index)
        for key in group_order:
            indices = members[key]
            if self._cache.enabled:
                hit = self._cache.get(key, client=client)
                if hit is not None:
                    tier, cached = hit
                    self._note_cache_hit(tier, count=len(indices))
                    for index in indices:
                        outcomes[index] = self._rebind(
                            cached, scenarios[index]
                        )
                    continue
            result: Optional[RunResult] = None
            error: Optional[ReproError] = None
            try:
                result = analytic_scenario_result(
                    self._execution_form(scenarios[indices[0]])
                )
            except AnalyticUnsupported:
                continue  # the whole group falls through to the DES
            except ReproError as exc:
                error = exc
            self.metrics.analytic_evals += 1
            if result is not None and self._cache.enabled:
                self.metrics.cache_misses += 1
                self._cache.put(key, result, client=client)
            self.metrics.dedup_hits += len(indices) - 1
            for index in indices:
                outcomes[index] = (
                    error
                    if error is not None
                    else self._rebind(result, scenarios[index])
                )
        self.metrics.analytic_wall_s += time.perf_counter() - started
        self.metrics.run_wall_s += time.perf_counter() - started
        return outcomes

    def _merge_des(
        self,
        scenarios: Sequence[Scenario],
        outcomes: List[Optional[Outcome]],
        confirm: List[int],
        client: Optional[str],
    ) -> List[Outcome]:
        """Fill/overwrite ``confirm`` slots with DES outcomes."""
        if confirm:
            des = self._run_batch_des(
                [scenarios[index] for index in confirm], client=client
            )
            for index, outcome in zip(confirm, des):
                outcomes[index] = outcome
        assert all(outcome is not None for outcome in outcomes)
        return outcomes  # type: ignore[return-value]

    def _run_batch_analytic(
        self, scenarios: Sequence[Scenario], client: Optional[str]
    ) -> List[Outcome]:
        """Closed-form tier: analytic everywhere it holds, DES elsewhere."""
        outcomes = self._analytic_outcomes(scenarios, client)
        pending = [
            index
            for index, outcome in enumerate(outcomes)
            if outcome is None
        ]
        return self._merge_des(scenarios, outcomes, pending, client)

    def _run_batch_auto(
        self, scenarios: Sequence[Scenario], client: Optional[str]
    ) -> List[Outcome]:
        """The planner tier: analytic sweep, DES confirmation of the frontier.

        The analytic pass answers every point; points are then grouped
        by :func:`scenario_group_key` (same grid point, different
        scheme) and each group's frontier — its marginal-energy winner
        plus any scheme within :data:`AUTO_CONFIRM_BAND` of it — is
        re-run through the DES, along with every point the analytic tier
        could not cover.  DES results replace the analytic answers on
        confirmed points (their ``fidelity`` tag records the tier), so
        the ranking the sweep reports is always DES-confirmed.
        """
        outcomes = self._analytic_outcomes(scenarios, client)
        confirm = [
            index
            for index, outcome in enumerate(outcomes)
            if outcome is None
        ]
        groups: Dict[str, List[int]] = {}
        for index, outcome in enumerate(outcomes):
            if isinstance(outcome, RunResult):
                groups.setdefault(
                    scenario_group_key(scenarios[index]), []
                ).append(index)
        frontier: List[int] = []
        for indices in groups.values():
            best = min(
                outcomes[index].energy.marginal_j for index in indices
            )
            cutoff = best * (1.0 + AUTO_CONFIRM_BAND)
            frontier.extend(
                index
                for index in indices
                if outcomes[index].energy.marginal_j <= cutoff
            )
        self.metrics.frontier_points += len(frontier)
        confirm.extend(frontier)
        self.metrics.des_confirmations += len(confirm)
        return self._merge_des(scenarios, outcomes, confirm, client)

    def run_many(
        self,
        scenarios: Sequence[Scenario],
        client: Optional[str] = None,
        fidelity: Optional[str] = None,
    ) -> List[RunResult]:
        """Like :meth:`run_batch`, but library errors raise immediately."""
        results: List[RunResult] = []
        for outcome in self.run_batch(
            scenarios, client=client, fidelity=fidelity
        ):
            if isinstance(outcome, ReproError):
                raise outcome
            results.append(outcome)
        return results
