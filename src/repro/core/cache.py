"""The two-tier result cache behind the :class:`~repro.core.engine.ScenarioEngine`.

Sweep grids hammer the cache: thousands of lookups per call, many of
them for results computed seconds earlier in the same process.  The
engine therefore layers two tiers:

* :class:`LRUResultCache` — an in-memory, entry-capped LRU.  Hits cost a
  dict lookup instead of a pickle load, and because the engine is shared
  across ``run_sweep``/``compare_schemes`` calls, warm sweeps in the
  same process never touch the disk at all.
* :class:`DiskResultCache` — the persistent tier.  Entries live in a
  sharded layout (``<root>/ab/cdef….pkl``, first two fingerprint hex
  chars as the shard directory) so a million-entry cache never puts a
  million files in one directory.  Writes are atomic
  (``mkstemp`` + ``os.replace``), reads treat *any* malformed entry —
  truncated pickle, garbage bytes, a foreign file, an entry written by
  an incompatible library version — as a miss, never an error, so two
  engines can share one cache directory without coordination.

:class:`TieredResultCache` composes the two and reports which tier
served each hit so the engine's metrics can tell them apart.

Disk entries are small pickled envelopes (``entry_version`` +
``fingerprint`` + result); the fingerprint inside the envelope is
checked against the requested one, so a file that was renamed or
hard-linked into the wrong slot can never serve a wrong result.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple, Union

from .results import RunResult

#: Bump when the on-disk envelope layout changes.  Entries carrying a
#: different version are skipped (a miss), never deleted and never an
#: error — an older library version may still be using them.
ENTRY_VERSION = 1

#: Length of the shard-directory prefix taken from the fingerprint.
SHARD_CHARS = 2

PathLike = Union[str, "os.PathLike[str]"]


@dataclass(frozen=True)
class CacheStats:
    """Snapshot of one disk cache: entry count, bytes, shard spread."""

    root: str
    entries: int
    total_bytes: int
    shard_dirs: int


@dataclass
class ClientCacheStats:
    """Cache traffic attributed to one client label.

    The serve layer tags every engine call with the submitting client;
    the tiered cache accumulates one of these per label so operators can
    see who is riding the cache and who is paying for simulations.
    """

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def hits(self) -> int:
        """Hits across both tiers."""
        return self.memory_hits + self.disk_hits

    def snapshot(self) -> dict:
        """Plain JSON-able dict of the counters."""
        return {
            "hits": self.hits,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
        }


@dataclass(frozen=True)
class GcResult:
    """Outcome of one eviction pass."""

    evicted: int
    freed_bytes: int
    remaining_entries: int
    remaining_bytes: int


class LRUResultCache:
    """Entry-capped in-memory LRU over hub-stripped results.

    Not thread-safe; the engine owns one per instance and engines are
    not shared across threads.
    """

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ValueError(
                f"need at least one LRU entry, got {max_entries}"
            )
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[str, RunResult]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, fingerprint: str) -> Optional[RunResult]:
        """The cached result, refreshed to most-recently-used, or None."""
        result = self._entries.get(fingerprint)
        if result is not None:
            self._entries.move_to_end(fingerprint)
        return result

    def put(self, fingerprint: str, result: RunResult) -> None:
        """Insert (or refresh) an entry, evicting the least-recently used."""
        self._entries[fingerprint] = result
        self._entries.move_to_end(fingerprint)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry."""
        self._entries.clear()


class DiskResultCache:
    """Sharded, atomically-written, corruption-tolerant on-disk cache."""

    def __init__(
        self, root: PathLike, max_bytes: Optional[int] = None
    ) -> None:
        self.root = os.fspath(root)
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"cache_max_bytes must be >= 0, got {max_bytes}")
        self.max_bytes = max_bytes

    # ------------------------------------------------------------------
    # entry I/O
    # ------------------------------------------------------------------
    def path_for(self, fingerprint: str) -> str:
        """Sharded entry path: ``<root>/<fp[:2]>/<fp[2:]>.pkl``."""
        return os.path.join(
            self.root,
            fingerprint[:SHARD_CHARS],
            f"{fingerprint[SHARD_CHARS:]}.pkl",
        )

    def load(self, fingerprint: str) -> Optional[RunResult]:
        """The cached result, or None for missing/corrupt/foreign entries.

        Truncated or garbage files are unlinked best-effort (they are
        useless to every reader); entries with a different
        ``entry_version`` are left alone — another process running a
        different library version may still want them.
        """
        path = self.path_for(fingerprint)
        try:
            with open(path, "rb") as handle:
                envelope = pickle.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, MemoryError):
            # Truncated mid-write crash, garbage bytes, an unimportable
            # class: recompute instead of raising, and drop the file.
            self._discard(path)
            return None
        if (
            not isinstance(envelope, dict)
            or envelope.get("entry_version") != ENTRY_VERSION
            or envelope.get("fingerprint") != fingerprint
        ):
            return None
        result = envelope.get("result")
        return result if isinstance(result, RunResult) else None

    def store(self, fingerprint: str, result: RunResult) -> None:
        """Atomically publish one entry (tmp file + ``os.replace``).

        Concurrent writers racing on the same fingerprint are safe: each
        writes its own tmp file and the rename is atomic, so readers see
        either nothing or one complete entry, never a torn one.
        """
        path = self.path_for(fingerprint)
        shard = os.path.dirname(path)
        os.makedirs(shard, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=shard, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(
                    {
                        "entry_version": ENTRY_VERSION,
                        "fingerprint": fingerprint,
                        # Duplicated from the result so stats passes can
                        # tally tiers without unpickling full results.
                        "fidelity": result.fidelity,
                        "result": result,
                    },
                    handle,
                    pickle.HIGHEST_PROTOCOL,
                )
            os.replace(tmp_path, path)
        except BaseException:
            self._discard(tmp_path)
            raise

    @staticmethod
    def _discard(path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass

    # ------------------------------------------------------------------
    # maintenance: stats / gc / clear
    # ------------------------------------------------------------------
    def entries(self) -> List[Tuple[str, int, float]]:
        """Every entry as ``(path, size_bytes, mtime)``, sorted by path.

        Covers both the sharded layout and legacy flat ``<root>/*.pkl``
        files from older library versions, so ``gc``/``clear`` reclaim
        pre-shard caches too.  Entries that vanish mid-scan (a
        concurrent ``clear``) are skipped.
        """
        found: List[Tuple[str, int, float]] = []
        for path in sorted(self._iter_entry_paths()):
            try:
                stat = os.stat(path)
            except OSError:
                continue
            found.append((path, stat.st_size, stat.st_mtime))
        return found

    def _iter_entry_paths(self) -> Iterator[str]:
        try:
            names = sorted(os.listdir(self.root))
        except OSError:
            return
        for name in names:
            child = os.path.join(self.root, name)
            if name.endswith(".pkl") and os.path.isfile(child):
                yield child  # legacy flat layout
            elif os.path.isdir(child):
                try:
                    inner_names = sorted(os.listdir(child))
                except OSError:
                    continue
                for inner in inner_names:
                    if inner.endswith(".pkl"):
                        yield os.path.join(child, inner)

    def stats(self) -> CacheStats:
        """Entry count, total bytes and shard-directory count."""
        entries = self.entries()
        shard_dirs = len(
            {os.path.dirname(path) for path, _, _ in entries}
            - {self.root}
        )
        return CacheStats(
            root=self.root,
            entries=len(entries),
            total_bytes=sum(size for _, size, _ in entries),
            shard_dirs=shard_dirs,
        )

    def fidelity_counts(self) -> Dict[str, int]:
        """Entry count per fidelity tier (``{"des": …, "analytic": …}``).

        Reads each entry's envelope; entries written before the envelope
        carried a ``fidelity`` key predate the analytic tier and count
        as ``"des"``.  Corrupt or foreign files are skipped, mirroring
        :meth:`load`'s tolerance.
        """
        counts: Dict[str, int] = {}
        for path, _size, _mtime in self.entries():
            try:
                with open(path, "rb") as handle:
                    envelope = pickle.load(handle)
            except (OSError, pickle.UnpicklingError, EOFError,
                    AttributeError, ImportError, IndexError, MemoryError):
                continue
            if (
                not isinstance(envelope, dict)
                or envelope.get("entry_version") != ENTRY_VERSION
            ):
                continue
            fidelity = envelope.get("fidelity", "des")
            if not isinstance(fidelity, str):
                fidelity = "des"
            counts[fidelity] = counts.get(fidelity, 0) + 1
        return dict(sorted(counts.items()))

    def gc(self, max_bytes: Optional[int] = None) -> GcResult:
        """Evict oldest-mtime-first until the cache fits ``max_bytes``.

        Uses the explicit argument, falling back to the instance's
        ``max_bytes``; with neither set this raises ``ValueError``
        (an unbounded GC pass would silently delete nothing).
        """
        cap = self.max_bytes if max_bytes is None else max_bytes
        if cap is None:
            raise ValueError("gc needs a byte cap (max_bytes)")
        entries = self.entries()
        total = sum(size for _, size, _ in entries)
        evicted = freed = 0
        # Oldest first; path tie-break keeps the pass deterministic even
        # when a burst of stores lands inside one mtime granule.
        for path, size, _mtime in sorted(
            entries, key=lambda entry: (entry[2], entry[0])
        ):
            if total <= cap:
                break
            self._discard(path)
            total -= size
            freed += size
            evicted += 1
        return GcResult(
            evicted=evicted,
            freed_bytes=freed,
            remaining_entries=len(entries) - evicted,
            remaining_bytes=total,
        )

    def maybe_gc(self) -> Optional[GcResult]:
        """Run :meth:`gc` only when a byte cap was configured."""
        if self.max_bytes is None:
            return None
        return self.gc()

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path, _size, _mtime in self.entries():
            self._discard(path)
            removed += 1
        return removed


class TieredResultCache:
    """Memory-over-disk composition with per-tier hit attribution."""

    def __init__(
        self,
        memory: Optional[LRUResultCache] = None,
        disk: Optional[DiskResultCache] = None,
    ) -> None:
        self.memory = memory
        self.disk = disk
        #: Per-client traffic, keyed by the caller-supplied label; calls
        #: without a label are not accounted (library-internal traffic).
        self.client_stats: Dict[str, ClientCacheStats] = {}

    @property
    def enabled(self) -> bool:
        """Whether any tier is configured."""
        return self.memory is not None or self.disk is not None

    def _client(self, client: Optional[str]) -> Optional[ClientCacheStats]:
        if client is None:
            return None
        stats = self.client_stats.get(client)
        if stats is None:
            stats = self.client_stats[client] = ClientCacheStats()
        return stats

    def accounting(self) -> Dict[str, dict]:
        """Per-client traffic snapshot, sorted by client label."""
        return {
            client: stats.snapshot()
            for client, stats in sorted(self.client_stats.items())
        }

    def get(
        self, fingerprint: str, client: Optional[str] = None
    ) -> Optional[Tuple[str, RunResult]]:
        """``("memory"|"disk", result)`` on a hit, None on a miss.

        Disk hits are promoted into the memory tier so repeated lookups
        in one process pay the pickle load once.  ``client`` attributes
        the lookup to a per-client accounting bucket (see
        :class:`ClientCacheStats`).
        """
        stats = self._client(client)
        if self.memory is not None:
            result = self.memory.get(fingerprint)
            if result is not None:
                if stats is not None:
                    stats.memory_hits += 1
                return "memory", result
        if self.disk is not None:
            result = self.disk.load(fingerprint)
            if result is not None:
                if self.memory is not None:
                    self.memory.put(fingerprint, result)
                if stats is not None:
                    stats.disk_hits += 1
                return "disk", result
        if stats is not None:
            stats.misses += 1
        return None

    def put(
        self,
        fingerprint: str,
        result: RunResult,
        client: Optional[str] = None,
    ) -> None:
        """Publish one (hub-stripped) result into every configured tier."""
        stats = self._client(client)
        if stats is not None:
            stats.stores += 1
        if self.memory is not None:
            self.memory.put(fingerprint, result)
        if self.disk is not None:
            self.disk.store(fingerprint, result)

    def maybe_gc(self) -> None:
        """Forward a size-cap eviction pass to the disk tier, if any."""
        if self.disk is not None:
            self.disk.maybe_gc()
