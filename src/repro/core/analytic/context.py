"""Shared scan state for the closed-form scheme models.

An :class:`AnalyticRun` owns the per-component timelines, the FIFO
cursors (sensor rails, MCU core, CPU core, bus, NIC) and the counters a
:class:`~repro.core.results.RunResult` reports.  The family models in
:mod:`.interrupting` / :mod:`.cpu_polling` / :mod:`.buffered` drive it
with operation intervals instead of simulated processes.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ...apps.base import AppResult, IoTApp
from ...hw.cpu import CpuState
from ...hw.mcu import McuState
from ...hw.power import Routine
from ...sensors.base import SensorDevice
from ...sensors.specs import get_spec
from ...units import to_ms
from .ledger import Timeline


class AnalyticRun:
    """Mutable scan state shared by the family models."""

    def __init__(self, scenario, cpu_starts_awake: bool, mcu_owns_sensing: bool):
        self.scenario = scenario
        self.cal = scenario.calibration
        cal = self.cal
        self.cpu = Timeline(
            "cpu",
            CpuState.IDLE if cpu_starts_awake else CpuState.DEEP_SLEEP,
            cal.cpu.idle_power_w
            if cpu_starts_awake
            else cal.cpu.deep_sleep_power_w,
        )
        # build_context: the MCU board is awake (data-collection wait)
        # whenever it owns the sensing; under main-board polling it never
        # leaves sleep.
        self.mcu = Timeline(
            "mcu",
            McuState.IDLE if mcu_owns_sensing else McuState.SLEEP,
            cal.mcu.idle_power_w
            if mcu_owns_sensing
            else cal.mcu.sleep_power_w,
            Routine.DATA_COLLECTION if mcu_owns_sensing else Routine.IDLE,
        )
        self.bus = Timeline("pio_bus", "idle", 0.0)
        self.nic = Timeline("nic", "idle", 0.0)
        self.board = Timeline("board", "on", cal.board.overhead_power_w)
        self.mcu_board = Timeline(
            "mcu_board", "on", cal.board.mcu_overhead_power_w
        )
        self.sensors: Dict[str, Timeline] = {}
        self.sensor_specs = {}
        for sensor_id in scenario.sensor_ids:
            spec = get_spec(sensor_id)
            self.sensor_specs[sensor_id] = spec
            self.sensors[sensor_id] = Timeline(
                f"sensor:{sensor_id}", SensorDevice.STANDBY, spec.min_power_w
            )
        #: FIFO cursors: earliest time each serialized resource frees up.
        self.rail_free: Dict[str, float] = {s: 0.0 for s in self.sensors}
        self.mcu_core_free = 0.0
        self.cpu_core_free = 0.0
        self.nic_free = 0.0
        #: RunResult counters.
        self.interrupt_count = 0
        self.cpu_wake_count = 0
        self.bus_bytes = 0
        self.sensor_reads: Dict[str, int] = {s: 0 for s in self.sensors}
        self.qos_violations: List[str] = []
        self.app_results: Dict[str, List[AppResult]] = {
            app.name: [] for app in scenario.apps
        }
        self.result_times: Dict[str, List[float]] = {
            app.name: [] for app in scenario.apps
        }
        #: High-water mark of emitted activity, for the run duration.
        self.last_activity = 0.0

    # ------------------------------------------------------------------
    # shared op primitives
    # ------------------------------------------------------------------
    def wire_time(self, nbytes: int) -> float:
        """PIO wire time for one transfer (setup + payload)."""
        bus = self.cal.bus
        return bus.setup_time_s + max(1, nbytes) / bus.bandwidth_bytes_per_s

    def rail_read(self, sensor_id: str, ready: float) -> float:
        """One rail read: FIFO grant, read burst, back to standby.

        Returns the read-end time (when the sample exists).
        """
        spec = self.sensor_specs[sensor_id]
        grant = max(ready, self.rail_free[sensor_id])
        end = grant + spec.read_time_s
        timeline = self.sensors[sensor_id]
        timeline.set(
            grant,
            SensorDevice.READ,
            spec.typical_power_w + self.cal.mcu.sensor_read_power_w,
            Routine.DATA_COLLECTION,
        )
        timeline.set(end, SensorDevice.STANDBY, spec.min_power_w, Routine.IDLE)
        self.rail_free[sensor_id] = end
        self.sensor_reads[sensor_id] += 1
        self.last_activity = max(self.last_activity, end)
        return end

    def mcu_op(
        self,
        ready: float,
        duration: float,
        routine: str,
        after_routine: str = None,
    ) -> float:
        """One MCU-core execution: FIFO grant, busy burst, idle after."""
        start = max(ready, self.mcu_core_free)
        end = start + duration
        cal = self.cal.mcu
        self.mcu.set(start, McuState.BUSY, cal.active_power_w, routine)
        self.mcu.set(
            end, McuState.IDLE, cal.idle_power_w, after_routine or routine
        )
        self.mcu_core_free = end
        self.last_activity = max(self.last_activity, end)
        return end

    def cpu_op(
        self,
        ready: float,
        duration: float,
        routine: str,
        after_routine: str = None,
    ) -> float:
        """One CPU-core execution: FIFO grant, busy burst, idle after."""
        start = max(ready, self.cpu_core_free)
        end = start + duration
        cal = self.cal.cpu
        self.cpu.set(start, CpuState.BUSY, cal.active_power_w, routine)
        self.cpu.set(
            end, CpuState.IDLE, cal.idle_power_w, after_routine or routine
        )
        self.cpu_core_free = end
        self.last_activity = max(self.last_activity, end)
        return end

    def cpu_wake(self, t: float, routine: str) -> float:
        """Wake the CPU from (deep) sleep; returns the awake time."""
        cal = self.cal.cpu
        duration = (
            cal.deep_transition_time_s
            if self.cpu.state == CpuState.DEEP_SLEEP
            else cal.transition_time_s
        )
        self.cpu.set(t, CpuState.TRANSITION, cal.transition_power_w, routine)
        self.cpu.set(t + duration, CpuState.IDLE, cal.idle_power_w, routine)
        self.cpu_wake_count += 1
        self.last_activity = max(self.last_activity, t + duration)
        return t + duration

    @property
    def cpu_asleep(self) -> bool:
        """Whether the latest emitted CPU state is a sleep state."""
        return self.cpu.state in (CpuState.SLEEP, CpuState.DEEP_SLEEP)

    def bus_transfer(self, start: float, nbytes: int) -> float:
        """Bus-side activity concurrent with a CPU transfer op."""
        end = start + self.wire_time(nbytes)
        self.bus.set(start, "active", self.cal.bus.active_power_w,
                     Routine.DATA_TRANSFER)
        self.bus.set(end, "idle", 0.0, Routine.IDLE)
        self.bus_bytes += max(1, nbytes)
        return end

    def nic_send(self, ready: float, nbytes: int) -> float:
        """One uplink publish; FIFO on the NIC lock."""
        start = max(ready, self.nic_free)
        end = start + nbytes / self.cal.board.nic_bandwidth_bytes_per_s
        self.nic.set(start, "tx", self.cal.board.nic_tx_power_w,
                     Routine.APP_COMPUTE)
        self.nic.set(end, "idle", 0.0, Routine.IDLE)
        self.nic_free = end
        self.last_activity = max(self.last_activity, end)
        return end

    # ------------------------------------------------------------------
    # results + QoS
    # ------------------------------------------------------------------
    def record_result(self, app: IoTApp, window_index: int, t: float) -> None:
        """Log one delivered window result; same deadline rule as the DES."""
        self.app_results[app.name].append(
            AppResult(
                app_name=app.name,
                window_index=window_index,
                payload={"analytic": True},
                output_bytes=app.profile.output_bytes,
            )
        )
        self.result_times[app.name].append(t)
        start = window_index * app.profile.window_s
        deadline = (
            float("inf")
            if app.profile.heavy
            else start + 2.0 * app.profile.window_s
        )
        if t > deadline + 1e-9:
            self.qos_violations.append(
                f"{app.name} window {window_index}: result at "
                f"{to_ms(t):.1f} ms, deadline {to_ms(deadline):.1f} ms"
            )

    def timelines(self) -> List[Timeline]:
        """Every component timeline, for integration."""
        return [
            self.cpu,
            self.mcu,
            self.bus,
            self.nic,
            self.board,
            self.mcu_board,
            *self.sensors.values(),
        ]
