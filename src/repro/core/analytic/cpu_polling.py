"""Closed-form model of the CPU-polling scheme.

The main board does everything itself: the MCU never leaves sleep, and
every sample is a blocking read on the CPU core (busy collection during
the rail burst, then a short busy store).  Window completions queue the
app computation on the same core.  The core is the only contended
resource, so the whole schedule is a single FIFO merge of poll chains
and compute jobs.
"""

from __future__ import annotations

import heapq
from typing import Dict, Tuple

from ...hw.cpu import CpuState
from ...hw.power import Routine
from ..schemes.base import build_streams
from .context import AnalyticRun

#: hubos.polling.STORE_TIME_S — the busy store after each blocking read.
STORE_TIME_S = 20e-6


def run_cpu_polling(run: AnalyticRun) -> None:
    """Populate ``run`` with the polling schedule and energy."""
    scenario = run.scenario
    cal = run.cal
    windows = scenario.windows
    streams = build_streams(scenario.apps, shared=False)
    # t=0 rest(): governor off -> idle at the DATA_TRANSFER wait routine.
    run.cpu.set(0.0, CpuState.IDLE, cal.cpu.idle_power_w, Routine.DATA_TRANSFER)

    counts: Dict[Tuple[str, int], Dict[str, int]] = {}
    completed: Dict[Tuple[str, int], bool] = {}
    heap = []
    seq = 0
    # (w, k) cursor per stream; request time per stream.
    cursors = [[0, 0] for _ in streams]
    for index, stream in enumerate(streams):
        heapq.heappush(heap, (0.0, seq, "poll", index))
        seq += 1

    def window_delivered(stream, w: int, chain_end: float) -> None:
        """Tally the sample; queue computes for any completed windows."""
        nonlocal seq
        for app in stream.subscribers:
            key = (app.name, w)
            tally = counts.setdefault(key, {})
            tally[stream.sensor_id] = tally.get(stream.sensor_id, 0) + 1
            if completed.get(key):
                continue
            if all(
                tally.get(sensor_id, 0)
                >= app.profile.samples_per_window(sensor_id)
                for sensor_id in app.profile.sensor_ids
            ):
                completed[key] = True
                # deliver() fires synchronously: the waiting compute
                # process requests the core at the chain end, ahead of
                # this stream's next poll (same request time, lower seq).
                heapq.heappush(heap, (chain_end, seq, "compute", (app, w)))
                seq += 1

    while heap:
        ready, _, kind, payload = heapq.heappop(heap)
        if kind == "compute":
            app, w = payload
            compute_end = run.cpu_op(
                ready, app.profile.cpu_compute_time_s(cal), Routine.APP_COMPUTE
            )
            run.record_result(app, w, compute_end)
            send_end = run.nic_send(compute_end, app.profile.output_bytes)
            run.cpu.rest(
                send_end, CpuState.IDLE, cal.cpu.idle_power_w,
                Routine.DATA_TRANSFER,
            )
            continue
        index = payload
        stream = streams[index]
        w, k = cursors[index]
        start = max(ready, run.cpu_core_free)
        # Blocking read: CPU busy-collects for the rail burst, then a
        # busy store, then back to transfer-wait idle.
        read_end = run.rail_read(stream.sensor_id, start)
        run.cpu.set(
            start, CpuState.BUSY, cal.cpu.active_power_w,
            Routine.DATA_COLLECTION,
        )
        run.cpu.set(
            read_end, CpuState.BUSY, cal.cpu.active_power_w,
            Routine.DATA_TRANSFER,
        )
        chain_end = read_end + STORE_TIME_S
        run.cpu.set(
            chain_end, CpuState.IDLE, cal.cpu.idle_power_w,
            Routine.DATA_TRANSFER,
        )
        run.cpu_core_free = chain_end
        run.last_activity = max(run.last_activity, chain_end)
        window_delivered(stream, w, chain_end)
        # Advance the stream cursor and schedule its next poll.
        k += 1
        if k >= stream.samples_per_window:
            k = 0
            w += 1
        cursors[index] = [w, k]
        if w >= windows:
            continue
        target = w * stream.window_s + k / stream.rate_hz
        heapq.heappush(heap, (max(target, chain_end), seq, "poll", index))
        seq += 1
