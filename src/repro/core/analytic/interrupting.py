"""Closed-form model of the per-sample interrupting family (baseline/BEAM).

MCU side: every sample is read, decoded, announced with an interrupt and
pushed over the PIO bus.  CPU side: the governor is off (the paper's
always-awake baseline); the dispatcher services interrupts FIFO, window
completions start the app computation immediately (the compute process
preempts the next queued interrupt service, as in the DES).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ...hw.power import Routine
from ..schemes.base import Stream, build_streams
from .context import AnalyticRun
from .mcu_scan import McuOp, scan_streams

#: One pending interrupt: (fire_time, stream, window_index, sample_index).
_Irq = Tuple[float, Stream, int, int]


def run_interrupting(run: AnalyticRun, shared: bool) -> None:
    """Populate ``run`` with the baseline/BEAM schedule and energy."""
    scenario = run.scenario
    cal = run.cal
    streams = build_streams(scenario.apps, shared)
    irqs: List[_Irq] = []

    def sample_ops(stream: Stream, w: int, k: int) -> List[McuOp]:
        def fire(raised: float) -> None:
            irqs.append((raised, stream, w, k))
            run.interrupt_count += 1

        return [
            McuOp(cal.mcu.decode_time_per_sample_s, Routine.DATA_COLLECTION),
            McuOp(cal.mcu.interrupt_raise_time_s, Routine.INTERRUPT,
                  on_end=fire),
            McuOp(cal.mcu.transfer_time_per_sample_s, Routine.DATA_TRANSFER),
        ]

    scan_streams(run, streams, sample_ops)
    _cpu_replay(run, irqs)


def _cpu_replay(run: AnalyticRun, irqs: List[_Irq]) -> None:
    """Dispatcher + compute replay with the governor off (never sleeps)."""
    cal = run.cal
    scenario = run.scenario
    # build_context's t=0 rest(): governor off -> idle at the default
    # DATA_TRANSFER wait routine.
    run.cpu.set(0.0, "idle", cal.cpu.idle_power_w, Routine.DATA_TRANSFER)
    # Per-(app, window) sample tallies toward window completion.
    counts: Dict[Tuple[str, int], Dict[str, int]] = {}
    completed: Dict[Tuple[str, int], bool] = {}
    for fire, stream, w, k in irqs:
        service_end = run.cpu_op(
            fire, cal.cpu.interrupt_handling_time_s, Routine.INTERRUPT
        )
        duration = cal.cpu.transfer_time_per_sample_s + run.wire_time(
            stream.sample_bytes
        )
        run.bus_transfer(service_end, stream.sample_bytes)
        transfer_end = run.cpu_op(
            service_end, duration, Routine.DATA_TRANSFER
        )
        for app in stream.subscribers:
            if k % stream.stride(app) != 0:
                continue  # decimated subscriber skips this sample
            key = (app.name, w)
            tally = counts.setdefault(key, {})
            tally[stream.sensor_id] = tally.get(stream.sensor_id, 0) + 1
            if completed.get(key):
                continue
            if all(
                tally.get(sensor_id, 0)
                >= app.profile.samples_per_window(sensor_id)
                for sensor_id in app.profile.sensor_ids
            ):
                completed[key] = True
                # Window delivered: the compute process acquires the
                # core ahead of the next queued interrupt service.
                compute_end = run.cpu_op(
                    transfer_end,
                    app.profile.cpu_compute_time_s(cal),
                    Routine.APP_COMPUTE,
                )
                run.record_result(app, w, compute_end)
                send_end = run.nic_send(compute_end, app.profile.output_bytes)
                # cpu_compute_process rest(): skipped if the dispatcher
                # went busy again during the publish.
                run.cpu.rest(
                    send_end, "idle", cal.cpu.idle_power_w,
                    Routine.DATA_TRANSFER,
                )
    del scenario  # schedule fully derived from the irq list
