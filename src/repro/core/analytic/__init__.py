"""Closed-form analytic tier: scheme results without the event kernel.

The discrete-event simulation replays every sample, interrupt and
transfer through generator processes; for steady scenarios the same
schedule is computable directly as arithmetic over operation intervals.
This package holds one closed-form model per scheme *family* (see
:class:`~repro.core.schemes.base.AnalyticPlan`), each returning a
:class:`~repro.core.results.RunResult` with the same shape as the DES —
energy report, busy times, counters, result times — at a fraction of
the cost.

The tier is validated against the DES across the Figure 11 grid (see
``tests/core/test_analytic.py``); :data:`ANALYTIC_RTOL` is the pinned
agreement band, and the ``auto`` fidelity planner re-confirms through
the DES any grid point where two schemes land within
:data:`AUTO_CONFIRM_BAND` of each other.
"""

from __future__ import annotations

from .model import (
    ANALYTIC_RTOL,
    AUTO_CONFIRM_BAND,
    AnalyticUnsupported,
    analytic_scenario_result,
    supports_analytic,
)

__all__ = [
    "ANALYTIC_RTOL",
    "AUTO_CONFIRM_BAND",
    "AnalyticUnsupported",
    "analytic_scenario_result",
    "supports_analytic",
]
