"""The analytic tier's entry point: scenario -> closed-form RunResult.

:func:`analytic_scenario_result` mirrors
:func:`~repro.core.schemes.base.execute_scenario` — same feasibility
errors, same result shape — but derives the schedule arithmetically via
the family models instead of running the event kernel.
:func:`supports_analytic` is the planner's gate: scenarios outside the
validated envelope (failure injection, partial-batch flushes, plugin
schemes without a closed form, RAM-overflow risk) fall back to the DES.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ...errors import AnalyticUnsupported, OffloadError, WorkloadError
from ...energy.meter import EnergyReport
from ...obs.recorder import NullRecorder
from ..results import RunResult
from ..schemes.base import AnalyticPlan
from ..schemes.registry import get_scheme
from .buffered import run_buffered
from .context import AnalyticRun
from .cpu_polling import run_cpu_polling
from .interrupting import run_interrupting
from .ledger import integrate

#: Validated agreement band of the analytic tier against the DES (see
#: ``tests/core/test_analytic.py``): every energy/duration figure lands
#: within this relative tolerance across the Figure 11 grid and seeded
#: random app mixes.  Integer counters (interrupts, wakes, bus bytes)
#: match exactly.
ANALYTIC_RTOL = 1e-9

#: ``fidelity="auto"``'s confirmation band: grid points where two
#: schemes' marginal energies land within this relative gap cannot be
#: ranked by the analytic tier alone and are re-run through the DES.
AUTO_CONFIRM_BAND = 2.0 * max(ANALYTIC_RTOL, 1e-3)


def _plan_for(scenario) -> Tuple[object, AnalyticPlan]:
    """Resolve the scheme's analytic plan (feasibility errors propagate)."""
    executor = get_scheme(scenario.scheme)()
    plan = executor.analytic_plan(scenario)
    return executor, plan


def supports_analytic(scenario) -> Tuple[bool, str]:
    """Whether the closed-form tier covers ``scenario`` (and why not).

    A scheme whose feasibility check fails (e.g. COM's
    :class:`~repro.errors.OffloadError`) *is* supported: the analytic
    tier raises the identical error, so no DES fallback is needed.
    """
    if any(rate > 0 for rate in scenario.sensor_failure_rates.values()):
        return False, "sensor failure injection is stochastic (DES only)"
    if scenario.batch_size is not None:
        return False, "partial-batch flushes are not modelled (DES only)"
    try:
        _, plan = _plan_for(scenario)
    except OffloadError:
        return True, ""
    if plan is None:
        return False, (
            f"scheme {scenario.scheme!r} declares no closed-form model"
        )
    if plan.family == "buffered":
        cal = scenario.calibration
        resident = sum(
            app.profile.mcu_footprint_bytes for app in plan.com_apps
        )
        peak = sum(
            app.profile.samples_per_window(sensor_id)
            * app.profile.sample_bytes(sensor_id)
            for app in plan.batch_apps
            for sensor_id in app.profile.sensor_ids
        )
        if resident + peak > cal.mcu.ram_bytes:
            return False, (
                "MCU RAM may overflow (dropped samples); DES required"
            )
    return True, ""


def analytic_scenario_result(
    scenario, obs: Optional[NullRecorder] = None
) -> RunResult:
    """Closed-form counterpart of :func:`execute_scenario`.

    Raises :class:`~repro.errors.AnalyticUnsupported` when the scenario
    is outside the tier's envelope; scheme feasibility errors
    (:class:`~repro.errors.OffloadError`, workload errors from stream
    construction) propagate exactly as the DES would raise them.
    ``obs`` attaches an instrumentation recorder: the analytic tier has
    no event-granular schedule to trace, so it emits one span per
    evaluation (category ``"analytic"``) plus one per app's result
    window — enough for profiles to show which tier answered and when.
    """
    supported, reason = supports_analytic(scenario)
    if not supported:
        raise AnalyticUnsupported(reason)
    executor, plan = _plan_for(scenario)
    run = AnalyticRun(
        scenario,
        cpu_starts_awake=executor.cpu_starts_awake,
        mcu_owns_sensing=executor.mcu_owns_sensing,
    )
    if plan.family == "interrupting":
        run_interrupting(run, plan.shared)
    elif plan.family == "cpu_polling":
        run_cpu_polling(run)
    elif plan.family == "buffered":
        run_buffered(run, plan)
    else:  # pragma: no cover - AnalyticPlan.FAMILIES is closed
        raise AnalyticUnsupported(f"unknown analytic family {plan.family!r}")
    end_time = max(run.last_activity, scenario.horizon_s)
    energy, busy = integrate(run.timelines(), end_time)
    missing = [
        app.name
        for app in scenario.apps
        if len(run.app_results[app.name]) != scenario.windows
    ]
    if missing:  # pragma: no cover - defensive parity with ctx.collect
        raise WorkloadError(
            f"scenario {scenario.name}: apps without complete "
            f"results: {missing}"
        )
    if obs is not None and obs.enabled:
        obs.span("analytic", scenario.scheme, 0.0, end_time)
        window_by_app = {
            app.name: app.profile.window_s for app in scenario.apps
        }
        for app_name, times in sorted(run.result_times.items()):
            window_s = window_by_app[app_name]
            for w, t in enumerate(times):
                obs.span("analytic", f"result:{app_name}", w * window_s, t)
    return RunResult(
        scenario_name=scenario.name,
        scheme=scenario.scheme,
        app_ids=[app.table2_id for app in scenario.apps],
        windows=scenario.windows,
        duration_s=end_time,
        energy=EnergyReport(
            duration_s=end_time,
            idle_floor_power_w=scenario.calibration.idle_hub_power_w,
            by_component_routine=energy,
        ),
        busy_times=busy,
        app_results=dict(run.app_results),
        result_times=dict(run.result_times),
        qos_violations=list(run.qos_violations),
        interrupt_count=run.interrupt_count,
        cpu_wake_count=run.cpu_wake_count,
        bus_bytes=run.bus_bytes,
        offload_reports=dict(plan.offload_reports),
        hub=None,
        fidelity="analytic",
    )
