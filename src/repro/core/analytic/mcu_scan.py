"""MCU-side stream scan: the closed-form counterpart of the poll loops.

Replays every stream's poll schedule at *operation* granularity: sensor
rails and the MCU core are FIFO resources granted in request-arrival
order (matching :class:`~repro.sim.resources.Resource`), so a stream
blocked in a long rail read never holds the core, and chains from
different streams interleave exactly as the kernel's processes do.  The
family models supply the per-sample and per-window core-op chains.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

from ...hw.mcu import McuState
from ...hw.power import Routine
from ..schemes.base import Stream
from .context import AnalyticRun


class McuOp:
    """One MCU-core operation of a stream's chain."""

    __slots__ = ("duration", "routine", "after_routine", "on_end")

    def __init__(
        self,
        duration: float,
        routine: str,
        after_routine: Optional[str] = None,
        on_end: Optional[Callable[[float], None]] = None,
    ):
        self.duration = duration
        self.routine = routine
        self.after_routine = after_routine
        self.on_end = on_end


class _Cursor:
    """Iteration state of one polling stream."""

    __slots__ = ("stream", "index", "w", "k", "pending", "in_handoff")

    def __init__(self, stream: Stream, index: int):
        self.stream = stream
        self.index = index
        self.w = 0
        self.k = 0
        self.pending: List[McuOp] = []
        self.in_handoff = False

    def target(self) -> float:
        return self.w * self.stream.window_s + self.k / self.stream.rate_hz

    def done(self, windows: int) -> bool:
        return self.w >= windows


def scan_streams(
    run: AnalyticRun,
    streams: List[Stream],
    sample_ops: Callable[[Stream, int, int], List[McuOp]],
    window_done: Optional[Callable[[Stream, int], List[McuOp]]] = None,
) -> None:
    """Drive every stream's poll schedule through the op chains.

    ``sample_ops(stream, w, k)`` returns the core ops that follow one
    rail read; ``window_done(stream, w)`` returns extra ops to run after
    a stream finishes a window's sample loop (the buffered hand-off —
    family closures own the per-app coordinator and return ``[]`` for
    non-final streams).  Op ``on_end`` callbacks fire at the op's end
    time in chronological grant order, which is where interrupt raises
    are recorded.
    """
    windows = run.scenario.windows
    cursors = [_Cursor(stream, i) for i, stream in enumerate(streams)]
    #: The MCU nap governor's per-stream "next scheduled poll" table.
    #: Entries appear the first time a stream actually waits (exactly
    #: like ``SchemeContext._mcu_next_polls``); a stream mid-chain keeps
    #: its stale (past) target, which blocks any sleep decision.
    next_polls = {}
    # Heap keys are (fire, scheduled, seq): ``scheduled`` is the instant
    # the kernel would have *inserted* the corresponding event — read
    # start for a read-end, execute start for an execute-end, chain end
    # for a poll timeout.  The kernel's queue breaks equal-fire ties by
    # insertion order, so two chains whose reads end at the same instant
    # are serviced in read-*start* order (the contended-rail loser, whose
    # read started later, queues behind) — not in poll-pop order.
    heap = []
    seq = 0
    # Kernel spawn order: every stream requests its first read at t=0
    # (or its first target) in list order.
    for cursor in cursors:
        if not cursor.done(windows):
            heapq.heappush(
                heap, (cursor.target(), 0.0, seq, "poll", cursor.index)
            )
            seq += 1
    while heap:
        t, _, _, kind, index = heapq.heappop(heap)
        cursor = cursors[index]
        if kind == "poll":
            read_start = max(t, run.rail_free[cursor.stream.sensor_id])
            read_end = run.rail_read(cursor.stream.sensor_id, t)
            cursor.pending = list(sample_ops(cursor.stream, cursor.w, cursor.k))
            heapq.heappush(heap, (read_end, read_start, seq, "op", index))
            seq += 1
            continue
        # One core op: FIFO grant at request-arrival order (= pop order).
        op = cursor.pending.pop(0)
        start = max(t, run.mcu_core_free)
        end = run.mcu_op(t, op.duration, op.routine, op.after_routine)
        if op.on_end is not None:
            op.on_end(end)
        if cursor.pending:
            heapq.heappush(heap, (end, start, seq, "op", index))
            seq += 1
            continue
        # Chain complete: window hand-off, then schedule the next poll.
        if cursor.in_handoff:
            cursor.in_handoff = False
        else:
            last_of_window = cursor.k == cursor.stream.samples_per_window - 1
            w = cursor.w
            cursor.k += 1
            if cursor.k >= cursor.stream.samples_per_window:
                cursor.k = 0
                cursor.w += 1
            if last_of_window and window_done is not None:
                extra = list(window_done(cursor.stream, w))
                if extra:
                    cursor.pending = extra
                    cursor.in_handoff = True
                    heapq.heappush(heap, (end, start, seq, "op", index))
                    seq += 1
                    continue
        if cursor.done(windows):
            next_polls.pop(index, None)
            continue
        target = cursor.target()
        if target > end:
            # The stream is about to wait: refresh its poll entry and
            # evaluate the nap governor at the pre-wait instant.
            next_polls[index] = target
            _maybe_sleep(run, end, next_polls)
            heapq.heappush(heap, (target, end, seq, "poll", index))
        else:
            # No wait: the process rolls straight from the execute-end
            # event (scheduled at the op's start) into the next read.
            heapq.heappush(heap, (end, start, seq, "poll", index))
        seq += 1


def _maybe_sleep(run: AnalyticRun, now: float, next_polls) -> None:
    """The MCU nap rule: light-sleep if every next poll is far enough."""
    if run.mcu.state != McuState.IDLE:
        return
    upcoming = min(next_polls.values(), default=now)
    if upcoming - now <= run.cal.mcu.sleep_threshold_s:
        return
    cal = run.cal.mcu
    run.mcu.set(now, McuState.SLEEP, cal.sleep_power_w, Routine.DATA_COLLECTION)
    # mcu_wake(): the earliest-waking stream brings the board back to
    # idle exactly at its poll target — unless a mid-sleep operation (a
    # rail read ending on another stream) woke the core first, in which
    # case the kernel's scheduled wake never fires.
    run.mcu.wake(
        upcoming, McuState.IDLE, cal.idle_power_w, Routine.DATA_COLLECTION
    )
