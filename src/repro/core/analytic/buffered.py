"""Closed-form model of the MCU-buffered family (batching / COM / BCOM).

MCU side: samples are decoded into RAM; the stream that completes an app
window last runs the hand-off — batching ships the buffer (interrupt +
bulk transfer), COM computes on the MCU and ships only the result.  CPU
side: the race-to-sleep governor replica decides rest states between
interrupts, mirroring :class:`~repro.hubos.governor.SleepGovernor`
decision for decision (including the wake bookkeeping that Figure 5b/5c
hinge on).
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Tuple

from ...apps.base import IoTApp
from ...errors import AnalyticUnsupported
from ...hw.cpu import CpuState
from ...hw.power import Routine
from ..schemes.base import AnalyticPlan, Stream, build_streams
from .context import AnalyticRun
from .mcu_scan import McuOp, scan_streams

#: One pending interrupt: (fire, vector, app, window, count, nbytes).
_Irq = Tuple[float, str, IoTApp, int, int, int]


class _Governor:
    """Replica of :class:`~repro.hubos.governor.SleepGovernor` decisions.

    Emits CPU timeline events instead of power-state transitions; the
    break-even thresholds and the deep-sleep gate are the same formulas.
    """

    def __init__(
        self,
        run: AnalyticRun,
        work_times: List[float],
        allow_deep: bool,
        rest_routine: str,
    ):
        self.run = run
        self.work = sorted(work_times)
        self.allow_deep = allow_deep
        self.rest_routine = rest_routine
        cal = run.cal.cpu
        delta = cal.idle_power_w - cal.sleep_power_w
        self.break_even = (
            cal.wake_energy_j / delta if delta > 0 else float("inf")
        )
        deep_delta = cal.sleep_power_w - cal.deep_sleep_power_w
        self.deep_break_even = (
            cal.transition_power_w * cal.deep_transition_time_s / deep_delta
            if deep_delta > 0
            else float("inf")
        )

    def rest(self, now: float) -> None:
        """Apply the governor at ``now`` (caller guarantees the core idles)."""
        run = self.run
        cal = run.cal.cpu
        index = bisect.bisect_right(self.work, now + 1e-12)
        if index >= len(self.work):
            if self.allow_deep:
                run.cpu.set(
                    now, CpuState.DEEP_SLEEP, cal.deep_sleep_power_w,
                    Routine.IDLE,
                )
            else:
                run.cpu.set(
                    now, CpuState.SLEEP, cal.sleep_power_w, self.rest_routine
                )
            return
        expected = max(0.0, self.work[index] - now)
        if self.allow_deep and expected > max(
            self.break_even, self.deep_break_even
        ):
            run.cpu.set(
                now, CpuState.DEEP_SLEEP, cal.deep_sleep_power_w,
                self.rest_routine,
            )
        elif expected > self.break_even:
            run.cpu.set(
                now, CpuState.SLEEP, cal.sleep_power_w, self.rest_routine
            )
        else:
            run.cpu.set(
                now, CpuState.IDLE, cal.idle_power_w, self.rest_routine
            )


class _ComputeProc:
    """One batch app's CPU compute loop: cursor + delivery times."""

    __slots__ = ("next_window", "delivered", "free")

    def __init__(self):
        self.next_window = 0
        self.delivered: Dict[int, float] = {}
        self.free = 0.0


class _AppBuffer:
    """Chronological RAM accounting of one batch app's buffer."""

    __slots__ = ("bytes", "count")

    def __init__(self):
        self.bytes = 0
        self.count = 0


def run_buffered(run: AnalyticRun, plan: AnalyticPlan) -> None:
    """Populate ``run`` with the batching/COM/BCOM schedule and energy."""
    scenario = run.scenario
    cal = run.cal
    irqs: List[_Irq] = []

    # Streams in DES spawn order: COM apps first, then batch apps; each
    # app's streams are per-app (unshared).
    streams: List[Stream] = []
    info: List[Tuple[IoTApp, bool]] = []  # (app, is_com) per stream
    for app in plan.com_apps:
        for stream in build_streams([app], shared=False):
            streams.append(stream)
            info.append((app, True))
    for app in plan.batch_apps:
        for stream in build_streams([app], shared=False):
            streams.append(stream)
            info.append((app, False))

    # MCU RAM ledger: COM footprints are resident for the whole run;
    # batch buffers grow per sample.  An overflow would make the DES drop
    # samples (CapacityError -> QoS violation), which the closed form
    # does not model — bail to the DES instead.
    capacity = cal.mcu.ram_bytes
    resident = sum(app.profile.mcu_footprint_bytes for app in plan.com_apps)
    if resident > capacity:
        raise AnalyticUnsupported(
            "COM footprints alone exceed MCU RAM; DES required"
        )
    buffers: Dict[str, _AppBuffer] = {
        app.name: _AppBuffer() for app in plan.batch_apps
    }
    coordinator: Dict[Tuple[str, int], int] = {}
    index_of = {id(stream): i for i, stream in enumerate(streams)}

    def sample_ops(stream: Stream, w: int, k: int) -> List[McuOp]:
        app, is_com = info[index_of[id(stream)]]

        def buffered(decoded: float) -> None:
            buffer = buffers[app.name]
            buffer.bytes += stream.sample_bytes
            buffer.count += 1
            if resident + sum(b.bytes for b in buffers.values()) > capacity:
                raise AnalyticUnsupported(
                    f"{app.name} batch buffer overflows MCU RAM; DES required"
                )

        return [
            McuOp(
                cal.mcu.decode_time_per_sample_s,
                Routine.DATA_COLLECTION,
                on_end=None if is_com else buffered,
            )
        ]

    def window_done(stream: Stream, w: int) -> List[McuOp]:
        app, is_com = info[index_of[id(stream)]]
        key = (app.name, w)
        coordinator[key] = coordinator.get(key, 0) + 1
        if coordinator[key] < len(app.profile.sensor_ids):
            return []

        def fire(vector: str, count: int, nbytes: int):
            def record(raised: float) -> None:
                run.interrupt_count += 1
                irqs.append((raised, vector, app, w, count, nbytes))

            return record

        if is_com:
            # com_handoff: offloaded compute, result interrupt, transfer.
            return [
                McuOp(
                    app.profile.mcu_compute_time_s(cal),
                    Routine.APP_COMPUTE,
                    after_routine=Routine.IDLE,
                ),
                McuOp(
                    cal.mcu.interrupt_raise_time_s,
                    Routine.INTERRUPT,
                    on_end=fire("result", 1, app.profile.output_bytes),
                ),
                McuOp(
                    cal.mcu.transfer_time_per_sample_s, Routine.DATA_TRANSFER
                ),
            ]
        # batch_handoff / ship_batch: drain the buffer synchronously
        # (concurrently polling streams start filling a fresh batch),
        # then interrupt + bulk put.
        buffer = buffers[app.name]
        nbytes = max(1, buffer.bytes)
        count = buffer.count
        buffer.bytes = 0
        buffer.count = 0
        return [
            McuOp(
                cal.mcu.interrupt_raise_time_s,
                Routine.INTERRUPT,
                on_end=fire("batch", count, nbytes),
            ),
            McuOp(
                cal.mcu.transfer_time_per_sample_s / 4.0 * max(1, count),
                Routine.DATA_TRANSFER,
            ),
        ]

    scan_streams(run, streams, sample_ops, window_done)
    _cpu_replay(run, plan, irqs)


def _cpu_replay(run: AnalyticRun, plan: AnalyticPlan, irqs: List[_Irq]) -> None:
    """Dispatcher + governor + compute replay over the interrupt list."""
    scenario = run.scenario
    cal = run.cal
    # spawn_buffered's governor knobs and CpuRestPolicy work times.
    work_times: List[float] = []
    for app in plan.com_apps:
        work_times.extend(
            (w + 1) * app.profile.window_s + app.profile.mcu_compute_time_s(cal)
            for w in range(scenario.windows)
        )
    for app in plan.batch_apps:
        work_times.extend(
            (w + 1) * app.profile.window_s for w in range(scenario.windows)
        )
    gov = _Governor(
        run,
        work_times,
        allow_deep=not plan.batch_apps,
        rest_routine=(
            Routine.IDLE if not plan.batch_apps else Routine.DATA_TRANSFER
        ),
    )
    procs = {app.name: _ComputeProc() for app in plan.batch_apps}
    # build_context's t=0 rest(): the governor's first decision.
    gov.rest(0.0)
    dispatcher_free = 0.0
    for i, (fire, vector, app, w, count, nbytes) in enumerate(irqs):
        next_fire = irqs[i + 1][0] if i + 1 < len(irqs) else None
        t = max(fire, dispatcher_free)
        if run.cpu_asleep:
            t = run.cpu_wake(t, Routine.INTERRUPT)
        service_end = run.cpu_op(
            t, cal.cpu.interrupt_handling_time_s, Routine.INTERRUPT
        )
        if vector == "batch":
            duration = (
                cal.cpu.bulk_transfer_time_per_sample_s * max(1, count)
                + run.wire_time(nbytes)
            )
        else:
            duration = cal.cpu.transfer_time_per_sample_s + run.wire_time(
                nbytes
            )
        run.bus_transfer(max(service_end, run.cpu_core_free), nbytes)
        transfer_end = run.cpu_op(service_end, duration, Routine.DATA_TRANSFER)
        if vector == "batch":
            proc = procs[app.name]
            proc.delivered[w] = transfer_end
            dispatcher_free = transfer_end
            starts_now = proc.next_window == w and proc.free <= transfer_end
            if not starts_now and run.cpu_core_free <= transfer_end and (
                next_fire is None or next_fire > transfer_end
            ):
                # pending_count == 0 and nothing holds the core: the
                # dispatcher rests before the compute continuation.
                gov.rest(transfer_end)
            _drain(run, gov, proc, app, next_fire)
        else:  # result
            run.record_result(app, w, transfer_end)
            send_end = run.nic_send(transfer_end, app.profile.output_bytes)
            dispatcher_free = send_end
            if run.cpu_core_free <= send_end and (
                next_fire is None or next_fire > send_end
            ):
                gov.rest(send_end)


def _drain(
    run: AnalyticRun,
    gov: _Governor,
    proc: _ComputeProc,
    app: IoTApp,
    next_fire: Optional[float],
) -> None:
    """Run the app's compute loop over every delivered-but-unrun window."""
    cal = run.cal
    while proc.next_window in proc.delivered:
        w = proc.next_window
        start = max(proc.delivered[w], proc.free)
        if run.cpu_asleep:
            start = run.cpu_wake(start, Routine.APP_COMPUTE)
        compute_end = run.cpu_op(
            start, app.profile.cpu_compute_time_s(cal), Routine.APP_COMPUTE
        )
        run.record_result(app, w, compute_end)
        send_end = run.nic_send(compute_end, app.profile.output_bytes)
        proc.free = send_end
        proc.next_window += 1
        if next_fire is None or next_fire > send_end:
            # Otherwise the next interrupt's service covers send_end and
            # the DES rest() is a busy no-op.
            gov.rest(send_end)
