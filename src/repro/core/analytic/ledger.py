"""Interval ledgers: power timelines without a power-state machine.

The DES records every :class:`~repro.hw.power.PowerStateMachine`
transition into a :class:`~repro.sim.trace.TimelineRecorder` and
integrates afterwards.  The analytic models know their operation
intervals up front, so a :class:`Timeline` here just collects
``(time, state, power, routine)`` change events, replays them in time
order and integrates piecewise — producing the same
``by_component_routine`` and busy-time accounting as the DES recorder.

Events may be emitted slightly out of order (the models interleave
per-process chains); the replay sorts by time with a stable insertion
sequence for ties, which matches the kernel's FIFO event ordering.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ...hw.power import BUSY_STATES, Routine

#: One state-change event: (time, seq, state, power_w, routine, mode).
#: ``mode`` is ``""`` for unconditional, ``"rest"`` for skipped-if-busy
#: (another process took the core meanwhile) and ``"wake"`` for
#: applied-only-if-still-sleeping (a mid-sleep operation may have woken
#: the component before its scheduled wake, in which case the kernel's
#: wake event never fires).
_Event = Tuple[float, int, str, float, Optional[str], str]

#: States a ``"wake"`` event can interrupt.
SLEEP_STATES = frozenset({"sleep", "deep_sleep"})


class Timeline:
    """Piecewise power/state/routine history of one component."""

    def __init__(
        self,
        component: str,
        state: str,
        power_w: float,
        routine: str = Routine.IDLE,
    ):
        self.component = component
        self._initial = (state, power_w, routine)
        self._events: List[_Event] = []
        self._seq = 0
        #: Procedural view of the *latest emitted* state, for models that
        #: need to know whether the component currently sleeps.  Only
        #: meaningful while events are emitted in time order.
        self.state = state
        self.routine = routine

    def set(
        self,
        t: float,
        state: str,
        power_w: float,
        routine: Optional[str] = None,
    ) -> None:
        """Enter ``state`` at ``t``; ``routine=None`` keeps the current tag."""
        self._events.append((t, self._seq, state, power_w, routine, ""))
        self._seq += 1
        self.state = state
        if routine is not None:
            self.routine = routine

    def rest(
        self,
        t: float,
        state: str,
        power_w: float,
        routine: Optional[str] = None,
    ) -> None:
        """Like :meth:`set`, but skipped at replay if the component is
        busy at ``t`` — the governor-off ``rest()`` semantics (another
        process may have started an operation in the meantime)."""
        self._events.append((t, self._seq, state, power_w, routine, "rest"))
        self._seq += 1

    def wake(
        self,
        t: float,
        state: str,
        power_w: float,
        routine: Optional[str] = None,
    ) -> None:
        """Like :meth:`set`, but applied at replay only while the
        component still sleeps at ``t`` — a scheduled wake that a
        mid-sleep operation (e.g. a rail read ending) may preempt."""
        self._events.append((t, self._seq, state, power_w, routine, "wake"))
        self._seq += 1
        self.state = state
        if routine is not None:
            self.routine = routine

    def segments(
        self, end_time: float
    ) -> Iterable[Tuple[float, float, str, float, str]]:
        """Replay events; yields ``(t0, t1, state, power_w, routine)``."""
        state, power, routine = self._initial
        since = 0.0
        for t, _, new_state, new_power, new_routine, mode in sorted(
            self._events
        ):
            if mode == "rest" and state == "busy":
                continue
            if mode == "wake" and state not in SLEEP_STATES:
                continue
            if t > end_time:
                break
            if t > since:
                yield (since, t, state, power, routine)
                since = t
            state, power = new_state, new_power
            if new_routine is not None:
                routine = new_routine
        if end_time > since:
            yield (since, end_time, state, power, routine)


def integrate(
    timelines: Iterable[Timeline], end_time: float
) -> Tuple[Dict[Tuple[str, str], float], Dict[str, float]]:
    """Integrate timelines into (energy by component/routine, busy times).

    Mirrors :meth:`repro.energy.meter.PowerMonitor.measure` and
    :func:`repro.core.results.routine_busy_times` over the analytic
    interval set.
    """
    energy: Dict[Tuple[str, str], float] = {}
    busy: Dict[str, float] = {routine: 0.0 for routine in Routine.ORDER}
    for timeline in timelines:
        for t0, t1, state, power, routine in timeline.segments(end_time):
            key = (timeline.component, routine)
            energy[key] = energy.get(key, 0.0) + power * (t1 - t0)
            if state in BUSY_STATES:
                busy[routine] = busy.get(routine, 0.0) + (t1 - t0)
    return energy, busy
