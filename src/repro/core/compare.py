"""Scheme comparison helpers used by the benchmarks and examples."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..calibration import Calibration
from .executor import run_apps
from .results import RunResult
from .scenario import Scheme


def compare_schemes(
    app_ids: Sequence[str],
    schemes: Sequence[str],
    windows: int = 1,
    calibration: Optional[Calibration] = None,
    waveforms=None,
) -> Dict[str, RunResult]:
    """Run the same apps under several schemes; returns results by scheme.

    Each scheme gets fresh app instances and a fresh hub, so state never
    leaks between runs.
    """
    return {
        scheme: run_apps(
            app_ids,
            scheme,
            windows=windows,
            calibration=calibration,
            waveforms=waveforms,
        )
        for scheme in schemes
    }


def savings_table(
    results: Dict[str, RunResult], baseline_key: str = Scheme.BASELINE
) -> Dict[str, float]:
    """Fractional marginal-energy savings per scheme vs the baseline."""
    baseline = results[baseline_key]
    return {
        scheme: result.energy.savings_vs(baseline.energy)
        for scheme, result in results.items()
        if scheme != baseline_key
    }


def average_savings(
    per_app_results: Dict[str, Dict[str, RunResult]],
    scheme: str,
    baseline_key: str = Scheme.BASELINE,
) -> float:
    """Mean savings of ``scheme`` across per-app comparison dicts."""
    savings: List[float] = []
    for results in per_app_results.values():
        baseline = results[baseline_key]
        savings.append(results[scheme].energy.savings_vs(baseline.energy))
    if not savings:
        return 0.0
    return sum(savings) / len(savings)
