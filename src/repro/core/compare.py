"""Scheme comparison helpers used by the benchmarks and examples."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..calibration import Calibration
from .engine import ScenarioEngine
from .results import RunResult
from .scenario import Scenario, Scheme


def compare_schemes(
    app_ids: Sequence[str],
    schemes: Sequence[str],
    windows: int = 1,
    calibration: Optional[Calibration] = None,
    waveforms=None,
    engine: Optional[ScenarioEngine] = None,
    workers: int = 1,
    cache_dir=None,
) -> Dict[str, RunResult]:
    """Run the same apps under several schemes; returns results by scheme.

    Each scheme gets fresh app instances and a fresh hub, so state never
    leaks between runs.  ``workers``/``cache_dir`` (or a pre-built
    ``engine``) route the runs through the
    :class:`~repro.core.engine.ScenarioEngine` for parallel fan-out and
    fingerprint caching.
    """
    engine = engine or ScenarioEngine(workers=workers, cache_dir=cache_dir)
    scenarios = [
        Scenario.of(
            app_ids,
            scheme=scheme,
            windows=windows,
            calibration=calibration,
            waveforms=waveforms,
        )
        for scheme in schemes
    ]
    return dict(zip(schemes, engine.run_many(scenarios)))


def savings_table(
    results: Dict[str, RunResult], baseline_key: str = Scheme.BASELINE
) -> Dict[str, float]:
    """Fractional marginal-energy savings per scheme vs the baseline."""
    baseline = results[baseline_key]
    return {
        scheme: result.energy.savings_vs(baseline.energy)
        for scheme, result in results.items()
        if scheme != baseline_key
    }


def average_savings(
    per_app_results: Dict[str, Dict[str, RunResult]],
    scheme: str,
    baseline_key: str = Scheme.BASELINE,
) -> float:
    """Mean savings of ``scheme`` across per-app comparison dicts."""
    savings: List[float] = []
    for results in per_app_results.values():
        baseline = results[baseline_key]
        savings.append(results[scheme].energy.savings_vs(baseline.energy))
    if not savings:
        return 0.0
    return sum(savings) / len(savings)
