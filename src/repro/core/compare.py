"""Scheme comparison helpers used by the benchmarks and examples."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..calibration import Calibration
from .engine import ScenarioEngine
from .results import RunResult
from .scenario import Scenario, Scheme


def compare_grid(
    app_sets: Sequence[Sequence[str]],
    schemes: Sequence[str],
    windows: int = 1,
    calibration: Optional[Calibration] = None,
    waveforms: Optional[Dict[str, Any]] = None,
    engine: Optional[ScenarioEngine] = None,
    workers: int = 1,
    cache_dir: Optional[Any] = None,
    backend: Optional[str] = None,
    backend_hosts: Optional[Sequence[str]] = None,
    fidelity: Optional[str] = None,
) -> Dict[Tuple[str, ...], Dict[str, RunResult]]:
    """Run every app set under every scheme through ONE engine batch.

    The whole ``app_sets x schemes`` grid goes through a single
    :meth:`~repro.core.engine.ScenarioEngine.run_batch` call, so one
    execution backend, one memory cache and one dedup pass serve the
    entire comparison — instead of a fresh engine (and worker spawn)
    per scheme.  ``backend``/``backend_hosts`` choose where the grid
    executes (results are bit-identical across backends).  ``fidelity``
    overrides the engine's tier for this grid (``"auto"`` is a natural
    fit here: the batch holds every scheme of each app set, so the
    planner confirms exactly the per-set frontier).  Returns
    ``{tuple(app_ids): {scheme: result}}`` in input order.
    """
    owns_engine = engine is None
    engine = engine or ScenarioEngine(
        workers=workers,
        cache_dir=cache_dir,
        backend=backend,
        backend_hosts=backend_hosts,
    )
    keys = [tuple(app_ids) for app_ids in app_sets]
    scenarios = [
        Scenario.of(
            list(key),
            scheme=scheme,
            windows=windows,
            calibration=calibration,
            waveforms=waveforms,
        )
        for key in keys
        for scheme in schemes
    ]
    try:
        results = engine.run_many(scenarios, fidelity=fidelity)
    finally:
        if owns_engine:
            # Only close pools we spawned; a shared engine stays warm.
            engine.close()
    grid: Dict[Tuple[str, ...], Dict[str, RunResult]] = {}
    cursor = 0
    for key in keys:
        grid[key] = {}
        for scheme in schemes:
            grid[key][scheme] = results[cursor]
            cursor += 1
    return grid


def compare_schemes(
    app_ids: Sequence[str],
    schemes: Sequence[str],
    windows: int = 1,
    calibration: Optional[Calibration] = None,
    waveforms=None,
    engine: Optional[ScenarioEngine] = None,
    workers: int = 1,
    cache_dir=None,
    backend: Optional[str] = None,
    backend_hosts: Optional[Sequence[str]] = None,
    fidelity: Optional[str] = None,
) -> Dict[str, RunResult]:
    """Run the same apps under several schemes; returns results by scheme.

    Each scheme gets fresh app instances and a fresh hub, so state never
    leaks between runs.  ``workers``/``cache_dir`` (or a pre-built
    ``engine``) route the runs through the
    :class:`~repro.core.engine.ScenarioEngine` for parallel fan-out and
    fingerprint caching.  This is :func:`compare_grid` for one app set.
    """
    grid = compare_grid(
        [list(app_ids)],
        schemes,
        windows=windows,
        calibration=calibration,
        waveforms=waveforms,
        engine=engine,
        workers=workers,
        cache_dir=cache_dir,
        backend=backend,
        backend_hosts=backend_hosts,
        fidelity=fidelity,
    )
    return grid[tuple(app_ids)]


def savings_table(
    results: Dict[str, RunResult], baseline_key: str = Scheme.BASELINE
) -> Dict[str, float]:
    """Fractional marginal-energy savings per scheme vs the baseline."""
    baseline = results[baseline_key]
    return {
        scheme: result.energy.savings_vs(baseline.energy)
        for scheme, result in results.items()
        if scheme != baseline_key
    }


def average_savings(
    per_app_results: Dict[str, Dict[str, RunResult]],
    scheme: str,
    baseline_key: str = Scheme.BASELINE,
) -> float:
    """Mean savings of ``scheme`` across per-app comparison dicts."""
    savings: List[float] = []
    for results in per_app_results.values():
        baseline = results[baseline_key]
        savings.append(results[scheme].energy.savings_vs(baseline.energy))
    if not savings:
        return 0.0
    return sum(savings) / len(savings)
