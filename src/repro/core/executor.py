"""Scenario execution entry points.

The scheme implementations live in :mod:`repro.core.schemes` (one module
per §III subsection, found through the scheme registry); this module
keeps the historical convenience API on top of them.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..obs.recorder import NullRecorder
from .results import RunResult
from .scenario import Scenario
from .schemes.base import SchemeContext, execute_scenario
from .schemes.registry import get_scheme


class ScenarioRunner:
    """Executes one :class:`Scenario` and produces a :class:`RunResult`.

    Thin façade over the scheme plugins, kept for backwards
    compatibility; new code can call :func:`run_scenario` directly or go
    through :class:`~repro.core.engine.ScenarioEngine` for caching and
    parallel fan-out.
    """

    def __init__(
        self, scenario: Scenario, obs: Optional[NullRecorder] = None
    ):
        self.scenario = scenario
        self.executor = get_scheme(scenario.scheme)()
        self.ctx = SchemeContext(
            scenario, cpu_starts_awake=self.executor.cpu_starts_awake, obs=obs
        )

    @property
    def hub(self):
        """The scenario's fresh hub (built at construction time)."""
        return self.ctx.hub

    def run(self) -> RunResult:
        """Execute the scenario to completion."""
        from ..hw.power import Routine

        ctx, executor = self.ctx, self.executor
        executor.build(ctx)
        if executor.mcu_owns_sensing:
            ctx.hub.mcu.set_idle(Routine.DATA_COLLECTION)
        ctx.rest()
        ctx.hub.run()
        end_time = max(ctx.hub.sim.now, self.scenario.horizon_s)
        return ctx.collect(end_time)


def run_scenario(
    scenario: Scenario,
    obs: Optional[NullRecorder] = None,
    fast_forward: bool = False,
) -> RunResult:
    """Execute one scenario under its registered scheme.

    ``fast_forward=True`` enables steady-state cycle skipping (see
    :mod:`repro.core.fastforward`); results then match full simulation
    at rtol 1e-9 with exact counters rather than bit-identically.
    """
    return execute_scenario(scenario, obs=obs, fast_forward=fast_forward)


def run_apps(
    app_ids: Sequence[str],
    scheme: str,
    windows: int = 1,
    calibration=None,
    waveforms=None,
    obs: Optional[NullRecorder] = None,
    fast_forward: bool = False,
) -> RunResult:
    """Run Table II apps by id under one scheme."""
    return run_scenario(
        Scenario.of(
            app_ids,
            scheme=scheme,
            windows=windows,
            calibration=calibration,
            waveforms=waveforms,
        ),
        obs=obs,
        fast_forward=fast_forward,
    )
