"""The scenario executor: runs apps on the simulated hub under a scheme.

One :class:`ScenarioRunner` builds a fresh :class:`~repro.hw.board.IoTHub`,
attaches the union of sensors, spawns the scheme's MCU/CPU processes, runs
the discrete-event simulation to completion and integrates the energy.

Scheme structure (one subsection of §III each):

* **baseline** — per (app, sensor) polling streams on the MCU; one
  interrupt and one per-sample CPU transfer per reading; the window
  computation runs on the CPU.
* **batching** — the same streams buffer into MCU RAM; one interrupt and
  one bulk transfer per (app, window); CPU computation unchanged.
* **com** — streams buffer on the MCU, the computation runs *on the MCU*,
  and only the result crosses to the CPU.
* **beam** — baseline, but apps sharing a sensor share one polling stream
  and one transfer per sample (Shen et al., ATC'16).
* **bcom** — offloadable apps run under com; heavy apps under batching.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..apps.base import AppResult, IoTApp, SampleWindow
from ..errors import CapacityError, OffloadError, WorkloadError
from ..firmware.batching import BatchBuffer
from ..firmware.capability import check_offloadable
from ..firmware.driver import mcu_transfer_busy, raise_interrupt, read_and_decode
from ..firmware.runtime import run_offloaded_compute
from ..hubos.governor import CpuRestPolicy, SleepGovernor
from ..hubos.interrupts import service_interrupt
from ..hubos.transfer import cpu_transfer
from ..hw.mcu import McuState
from ..hw.power import Routine
from ..sensors.base import SensorDevice
from ..sim.process import Delay, Signal, Wait
from .results import RunResult, routine_busy_times
from .scenario import Scenario, Scheme
from ..hw.board import IoTHub


@dataclass
class _Stream:
    """One MCU polling stream: a sensor feeding one or more apps.

    Under BEAM, subscribers with slower QoS rates receive a decimated
    view of the shared stream: ``strides[app]`` is how many raw samples
    separate two deliveries to that app.
    """

    sensor_id: str
    subscribers: List[IoTApp]
    rate_hz: float
    window_s: float
    samples_per_window: int
    sample_bytes: int
    strides: Dict[str, int] = field(default_factory=dict)

    def stride(self, app: IoTApp) -> int:
        """Delivery stride for one subscriber (1 = every sample)."""
        return self.strides.get(app.name, 1)

    @property
    def key(self) -> str:
        apps = "+".join(app.name for app in self.subscribers)
        return f"{self.sensor_id}@{apps}"


@dataclass
class _WindowState:
    """Collection progress of one (app, window).

    ``complete`` means every expected sample has been *collected*;
    ``delivered`` means the CPU has received the data (post-transfer) and
    the window computation may start.
    """

    window: SampleWindow
    expected: Dict[str, int]
    signal: Signal
    complete: bool = False
    delivered: bool = False
    deadline_s: float = 0.0

    def register(self, sample) -> bool:
        """Add a sample; returns True when the window just completed."""
        self.window.add(sample)
        if self.complete:
            return False
        for sensor_id, needed in self.expected.items():
            if self.window.count(sensor_id) < needed:
                return False
        self.complete = True
        return True

    def deliver(self) -> None:
        """Mark the window CPU-visible and wake its compute process."""
        self.delivered = True
        self.signal.fire(self.window.window_index)


class ScenarioRunner:
    """Executes one :class:`Scenario` and produces a :class:`RunResult`."""

    def __init__(self, scenario: Scenario):
        self.scenario = scenario
        self.cal = scenario.calibration
        # Governor-less schemes keep the CPU online from the start.
        from ..hw.cpu import CpuState

        initial_cpu = (
            CpuState.IDLE
            if scenario.scheme in (Scheme.POLLING, Scheme.BASELINE, Scheme.BEAM)
            else CpuState.DEEP_SLEEP
        )
        self.hub = IoTHub(self.cal, cpu_initial_state=initial_cpu)
        self.governor = SleepGovernor(self.hub.cpu)
        self.devices: Dict[str, SensorDevice] = {}
        for sensor_id in scenario.sensor_ids:
            waveform = scenario.waveforms.get(sensor_id)
            self.devices[sensor_id] = SensorDevice.attach(
                self.hub,
                sensor_id,
                waveform,
                failure_rate=scenario.sensor_failure_rates.get(sensor_id, 0.0),
            )
        self._windows: Dict[Tuple[str, int], _WindowState] = {}
        self._app_results: Dict[str, List[AppResult]] = {
            app.name: [] for app in scenario.apps
        }
        self._result_times: Dict[str, List[float]] = {
            app.name: [] for app in scenario.apps
        }
        self._qos_violations: List[str] = []
        self._offload_reports = {}
        self._policy = CpuRestPolicy([])
        self._allow_deep = False
        self._rest_routine = Routine.DATA_TRANSFER
        #: Next scheduled poll per stream key — the MCU's own nap governor.
        self._mcu_next_polls: Dict[str, float] = {}
        # The paper's baseline never sleeps (Fig. 5a: "the CPU is in
        # active mode all the time"); race-to-sleep is part of the
        # optimized schemes, so only those enable the governor.
        self._use_governor = True
        self._total_irqs = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        """Execute the scenario to completion."""
        builder = {
            Scheme.POLLING: self._build_polling,
            Scheme.BASELINE: self._build_baseline,
            Scheme.BATCHING: self._build_batching,
            Scheme.COM: self._build_com,
            Scheme.BEAM: self._build_beam,
            Scheme.BCOM: self._build_bcom,
        }[self.scenario.scheme]
        builder()
        if self.scenario.scheme != Scheme.POLLING:
            # The MCU board is awake whenever it owns the sensing; under
            # main-board polling it never leaves sleep.
            self.hub.mcu.set_idle(Routine.DATA_COLLECTION)
        self._rest()
        self.hub.run()
        end_time = max(self.hub.sim.now, self.scenario.horizon_s)
        return self._collect(end_time)

    # ------------------------------------------------------------------
    # shared plumbing
    # ------------------------------------------------------------------
    def _rest(self) -> None:
        """Apply the governor with the scheme's schedule knowledge."""
        if not self._use_governor:
            if self.hub.cpu.psm.state != "busy" and not self.hub.cpu.asleep:
                self.hub.cpu.set_idle(self._rest_routine)
            return
        expected = self._policy.expected_idle(self.hub.sim.now)
        self.governor.rest(
            expected,
            wait_routine=self._rest_routine,
            allow_deep=self._allow_deep,
        )

    def _mcu_rest(self, stream_key: str, next_poll: float) -> None:
        """Let the MCU light-sleep if every stream's next poll is far off."""
        self._mcu_next_polls[stream_key] = next_poll
        if self.hub.mcu.psm.state != McuState.IDLE:
            return
        now = self.hub.sim.now
        upcoming = min(self._mcu_next_polls.values(), default=now)
        if upcoming - now > self.cal.mcu.sleep_threshold_s:
            self.hub.mcu.enter_sleep(Routine.DATA_COLLECTION)

    def _mcu_wake(self) -> None:
        """Bring the MCU back online for a poll."""
        if self.hub.mcu.psm.state == McuState.SLEEP:
            self.hub.mcu.set_idle(Routine.DATA_COLLECTION)

    def _window_state(self, app: IoTApp, index: int) -> _WindowState:
        key = (app.name, index)
        if key not in self._windows:
            start = index * app.profile.window_s
            sources = {
                sensor_id: self.devices[sensor_id].waveform
                for sensor_id in app.profile.sensor_ids
            }
            # Heavy apps are soft real-time (converting 1 s of audio takes
            # longer than 1 s); light apps must deliver within one extra
            # window.
            deadline = (
                float("inf")
                if app.profile.heavy
                else start + 2.0 * app.profile.window_s
            )
            state = _WindowState(
                window=app.build_window(index, start, sources=sources),
                expected={
                    sensor_id: app.profile.samples_per_window(sensor_id)
                    for sensor_id in app.profile.sensor_ids
                },
                signal=Signal(f"{app.name}.w{index}"),
                deadline_s=deadline,
            )
            self._windows[key] = state
        return self._windows[key]

    def _record_result(self, app: IoTApp, result: AppResult) -> None:
        now = self.hub.sim.now
        self._app_results[app.name].append(result)
        self._result_times[app.name].append(now)
        state = self._window_state(app, result.window_index)
        if now > state.deadline_s + 1e-9:
            self._qos_violations.append(
                f"{app.name} window {result.window_index}: result at "
                f"{now * 1e3:.1f} ms, deadline {state.deadline_s * 1e3:.1f} ms"
            )

    def _streams_for(
        self, apps: Sequence[IoTApp], shared: bool
    ) -> List[_Stream]:
        """Build polling streams: per-app or shared-per-sensor (BEAM)."""
        if not shared:
            return [
                _Stream(
                    sensor_id=sensor_id,
                    subscribers=[app],
                    rate_hz=app.profile.rate_hz(sensor_id),
                    window_s=app.profile.window_s,
                    samples_per_window=app.profile.samples_per_window(sensor_id),
                    sample_bytes=app.profile.sample_bytes(sensor_id),
                )
                for app in apps
                for sensor_id in app.profile.sensor_ids
            ]
        by_sensor: Dict[str, List[IoTApp]] = {}
        for app in apps:
            for sensor_id in app.profile.sensor_ids:
                by_sensor.setdefault(sensor_id, []).append(app)
        streams = []
        for sensor_id, subscribers in by_sensor.items():
            windows = {app.profile.window_s for app in subscribers}
            if len(windows) > 1:
                raise WorkloadError(
                    f"BEAM cannot share {sensor_id}: subscribers disagree "
                    f"on window length"
                )
            # Poll at the fastest subscriber's rate; slower subscribers
            # get a decimated view (their rate must divide the fastest).
            fastest = max(app.profile.rate_hz(sensor_id) for app in subscribers)
            strides: Dict[str, int] = {}
            for app in subscribers:
                ratio = fastest / app.profile.rate_hz(sensor_id)
                stride = int(round(ratio))
                if abs(ratio - stride) > 1e-9 or stride < 1:
                    raise WorkloadError(
                        f"BEAM cannot share {sensor_id}: {app.name}'s rate "
                        f"does not divide the fastest subscriber's"
                    )
                strides[app.name] = stride
            reference = max(
                subscribers, key=lambda app: app.profile.rate_hz(sensor_id)
            )
            streams.append(
                _Stream(
                    sensor_id=sensor_id,
                    subscribers=list(subscribers),
                    rate_hz=fastest,
                    window_s=reference.profile.window_s,
                    samples_per_window=reference.profile.samples_per_window(
                        sensor_id
                    ),
                    sample_bytes=max(
                        app.profile.sample_bytes(sensor_id) for app in subscribers
                    ),
                    strides=strides,
                )
            )
        return streams

    # ------------------------------------------------------------------
    # MCU-side processes
    # ------------------------------------------------------------------
    def _poll_stream_interrupting(self, stream: _Stream):
        """Baseline/BEAM: poll and interrupt the CPU per sample."""
        device = self.devices[stream.sensor_id]
        for window_index in range(self.scenario.windows):
            window_start = window_index * stream.window_s
            for k in range(stream.samples_per_window):
                target = window_start + k / stream.rate_hz
                now = self.hub.sim.now
                if target > now:
                    self._mcu_rest(stream.key, target)
                    yield Delay(target - now)
                self._mcu_wake()
                sample = yield from read_and_decode(self.hub, device)
                yield from raise_interrupt(
                    self.hub, "sample", (stream, window_index, k, sample)
                )
                yield from mcu_transfer_busy(self.hub, 1, bulk=False)
        self._mcu_next_polls.pop(stream.key, None)

    def _poll_stream_buffering(
        self,
        stream: _Stream,
        app: IoTApp,
        coordinator: Dict[int, int],
        buffer: BatchBuffer,
        on_window_full,
    ):
        """Batching/COM: poll into MCU RAM; last stream triggers hand-off.

        ``buffer`` is shared among the app's streams; ``coordinator``
        counts completed streams per window, and whichever stream finishes
        an app window last invokes the ``on_window_full(window_index,
        buffer)`` generator.
        """
        device = self.devices[stream.sensor_id]
        stream_count = len(app.profile.sensor_ids)
        for window_index in range(self.scenario.windows):
            window_start = window_index * stream.window_s
            for k in range(stream.samples_per_window):
                target = window_start + k / stream.rate_hz
                now = self.hub.sim.now
                if target > now:
                    self._mcu_rest(stream.key, target)
                    yield Delay(target - now)
                self._mcu_wake()
                sample = yield from read_and_decode(self.hub, device)
                if buffer is not None:
                    try:
                        buffer.add(sample, stream.sample_bytes)
                    except CapacityError as exc:
                        self._qos_violations.append(str(exc))
                state = self._window_state(app, window_index)
                state.register(sample)
                if (
                    buffer is not None
                    and self.scenario.batch_size is not None
                    and buffer.sample_count >= self.scenario.batch_size
                    and not state.complete
                ):
                    # Partial flush: ship the accumulated batch early.
                    yield from self._ship_batch(
                        app, window_index, buffer, final=False
                    )
            coordinator[window_index] = coordinator.get(window_index, 0) + 1
            if coordinator[window_index] == stream_count:
                yield from on_window_full(window_index, buffer)
        self._mcu_next_polls.pop(stream.key, None)

    def _ship_batch(
        self, app: IoTApp, window_index: int, buffer: BatchBuffer, final: bool
    ):
        """MCU side of one batch hand-off (interrupt + bulk put).

        The buffer is drained synchronously here so concurrently polling
        streams start filling a fresh batch; its RAM is released once the
        payload is on the bus.
        """
        nbytes = max(1, buffer.buffered_bytes)
        samples = buffer.flush()
        count = len(samples)
        yield from raise_interrupt(
            self.hub, "batch", (app, window_index, count, nbytes, final)
        )
        yield from mcu_transfer_busy(self.hub, max(1, count), bulk=True)

    def _batch_handoff(self, app: IoTApp):
        """Make the batching hand-off generator for one app."""

        def handoff(window_index: int, buffer: BatchBuffer):
            yield from self._ship_batch(app, window_index, buffer, final=True)

        return handoff

    def _com_handoff(self, app: IoTApp):
        """Make the COM hand-off: compute on MCU, ship only the result."""

        def handoff(window_index: int, buffer):
            state = self._window_state(app, window_index)
            result = yield from run_offloaded_compute(
                self.hub, app, state.window
            )
            yield from raise_interrupt(
                self.hub, "result", (app, window_index, result)
            )
            yield from mcu_transfer_busy(self.hub, 1, bulk=False)

        return handoff

    # ------------------------------------------------------------------
    # CPU-side processes
    # ------------------------------------------------------------------
    def _dispatcher(self):
        """The CPU's interrupt service loop (one process for the hub).

        Runs until the simulation drains: blocking on the interrupt signal
        schedules no events, so the kernel terminates naturally once all
        device activity is over.
        """
        while True:
            request = yield from self.hub.irq.wait()
            yield from service_interrupt(self.hub)
            if request.vector == "sample":
                stream, window_index, k, sample = request.payload
                yield from cpu_transfer(
                    self.hub, stream.sample_bytes, 1, bulk=False
                )
                for app in stream.subscribers:
                    if k % stream.stride(app) != 0:
                        continue  # decimated subscriber skips this sample
                    state = self._window_state(app, window_index)
                    if state.register(sample):
                        state.deliver()
            elif request.vector == "batch":
                app, window_index, count, nbytes, final = request.payload
                yield from cpu_transfer(
                    self.hub, nbytes, max(1, count), bulk=True
                )
                if final:
                    state = self._window_state(app, window_index)
                    if not state.complete:
                        raise WorkloadError(
                            f"{app.name} batch window {window_index} incomplete"
                        )
                    state.deliver()
            elif request.vector == "result":
                app, window_index, result = request.payload
                yield from cpu_transfer(
                    self.hub, app.profile.output_bytes, 1, bulk=False
                )
                self._record_result(app, result)
                yield from self.hub.nic.send(
                    app.profile.output_bytes, Routine.APP_COMPUTE
                )
            else:  # pragma: no cover - defensive
                raise WorkloadError(f"unknown vector {request.vector!r}")
            if self.hub.irq.pending_count == 0:
                self._rest()

    def _cpu_compute_process(self, app: IoTApp):
        """Window computation on the CPU (baseline/batching/beam)."""
        for window_index in range(self.scenario.windows):
            state = self._window_state(app, window_index)
            if not state.delivered:
                yield Wait(state.signal)
            if self.hub.cpu.asleep:
                yield from self.hub.cpu.wake(Routine.APP_COMPUTE)
            yield from self.hub.cpu.core.acquire()
            result = app.compute(state.window)
            yield from self.hub.cpu.execute(
                app.profile.cpu_compute_time_s(self.cal),
                Routine.APP_COMPUTE,
                instructions=app.profile.instructions,
            )
            self.hub.cpu.core.release()
            self._record_result(app, result)
            yield from self.hub.nic.send(
                app.profile.output_bytes, Routine.APP_COMPUTE
            )
            self._rest()

    # ------------------------------------------------------------------
    # scheme builders
    # ------------------------------------------------------------------
    def _sample_times(self, streams: Sequence[_Stream]) -> List[float]:
        times: List[float] = []
        for stream in streams:
            for window_index in range(self.scenario.windows):
                start = window_index * stream.window_s
                times.extend(
                    start + k / stream.rate_hz
                    for k in range(stream.samples_per_window)
                )
        return times

    def _window_boundaries(self, apps: Sequence[IoTApp]) -> List[float]:
        return [
            (window_index + 1) * app.profile.window_s
            for app in apps
            for window_index in range(self.scenario.windows)
        ]

    def _poll_stream_cpu(self, stream: _Stream):
        """§II-A main-board polling: the CPU blocks on each read."""
        from ..hubos.polling import cpu_blocking_read

        device = self.devices[stream.sensor_id]
        for window_index in range(self.scenario.windows):
            window_start = window_index * stream.window_s
            for k in range(stream.samples_per_window):
                target = window_start + k / stream.rate_hz
                now = self.hub.sim.now
                if target > now:
                    yield Delay(target - now)
                sample = yield from cpu_blocking_read(self.hub, device)
                for app in stream.subscribers:
                    state = self._window_state(app, window_index)
                    if state.register(sample):
                        state.deliver()

    def _build_polling(self) -> None:
        """Sensors on the main board; the MCU stays asleep throughout."""
        apps = self.scenario.apps
        streams = self._streams_for(apps, shared=False)
        self._policy = CpuRestPolicy(
            self._sample_times(streams) + self._window_boundaries(apps)
        )
        self._allow_deep = False
        self._use_governor = False
        for stream in streams:
            self.hub.sim.spawn(
                self._poll_stream_cpu(stream), name=f"cpupoll:{stream.key}"
            )
        for app in apps:
            self.hub.sim.spawn(
                self._cpu_compute_process(app), name=f"compute:{app.name}"
            )

    def _build_baseline(self) -> None:
        self._build_interrupting(shared=False)

    def _build_beam(self) -> None:
        self._build_interrupting(shared=True)

    def _build_interrupting(self, shared: bool) -> None:
        apps = self.scenario.apps
        streams = self._streams_for(apps, shared=shared)
        total = sum(
            stream.samples_per_window * self.scenario.windows
            for stream in streams
        )
        self._total_irqs = total
        self._policy = CpuRestPolicy(
            self._sample_times(streams) + self._window_boundaries(apps)
        )
        self._allow_deep = False
        self._use_governor = False
        for stream in streams:
            self.hub.sim.spawn(
                self._poll_stream_interrupting(stream),
                name=f"poll:{stream.key}",
            )
        self.hub.sim.spawn(self._dispatcher(), name="dispatcher")
        for app in apps:
            self.hub.sim.spawn(
                self._cpu_compute_process(app), name=f"compute:{app.name}"
            )

    def _build_batching(self) -> None:
        self._build_buffered(
            com_apps=[], batch_apps=list(self.scenario.apps)
        )

    def _build_com(self) -> None:
        for app in self.scenario.apps:
            report = check_offloadable(app, self.cal)
            self._offload_reports[app.name] = report
            if not report:
                raise OffloadError(
                    f"{app.name} cannot be offloaded: {'; '.join(report.reasons)}"
                )
        self._build_buffered(
            com_apps=list(self.scenario.apps), batch_apps=[]
        )

    def _build_bcom(self) -> None:
        from ..firmware.capability import OffloadReport

        com_apps: List[IoTApp] = []
        batch_apps: List[IoTApp] = []
        candidates: List[IoTApp] = []
        for app in self.scenario.apps:
            report = check_offloadable(app, self.cal)
            self._offload_reports[app.name] = report
            (candidates if report else batch_apps).append(app)
        # Greedy pack: smallest footprints first maximizes the number of
        # apps that escape the CPU; the rest fall back to Batching.
        budget = self.hub.mcu.ram.free_bytes
        for app in sorted(candidates, key=lambda a: a.profile.mcu_footprint_bytes):
            footprint = app.profile.mcu_footprint_bytes
            if footprint <= budget:
                budget -= footprint
                com_apps.append(app)
            else:
                batch_apps.append(app)
                self._offload_reports[app.name] = OffloadReport(
                    app_name=app.name,
                    offloadable=False,
                    reasons=[
                        "MCU RAM contention: other offloaded apps already "
                        "occupy the remaining capacity"
                    ],
                    mcu_compute_time_s=app.profile.mcu_compute_time_s(self.cal),
                    required_ram_bytes=footprint,
                )
        self._build_buffered(com_apps=com_apps, batch_apps=batch_apps)

    def _build_buffered(
        self, com_apps: List[IoTApp], batch_apps: List[IoTApp]
    ) -> None:
        """Shared builder for batching / com / bcom."""
        events = 0
        work_times: List[float] = []
        for app in com_apps:
            # Reserve the offloaded build (code/heap + stream ring) on the
            # MCU for the whole run; samples stream through the ring, so no
            # per-sample batch allocation happens for COM apps.
            self.hub.mcu.ram.allocate(
                f"app:{app.name}", app.profile.mcu_footprint_bytes
            )
            coordinator: Dict[int, int] = {}
            handoff = self._com_handoff(app)
            for stream in self._streams_for([app], shared=False):
                self.hub.sim.spawn(
                    self._poll_stream_buffering(
                        stream, app, coordinator, None, handoff
                    ),
                    name=f"com:{stream.key}",
                )
            events += self.scenario.windows
            work_times.extend(
                (w + 1) * app.profile.window_s
                + app.profile.mcu_compute_time_s(self.cal)
                for w in range(self.scenario.windows)
            )
        for app in batch_apps:
            coordinator = {}
            buffer = BatchBuffer(self.hub.mcu.ram, f"batch:{app.name}")
            handoff = self._batch_handoff(app)
            for stream in self._streams_for([app], shared=False):
                self.hub.sim.spawn(
                    self._poll_stream_buffering(
                        stream, app, coordinator, buffer, handoff
                    ),
                    name=f"batch:{stream.key}",
                )
            events += self.scenario.windows
            work_times.extend(self._window_boundaries([app]))
            if self.scenario.batch_size is not None:
                # Partial batches arrive roughly every batch_size samples.
                sample_times = sorted(
                    self._sample_times(self._streams_for([app], shared=False))
                )
                work_times.extend(
                    sample_times[:: self.scenario.batch_size]
                )
            self.hub.sim.spawn(
                self._cpu_compute_process(app), name=f"compute:{app.name}"
            )
        self._total_irqs = events
        self._policy = CpuRestPolicy(work_times)
        # Deep sleep is only safe when no batch needs prompt ingestion;
        # and with the CPU fully relieved (pure COM) its rest time is the
        # hub's idle floor, not app wait time.
        self._allow_deep = not batch_apps
        if not batch_apps:
            self._rest_routine = Routine.IDLE
        self.hub.sim.spawn(self._dispatcher(), name="dispatcher")

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------
    def _collect(self, end_time: float) -> RunResult:
        from ..energy.meter import PowerMonitor

        monitor = PowerMonitor(self.hub.recorder, self.cal.idle_hub_power_w)
        energy = monitor.measure(end_time)
        missing = [
            app.name
            for app in self.scenario.apps
            if len(self._app_results[app.name]) != self.scenario.windows
        ]
        if missing:
            raise WorkloadError(
                f"scenario {self.scenario.name}: apps without complete "
                f"results: {missing}"
            )
        return RunResult(
            scenario_name=self.scenario.name,
            scheme=self.scenario.scheme,
            app_ids=[app.table2_id for app in self.scenario.apps],
            windows=self.scenario.windows,
            duration_s=end_time,
            energy=energy,
            busy_times=routine_busy_times(self.hub, end_time),
            app_results=dict(self._app_results),
            result_times=dict(self._result_times),
            qos_violations=list(self._qos_violations),
            interrupt_count=self.hub.irq.raised_count,
            cpu_wake_count=self.hub.cpu.wake_count,
            bus_bytes=self.hub.bus.bytes_transferred,
            offload_reports=dict(self._offload_reports),
            hub=self.hub,
        )


def run_scenario(scenario: Scenario) -> RunResult:
    """Convenience wrapper: build a runner and execute it."""
    return ScenarioRunner(scenario).run()


def run_apps(
    app_ids: Sequence[str],
    scheme: str,
    windows: int = 1,
    calibration=None,
    waveforms=None,
) -> RunResult:
    """Run Table II apps by id under one scheme."""
    return run_scenario(
        Scenario.of(
            app_ids,
            scheme=scheme,
            windows=windows,
            calibration=calibration,
            waveforms=waveforms,
        )
    )
