"""Parameter-sweep utilities for what-if studies.

The ablation benchmarks and the examples share this small API: build a
grid of scenario variants, run them through the
:class:`~repro.core.engine.ScenarioEngine` (optionally cached on disk
and fanned out over worker processes), and collect flat result records
(plain dicts, friendly to CSV/pandas without depending on either).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..errors import ReproError
from .engine import ScenarioEngine
from .results import RunResult
from .scenario import Scenario


@dataclass
class SweepPoint:
    """One grid point: parameters plus the measured outcome."""

    params: Dict[str, Any]
    result: Optional[RunResult]
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Whether this point ran to completion."""
        return self.result is not None


@dataclass
class Sweep:
    """A completed sweep: ordered points plus helpers."""

    points: List[SweepPoint] = field(default_factory=list)

    def __iter__(self):
        return iter(self.points)

    def __len__(self) -> int:
        return len(self.points)

    @property
    def succeeded(self) -> List[SweepPoint]:
        """Points that produced a result."""
        return [point for point in self.points if point.ok]

    @property
    def failed(self) -> List[SweepPoint]:
        """Points that errored (e.g. offload rejected)."""
        return [point for point in self.points if not point.ok]

    def records(
        self, extractor: Callable[[RunResult], Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        """Flatten to dicts: params merged with extracted metrics."""
        rows = []
        for point in self.succeeded:
            row = dict(point.params)
            row.update(extractor(point.result))
            rows.append(row)
        return rows

    def series(
        self, param: str, metric: Callable[[RunResult], float]
    ) -> List[Any]:
        """(param value, metric) pairs, for plotting or asserting shapes."""
        return [
            (point.params[param], metric(point.result))
            for point in self.succeeded
        ]


def run_sweep(
    grid: Iterable[Dict[str, Any]],
    scenario_factory: Callable[..., Scenario],
    keep_errors: bool = True,
    workers: int = 1,
    cache_dir: Optional[Union[str, os.PathLike]] = None,
    engine: Optional[ScenarioEngine] = None,
    dedup: bool = True,
    cache_max_bytes: Optional[int] = None,
    backend: Optional[str] = None,
    backend_hosts: Optional[Sequence[str]] = None,
    fidelity: Optional[str] = None,
) -> Sweep:
    """Run ``scenario_factory(**params)`` for every grid point.

    Library errors (offload rejections, workload misconfigurations) are
    captured per point when ``keep_errors`` is set; programming errors
    always propagate — a :class:`TypeError` in a factory or a bug inside
    the simulator aborts the sweep instead of hiding in point errors.

    ``workers``/``backend``/``backend_hosts`` choose the execution
    backend independent points fan out over — a local process pool, a
    multi-host socket fleet, or inline execution (remote backends
    return results without their live hub); ``cache_dir`` memoizes
    results on disk by scenario fingerprint (``cache_max_bytes`` caps
    that cache, evicting oldest entries first); ``dedup`` lets grid
    points that are app-order permutations of each other simulate once.
    Pass a pre-built ``engine`` to share one cache/backend/memory-LRU
    configuration across sweeps — its workers then persist between
    calls.  ``fidelity`` overrides the engine's execution tier for this
    sweep (``"des"``, ``"analytic"``, or ``"auto"`` — see
    :class:`~repro.core.engine.ScenarioEngine`); each point's result
    records the tier that produced it in ``RunResult.fidelity``.
    """
    owns_engine = engine is None
    engine = engine or ScenarioEngine(
        workers=workers,
        cache_dir=cache_dir,
        dedup=dedup,
        cache_max_bytes=cache_max_bytes,
        backend=backend,
        backend_hosts=backend_hosts,
    )
    points: List[SweepPoint] = []
    pending: List[Tuple[int, Scenario]] = []
    for params in grid:
        params = dict(params)
        try:
            scenario = scenario_factory(**params)
        except ReproError as exc:
            if not keep_errors:
                raise
            points.append(SweepPoint(params=params, result=None, error=str(exc)))
            continue
        points.append(SweepPoint(params=params, result=None))
        pending.append((len(points) - 1, scenario))
    try:
        outcomes = engine.run_batch(
            [scenario for _, scenario in pending], fidelity=fidelity
        )
    finally:
        if owns_engine:
            # A caller-provided engine keeps its pool warm for the next
            # sweep; one we built ourselves must not leak workers.
            engine.close()
    for (slot, _), outcome in zip(pending, outcomes):
        if isinstance(outcome, ReproError):
            if not keep_errors:
                raise outcome
            points[slot].error = str(outcome)
        else:
            points[slot].result = outcome
    return Sweep(points=points)


def grid_of(**axes: Iterable[Any]) -> List[Dict[str, Any]]:
    """Cartesian product of named axes as a list of param dicts."""
    points: List[Dict[str, Any]] = [{}]
    for name, values in axes.items():
        points = [
            {**point, name: value} for point in points for value in values
        ]
    return points
