"""Parameter-sweep utilities for what-if studies.

The ablation benchmarks and the examples share this small API: build a
grid of scenario variants, run them, and collect flat result records
(plain dicts, friendly to CSV/pandas without depending on either).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional

from ..errors import ReproError
from .executor import run_scenario
from .results import RunResult
from .scenario import Scenario


@dataclass
class SweepPoint:
    """One grid point: parameters plus the measured outcome."""

    params: Dict[str, Any]
    result: Optional[RunResult]
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Whether this point ran to completion."""
        return self.result is not None


@dataclass
class Sweep:
    """A completed sweep: ordered points plus helpers."""

    points: List[SweepPoint] = field(default_factory=list)

    def __iter__(self):
        return iter(self.points)

    def __len__(self) -> int:
        return len(self.points)

    @property
    def succeeded(self) -> List[SweepPoint]:
        """Points that produced a result."""
        return [point for point in self.points if point.ok]

    @property
    def failed(self) -> List[SweepPoint]:
        """Points that errored (e.g. offload rejected)."""
        return [point for point in self.points if not point.ok]

    def records(
        self, extractor: Callable[[RunResult], Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        """Flatten to dicts: params merged with extracted metrics."""
        rows = []
        for point in self.succeeded:
            row = dict(point.params)
            row.update(extractor(point.result))
            rows.append(row)
        return rows

    def series(
        self, param: str, metric: Callable[[RunResult], float]
    ) -> List[Any]:
        """(param value, metric) pairs, for plotting or asserting shapes."""
        return [
            (point.params[param], metric(point.result))
            for point in self.succeeded
        ]


def run_sweep(
    grid: Iterable[Dict[str, Any]],
    scenario_factory: Callable[..., Scenario],
    keep_errors: bool = True,
) -> Sweep:
    """Run ``scenario_factory(**params)`` for every grid point.

    Library errors (offload rejections, workload misconfigurations) are
    captured per point when ``keep_errors`` is set; programming errors
    always propagate.
    """
    sweep = Sweep()
    for params in grid:
        try:
            result = run_scenario(scenario_factory(**params))
            sweep.points.append(SweepPoint(params=dict(params), result=result))
        except ReproError as exc:
            if not keep_errors:
                raise
            sweep.points.append(
                SweepPoint(params=dict(params), result=None, error=str(exc))
            )
    return sweep


def grid_of(**axes: Iterable[Any]) -> List[Dict[str, Any]]:
    """Cartesian product of named axes as a list of param dicts."""
    points: List[Dict[str, Any]] = [{}]
    for name, values in axes.items():
        points = [
            {**point, name: value} for point in points for value in values
        ]
    return points
