"""The multi-host socket backend and its worker agent.

Pure stdlib (``socket`` + ``pickle`` + ``threading``): a fleet of
worker agents — started with ``repro-iot worker --port N`` on each host,
or programmatically via :class:`WorkerAgent` — serve pickled chunk
requests over length-prefixed frames, and :class:`SocketBackend` fans a
batch out across all of them.

Scheduling is **work-stealing**: every chunk goes into one shared queue
and each host connection drains it as fast as its host computes, so a
slow machine simply takes fewer chunks.  Failure handling is
**re-dispatch**: a chunk whose host disconnects or times out goes back
into the queue (bounded by ``max_chunk_retries``) and a surviving host
picks it up; the batch degrades gracefully until no host is left, which
raises :class:`~repro.errors.BackendError`.  A chunk that *genuinely
fails* — a task raised, surfacing as
:class:`~repro.errors.ChunkTaskError` with the failing item's index and
label — is never retried: the same inputs would fail anywhere, so the
error aborts the batch and propagates to the caller.

Wire format: every message is an 8-byte big-endian length followed by a
pickle.  Requests are ``("run", fn, chunk, base_index, labels)``;
responses are ``("ok", results)`` or ``("err", exception)``.  Requests
are pickled in the caller's thread *before* dispatch, so an unpicklable
task function raises immediately instead of poisoning the retry loop.
"""

from __future__ import annotations

import os
import pickle
import socket
import struct
import threading
from queue import Empty, Queue
from typing import (
    Any,
    Callable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ...errors import BackendError, ReproError
from .base import ExecutionBackend, ItemT, ResultT, adaptive_chunk_size
from .base import run_chunk as _run_chunk_local
from .registry import register_backend

#: Frame header: payload length as an unsigned 64-bit big-endian int.
_HEADER = struct.Struct(">Q")

#: Environment variable consulted when no host list is given explicitly.
HOSTS_ENV = "REPRO_BACKEND_HOSTS"

#: Placeholder distinguishing "no result yet" from a legitimate None.
_UNSET = object()

HostSpec = Union[str, Tuple[str, int]]


def parse_hosts(
    spec: Union[None, str, Sequence[HostSpec]]
) -> List[Tuple[str, int]]:
    """Normalize a host list: ``"h1:9000,h2:9000"``, sequences, tuples.

    Raises :class:`BackendError` for a missing/empty list or a spec
    without a valid ``host:port`` shape.
    """
    if spec is None:
        raise BackendError(
            "the socket backend needs worker hosts: pass backend_hosts=/"
            f"--backend-hosts or set ${HOSTS_ENV} (host:port,host:port)"
        )
    parts: List[HostSpec]
    if isinstance(spec, str):
        parts = [piece for piece in spec.split(",") if piece.strip()]
    else:
        parts = list(spec)
    hosts: List[Tuple[str, int]] = []
    for part in parts:
        if isinstance(part, tuple):
            host, port = part
        else:
            host, sep, port_text = part.strip().rpartition(":")
            if not sep or not host:
                raise BackendError(
                    f"bad worker spec {part!r} (expected host:port)"
                )
            try:
                port = int(port_text)
            except ValueError:
                raise BackendError(
                    f"bad worker port in {part!r} (expected host:port)"
                ) from None
        hosts.append((str(host), int(port)))
    if not hosts:
        raise BackendError("empty worker host list")
    return hosts


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes; None on clean EOF at a boundary."""
    data = bytearray()
    while len(data) < count:
        part = sock.recv(min(65536, count - len(data)))
        if not part:
            if not data:
                return None
            raise BackendError("connection closed mid-frame")
        data.extend(part)
    return bytes(data)


def send_frame(sock: socket.socket, payload: Any) -> None:
    """Pickle ``payload`` and send it as one length-prefixed frame."""
    send_frame_raw(sock, pickle.dumps(payload, pickle.HIGHEST_PROTOCOL))


def send_frame_raw(sock: socket.socket, blob: bytes) -> None:
    """Send an already-pickled payload as one length-prefixed frame."""
    sock.sendall(_HEADER.pack(len(blob)) + blob)


def recv_frame(sock: socket.socket) -> Any:
    """Receive one frame; returns None on clean EOF between frames."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    blob = _recv_exact(sock, length)
    if blob is None:
        raise BackendError("connection closed mid-frame")
    return pickle.loads(blob)


# ----------------------------------------------------------------------
# the worker agent (server side)
# ----------------------------------------------------------------------
class WorkerAgent:
    """A socket worker: accepts connections, serves chunk requests.

    ``repro-iot worker`` wraps :meth:`serve_forever`; tests use
    :meth:`start` (a daemon accept thread) and :meth:`stop`.  ``port=0``
    binds an ephemeral port (read it back from :attr:`address`).
    ``max_requests`` makes the agent abruptly shut down after serving
    that many chunks — a deterministic stand-in for a crashed host in
    the retry tests.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        max_requests: Optional[int] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.max_requests = max_requests
        #: Chunk requests served so far (across all connections).
        self.served = 0
        self._listener: Optional[socket.socket] = None
        self._connections: List[socket.socket] = []
        self._accept_thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._stopping = False

    # -- lifecycle -------------------------------------------------------
    def bind(self) -> "WorkerAgent":
        """Bind the listening socket (resolving an ephemeral port)."""
        if self._listener is None:
            self._listener = socket.create_server((self.host, self.port))
            self.port = self._listener.getsockname()[1]
        return self

    @property
    def address(self) -> str:
        """The ``host:port`` string a :class:`SocketBackend` dials."""
        return f"{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Accept and serve connections until :meth:`stop` is called."""
        self.bind()
        listener = self._listener
        assert listener is not None
        while not self._stopping:
            try:
                conn, _addr = listener.accept()
            except OSError:
                break  # listener closed by stop()
            with self._lock:
                self._connections.append(conn)
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            thread.start()

    def start(self) -> "WorkerAgent":
        """Serve in a background daemon thread (for tests/embedding)."""
        self.bind()
        self._accept_thread = threading.Thread(
            target=self.serve_forever, daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        """Close the listener and every live connection (idempotent)."""
        self._stopping = True
        listener, self._listener = self._listener, None
        if listener is not None:
            # close() alone does not wake a thread blocked in accept()
            # on Linux; shutdown() does (and may report ENOTCONN).
            try:
                listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            _close_quietly(listener)
        with self._lock:
            connections, self._connections = self._connections, []
        for conn in connections:
            _close_quietly(conn)

    # -- request handling -------------------------------------------------
    def _serve_connection(self, conn: socket.socket) -> None:
        with conn:
            while not self._stopping:
                try:
                    request = recv_frame(conn)
                except (OSError, BackendError):
                    return  # client went away; nothing to answer
                # Unpicklable requests can raise nearly anything out of
                # pickle; the agent must answer, not die, so the broad
                # catch is deliberate here.
                except Exception as exc:  # repro-lint: disable=err-swallowed-exception
                    request = ("__bad__", exc)
                if request is None:
                    return  # clean end of session
                reply = self._execute(request)
                try:
                    send_frame(conn, reply)
                except OSError:
                    return
                if self._note_served():
                    return

    def _note_served(self) -> bool:
        """Count one served chunk; True when the agent should die now."""
        with self._lock:
            self.served += 1
            exhausted = (
                self.max_requests is not None
                and self.served >= self.max_requests
            )
        if exhausted:
            self.stop()
        return exhausted

    @staticmethod
    def _execute(request: Any) -> Tuple[str, Any]:
        """Run one decoded request; always returns an (status, payload)."""
        if (
            not isinstance(request, tuple)
            or len(request) != 5
            or request[0] != "run"
        ):
            detail = request[1] if len(request) == 2 else request
            return (
                "err",
                BackendError(f"malformed worker request: {detail!r}"),
            )
        _kind, fn, chunk, base_index, labels = request
        try:
            return ("ok", _run_chunk_local(fn, chunk, base_index, labels))
        except ReproError as exc:
            # run_chunk wraps every task failure in ChunkTaskError, so
            # this is the normal task-error surface.
            return ("err", exc)
        # A malformed chunk (not iterable, bad labels) escapes the
        # per-task wrapper; the agent must still answer the frame
        # instead of killing the connection thread.
        except Exception as exc:  # repro-lint: disable=err-swallowed-exception
            return ("err", BackendError(f"worker failed to run chunk: {exc!r}"))


def _close_quietly(sock: socket.socket) -> None:
    try:
        sock.close()
    except OSError:
        return


# ----------------------------------------------------------------------
# the backend (client side)
# ----------------------------------------------------------------------
class _HostLink:
    """One persistent connection to one worker agent."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self.sock: Optional[socket.socket] = None

    @property
    def alive(self) -> bool:
        return self.sock is not None

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def connect(self, connect_timeout_s: float, io_timeout_s: float) -> None:
        sock = socket.create_connection(
            (self.host, self.port), timeout=connect_timeout_s
        )
        sock.settimeout(io_timeout_s)
        self.sock = sock

    def close(self) -> None:
        sock, self.sock = self.sock, None
        if sock is not None:
            _close_quietly(sock)


@register_backend("socket")
class SocketBackend(ExecutionBackend):
    """Fan batches out to ``repro-iot worker`` agents over TCP.

    ``hosts`` is a ``host:port`` list (string, sequence, or the
    ``REPRO_BACKEND_HOSTS`` environment variable).  Chunks are pulled
    from a shared queue by one dispatch thread per connected host
    (work-stealing); a lost or timed-out host re-queues its chunk for
    the survivors (``retries`` counts these, bounded per chunk by
    ``max_chunk_retries``) and the batch only fails when every host is
    gone.  ``chunk_timeout_s`` is the per-chunk reply deadline — a host
    that blows it is presumed dead.
    """

    parallel = True
    remote = True
    multi_host = True

    def __init__(
        self,
        hosts: Union[str, Sequence[HostSpec]],
        chunk_timeout_s: float = 300.0,
        connect_timeout_s: float = 10.0,
        max_chunk_retries: int = 2,
    ) -> None:
        super().__init__()
        self._links = [
            _HostLink(host, port) for host, port in parse_hosts(hosts)
        ]
        self.chunk_timeout_s = float(chunk_timeout_s)
        self.connect_timeout_s = float(connect_timeout_s)
        self.max_chunk_retries = int(max_chunk_retries)
        #: Connections dropped mid-service (informational).
        self.hosts_lost = 0
        self._counter_lock = threading.Lock()

    @classmethod
    def create(
        cls, workers: int = 1, hosts: Optional[Sequence[str]] = None
    ) -> "SocketBackend":
        """Build from engine options; hosts fall back to the env var."""
        spec: Union[None, str, Sequence[str]] = hosts
        if spec is None:
            spec = os.environ.get(HOSTS_ENV)
        return cls(hosts=spec)  # parse_hosts raises when spec is None

    # -- lifecycle -------------------------------------------------------
    @property
    def alive(self) -> bool:
        """Whether at least one worker connection is up."""
        return any(link.alive for link in self._links)

    def open(self) -> "SocketBackend":
        """Connect every reachable host (idempotent, re-entrant).

        Unreachable hosts are skipped (degraded start, counted in
        ``hosts_lost``); no reachable host at all raises
        :class:`BackendError`.
        """
        for link in self._links:
            if link.alive:
                continue
            try:
                link.connect(self.connect_timeout_s, self.chunk_timeout_s)
            except OSError:
                self.hosts_lost += 1
                continue
            self.spawns += 1
        if not self.alive:
            addresses = ", ".join(link.address for link in self._links)
            raise BackendError(
                f"no socket worker reachable (tried: {addresses}); start"
                " agents with `repro-iot worker --port <port>`"
            )
        return self

    def close(self) -> None:
        """Drop every connection (idempotent, never raises)."""
        for link in self._links:
            link.close()

    # -- execution -------------------------------------------------------
    def submit_batch(
        self,
        fn: Callable[[ItemT], ResultT],
        items: Sequence[ItemT],
        chunk_size: Optional[int] = None,
        labels: Optional[Sequence[str]] = None,
    ) -> List[ResultT]:
        """Run ``fn`` over ``items`` across the worker fleet, in order."""
        if not items:
            return []
        self.open()
        live = [link for link in self._links if link.alive]
        size = chunk_size or adaptive_chunk_size(len(items), len(live))
        plans = self._plan_chunks(items, size, labels)
        self.tasks += len(items)
        # Requests are pickled up front: an unpicklable fn/item raises
        # here, in the caller, instead of looking like N dead hosts.
        jobs: "Queue[Tuple[int, bytes, int]]" = Queue()
        for chunk_id, (base_index, chunk, chunk_labels) in enumerate(plans):
            blob = pickle.dumps(
                ("run", fn, chunk, base_index, chunk_labels),
                pickle.HIGHEST_PROTOCOL,
            )
            jobs.put((chunk_id, blob, 0))
        chunk_results: List[Any] = [_UNSET] * len(plans)
        failures: List[BaseException] = []
        abort = threading.Event()
        threads = [
            threading.Thread(
                target=self._drain,
                args=(link, jobs, chunk_results, failures, abort),
                daemon=True,
            )
            for link in live
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if failures:
            raise failures[0]
        undelivered = sum(
            1 for result in chunk_results if result is _UNSET
        )
        if undelivered:
            raise BackendError(
                f"all socket workers lost with {undelivered} chunk(s)"
                f" undelivered (after {self.retries} retr"
                f"{'y' if self.retries == 1 else 'ies'})"
            )
        results: List[ResultT] = []
        for chunk_result in chunk_results:
            results.extend(chunk_result)
        return results

    def _drain(
        self,
        link: _HostLink,
        jobs: "Queue[Tuple[int, bytes, int]]",
        chunk_results: List[Any],
        failures: List[BaseException],
        abort: threading.Event,
    ) -> None:
        """One host's dispatch loop: steal, send, receive, repeat."""
        while not abort.is_set():
            try:
                chunk_id, blob, attempts = jobs.get_nowait()
            except Empty:
                return
            sock = link.sock
            if sock is None:
                self._requeue(jobs, chunk_id, blob, attempts, failures, abort)
                return
            try:
                send_frame_raw(sock, blob)
                with self._counter_lock:
                    self.dispatches += 1
                reply = recv_frame(sock)
            except (OSError, BackendError, pickle.PickleError):
                self._lose_host(link)
                self._requeue(jobs, chunk_id, blob, attempts, failures, abort)
                return
            if reply is None:  # agent closed the session cleanly
                self._lose_host(link)
                self._requeue(jobs, chunk_id, blob, attempts, failures, abort)
                return
            status, payload = reply
            if status == "ok":
                chunk_results[chunk_id] = payload
                continue
            # A task (or the protocol) failed for real: retrying the
            # same inputs elsewhere cannot help, so abort the batch.
            failures.append(payload)
            abort.set()
            return

    def _lose_host(self, link: _HostLink) -> None:
        link.close()
        with self._counter_lock:
            self.hosts_lost += 1

    def _requeue(
        self,
        jobs: "Queue[Tuple[int, bytes, int]]",
        chunk_id: int,
        blob: bytes,
        attempts: int,
        failures: List[BaseException],
        abort: threading.Event,
    ) -> None:
        """Put a lost chunk back for the surviving hosts (bounded)."""
        if attempts >= self.max_chunk_retries:
            failures.append(
                BackendError(
                    f"chunk {chunk_id} lost {attempts + 1} times"
                    " (worker disconnects/timeouts); giving up"
                )
            )
            abort.set()
            return
        with self._counter_lock:
            self.retries += 1
        jobs.put((chunk_id, blob, attempts + 1))
