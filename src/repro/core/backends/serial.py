"""The inline backend: zero overhead, the debug/CI default.

Tasks run in the calling process, in order, with no pickling, no
spawned workers and no IPC — results keep any unpicklable state
(`~repro.core.engine.ScenarioEngine` relies on this to hand back live
hubs).  Chunking is honored purely for the counters, so the scheduling
contract (``dispatches``/``tasks``) stays assertable; by default the
whole batch is one chunk, because splitting an inline loop buys
nothing.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from .base import ExecutionBackend, ItemT, ResultT, run_chunk
from .registry import register_backend


@register_backend("serial")
class SerialBackend(ExecutionBackend):
    """Run every task inline in the calling process."""

    parallel = False
    remote = False
    multi_host = False

    def submit_batch(
        self,
        fn: Callable[[ItemT], ResultT],
        items: Sequence[ItemT],
        chunk_size: Optional[int] = None,
        labels: Optional[Sequence[str]] = None,
    ) -> List[ResultT]:
        """Apply ``fn`` to every item, in order, in this process."""
        if not items:
            return []
        size = chunk_size or len(items)
        results: List[ResultT] = []
        for base_index, chunk, chunk_labels in self._plan_chunks(
            items, size, labels
        ):
            self.dispatches += 1
            self.tasks += len(chunk)
            results.extend(run_chunk(fn, chunk, base_index, chunk_labels))
        return results
