"""The execution-backend protocol behind the scenario engine.

The engine's job is *what* to run (fingerprints, dedup, the two-tier
cache); a backend's job is *where* to run it.  The seam between them is
one method:

``submit_batch(fn, items, chunk_size=None, labels=None)``
    Apply a picklable ``fn`` to every item and return the results **in
    item order**.  Items travel in chunks (each chunk one dispatch), so
    thousands of tiny tasks don't pay one round-trip each.

plus a uniform lifecycle (``open``/``close``/context manager, both
idempotent), capability flags the engine consults
(:attr:`ExecutionBackend.parallel`, :attr:`~ExecutionBackend.remote`,
:attr:`~ExecutionBackend.multi_host`) and four counters every backend
maintains identically (``spawns``/``dispatches``/``tasks``/``retries``)
so tests and the perf-guard can assert scheduling behavior exactly.

Backends register by name in :mod:`repro.core.backends.registry` —
one module, one ``@register_backend`` class, mirroring the scheme
registry — and are then addressable everywhere a backend is chosen
(``ScenarioEngine(backend="...")``, ``run_sweep``, the CLI's
``--backend`` flag).

Error attribution: a task that raises inside a dispatched chunk is
re-raised as :class:`~repro.errors.ChunkTaskError` carrying the
batch-global item index and the caller's label for that item, so a
failure in point 713 of a grid names the scenario instead of an
anonymous chunk — and so a multi-host backend knows the chunk genuinely
failed (never retry) rather than the transport (retry elsewhere).
"""

from __future__ import annotations

import math
from typing import Any, Callable, List, Optional, Sequence, Tuple, TypeVar

from ...errors import ChunkTaskError

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")

#: Target number of chunks each worker should receive: >1 so a slow
#: chunk cannot serialize the whole batch behind one worker, small so
#: thousands of tiny scenarios still travel in few dispatches.
CHUNKS_PER_WORKER = 4


def adaptive_chunk_size(
    task_count: int, workers: int, chunks_per_worker: int = CHUNKS_PER_WORKER
) -> int:
    """Chunk size giving each worker about ``chunks_per_worker`` chunks.

    Grows with the batch (1000 tasks on 4 workers -> 63-task chunks, 16
    dispatches instead of 1000) and degrades gracefully for small
    batches (fewer tasks than workers -> one task per chunk).
    """
    if task_count <= 0:
        return 1
    if workers < 1:
        raise ValueError(f"need at least one worker, got {workers}")
    return max(1, math.ceil(task_count / (workers * chunks_per_worker)))


def chunked(items: Sequence[ItemT], size: int) -> List[Sequence[ItemT]]:
    """Split a sequence into consecutive chunks of at most ``size``."""
    if size < 1:
        raise ValueError(f"chunk size must be >= 1, got {size}")
    return [items[start : start + size] for start in range(0, len(items), size)]


def run_chunk(
    fn: Callable[[Any], Any],
    chunk: Sequence[Any],
    base_index: int = 0,
    labels: Optional[Sequence[str]] = None,
) -> List[Any]:
    """Worker-side loop: apply ``fn`` to every item of one chunk.

    A task that raises is re-raised as :class:`ChunkTaskError` naming
    the batch-global item index (``base_index`` + chunk offset) and the
    caller's label for it, so the parent can report *which* item failed
    instead of losing it inside an anonymous chunk.  Library errors a
    caller wants per-item must be captured inside ``fn`` itself (the
    engine's ``_run_remote`` does exactly that); anything escaping here
    is treated as a batch-aborting failure.
    """
    results: List[Any] = []
    for offset, item in enumerate(chunk):
        try:
            results.append(fn(item))
        except ChunkTaskError:
            raise  # already attributed by a nested dispatch layer
        except Exception as exc:
            index = base_index + offset
            label = ""
            if labels is not None and offset < len(labels):
                label = labels[offset]
            described = f" ({label})" if label else ""
            raise ChunkTaskError(
                f"task {index}{described} failed: {exc!r}",
                index=index,
                label=label,
            ) from exc
    return results


#: One planned dispatch: (batch-global base index, items, their labels).
ChunkPlan = Tuple[int, Sequence[Any], Optional[Sequence[str]]]


class ExecutionBackend:
    """Base class and protocol for execution backends.

    Subclass in its own module under ``core/backends/``, register with
    ``@register_backend("<name>")``, implement :meth:`submit_batch`
    (and, when the backend owns external resources, :meth:`open` /
    :meth:`close`), and set the capability flags.  The four counters
    are part of the contract — ``tests/test_backends_contract.py``
    asserts them for every registered backend.
    """

    #: Registry name; assigned by ``@register_backend``.
    name: str = ""
    #: Whether independent chunks may genuinely run concurrently.
    parallel: bool = False
    #: Whether results cross a process/host boundary (everything must
    #: pickle; the engine strips live hubs before dispatch).
    remote: bool = False
    #: Whether the backend fans out to more than one host.
    multi_host: bool = False

    def __init__(self) -> None:
        #: Workers/processes/connections brought up (1 == perfect reuse).
        self.spawns = 0
        #: Chunks dispatched (each one round-trip to a worker).
        self.dispatches = 0
        #: Individual tasks shipped inside those chunks.
        self.tasks = 0
        #: Chunks re-dispatched after a lost worker or timed-out reply.
        self.retries = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        workers: int = 1,
        hosts: Optional[Sequence[str]] = None,
    ) -> "ExecutionBackend":
        """Build an instance from the engine's generic options.

        ``workers`` sizes local fan-out; ``hosts`` addresses remote
        workers.  Backends that need neither ignore both.
        """
        return cls()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """Whether the backend currently holds live execution resources."""
        return False

    def open(self) -> "ExecutionBackend":
        """Bring up execution resources (idempotent; lazy by default)."""
        return self

    def close(self) -> None:
        """Release execution resources.

        Must be idempotent and must never raise — double-close in
        CLI/``atexit`` paths, or a close after a failed spawn, has to be
        safe.  The next :meth:`submit_batch` reopens transparently.
        """

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *_exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def submit_batch(
        self,
        fn: Callable[[ItemT], ResultT],
        items: Sequence[ItemT],
        chunk_size: Optional[int] = None,
        labels: Optional[Sequence[str]] = None,
    ) -> List[ResultT]:
        """Run ``fn`` over ``items``; results in item order.

        ``labels`` (optional, one per item) feed failure attribution:
        a task that raises surfaces as :class:`ChunkTaskError` naming
        its index and label.
        """
        raise NotImplementedError

    def map(
        self,
        fn: Callable[[ItemT], ResultT],
        items: Sequence[ItemT],
        chunk_size: Optional[int] = None,
    ) -> List[ResultT]:
        """Backward-compatible alias of :meth:`submit_batch`."""
        return self.submit_batch(fn, items, chunk_size=chunk_size)

    # ------------------------------------------------------------------
    # shared plumbing for implementations
    # ------------------------------------------------------------------
    def _plan_chunks(
        self,
        items: Sequence[Any],
        chunk_size: int,
        labels: Optional[Sequence[str]],
    ) -> List[ChunkPlan]:
        """Split a batch into (base_index, chunk, labels) dispatch units."""
        plans: List[ChunkPlan] = []
        for start in range(0, len(items), chunk_size):
            stop = start + chunk_size
            plans.append(
                (
                    start,
                    items[start:stop],
                    labels[start:stop] if labels is not None else None,
                )
            )
        return plans
