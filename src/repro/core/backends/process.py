"""The local process-pool backend (the historical ``WorkerPool``).

``concurrent.futures.ProcessPoolExecutor`` is the right local fan-out
primitive, but the seed engine paid for it badly: every batch forked a
fresh pool (worker startup dominating short sweeps) and shipped one
pickled scenario per task (one IPC round-trip per grid point).  This
backend fixes both:

* **Persistence** — the executor is spawned lazily on the first batch
  and reused for every later one, across
  ``run_sweep``/``compare_schemes``/CLI calls on the same engine.
  ``spawns`` counts executor creations, so tests can assert the pool
  was built exactly once.
* **Chunked dispatch** — tasks are grouped into chunks sized by
  :func:`~repro.core.backends.base.adaptive_chunk_size` (a few chunks
  per worker: large enough to amortize IPC, small enough to
  load-balance), and each chunk is one ``submit`` call.

The backend is deliberately dumb about *what* it runs: the engine hands
it a picklable per-item function.  Results come back in item order.
"""

from __future__ import annotations

from concurrent.futures import Future, ProcessPoolExecutor
from typing import Callable, List, Optional, Sequence

from .base import (
    ExecutionBackend,
    ItemT,
    ResultT,
    adaptive_chunk_size,
    run_chunk,
)
from .registry import register_backend


@register_backend("process")
class ProcessPoolBackend(ExecutionBackend):
    """A lazily-spawned, reusable process pool with chunked dispatch.

    Use as a context manager, or call :meth:`close` explicitly; a
    closed backend respawns transparently on the next
    :meth:`submit_batch` (counted in ``spawns``).
    """

    parallel = True
    remote = True
    multi_host = False

    def __init__(self, max_workers: int) -> None:
        super().__init__()
        if max_workers < 1:
            raise ValueError(f"need at least one worker, got {max_workers}")
        self.max_workers = int(max_workers)
        self._executor: Optional[ProcessPoolExecutor] = None

    @classmethod
    def create(
        cls, workers: int = 1, hosts: Optional[Sequence[str]] = None
    ) -> "ProcessPoolBackend":
        """Build a pool sized by the engine's ``workers`` option."""
        return cls(max_workers=workers)

    @property
    def alive(self) -> bool:
        """Whether an executor is currently running."""
        return self._executor is not None

    def open(self) -> "ProcessPoolBackend":
        """Spawn the executor now instead of on the first batch."""
        self._ensure_executor()
        return self

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.max_workers
            )
            self.spawns += 1
        return self._executor

    def submit_batch(
        self,
        fn: Callable[[ItemT], ResultT],
        items: Sequence[ItemT],
        chunk_size: Optional[int] = None,
        labels: Optional[Sequence[str]] = None,
    ) -> List[ResultT]:
        """Run ``fn`` over ``items`` on the pool; results in item order.

        ``fn`` and every item must be picklable.  ``chunk_size``
        defaults to :func:`adaptive_chunk_size` for the batch.
        """
        if not items:
            return []
        executor = self._ensure_executor()
        size = chunk_size or adaptive_chunk_size(
            len(items), self.max_workers
        )
        futures: List["Future[List[ResultT]]"] = []
        for base_index, chunk, chunk_labels in self._plan_chunks(
            items, size, labels
        ):
            futures.append(
                executor.submit(
                    run_chunk, fn, chunk, base_index, chunk_labels
                )
            )
            self.dispatches += 1
            self.tasks += len(chunk)
        results: List[ResultT] = []
        for future in futures:
            results.extend(future.result())
        return results

    def close(self) -> None:
        """Shut the executor down (idempotent); workers exit cleanly."""
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)
