"""Pluggable execution backends for the scenario engine.

Importing this package registers the three stock backends:

========== ==================================================== =========
name       runs tasks                                           parallel
========== ==================================================== =========
serial     inline in the calling process (debug/CI default)    no
process    on a persistent local process pool                   yes
socket     across ``repro-iot worker`` agents on other hosts    yes
========== ==================================================== =========

Pick one by name with :func:`create_backend` (what the engine and the
CLI's ``--backend`` flag use), or register your own — see
``docs/extending.md``.
"""

from __future__ import annotations

import os
from typing import Optional, Sequence

from .base import (
    CHUNKS_PER_WORKER,
    ExecutionBackend,
    adaptive_chunk_size,
    chunked,
    run_chunk,
)
from .process import ProcessPoolBackend
from .registry import (
    backend_names,
    get_backend,
    iter_backends,
    register_backend,
    unregister_backend,
)
from .serial import SerialBackend
from .sockets import SocketBackend, WorkerAgent, parse_hosts

#: Environment variable selecting the default backend by name.
BACKEND_ENV = "REPRO_BACKEND"


def default_backend_name(workers: int = 1) -> str:
    """The backend used when none is named explicitly.

    ``$REPRO_BACKEND`` wins (that is how CI re-runs the suite per
    backend); otherwise the engine's historical heuristic applies —
    a process pool when ``workers > 1``, inline execution otherwise.
    """
    env = os.environ.get(BACKEND_ENV)
    if env:
        return env
    return "process" if workers > 1 else "serial"


def create_backend(
    name: Optional[str] = None,
    workers: int = 1,
    hosts: Optional[Sequence[str]] = None,
) -> ExecutionBackend:
    """Instantiate a backend by name via each class's ``create`` hook.

    ``name=None`` falls back to :func:`default_backend_name`.  Raises
    :class:`~repro.errors.BackendError` for unknown names or missing
    required configuration (e.g. a socket backend with no hosts).
    """
    resolved = name or default_backend_name(workers)
    return get_backend(resolved).create(workers=workers, hosts=hosts)


__all__ = [
    "BACKEND_ENV",
    "CHUNKS_PER_WORKER",
    "ExecutionBackend",
    "ProcessPoolBackend",
    "SerialBackend",
    "SocketBackend",
    "WorkerAgent",
    "adaptive_chunk_size",
    "backend_names",
    "chunked",
    "create_backend",
    "default_backend_name",
    "get_backend",
    "iter_backends",
    "parse_hosts",
    "register_backend",
    "run_chunk",
    "unregister_backend",
]
