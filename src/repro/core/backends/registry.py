"""The backend registry: execution-backend name -> backend class.

Backends self-register at import time via :func:`register_backend`; the
package ``__init__`` imports every built-in backend module, so importing
anything from ``repro.core.backends`` guarantees the three stock
backends (``serial``, ``process``, ``socket``) are present.  Third-party
backends register the same way — one module, one decorator, mirroring
the scheme registry — and immediately work everywhere a backend name is
accepted (:class:`~repro.core.engine.ScenarioEngine`, ``run_sweep``,
``compare_grid``, the CLI's ``--backend``).
"""

from __future__ import annotations

from typing import Dict, Tuple, Type

from ...errors import BackendError
from .base import ExecutionBackend

#: Registration-ordered mapping of backend name -> backend class.
_REGISTRY: Dict[str, Type[ExecutionBackend]] = {}


def register_backend(name: str):
    """Class decorator registering an :class:`ExecutionBackend` by name.

    The decorated class gains a ``name`` attribute.  Re-registering a
    different class under an existing name is an error (re-importing
    the same class is idempotent, so module reloads stay harmless).
    """

    def decorator(cls: Type[ExecutionBackend]) -> Type[ExecutionBackend]:
        existing = _REGISTRY.get(name)
        if existing is not None and existing is not cls:
            raise BackendError(
                f"backend {name!r} already registered by {existing.__name__}"
            )
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorator


def get_backend(name: str) -> Type[ExecutionBackend]:
    """Look up a backend class by name; raises for unknown names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(_REGISTRY) or "none"
        raise BackendError(
            f"unknown backend {name!r} (registered: {known})"
        ) from None


def backend_names() -> Tuple[str, ...]:
    """Registered backend names, in registration order."""
    return tuple(_REGISTRY)


def iter_backends() -> Tuple[Tuple[str, Type[ExecutionBackend]], ...]:
    """(name, class) pairs in registration order."""
    return tuple(_REGISTRY.items())


def unregister_backend(name: str) -> None:
    """Remove a backend (test hygiene for dynamically registered ones)."""
    _REGISTRY.pop(name, None)
