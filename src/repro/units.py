"""Unit conventions and conversion helpers.

The whole library uses SI base units internally:

* time    — seconds (``float``)
* power   — watts
* energy  — joules
* data    — bytes (``int``)
* rates   — hertz

These helpers exist so call sites can state their intent
(``ms(1.6)`` reads better than ``0.0016``) and so tests can assert
round-trips.
"""

from __future__ import annotations

#: One millisecond in seconds.
MILLISECOND = 1e-3
#: One microsecond in seconds.
MICROSECOND = 1e-6
#: One nanosecond in seconds.
NANOSECOND = 1e-9
#: One millijoule in joules.
MILLIJOULE = 1e-3
#: One milliwatt in watts.
MILLIWATT = 1e-3
#: One kibibyte in bytes.
KIB = 1024
#: One mebibyte in bytes.
MIB = 1024 * 1024


def ms(value: float) -> float:
    """Convert milliseconds to seconds."""
    return value * MILLISECOND


def us(value: float) -> float:
    """Convert microseconds to seconds."""
    return value * MICROSECOND


def ns(value: float) -> float:
    """Convert nanoseconds to seconds."""
    return value * NANOSECOND


def to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds / MILLISECOND


def to_us(seconds: float) -> float:
    """Convert seconds to microseconds."""
    return seconds / MICROSECOND


def mw(value: float) -> float:
    """Convert milliwatts to watts."""
    return value * MILLIWATT


def to_mw(watts: float) -> float:
    """Convert watts to milliwatts."""
    return watts / MILLIWATT


def mj(value: float) -> float:
    """Convert millijoules to joules."""
    return value * MILLIJOULE


def to_mj(joules: float) -> float:
    """Convert joules to millijoules."""
    return joules / MILLIJOULE


def kib(value: float) -> int:
    """Convert kibibytes to bytes (rounded to an integral byte count)."""
    return int(round(value * KIB))


def to_kib(nbytes: float) -> float:
    """Convert bytes to kibibytes."""
    return nbytes / KIB


def khz(value: float) -> float:
    """Convert kilohertz to hertz."""
    return value * 1e3


def mhz(value: float) -> float:
    """Convert megahertz to hertz."""
    return value * 1e6
