"""Power-state machines and the paper's four routine categories."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..errors import PowerStateError
from ..sim.kernel import Simulator
from ..sim.trace import StateChange, TimelineRecorder


class Routine:
    """The four sub-task categories the paper attributes energy to (§II).

    ``IDLE`` is the extra category for time no app sub-task is responsible
    for (the idle hub of Figure 1).
    """

    DATA_COLLECTION = "data_collection"
    INTERRUPT = "interrupt"
    DATA_TRANSFER = "data_transfer"
    APP_COMPUTE = "app_compute"
    IDLE = "idle"

    #: Presentation order used by every report and benchmark table.
    ORDER: Tuple[str, ...] = (
        DATA_COLLECTION,
        INTERRUPT,
        DATA_TRANSFER,
        APP_COMPUTE,
        IDLE,
    )

    #: All valid routine tags.
    ALL = frozenset(ORDER)


#: Component states that count as "busy" for the timing breakdown
#: (Figures 8 and 13): actual work on a core, a sensor rail, the bus or
#: the NIC.  Wake transitions cost energy but perform no work, so they
#: are excluded from the performance metric.
BUSY_STATES = frozenset({"busy", "read", "active", "tx"})


def _clipped_intervals(
    recorder: TimelineRecorder, component: str, t0_s: float, t1_s: float
):
    """Yield ``(change, duration)`` pairs clipped to ``[t0_s, t1_s)``."""
    history = recorder.changes(component)
    for index, change in enumerate(history):
        following = (
            history[index + 1].time if index + 1 < len(history) else t1_s
        )
        start = change.time if change.time > t0_s else t0_s
        end = following if following < t1_s else t1_s
        if end > start:
            yield change, end - start


def energy_between(
    recorder: TimelineRecorder, t0_s: float, t1_s: float
) -> Dict[Tuple[str, str], float]:
    """Integrated joules per ``(component, routine)`` over ``[t0_s, t1_s)``.

    The per-cycle energy accounting behind fast-forward extrapolation: a
    steady cycle's delta, multiplied by the number of skipped cycles,
    extends a truncated run's report exactly (modulo float summation
    order, which is why parity is asserted at rtol 1e-9 rather than
    bit-identity).
    """
    accum: Dict[Tuple[str, str], float] = {}
    for component in recorder.components:
        for change, duration in _clipped_intervals(
            recorder, component, t0_s, t1_s
        ):
            key = (component, change.routine)
            accum[key] = accum.get(key, 0.0) + change.power_w * duration
    return accum


def busy_between(
    recorder: TimelineRecorder, t0_s: float, t1_s: float
) -> Dict[str, float]:
    """Busy seconds per routine over ``[t0_s, t1_s)`` (see BUSY_STATES)."""
    totals: Dict[str, float] = {routine: 0.0 for routine in Routine.ORDER}
    for component in recorder.components:
        for change, duration in _clipped_intervals(
            recorder, component, t0_s, t1_s
        ):
            if change.state in BUSY_STATES:
                totals[change.routine] = (
                    totals.get(change.routine, 0.0) + duration
                )
    return totals


class PowerStateMachine:
    """Tracks one component's power state and routine attribution.

    Every transition is logged to the shared timeline.  States are declared
    up front with their power draw; attempting to enter an undeclared state
    raises :class:`PowerStateError` (catching typos early matters because a
    mis-tagged state silently corrupts the energy accounting).
    """

    def __init__(
        self,
        sim: Simulator,
        recorder: TimelineRecorder,
        component: str,
        states: Dict[str, float],
        initial_state: str,
        initial_routine: str = Routine.IDLE,
    ):
        if initial_state not in states:
            raise PowerStateError(f"unknown initial state {initial_state!r}")
        self._sim = sim
        self._recorder = recorder
        self.component = component
        self._states = dict(states)
        self.state = initial_state
        self.routine = initial_routine
        self._record()

    @property
    def power_w(self) -> float:
        """Current power draw in watts."""
        return self._states[self.state]

    def state_power(self, state: str) -> float:
        """Declared draw of ``state`` (without entering it)."""
        try:
            return self._states[state]
        except KeyError:
            raise PowerStateError(
                f"{self.component}: unknown state {state!r}"
            ) from None

    def set_state(self, state: str, routine: Optional[str] = None) -> None:
        """Enter ``state``; optionally retag the active routine."""
        if state not in self._states:
            raise PowerStateError(f"{self.component}: unknown state {state!r}")
        if routine is not None:
            if routine not in Routine.ALL:
                raise PowerStateError(
                    f"{self.component}: unknown routine {routine!r}"
                )
            self.routine = routine
        self.state = state
        self._record()

    def set_routine(self, routine: str) -> None:
        """Retag the current interval without changing power state."""
        self.set_state(self.state, routine)

    def _record(self) -> None:
        self._recorder.record(
            StateChange(
                time=self._sim.now,
                component=self.component,
                state=self.state,
                power_w=self.power_w,
                routine=self.routine,
            )
        )
