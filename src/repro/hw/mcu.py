"""The MCU-board model (ESP8266 class).

The MCU core is serial (one instruction stream) and guarded by a FIFO
resource.  Raw sensor acquisition runs on the sensors' own rails through the
MCU board's I/O controller and does not occupy the core; only the driver's
decode/format step and offloaded app computation do.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..calibration import McuCalibration
from ..errors import HardwareError
from ..sim.kernel import Simulator
from ..sim.process import Delay
from ..sim.resources import Resource
from ..sim.trace import TimelineRecorder
from .memory import MemoryRegion
from .power import PowerStateMachine


class McuState:
    """Named MCU power states."""

    BUSY = "busy"
    IDLE = "idle"
    SLEEP = "sleep"


class Mcu:
    """Power/timing model of the auxiliary micro-controller."""

    def __init__(
        self,
        sim: Simulator,
        recorder: TimelineRecorder,
        cal: McuCalibration,
        initial_state: str = McuState.SLEEP,
    ):
        self.sim = sim
        self.cal = cal
        self.core = Resource("mcu.core")
        self.ram = MemoryRegion("mcu.ram", cal.ram_bytes)
        self.psm = PowerStateMachine(
            sim,
            recorder,
            component="mcu",
            states={
                McuState.BUSY: cal.active_power_w,
                McuState.IDLE: cal.idle_power_w,
                McuState.SLEEP: cal.sleep_power_w,
            },
            initial_state=initial_state,
        )
        self.instructions_retired = 0

    def compute_time(self, instructions: float) -> float:
        """Seconds the MCU needs to retire ``instructions``."""
        if instructions < 0:
            raise HardwareError(f"negative instruction count: {instructions}")
        return instructions / (self.cal.mips * 1e6)

    def execute(
        self,
        duration: float,
        routine: str,
        instructions: Optional[float] = None,
        after_state: str = McuState.IDLE,
        after_routine: Optional[str] = None,
    ) -> Generator:
        """Run the MCU core busy for ``duration`` seconds.

        Caller must own :attr:`core`.  Ends in ``after_state``.
        """
        self.psm.set_state(McuState.BUSY, routine)
        if instructions is None:
            instructions = duration * self.cal.mips * 1e6
        self.instructions_retired += instructions
        if duration > 0:
            yield Delay(duration)
        self.psm.set_state(after_state, after_routine or routine)

    def set_idle(self, routine: str) -> None:
        """MCU awake between polls, attributed to ``routine``."""
        self.psm.set_state(McuState.IDLE, routine)

    def enter_sleep(self, routine: str) -> None:
        """MCU deep sleep (no sensing scheduled)."""
        self.psm.set_state(McuState.SLEEP, routine)
