"""Capacity-tracked memory regions (MCU SRAM, main-board DRAM buffers)."""

from __future__ import annotations

from typing import Dict

from ..errors import CapacityError


class MemoryRegion:
    """A byte-accounted allocator with a hard capacity and peak tracking.

    This is what limits batching (the ESP8266 has 80 KB of user RAM) and
    what rejects heavy-weight apps from COM (§IV-E3: speech-to-text needs a
    1.43 GB footprint).
    """

    def __init__(self, name: str, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise CapacityError(f"{name}: non-positive capacity")
        self.name = name
        self.capacity_bytes = int(capacity_bytes)
        self._allocations: Dict[str, int] = {}
        self.peak_bytes = 0

    @property
    def used_bytes(self) -> int:
        """Bytes currently allocated."""
        return sum(self._allocations.values())

    @property
    def free_bytes(self) -> int:
        """Bytes still available."""
        return self.capacity_bytes - self.used_bytes

    def would_fit(self, nbytes: int) -> bool:
        """Whether ``nbytes`` more could be allocated right now."""
        return nbytes <= self.free_bytes

    def allocate(self, label: str, nbytes: int) -> None:
        """Reserve ``nbytes`` under ``label`` (labels accumulate)."""
        if nbytes < 0:
            raise CapacityError(f"{self.name}: negative allocation {nbytes}")
        if nbytes > self.free_bytes:
            raise CapacityError(
                f"{self.name}: allocating {nbytes} B for {label!r} exceeds "
                f"capacity ({self.used_bytes}/{self.capacity_bytes} B used)"
            )
        self._allocations[label] = self._allocations.get(label, 0) + nbytes
        self.peak_bytes = max(self.peak_bytes, self.used_bytes)

    def free(self, label: str) -> int:
        """Release everything held under ``label``; returns bytes freed."""
        return self._allocations.pop(label, 0)

    def usage(self) -> Dict[str, int]:
        """Snapshot of current allocations by label."""
        return dict(self._allocations)
