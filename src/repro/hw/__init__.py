"""Hardware models of the IoT hub: CPU, MCU, buses, interrupts, memories.

Each active component owns a :class:`~repro.hw.power.PowerStateMachine` that
logs every state change into the hub's shared
:class:`~repro.sim.trace.TimelineRecorder`; energy is integrated offline by
:mod:`repro.energy.meter`.
"""

from .power import Routine, PowerStateMachine
from .cpu import Cpu, CpuState
from .mcu import Mcu, McuState
from .bus import PioBus, NetworkInterface
from .interrupt import InterruptController, InterruptRequest
from .memory import MemoryRegion
from .board import IoTHub

__all__ = [
    "Cpu",
    "CpuState",
    "InterruptController",
    "InterruptRequest",
    "IoTHub",
    "Mcu",
    "McuState",
    "MemoryRegion",
    "NetworkInterface",
    "PioBus",
    "PowerStateMachine",
    "Routine",
]
