"""The main-board CPU model (Raspberry Pi 3B class).

The CPU has five power states:

* ``busy``       — executing instructions (5 W)
* ``idle``       — online but not executing; the governor kept it awake
  because the next wake-up is too close for sleeping to pay off (2.5 W)
* ``sleep``      — shallow sleep, 1.6 ms / 4 mJ away from active (1.5 W)
* ``deep_sleep`` — power-gated; only entered when the CPU has no upcoming
  work registered at all, e.g. an idle hub or a fully offloaded app (0.35 W)
* ``transition`` — waking up (2.5 W for 1.6 ms)

The modelled core is a single execution context guarded by a FIFO
:class:`~repro.sim.resources.Resource`; multi-app scenarios contend for it.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..calibration import CpuCalibration
from ..errors import HardwareError
from ..sim.kernel import Simulator
from ..sim.process import Delay
from ..sim.resources import Resource
from ..sim.trace import TimelineRecorder
from .power import PowerStateMachine


class CpuState:
    """Named CPU power states."""

    BUSY = "busy"
    IDLE = "idle"
    SLEEP = "sleep"
    DEEP_SLEEP = "deep_sleep"
    TRANSITION = "transition"


class Cpu:
    """Power/timing model of the hub's application processor."""

    def __init__(
        self,
        sim: Simulator,
        recorder: TimelineRecorder,
        cal: CpuCalibration,
        initial_state: str = CpuState.DEEP_SLEEP,
    ):
        self.sim = sim
        self.cal = cal
        self.core = Resource("cpu.core")
        self.psm = PowerStateMachine(
            sim,
            recorder,
            component="cpu",
            states={
                CpuState.BUSY: cal.active_power_w,
                CpuState.IDLE: cal.idle_power_w,
                CpuState.SLEEP: cal.sleep_power_w,
                CpuState.DEEP_SLEEP: cal.deep_sleep_power_w,
                CpuState.TRANSITION: cal.transition_power_w,
            },
            initial_state=initial_state,
        )
        self.wake_count = 0
        self.instructions_retired = 0

    # ------------------------------------------------------------------
    # timing helpers
    # ------------------------------------------------------------------
    def compute_time(self, instructions: float) -> float:
        """Seconds the CPU needs to retire ``instructions``."""
        if instructions < 0:
            raise HardwareError(f"negative instruction count: {instructions}")
        return instructions / (self.cal.mips * 1e6)

    @property
    def asleep(self) -> bool:
        """Whether the CPU is in a sleep state (shallow or deep)."""
        return self.psm.state in (CpuState.SLEEP, CpuState.DEEP_SLEEP)

    # ------------------------------------------------------------------
    # process-facing generators
    # ------------------------------------------------------------------
    def execute(
        self,
        duration: float,
        routine: str,
        instructions: Optional[float] = None,
        after_state: str = CpuState.IDLE,
        after_routine: Optional[str] = None,
    ) -> Generator:
        """Run busy for ``duration`` seconds attributed to ``routine``.

        The caller must already own :attr:`core`.  Afterwards the CPU drops
        to ``after_state`` (idle by default; the governor may then decide to
        sleep).
        """
        if self.asleep:
            raise HardwareError("execute() while asleep; wake() first")
        self.psm.set_state(CpuState.BUSY, routine)
        if instructions is None:
            instructions = duration * self.cal.mips * 1e6
        self.instructions_retired += instructions
        if duration > 0:
            yield Delay(duration)
        self.psm.set_state(after_state, after_routine or routine)

    def wake(self, routine: str) -> Generator:
        """Transition from a sleep state to idle.

        Shallow sleep wakes in 1.6 ms at 2.5 W (the paper's 4 mJ); deep
        sleep pays the longer power-gated exit latency.
        """
        if not self.asleep:
            return
        duration = (
            self.cal.deep_transition_time_s
            if self.psm.state == CpuState.DEEP_SLEEP
            else self.cal.transition_time_s
        )
        self.wake_count += 1
        self.psm.set_state(CpuState.TRANSITION, routine)
        yield Delay(duration)
        self.psm.set_state(CpuState.IDLE, routine)

    def enter_sleep(self, deep: bool, routine: str) -> None:
        """Drop into (deep) sleep instantaneously.

        The paper charges the whole 4 mJ transition cost on the wake path,
        so entering sleep is free here.
        """
        if self.psm.state == CpuState.BUSY:
            raise HardwareError("cannot sleep while busy")
        state = CpuState.DEEP_SLEEP if deep else CpuState.SLEEP
        self.psm.set_state(state, routine)

    def set_idle(self, routine: str) -> None:
        """Tag the CPU as awake-but-idle, waiting on ``routine``."""
        self.psm.set_state(CpuState.IDLE, routine)
